// Ablation: how much do the auxiliary signals (CPU utilization, NIC
// throughput, memory-pressure knowledge) matter for diagnosis precision?
//
// Table 1's multi-VM TUN symptom is inherently ambiguous — CPU, memory
// bandwidth, egress and buffer memory can all produce it.  This bench runs
// the contention scenarios and compares the candidate-set size with and
// without aux-signal disambiguation.  The paper makes the same point in
// §5.1 ("the operator can combine this with other symptoms ... to
// distinguish the specific root cause").
#include "bench_util.h"
#include "cluster/deployment.h"
#include "perfsight/contention.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;

namespace {

struct Outcome {
  size_t with_aux = 0;     // candidate resources after disambiguation
  size_t without_aux = 0;  // raw rule-book candidates
  bool with_aux_correct = false;
  bool without_aux_contains = false;
};

Outcome run_membw_case() {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m("m0", dp::StackParams{}, &sim);
  cluster::Deployment dep(&sim);
  for (int i = 0; i < 2; ++i) {
    int v = m.add_vm({"vm" + std::to_string(i), 1.0});
    m.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    m.route_flow_to_vm(f, v);
    m.add_ingress_source("s" + std::to_string(i), f, DataRate::gbps(1.6));
  }
  m.add_mem_hog("hog")->set_demand_bytes_per_sec(60e9);
  Agent* a = dep.add_agent("a0");
  dep.attach(&m, a);
  PS_CHECK(dep.assign(TenantId{1}, m.tun(0)->id(), a).is_ok());
  sim.run_for(Duration::seconds(2.0));

  ContentionDetector det(dep.controller(), RuleBook::standard());
  det.set_loss_threshold(100);
  Outcome o;
  ContentionReport with =
      det.diagnose(TenantId{1}, Duration::seconds(1.0), m.aux_signals());
  o.with_aux = with.candidate_resources.size();
  o.with_aux_correct =
      o.with_aux == 1 &&
      with.candidate_resources[0] == ResourceKind::kMemoryBandwidth;
  ContentionReport without =
      det.diagnose(TenantId{1}, Duration::seconds(1.0), AuxSignals{});
  o.without_aux = without.candidate_resources.size();
  for (ResourceKind r : without.candidate_resources) {
    if (r == ResourceKind::kMemoryBandwidth) o.without_aux_contains = true;
  }
  return o;
}

}  // namespace

int main() {
  heading("Ablation: aux-signal disambiguation of the TUN symptom",
          "design-choice study behind Table 1 / Sec. 5.1");
  Outcome o = run_membw_case();
  note("injected: memory-bandwidth contention (multi-VM TUN drops)");
  row({"variant", "candidates", "unique&correct"}, 22);
  row({"rule book only", fmt("%.0f", static_cast<double>(o.without_aux)),
       o.without_aux_contains ? "contains-it" : "misses-it"},
      22);
  row({"+ aux signals", fmt("%.0f", static_cast<double>(o.with_aux)),
       o.with_aux_correct ? "yes" : "no"},
      22);

  shape_check(o.without_aux >= 3,
              "the raw TUN symptom is ambiguous (3+ candidate resources)");
  shape_check(o.without_aux_contains,
              "the true resource is always in the raw candidate set");
  shape_check(o.with_aux_correct,
              "aux signals reduce it to exactly the injected resource");
  return 0;
}
