// Ablation: why small packets are the weapon in backlog contention.
//
// Two studies around the pCPU backlog (Fig. 10's mechanism):
//  (a) flood packet-size sweep at a FIXED flood bit rate — the per-core
//      backlog is slot- and per-packet-service-limited, so the same bit
//      rate in 64 B packets is ~23x the packets of a 1500 B flood and
//      crushes the victim, while the 1500 B flood is harmless;
//  (b) backlog depth sweep — under sustained overload the steady-state
//      drop fraction is (lambda-mu)/lambda regardless of queue depth, so
//      raising netdev_max_backlog does NOT rescue the victim (a negative
//      result worth knowing before "tuning" the limit).
#include "bench_util.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;

namespace {

double victim_mbps(uint32_t flood_pkt_size, uint64_t backlog_pkts) {
  sim::Simulator sim(Duration::millis(1));
  dp::StackParams params;
  params.pnic_rate = 1_gbps;
  params.softirq_cost_per_pkt = 3.2e-6;
  params.qemu_cost_per_pkt = 0.25e-6;
  params.pcpu_backlog_pkts = backlog_pkts;
  vm::PhysicalMachine m("m0", params, &sim);
  int rx = m.add_vm({"vm0", 1.0});
  int fl = m.add_vm({"vm1", 1.0});
  m.set_sink_app(rx);
  FlowSpec fin;
  fin.id = FlowId{1};
  fin.packet_size = 1500;
  m.route_flow_to_vm(fin, rx);
  m.add_ingress_source("rx", fin, 500_mbps);
  FlowSpec ff;
  ff.id = FlowId{2};
  ff.packet_size = flood_pkt_size;
  dp::SourceApp::Config cfg;
  cfg.flow = ff;
  cfg.rate = 1_gbps;  // fixed BIT rate; packet rate varies with size
  cfg.cost_per_pkt = 0.05e-6;
  m.set_source_app(fl, cfg);
  m.route_flow_to_wire(ff.id, "flood");
  m.pin_flow_to_core(fin.id, 0);
  m.pin_flow_to_core(ff.id, 0);
  sim.run_for(Duration::seconds(1.0));
  uint64_t before = m.app(rx)->stats().bytes_in.value();
  sim.run_for(Duration::seconds(2.0));
  return static_cast<double>(m.app(rx)->stats().bytes_in.value() - before) *
         8 / 2.0 / 1e6;
}

}  // namespace

int main() {
  heading("Ablation: backlog contention — packet size, not bytes or depth",
          "design-choice study behind Fig. 10");
  note("victim: 500 Mbps of 1500 B pkts; flood: 1 Gbps offered, size swept");

  std::printf("\n(a) flood packet-size sweep (backlog = 300 slots)\n");
  row({"flood-pkt(B)", "victim(Mbps)"});
  double v64 = 0, v1500 = 0;
  for (uint32_t size : {64u, 128u, 256u, 512u, 1500u}) {
    double v = victim_mbps(size, 300);
    if (size == 64) v64 = v;
    if (size == 1500) v1500 = v;
    row({fmt("%.0f", static_cast<double>(size)), fmt("%.1f", v)});
  }

  std::printf("\n(b) backlog depth sweep (64 B flood)\n");
  row({"backlog(pkts)", "victim(Mbps)"});
  double depth_min = 1e12, depth_max = 0;
  for (uint64_t depth : {100ull, 300ull, 1000ull, 10000ull}) {
    double v = victim_mbps(64, depth);
    depth_min = std::min(depth_min, v);
    depth_max = std::max(depth_max, v);
    row({fmt("%.0f", static_cast<double>(depth)), fmt("%.1f", v)});
  }

  shape_check(v64 < 0.3 * v1500,
              "same bit rate: a 64 B flood crushes the victim, a 1500 B "
              "flood barely touches it (slots + per-packet service)");
  shape_check(v1500 > 400,
              "the full-MTU flood leaves the victim essentially intact");
  shape_check(depth_max - depth_min < 0.15 * depth_max + 5,
              "raising netdev_max_backlog does not rescue the victim under "
              "sustained overload (steady-state loss is rate-determined)");
  return 0;
}
