// Ablation: Algorithm 2's measurement window.
//
// The paper samples each middlebox twice, `T` apart.  Too short a window
// and the b/t ratios are dominated by scheduling granularity (here, tick
// granularity); long windows are robust but slow to react.  This bench
// sweeps T on the Fig. 12(d) buggy-NFS scenario and reports whether the
// root cause is still uniquely identified.
#include "bench_util.h"
#include "cluster/scenarios.h"

using namespace perfsight;
using namespace perfsight::bench;
using cluster::PropagationScenario;

namespace {

bool correct_at(Duration window) {
  PropagationScenario s(PropagationScenario::Case::kBuggyNfs);
  s.settle(Duration::seconds(4.0));
  RootCauseReport r = s.diagnose(window);
  return r.root_causes.size() == 1 && r.root_causes[0] == s.nfs->id();
}

}  // namespace

int main() {
  heading("Ablation: Algorithm 2 measurement window",
          "design-choice study behind Sec. 5.2 (Fig. 12d scenario)");
  row({"window", "unique root cause?"}, 18);
  struct Case {
    const char* label;
    Duration window;
  };
  const Case cases[] = {
      {"5 ms", Duration::millis(5)},    {"20 ms", Duration::millis(20)},
      {"100 ms", Duration::millis(100)}, {"500 ms", Duration::millis(500)},
      {"1 s", Duration::seconds(1.0)},  {"2 s", Duration::seconds(2.0)},
  };
  bool ok_100ms_up = true;
  for (const Case& c : cases) {
    bool ok = correct_at(c.window);
    row({c.label, ok ? "yes" : "no"}, 18);
    if (c.window >= Duration::millis(100)) ok_100ms_up = ok_100ms_up && ok;
  }
  shape_check(ok_100ms_up,
              "windows of 100 ms and above always identify the buggy NFS");
  return 0;
}
