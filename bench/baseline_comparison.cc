// Baseline comparison (§2.3): utilization monitoring vs PerfSight.
//
// Two scenarios where the common practice of watching VM resource
// utilization gives the wrong answer, while PerfSight's element-level drop
// statistics give the right one:
//
//  (1) FALSE POSITIVE: a video transcoder uses non-blocking I/O and
//      busy-waits — 100% CPU while processing a light load perfectly.
//      The baseline flags it as a bottleneck; PerfSight sees zero loss.
//  (2) FALSE NEGATIVE: memory-bandwidth contention throttles every VM's
//      traffic while no CPU is hot (memory bandwidth has no utilization
//      counter).  The baseline sees nothing; PerfSight localizes TUN drops
//      across VMs and names memory bandwidth.
#include "bench_util.h"
#include "cluster/deployment.h"
#include "perfsight/baseline.h"
#include "perfsight/contention.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;

namespace {

struct Verdicts {
  BaselineVerdict baseline;
  ContentionReport perfsight;
  double goodput_frac = 0;  // achieved / offered
};

Verdicts busy_transcoder_case() {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m("m0", dp::StackParams{}, &sim);
  cluster::Deployment dep(&sim);
  int v = m.add_vm({"transcoder", 1.0});
  m.set_busy_wait_sink_app(v);
  FlowSpec f;
  f.id = FlowId{1};
  f.packet_size = 1500;
  m.route_flow_to_vm(f, v);
  m.add_ingress_source("s", f, 300_mbps);  // light load
  Agent* a = dep.add_agent("a0");
  dep.attach(&m, a);
  PS_CHECK(dep.assign(TenantId{1}, m.tun(v)->id(), a).is_ok());
  sim.run_for(Duration::seconds(3.0));

  Verdicts out;
  out.baseline = NaiveUtilizationDetector().diagnose(m.utilization_snapshot());
  ContentionDetector det(dep.controller(), RuleBook::standard());
  det.set_loss_threshold(100);
  out.perfsight =
      det.diagnose(TenantId{1}, Duration::seconds(1.0), m.aux_signals());
  out.goodput_frac =
      static_cast<double>(m.app(v)->stats().bytes_in.value()) /
      (300e6 / 8 * sim.now().sec());
  return out;
}

Verdicts membw_contention_case() {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m("m0", dp::StackParams{}, &sim);
  cluster::Deployment dep(&sim);
  for (int i = 0; i < 2; ++i) {
    int v = m.add_vm({"vm" + std::to_string(i), 1.0});
    m.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    m.route_flow_to_vm(f, v);
    m.add_ingress_source("s" + std::to_string(i), f, DataRate::gbps(1.6));
  }
  m.add_vm({"memvm", 1.0});
  // The hog is a memory-copy stream: negligible CPU, brutal on the bus.
  m.add_mem_hog("hog")->set_demand_bytes_per_sec(60e9);
  Agent* a = dep.add_agent("a0");
  dep.attach(&m, a);
  PS_CHECK(dep.assign(TenantId{1}, m.tun(0)->id(), a).is_ok());
  sim.run_for(Duration::seconds(3.0));

  Verdicts out;
  out.baseline = NaiveUtilizationDetector().diagnose(m.utilization_snapshot());
  ContentionDetector det(dep.controller(), RuleBook::standard());
  det.set_loss_threshold(100);
  out.perfsight =
      det.diagnose(TenantId{1}, Duration::seconds(1.0), m.aux_signals());
  out.goodput_frac =
      static_cast<double>(m.app(0)->stats().bytes_in.value() +
                          m.app(1)->stats().bytes_in.value()) /
      (3.2e9 / 8 * sim.now().sec());
  return out;
}

}  // namespace

int main() {
  heading("Baseline comparison: utilization monitoring vs PerfSight",
          "PerfSight (IMC'15) Sec. 2.3 motivating examples");

  Verdicts a = busy_transcoder_case();
  std::printf("\n(1) busy-waiting transcoder at light load (healthy)\n");
  note("goodput: %.0f%% of offered load delivered", a.goodput_frac * 100);
  note("baseline:  %s", a.baseline.narrative.c_str());
  note("PerfSight: %s", a.perfsight.problem_found
                            ? a.perfsight.narrative.c_str()
                            : "no significant loss (healthy)");
  bool fp_shown = a.baseline.problem_found && !a.perfsight.problem_found &&
                  a.goodput_frac > 0.95;
  shape_check(fp_shown,
              "baseline FALSE-POSITIVES on the 100%-CPU transcoder; "
              "PerfSight correctly reports it healthy");

  Verdicts b = membw_contention_case();
  std::printf("\n(2) memory-bandwidth contention (VMs losing >40%% goodput)\n");
  note("goodput: %.0f%% of offered load delivered", b.goodput_frac * 100);
  note("baseline:  %s", b.baseline.narrative.c_str());
  note("PerfSight: %s", b.perfsight.narrative.c_str());
  bool fn_shown = !b.baseline.problem_found && b.perfsight.problem_found &&
                  b.goodput_frac < 0.8;
  bool names_membw = false;
  for (ResourceKind r : b.perfsight.candidate_resources) {
    if (r == ResourceKind::kMemoryBandwidth) names_membw = true;
  }
  shape_check(fn_shown, "baseline sees NOTHING during memory contention; "
                        "PerfSight finds the multi-VM TUN drops");
  shape_check(names_membw, "PerfSight names memory bandwidth specifically");
  return 0;
}
