// Shared formatting helpers for the reproduction benches.  Every bench
// prints (a) the scenario parameters it used, (b) the series/rows matching
// the paper's figure or table, and (c) a SHAPE-CHECK line summarising
// whether the qualitative result matches the paper.
//
// Benches additionally emit their headline numbers as machine-readable
// BENCH_<name>.json files via Reporter, so the performance trajectory
// exists as data: CI diffs the `gate` metrics (deterministic, modelled
// quantities) against bench/BASELINE.json with a ±10% regression gate
// (tools/bench_gate.cc); `info` metrics (wall-clock, machine-dependent)
// ride along for humans and trend plots but never gate.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "perfsight/json_export.h"

namespace perfsight::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void shape_check(bool ok, const std::string& what) {
  std::printf("SHAPE-CHECK %s: %s\n", ok ? "PASS" : "FAIL", what.c_str());
}

// Fixed-width row printer for simple tables.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

// Collects a bench's headline metrics and writes BENCH_<name>.json into
// $PERFSIGHT_BENCH_DIR (default: the working directory) at destruction.
//
//   {"bench": "<name>",
//    "gate": {"<metric>": <value>, ...},    // deterministic; CI-gated ±10%
//    "info": {"<metric>": <value>, ...}}    // wall-clock etc.; never gated
//
// gate() is for modelled/counted quantities that are bit-stable across
// machines (channel time, wire bytes, event counts); info() is for anything
// an overloaded CI runner could legitimately wobble (ns/op, speedups).
class Reporter {
 public:
  explicit Reporter(std::string name) : name_(std::move(name)) {}
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;
  ~Reporter() { write(); }

  void gate(const std::string& metric, double value) {
    gate_.emplace_back(metric, value);
  }
  void info(const std::string& metric, double value) {
    info_.emplace_back(metric, value);
  }

 private:
  static void append(std::string& out, const char* section,
                     const std::vector<std::pair<std::string, double>>& m) {
    out += std::string("\"") + section + "\":{";
    for (size_t i = 0; i < m.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + json::escape(m[i].first) + "\":" + json::number(m[i].second);
    }
    out += "}";
  }

  void write() const {
    const char* dir = std::getenv("PERFSIGHT_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        "BENCH_" + name_ + ".json";
    std::string out = "{\"bench\":\"" + json::escape(name_) + "\",";
    append(out, "gate", gate_);
    out += ",";
    append(out, "info", info_);
    out += "}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("BENCH-JSON %s\n", path.c_str());
  }

  std::string name_;
  std::vector<std::pair<std::string, double>> gate_;
  std::vector<std::pair<std::string, double>> info_;
};

}  // namespace perfsight::bench
