// Shared formatting helpers for the reproduction benches.  Every bench
// prints (a) the scenario parameters it used, (b) the series/rows matching
// the paper's figure or table, and (c) a SHAPE-CHECK line summarising
// whether the qualitative result matches the paper.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace perfsight::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void shape_check(bool ok, const std::string& what) {
  std::printf("SHAPE-CHECK %s: %s\n", ok ? "PASS" : "FAIL", what.c_str());
}

// Fixed-width row printer for simple tables.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

}  // namespace perfsight::bench
