// Controller scatter-gather scaling over the Deployment pool.
//
// A multi-element controller query (get_attr_many and every interval
// utility built on it) groups elements by owning agent, issues one
// Agent::query_batch per agent, and fans the agents over the deployment's
// collection pool.  The per-element cost that matters in a real dataplane
// is channel latency (Fig. 9: ~2 ms net_device reads, hundreds of
// microseconds elsewhere); those waits are independent across agents, so
// the scatter overlaps them and the query wall time drops with workers
// until the largest per-agent batch dominates.
//
// Gates: >= 2x wall-clock speedup at 4 workers for a 64-element sweep,
// byte-identical records between the sequential per-element oracle and the
// pooled batch path, and a strictly smaller modelled channel bill for the
// batch path (one round trip per channel kind per agent instead of one per
// element).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/deployment.h"
#include "perfsight/agent.h"
#include "perfsight/controller.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"
#include "sim/simulator.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr size_t kAgents = 8;
constexpr size_t kElementsPerAgent = 8;  // 64-element sweep
constexpr int kSweepsPerConfig = 16;
// Stand-in for the per-element channel round trip (Fig. 9 territory).
constexpr auto kChannelRtt = std::chrono::microseconds(150);
const TenantId kTenant{1};

// Counters arrive as /proc-style text: collect() waits out the channel RTT,
// then parses the blob it "read".
class ProcTextSource : public StatsSource {
 public:
  ProcTextSource(ElementId id, uint64_t seed) : id_(std::move(id)) {
    blob_ = " rx_packets: " + std::to_string(1000000 + seed * 17) +
            "\n rx_bytes: " + std::to_string(1500000000ull + seed * 1313) +
            "\n tx_packets: " + std::to_string(900000 + seed * 11) +
            "\n drop: " + std::to_string(seed % 7) + "\n";
  }

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }

  StatsRecord collect(SimTime now) const override {
    std::this_thread::sleep_for(kChannelRtt);  // channel round trip
    StatsRecord r;
    r.element = id_;
    r.timestamp = now;
    size_t pos = 0;
    while (pos < blob_.size()) {
      size_t colon = blob_.find(':', pos);
      size_t eol = blob_.find('\n', pos);
      if (colon == std::string::npos || eol == std::string::npos) break;
      std::string key = blob_.substr(pos, colon - pos);
      while (!key.empty() && key.front() == ' ') key.erase(key.begin());
      uint64_t value = std::stoull(blob_.substr(colon + 1, eol - colon - 1));
      r.attrs.push_back(Attr{key, static_cast<double>(value)});
      pos = eol + 1;
    }
    return r;
  }

 private:
  ElementId id_;
  std::string blob_;
};

struct Fleet {
  sim::Simulator sim{Duration::millis(1)};
  cluster::Deployment dep;
  std::vector<std::unique_ptr<ProcTextSource>> sources;
  std::vector<ElementId> ids;

  explicit Fleet(size_t pool_workers) : dep(&sim, pool_workers) {
    for (size_t a = 0; a < kAgents; ++a) {
      Agent* agent = dep.add_agent("host" + std::to_string(a));
      for (size_t e = 0; e < kElementsPerAgent; ++e) {
        sources.push_back(std::make_unique<ProcTextSource>(
            ElementId{"host" + std::to_string(a) + "/eth" + std::to_string(e)},
            a * kElementsPerAgent + e));
        PS_CHECK(agent->add_element(sources.back().get()).is_ok());
        PS_CHECK(
            dep.assign(kTenant, sources.back()->id(), agent).is_ok());
        ids.push_back(sources.back()->id());
      }
    }
  }
};

const std::vector<std::string> kAttrs = {"rx_packets", "rx_bytes",
                                         "tx_packets", "drop"};

// Wall time of kSweepsPerConfig 64-element queries, plus the concatenated
// wire encoding of the last sweep's records (for the determinism check).
double sweep_seconds(Fleet& fleet, std::string* wire_out) {
  Controller* c = fleet.dep.controller();
  auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < kSweepsPerConfig; ++s) {
    auto got = c->get_attr_many(kTenant, fleet.ids, kAttrs);
    if (s == kSweepsPerConfig - 1 && wire_out != nullptr) {
      for (const auto& r : got) {
        PS_CHECK(r.ok());
        *wire_out += to_wire(r.value().record);
        *wire_out += '|';
      }
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  heading("Controller scatter-gather over the deployment pool",
          "PerfSight (IMC'15) Sec. 5 GetAttr fan-in, batched per agent");
  Reporter report("controller_scatter");
  note("%zu agents x %zu elements, %d sweeps per config", kAgents,
       kElementsPerAgent, kSweepsPerConfig);
  note("per-element cost: %lld us channel RTT + /proc text parse",
       static_cast<long long>(kChannelRtt.count()));

  // Sequential oracle: batching off degrades get_attr_many to the
  // per-element get_attr_q loop.
  std::string wire_seq;
  Controller::CostSnapshot seq_cost;
  {
    Fleet fleet(1);
    fleet.dep.controller()->set_batching(false);
    double s = sweep_seconds(fleet, &wire_seq);
    seq_cost = fleet.dep.controller()->cost();
    row({"oracle", fmt("%.2f", s * 1e3 / kSweepsPerConfig), "-"});
  }

  row({"workers", "sweep(ms)", "speedup"});
  double base_s = 0;
  double speedup_at_4 = 0;
  std::string wire_par;
  Controller::CostSnapshot batch_cost;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Fleet fleet(workers);
    std::string* wire = workers == 4 ? &wire_par : nullptr;
    double s = sweep_seconds(fleet, wire);
    if (workers == 1) base_s = s;
    if (workers == 4) {
      speedup_at_4 = base_s / s;
      batch_cost = fleet.dep.controller()->cost();
    }
    row({fmt("%.0f", static_cast<double>(workers)),
         fmt("%.2f", s * 1e3 / kSweepsPerConfig),
         fmt("%.2fx", base_s / s)});
  }

  note("modelled channel bill per %d sweeps: sequential %.2f ms, "
       "batched %.2f ms (one round trip per channel kind per agent)",
       kSweepsPerConfig, seq_cost.channel_time.ns() / 1e6,
       batch_cost.channel_time.ns() / 1e6);

  // Modelled channel bills and the wire rendering are deterministic; the
  // wall-clock speedup is the runner's business.
  report.gate("batched_channel_ms",
              static_cast<double>(batch_cost.channel_time.ns()) / 1e6);
  report.gate("sequential_channel_ms",
              static_cast<double>(seq_cost.channel_time.ns()) / 1e6);
  report.gate("wire_bytes", static_cast<double>(wire_seq.size()));
  report.info("speedup_at_4", speedup_at_4);

  shape_check(speedup_at_4 >= 2.0,
              "64-element query >= 2x faster with 4 workers than 1");
  shape_check(!wire_seq.empty() && wire_seq == wire_par,
              "pooled batch records byte-identical to sequential oracle");
  shape_check(batch_cost.queries == seq_cost.queries &&
                  batch_cost.channel_time.ns() < seq_cost.channel_time.ns(),
              "batching amortises the modelled channel time");
  return 0;
}
