// Overhead and degradation bounds of the fault-tolerant collection layer.
//
// The fault machinery (faults.h + the agent's retry/breaker path) must be
// free when unused and bounded when used:
//
//   1. Disabled-path overhead: installing a fault plan with zero
//      probabilities must not slow a poll sweep by more than 5% — the plan
//      check and the pure decide() hash are the only extra work per
//      element, and diagnosis deployments leave the plan installed all the
//      time so CI can flip intensities via PERFSIGHT_FAULTS.
//   2. Determinism: the zero-probability plan must leave the sweep output
//      byte-identical to an agent with no plan at all (same RNG draws,
//      same records, same modelled response times).
//   3. Budget bound: with faults *enabled* and a per-element deadline
//      budget, no element's retry chain may run past the budget — the
//      sweep's modelled completion time stays bounded no matter how hostile
//      the plan is (timeout spikes far above the budget included).
//   4. Inert-campaign overhead: a plan carrying scheduled outage windows
//      that never intersect the swept times (the always-installed chaos
//      campaign, between windows) costs < 5% and stays byte-identical too —
//      the window check is a per-query schedule lookup, not an RNG draw.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "perfsight/agent.h"
#include "perfsight/faults.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr size_t kAgents = 4;
constexpr size_t kElementsPerAgent = 32;
constexpr int kSweepsPerTrial = 400;
constexpr int kTrials = 7;

// An element with a representative counter page: collect() re-parses a
// /proc-style blob every poll, so the per-element CPU cost the fault path
// rides on is realistic (no modelled channel sleeps here — this bench
// isolates the machinery's own overhead).
class ProcTextSource : public StatsSource {
 public:
  ProcTextSource(ElementId id, uint64_t seed) : id_(std::move(id)) {
    blob_ = " rxPkts: " + std::to_string(1000000 + seed * 17) +
            "\n rxBytes: " + std::to_string(1500000000ull + seed * 1313) +
            "\n txPkts: " + std::to_string(900000 + seed * 11) +
            "\n txBytes: " + std::to_string(1400000000ull + seed * 919) +
            "\n dropPkts: " + std::to_string(seed % 7) + "\n";
  }

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }

  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.element = id_;
    r.timestamp = now;
    size_t pos = 0;
    while (pos < blob_.size()) {
      size_t colon = blob_.find(':', pos);
      size_t eol = blob_.find('\n', pos);
      if (colon == std::string::npos || eol == std::string::npos) break;
      std::string key = blob_.substr(pos, colon - pos);
      while (!key.empty() && key.front() == ' ') key.erase(key.begin());
      uint64_t value = std::stoull(blob_.substr(colon + 1, eol - colon - 1));
      r.attrs.push_back(Attr{key, static_cast<double>(value)});
      pos = eol + 1;
    }
    return r;
  }

 private:
  ElementId id_;
  std::string blob_;
};

struct Fleet {
  std::vector<std::unique_ptr<Agent>> agents;
  std::vector<std::unique_ptr<ProcTextSource>> sources;

  Fleet() {
    for (size_t a = 0; a < kAgents; ++a) {
      agents.push_back(std::make_unique<Agent>("host" + std::to_string(a),
                                               /*seed=*/a + 1));
      for (size_t e = 0; e < kElementsPerAgent; ++e) {
        sources.push_back(std::make_unique<ProcTextSource>(
            ElementId{"host" + std::to_string(a) + "/el" + std::to_string(e)},
            a * kElementsPerAgent + e));
        PS_CHECK(agents.back()->add_element(sources.back().get()).is_ok());
      }
    }
  }
};

// Wall time of kSweepsPerTrial sequential fleet sweeps; optionally collects
// the last sweep's wire encoding for the determinism check.
double sweep_seconds(Fleet& fleet, std::string* wire_out) {
  auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < kSweepsPerTrial; ++s) {
    for (auto& agent : fleet.agents) {
      std::vector<QueryResponse> out = agent->poll_all(SimTime::millis(s));
      if (s == kSweepsPerTrial - 1 && wire_out != nullptr) {
        for (const QueryResponse& resp : out) {
          *wire_out += to_wire(resp.record);
          *wire_out += '|';
        }
      }
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Min-of-trials wall time: robust against scheduler noise, which a 5% gate
// would otherwise be at the mercy of.
double best_sweep_seconds(bool with_inert_plan, const FaultPlan* plan,
                          std::string* wire_out) {
  double best = 1e9;
  for (int t = 0; t < kTrials; ++t) {
    Fleet fleet;
    if (with_inert_plan) {
      for (auto& a : fleet.agents) a->set_fault_plan(plan);
    }
    std::string* wire = (t == 0) ? wire_out : nullptr;
    best = std::min(best, sweep_seconds(fleet, wire));
  }
  return best;
}

}  // namespace

int main() {
  heading("Fault-machinery overhead and degradation bounds",
          "robust collection for PerfSight (IMC'15) Sec. 4.2 channels");
  note("%zu agents x %zu elements, %d sweeps per trial, best of %d trials",
       kAgents, kElementsPerAgent, kSweepsPerTrial, kTrials);
  Reporter report("fault_overhead");

  // --- 1+2: disabled-path overhead and byte identity -----------------------
  FaultPlan inert(7);  // installed, zero probabilities: plan checks run,
                       // nothing ever fires
  std::string wire_none, wire_inert;
  double base_s = best_sweep_seconds(false, nullptr, &wire_none);
  double inert_s = best_sweep_seconds(true, &inert, &wire_inert);
  double slowdown_pct = (inert_s / base_s - 1.0) * 100.0;

  // --- 4: inert campaign (windows never intersecting the sweeps) -----------
  FaultPlan campaign(7);
  for (size_t a = 0; a < kAgents; ++a) {
    // The sweeps run at t < 4 s; these windows sit an hour out — the
    // schedule is installed and consulted but never fires.
    campaign.schedule_outage("host" + std::to_string(a),
                             SimTime::seconds(3600), SimTime::seconds(7200));
  }
  std::string wire_campaign;
  double campaign_s = best_sweep_seconds(true, &campaign, &wire_campaign);
  double campaign_pct = (campaign_s / base_s - 1.0) * 100.0;

  row({"config", "sweep(us)", "overhead"});
  row({"no plan", fmt("%.1f", base_s * 1e6 / kSweepsPerTrial), "-"});
  row({"inert plan", fmt("%.1f", inert_s * 1e6 / kSweepsPerTrial),
       fmt("%+.2f%%", slowdown_pct)});
  row({"inert campaign", fmt("%.1f", campaign_s * 1e6 / kSweepsPerTrial),
       fmt("%+.2f%%", campaign_pct)});

  shape_check(slowdown_pct < 5.0,
              "installed-but-inert fault plan slows sweeps by < 5%");
  shape_check(!wire_none.empty() && wire_none == wire_inert,
              "inert-plan sweep output byte-identical to no-plan agent");
  shape_check(campaign_pct < 5.0,
              "installed campaign between windows slows sweeps by < 5%");
  shape_check(wire_none == wire_campaign,
              "between-windows campaign sweep output byte-identical");
  report.info("base_sweep_us", base_s * 1e6 / kSweepsPerTrial);
  report.info("inert_overhead_pct", slowdown_pct);
  report.info("campaign_overhead_pct", campaign_pct);
  report.gate("oracle_wire_bytes", static_cast<double>(wire_none.size()));

  // --- 3: budget bound under a hostile plan ---------------------------------
  FaultPlan hostile(11);
  ChannelFaultSpec spec;
  spec.transient_p = 0.25;
  spec.timeout_p = 0.20;
  spec.stale_p = 0.05;
  spec.torn_p = 0.05;
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    hostile.set_channel_faults(static_cast<ChannelKind>(k), spec);
  }
  hostile.set_timeout_spike(Duration::millis(50));  // far above the budget

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.element_budget = Duration::millis(4);

  Fleet fleet;
  for (auto& a : fleet.agents) {
    a->set_fault_plan(&hostile);
    a->set_retry_policy(policy);
  }
  Duration worst;
  size_t responses = 0, missing = 0;
  for (int s = 0; s < kSweepsPerTrial; ++s) {
    for (auto& agent : fleet.agents) {
      for (const QueryResponse& r : agent->poll_all(SimTime::millis(s * 10))) {
        ++responses;
        if (r.quality == DataQuality::kMissing) ++missing;
        if (r.response_time > worst) worst = r.response_time;
      }
    }
  }
  AgentFaultStats fs;
  for (auto& a : fleet.agents) {
    AgentFaultStats s = a->fault_stats();
    fs.faults_injected += s.faults_injected;
    fs.retries += s.retries;
    fs.deadline_hits += s.deadline_hits;
    fs.exhausted += s.exhausted;
  }
  note("hostile plan: %llu faults, %llu retries, %llu deadline hits, "
       "%llu exhausted over %zu responses (%zu missing)",
       static_cast<unsigned long long>(fs.faults_injected),
       static_cast<unsigned long long>(fs.retries),
       static_cast<unsigned long long>(fs.deadline_hits),
       static_cast<unsigned long long>(fs.exhausted), responses, missing);
  note("worst element response under faults: %.3f ms (budget %.3f ms)",
       worst.ms(), policy.element_budget.ms());

  shape_check(fs.faults_injected > 0, "hostile plan actually injected faults");
  shape_check(worst <= policy.element_budget,
              "no element retry chain ran past its deadline budget");
  // Seeded-RNG modelled quantities: bit-stable across machines, so they can
  // gate the ±10% perf-trajectory diff.
  report.gate("hostile_faults_injected",
              static_cast<double>(fs.faults_injected));
  report.gate("hostile_missing", static_cast<double>(missing));
  report.gate("hostile_worst_response_us",
              static_cast<double>(worst.ns()) / 1e3);
  return 0;
}
