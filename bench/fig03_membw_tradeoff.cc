// Figure 3: memory-bandwidth / network-throughput tradeoff.
//
// 8 VMs on an 8-core, 10 GbE machine: five send network traffic by best
// effort, three run memory-copy streams.  Sweeping the copy demand, the
// paper observes the NIC saturated (10 Gbps) until memory throughput
// crosses a threshold, after which each extra 1 GB/s of memory throughput
// costs ~439 Mbps of network throughput.
#include <vector>

#include "bench_util.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;

namespace {

struct Point {
  double mem_gbps;  // achieved memory throughput, GB/s
  double net_gbps;  // network throughput on the wire, Gbps
};

Point run_point(double hog_demand_bytes_per_sec) {
  sim::Simulator sim(Duration::millis(1));
  dp::StackParams params;  // 8 cores, 10 GbE, 25 GB/s bus, k = 18.2
  vm::PhysicalMachine m("m0", params, &sim);

  // Five sender VMs at 2 Gbps each saturate the NIC when unimpeded.
  for (int i = 0; i < 5; ++i) {
    int v = m.add_vm({"vm" + std::to_string(i), 1.0});
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    f.direction = FlowDirection::kEgress;
    dp::SourceApp::Config cfg;
    cfg.flow = f;
    cfg.rate = 2_gbps;
    m.set_source_app(v, cfg);
    m.route_flow_to_wire(f.id, "out" + std::to_string(i));
  }
  // Three memory-copy VMs share the sweep demand.
  std::vector<vm::MemHog*> hogs;
  for (int i = 5; i < 8; ++i) {
    m.add_vm({"vm" + std::to_string(i), 1.0});
    hogs.push_back(m.add_mem_hog("memhog" + std::to_string(i)));
  }
  for (vm::MemHog* h : hogs) {
    h->set_demand_bytes_per_sec(hog_demand_bytes_per_sec / hogs.size());
  }

  sim.run_for(Duration::seconds(1.0));  // settle
  uint64_t tx0 = m.pnic()->tx_wire_bytes();
  double mem_sum = 0;
  int samples = 0;
  for (int i = 0; i < 10; ++i) {
    sim.run_for(Duration::millis(100));
    for (vm::MemHog* h : hogs) mem_sum += h->achieved_bytes_per_sec();
    samples += 1;
  }
  uint64_t tx1 = m.pnic()->tx_wire_bytes();
  Point p;
  p.mem_gbps = mem_sum / samples / 1e9;
  p.net_gbps = static_cast<double>(tx1 - tx0) * 8.0 / 1.0 / 1e9;
  return p;
}

}  // namespace

int main() {
  heading("Figure 3: memory vs network throughput on one machine",
          "PerfSight (IMC'15) Fig. 3");
  note("8 VMs / 8 cores / 10 GbE / 25 GB/s bus; 5 senders, 3 memcpy VMs");
  note("calibration: 18.2 bus bytes per wire byte (paper slope 439 Mbps per GB/s)");

  row({"mem(GB/s)", "net(Gbps)"});
  std::vector<Point> pts;
  for (double d = 0; d <= 10.01e9; d += 1e9) {
    Point p = run_point(d);
    pts.push_back(p);
    row({fmt("%.2f", p.mem_gbps), fmt("%.2f", p.net_gbps)});
  }

  // Shape: saturated left region, then a negative slope near -0.44 Gbps
  // per GB/s.
  bool flat_at_start = pts[0].net_gbps > 9.0 && pts[1].net_gbps > 9.0;
  const Point& a = pts[5];
  const Point& b = pts.back();
  double slope =
      (b.net_gbps - a.net_gbps) / (b.mem_gbps - a.mem_gbps);  // Gbps per GB/s
  bool declines = slope < -0.25 && slope > -0.70;
  note("measured slope beyond the knee: %.3f Gbps per GB/s (paper: -0.439)",
       slope);
  shape_check(flat_at_start, "NIC saturated while memory traffic is light");
  shape_check(declines,
              "beyond the knee, ~0.3-0.7 Gbps lost per GB/s of memory traffic");
  return 0;
}
