// Figure 8: throughput and packet-drop locations during a timeline of
// injected performance problems.
//
// Paper phases (10 s each; here compressed to 2 s per phase):
//   10-20 s  rx flood into the machine      -> drops at the pNIC
//   30-40 s  tenant egress small-pkt flood  -> drops at pCPU backlog enqueue
//   50-60 s  tenant VMs CPU-intensive       -> all VMs drop at their TUNs
//   70-80 s  tenant VMs memory-intensive    -> all VMs drop at their TUNs
//   90-100 s CPU hog inside one mbox VM     -> only that VM's TUN drops
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/scenarios.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;
using perfsight::cluster::Fig8Scenario;

namespace {

struct DropSnapshot {
  uint64_t pnic = 0, backlog = 0, tun_mb0 = 0, tun_mb1 = 0, tun_others = 0;
};

DropSnapshot snapshot(vm::PhysicalMachine& m) {
  DropSnapshot s;
  s.pnic = m.pnic()->stats().drop_pkts.value();
  s.backlog = m.backlog()->stats().drop_pkts.value();
  s.tun_mb0 = m.tun(0)->stats().drop_pkts.value();
  s.tun_mb1 = m.tun(1)->stats().drop_pkts.value();
  for (int i = 2; i < m.num_vms(); ++i) {
    s.tun_others += m.tun(i)->stats().drop_pkts.value();
  }
  return s;
}

std::string dominant(const DropSnapshot& a, const DropSnapshot& b) {
  struct Loc {
    const char* name;
    uint64_t delta;
  };
  std::vector<Loc> locs = {
      {"pNIC", b.pnic - a.pnic},
      {"pCPU-backlog", b.backlog - a.backlog},
      {"TUN(mb0)", b.tun_mb0 - a.tun_mb0},
      {"TUN(mb1)", b.tun_mb1 - a.tun_mb1},
      {"TUN(tenants)", b.tun_others - a.tun_others},
  };
  const Loc* best = &locs[0];
  uint64_t total = 0;
  for (const Loc& l : locs) {
    total += l.delta;
    if (l.delta > best->delta) best = &l;
  }
  // Ignore phase-boundary spill (queues draining for a few ticks after an
  // injection ends).
  if (total < 3000) return "none";
  return best->name;
}

}  // namespace

int main() {
  heading("Figure 8: throughput and drop locations under injected problems",
          "PerfSight (IMC'15) Fig. 8 / Sec. 7.1");
  const Duration phase = Duration::seconds(2.0);
  Fig8Scenario s;
  s.schedule_phases(phase);
  note("8 VMs (2 middlebox LBs + 6 tenants); phases of %gs", phase.sec());

  row({"t(s)", "mb-tput(Mbps)", "drops@", ""});
  std::vector<std::string> phase_dominant;
  DropSnapshot prev = snapshot(s.machine());
  s.mb_throughput(phase);  // reset the meter
  for (int p = 0; p < 11; ++p) {
    s.sim().run_for(phase);
    DropSnapshot cur = snapshot(s.machine());
    double tput = s.mb_throughput(phase).mbits_per_sec();
    std::string where = dominant(prev, cur);
    phase_dominant.push_back(where);
    row({fmt("%.0f", phase.sec() * (p + 1)), fmt("%.0f", tput), where, ""});
    prev = cur;
  }

  // The paper's expectations, phase by phase (odd phases are quiet).
  shape_check(phase_dominant[0] == "none", "baseline: no loss");
  shape_check(phase_dominant[1] == "pNIC", "rx flood drops at the pNIC");
  shape_check(phase_dominant[2] == "none", "recovery after rx flood");
  shape_check(phase_dominant[3] == "pCPU-backlog",
              "egress small-packet flood drops at backlog enqueue");
  shape_check(
      phase_dominant[5].rfind("TUN", 0) == 0 && phase_dominant[5] != "TUN(mb0)",
      "host CPU contention drops at TUNs across VMs");
  shape_check(
      phase_dominant[7].rfind("TUN", 0) == 0,
      "memory-bandwidth contention drops at TUNs across VMs");
  shape_check(phase_dominant[9] == "TUN(mb0)",
              "CPU hog inside mb0 drops only at mb0's TUN");
  return 0;
}
