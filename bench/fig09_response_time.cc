// Figure 9: response time between the agent and other components.
//
// The paper measures how quickly the per-server agent can fetch statistics
// over each element channel: net-device file reads (TUN, pNIC) take ~2 ms;
// everything else (QEMU log, backlog /proc, middlebox socket, OVS channel)
// completes within 500 us; the agent↔controller RTT is similar.  The
// channel latency models are calibrated to those numbers; this bench
// queries each channel kind 1000 times and reports the distribution.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "perfsight/agent.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

class StubSource : public StatsSource {
 public:
  StubSource(std::string id, ChannelKind kind)
      : id_{std::move(id)}, kind_(kind) {}
  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = {{"rxPkts", 1}, {"txPkts", 1}, {"rxBytes", 1500}};
    return r;
  }

 private:
  ElementId id_;
  ChannelKind kind_;
};

struct Stats {
  double min_us, mean_us, max_us;
};

Stats measure(Agent& agent, const ElementId& id, int n) {
  std::vector<double> us;
  us.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto resp = agent.query(id, SimTime::nanos(i));
    us.push_back(resp.value().response_time.us());
  }
  Stats s;
  s.min_us = *std::min_element(us.begin(), us.end());
  s.max_us = *std::max_element(us.begin(), us.end());
  double sum = 0;
  for (double v : us) sum += v;
  s.mean_us = sum / n;
  return s;
}

}  // namespace

int main() {
  heading("Figure 9: agent <-> component response time",
          "PerfSight (IMC'15) Fig. 9");
  Agent agent("agent-m0", /*seed=*/7);
  struct Probe {
    const char* label;
    StubSource src;
  };
  std::vector<Probe> probes;
  probes.push_back({"Agent-Qemu", {"m0/vm0/qemu-io", ChannelKind::kQemuLog}});
  probes.push_back({"Agent-Backlog", {"m0/pcpu-backlog", ChannelKind::kProcFs}});
  probes.push_back({"Agent-VM", {"m0/vm0/app", ChannelKind::kMbSocket}});
  probes.push_back({"Agent-pNIC", {"m0/pnic", ChannelKind::kNetDeviceFile}});
  probes.push_back({"Agent-TUN", {"m0/vm0/tun", ChannelKind::kNetDeviceFile}});
  probes.push_back({"Agent-vSwitch", {"m0/vswitch", ChannelKind::kOvsChannel}});
  for (Probe& p : probes) {
    Status st = agent.add_element(&p.src);
    PS_CHECK(st.is_ok());
  }

  row({"channel", "min(us)", "mean(us)", "max(us)"});
  double netdev_mean = 0, other_max = 0;
  for (Probe& p : probes) {
    Stats s = measure(agent, p.src.id(), 1000);
    row({p.label, fmt("%.0f", s.min_us), fmt("%.0f", s.mean_us),
         fmt("%.0f", s.max_us)});
    if (p.src.channel_kind() == ChannelKind::kNetDeviceFile) {
      netdev_mean = s.mean_us;
    } else {
      other_max = std::max(other_max, s.max_us);
    }
  }
  // Controller round trip: agent fetch + control-channel hop (modelled as
  // one more OVS-like exchange).
  note("Agent-Controller RTT ~ fetch latency + control hop (sub-ms)");

  shape_check(netdev_mean > 1500 && netdev_mean < 2500,
              "net-device file reads (pNIC/TUN) cost ~2 ms");
  shape_check(other_max < 500,
              "all other channels respond within 500 us");
  return 0;
}
