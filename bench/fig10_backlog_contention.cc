// Figure 10: pCPU backlog queue contention.
//
// VM1 receives traffic rate-limited to 500 Mbps.  At t = 10 s (here 2 s)
// VM2 starts sending minimum-size packets as fast as it can.  Both paths
// funnel through one core's pCPU backlog (limited to 300 packets), so VM2's
// flood starves VM1 of backlog slots: flow 1's throughput collapses while
// flow 2 pushes hundreds of Kpps.  PerfSight's diagnosis: the sum of rates
// is far below NIC capacity, the drops sit at the backlog enqueue element,
// so the contended resource is the pCPU backlog queue (Table 1).
#include <cmath>

#include "bench_util.h"
#include "cluster/deployment.h"
#include "perfsight/contention.h"
#include "sim/simulator.h"
#include "vm/machine.h"
#include "vm/traffic.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;

namespace {

// The same contention with a TCP-like victim: the paper's flow 1 is TCP,
// so its throughput not only collapses but oscillates (sawtooth) as AIMD
// keeps probing the starved backlog.  Returns (mean, stddev) of the
// victim's goodput during the flood.
std::pair<double, double> tcp_victim_run() {
  sim::Simulator sim(Duration::millis(1));
  dp::StackParams params;
  params.pnic_rate = 1_gbps;
  params.softirq_cost_per_pkt = 3.2e-6;
  params.qemu_cost_per_pkt = 0.25e-6;
  vm::PhysicalMachine m("m0", params, &sim);
  int rx = m.add_vm({"vm1", 1.0});
  int fl = m.add_vm({"vm2", 1.0});
  m.set_sink_app(rx);
  FlowSpec fin;
  fin.id = FlowId{1};
  fin.packet_size = 1500;
  m.route_flow_to_vm(fin, rx);
  vm::AimdIngressSource::Config tcp;
  tcp.flow = fin;
  tcp.max_rate = 500_mbps;
  tcp.initial_rate = 400_mbps;
  // Seconds-scale sawtooth (visible at the figure's sampling granularity):
  // one backoff per ~0.5 s of persistent loss, healthy growth in between.
  tcp.adjust_period = Duration::millis(50);
  tcp.backoff_cooldown_windows = 10;
  tcp.additive_increase_per_sec = 200_mbps;
  vm::AimdIngressSource victim("tcp-victim", tcp, m.pnic(), [&] {
    return m.app(rx)->stats().bytes_in.value();
  });
  sim.add(&victim);
  FlowSpec ff;
  ff.id = FlowId{2};
  ff.packet_size = 64;
  dp::SourceApp::Config flood;
  flood.flow = ff;
  flood.rate = 1_gbps;
  flood.cost_per_pkt = 0.05e-6;
  m.set_source_app(fl, flood);
  m.route_flow_to_wire(ff.id, "flood");
  m.pin_flow_to_core(fin.id, 0);
  m.pin_flow_to_core(ff.id, 0);

  sim.run_for(Duration::seconds(2.0));  // flood active from the start here
  std::vector<double> samples;
  uint64_t last = m.app(rx)->stats().bytes_in.value();
  for (int i = 0; i < 20; ++i) {
    sim.run_for(Duration::millis(200));
    uint64_t now_bytes = m.app(rx)->stats().bytes_in.value();
    samples.push_back(static_cast<double>(now_bytes - last) * 8 / 0.2 / 1e6);
    last = now_bytes;
  }
  double mu = 0;
  for (double x : samples) mu += x;
  mu /= static_cast<double>(samples.size());
  double var = 0;
  for (double x : samples) var += (x - mu) * (x - mu);
  return {mu, std::sqrt(var / static_cast<double>(samples.size()))};
}

}  // namespace

int main() {
  heading("Figure 10: pCPU backlog queue contention",
          "PerfSight (IMC'15) Fig. 10 / Sec. 7.2 case 1");
  sim::Simulator sim(Duration::millis(1));
  dp::StackParams params;
  params.pnic_rate = 1_gbps;             // the paper's 1 GbE machine
  params.softirq_cost_per_pkt = 3.2e-6;  // ~312 Kpps per backlog core
  params.qemu_cost_per_pkt = 0.25e-6;
  vm::PhysicalMachine m("m0", params, &sim);
  cluster::Deployment dep(&sim);

  int vm1 = m.add_vm({"vm1", 1.0});
  int vm2 = m.add_vm({"vm2", 1.0});
  m.set_sink_app(vm1);
  FlowSpec f1;
  f1.id = FlowId{1};
  f1.packet_size = 1500;
  m.route_flow_to_vm(f1, vm1);
  m.add_ingress_source("rx-vm1", f1, 500_mbps);

  FlowSpec f2;
  f2.id = FlowId{2};
  f2.packet_size = 64;  // minimum-size packets
  f2.direction = FlowDirection::kEgress;
  dp::SourceApp::Config flood;
  flood.flow = f2;
  flood.rate = DataRate::zero();  // starts at t=2s
  flood.cost_per_pkt = 0.05e-6;
  dp::SourceApp* flooder = m.set_source_app(vm2, flood);
  m.route_flow_to_wire(f2.id, "vm2-out");
  m.pin_flow_to_core(f1.id, 0);
  m.pin_flow_to_core(f2.id, 0);

  Agent* agent = dep.add_agent("agent-m0");
  dep.attach(&m, agent);
  PS_CHECK(dep.assign(TenantId{1}, m.tun(vm1)->id(), agent).is_ok());

  sim.at(SimTime::seconds(2.0), [&] { flooder->set_rate(1_gbps); });

  note("flow1: 500 Mbps of 1500 B to VM1 (rx);  flow2: VM2 floods 64 B pkts");
  note("per-core backlog limit: %llu packets",
       (unsigned long long)params.pcpu_backlog_pkts);
  row({"t(s)", "flow1(Mbps)", "flow2(Kpps)"});

  uint64_t f1_last = 0, f2_last = 0;
  double f1_before = 0, f1_after = 0, f2_after = 0;
  int samples_before = 0, samples_after = 0;
  for (int t = 0; t < 12; ++t) {
    sim.run_for(Duration::millis(500));
    uint64_t f1_bytes = m.app(vm1)->stats().bytes_in.value();
    uint64_t f2_pkts = m.pnic()->stats().pkts_out.value();
    double f1_mbps = static_cast<double>(f1_bytes - f1_last) * 8 / 0.5 / 1e6;
    double f2_kpps = static_cast<double>(f2_pkts - f2_last) / 0.5 / 1e3;
    f1_last = f1_bytes;
    f2_last = f2_pkts;
    row({fmt("%.1f", (t + 1) * 0.5), fmt("%.1f", f1_mbps),
         fmt("%.1f", f2_kpps)});
    if (t < 4) {
      f1_before += f1_mbps;
      ++samples_before;
    } else if (t >= 6) {
      f1_after += f1_mbps;
      f2_after += f2_kpps;
      ++samples_after;
    }
  }
  f1_before /= samples_before;
  f1_after /= samples_after;
  f2_after /= samples_after;

  // PerfSight's reasoning, as in the paper: check the NIC first, then the
  // drop location.
  double sum_gbps = (f1_after + f2_after * 64 * 8 / 1e3) / 1e3;
  note("sum of rates = %.2f Gbps << NIC capacity (1 Gbps NIC not the cause)",
       sum_gbps);
  ContentionDetector detector(dep.controller(), RuleBook::standard());
  ContentionReport r =
      detector.diagnose(TenantId{1}, Duration::seconds(1.0), m.aux_signals());
  std::printf("%s", to_text(r).c_str());

  shape_check(f1_before > 450, "flow 1 runs at ~500 Mbps before the flood");
  shape_check(f1_after < 0.4 * f1_before,
              "flow 1 collapses once the small-packet flood starts");
  shape_check(f2_after > 200, "flow 2 sustains hundreds of Kpps");
  shape_check(r.problem_found &&
                  r.primary_location == ElementKind::kPCpuBacklog,
              "PerfSight locates the drops at the backlog enqueue element");
  bool blames_backlog = false;
  for (ResourceKind res : r.candidate_resources) {
    if (res == ResourceKind::kBacklogQueue) blames_backlog = true;
  }
  shape_check(blames_backlog,
              "rule book maps the symptom to pCPU backlog queue contention");

  // The paper's flow 1 is TCP and OSCILLATES under the flood; replay the
  // contention with an AIMD victim to reproduce that.
  auto [tcp_mean, tcp_std] = tcp_victim_run();
  note("TCP victim during flood: mean %.0f Mbps, stddev %.0f (sawtooth)",
       tcp_mean, tcp_std);
  shape_check(tcp_mean < 250 && tcp_std > 0.08 * tcp_mean,
              "a TCP victim both collapses and oscillates (paper's sawtooth)");
  return 0;
}
