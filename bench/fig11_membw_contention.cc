// Figure 11: memory-bandwidth contention in the virtualization stack.
//
// Network-intensive VMs run at ~3.25 Gbps total.  At t = 20 s (here 2 s) a
// set of memory-intensive VMs starts; total network throughput falls to
// ~1.7 Gbps.  PerfSight observes that the machine drops packets at the
// network VMs' TUNs (92% of drops in the paper), implicating memory or
// outgoing bandwidth (Table 1); aux signals rule out the NIC, leaving
// memory bandwidth.
#include "bench_util.h"
#include "cluster/deployment.h"
#include "perfsight/contention.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;

int main() {
  heading("Figure 11: memory-bandwidth contention",
          "PerfSight (IMC'15) Fig. 11 / Sec. 7.2 case 2");
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine m("m0", dp::StackParams{}, &sim);
  cluster::Deployment dep(&sim);

  // Four network-intensive VMs receive ~0.82 Gbps each (3.25 Gbps total).
  const int kNetVms = 4;
  for (int i = 0; i < kNetVms; ++i) {
    int v = m.add_vm({"vm" + std::to_string(i), 1.0});
    m.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    m.route_flow_to_vm(f, v);
    m.add_ingress_source("s" + std::to_string(i), f, DataRate::mbps(812));
  }
  // Memory-intensive VMs (idle until t=2s).
  std::vector<vm::MemHog*> hogs;
  for (int i = 0; i < 3; ++i) {
    m.add_vm({"memvm" + std::to_string(i), 1.0});
    hogs.push_back(m.add_mem_hog("memhog" + std::to_string(i)));
  }
  Agent* agent = dep.add_agent("agent-m0");
  dep.attach(&m, agent);
  PS_CHECK(dep.assign(TenantId{1}, m.tun(0)->id(), agent).is_ok());

  sim.at(SimTime::seconds(2.0), [&] {
    for (auto* h : hogs) h->set_demand_bytes_per_sec(20e9);
  });

  row({"t(s)", "net(Gbps)"});
  uint64_t app_last = 0;
  double before = 0, after = 0;
  int nb = 0, na = 0;
  for (int t = 0; t < 12; ++t) {
    sim.run_for(Duration::millis(500));
    uint64_t bytes = 0;
    for (int i = 0; i < kNetVms; ++i) {
      bytes += m.app(i)->stats().bytes_in.value();
    }
    double gbps = static_cast<double>(bytes - app_last) * 8 / 0.5 / 1e9;
    app_last = bytes;
    row({fmt("%.1f", (t + 1) * 0.5), fmt("%.2f", gbps)});
    if (t < 4) {
      before += gbps;
      ++nb;
    } else if (t >= 6) {
      after += gbps;
      ++na;
    }
  }
  before /= nb;
  after /= na;

  // Where did the packets die?
  uint64_t tun_drops = 0;
  for (int i = 0; i < kNetVms; ++i) {
    tun_drops += m.tun(i)->stats().drop_pkts.value();
  }
  uint64_t other_drops = m.pnic()->stats().drop_pkts.value() +
                         m.backlog()->stats().drop_pkts.value() +
                         m.vswitch()->stats().drop_pkts.value();
  double tun_share = tun_drops + other_drops == 0
                         ? 0
                         : 100.0 * static_cast<double>(tun_drops) /
                               static_cast<double>(tun_drops + other_drops);
  note("drop split: TUN(aggregated) %.1f%%, other %.1f%% (paper: 92%% / 8%%)",
       tun_share, 100 - tun_share);

  ContentionDetector detector(dep.controller(), RuleBook::standard());
  ContentionReport r =
      detector.diagnose(TenantId{1}, Duration::seconds(1.0), m.aux_signals());
  std::printf("%s", to_text(r).c_str());

  shape_check(before > 3.0, "network VMs run at ~3.25 Gbps before contention");
  shape_check(after < 0.7 * before,
              "memory hogs cut total network throughput sharply");
  shape_check(tun_share > 80, "drops concentrate at the TUNs (aggregated)");
  bool blames_membw = false;
  for (ResourceKind res : r.candidate_resources) {
    if (res == ResourceKind::kMemoryBandwidth) blames_membw = true;
  }
  shape_check(r.problem_found && r.primary_location == ElementKind::kTun &&
                  r.spread == LossSpread::kMultiVm && blames_membw,
              "PerfSight: multi-VM TUN drops -> memory-bandwidth contention");
  return 0;
}
