// Figure 12: root-cause detection in the face of propagation.
//
// Topology: client -> LB -> CF1 -> server1, with CF1 (and CF2, the second
// branch) synchronously logging to a shared NFS server.  All vNICs are
// 100 Mbps.  Three injected cases:
//   (b) client uploads as fast as possible, server1 is service-limited
//       -> LB/CF WriteBlocked, NFS ReadBlocked, root cause: server1
//          (Overloaded)
//   (c) client uploads slowly
//       -> everything downstream ReadBlocked, root cause: client
//          (Underloaded)
//   (d) NFS has a memory-leak bug degrading its service rate
//       -> CF (and upstream) WriteBlocked, server1 ReadBlocked, NFS itself
//          looks busy, root cause: NFS (Overloaded)
// For each case the bench prints the paper's b/t_in, b/t_out table and the
// inferred states, then runs Algorithm 2.
#include "bench_util.h"
#include "cluster/scenarios.h"

using namespace perfsight;
using namespace perfsight::bench;
using cluster::PropagationScenario;

namespace {

bool run_case(PropagationScenario::Case c, const char* title,
              const char* expect_root, MbRole expect_role) {
  PropagationScenario s(c);
  s.settle(Duration::seconds(4.0));
  RootCauseReport r = s.diagnose();

  std::printf("\n--- %s ---\n", title);
  std::printf("%s", to_text(r).c_str());

  bool ok = r.root_causes.size() == 1 &&
            r.root_causes[0].name.find(expect_root) != std::string::npos &&
            r.root_cause_roles[0] == expect_role;
  shape_check(ok, std::string("root cause = ") + expect_root + " (" +
                      to_string(expect_role) + ")");
  return ok;
}

}  // namespace

int main() {
  heading("Figure 12: root-cause detection under propagation",
          "PerfSight (IMC'15) Fig. 12 / Sec. 7.2");
  note("chain: client -> LB -> CF1 -> server1; CF1 logs to shared NFS");
  note("all vNICs 100 Mbps; states: b/t_in < C => ReadBlocked, "
       "b/t_out < C => WriteBlocked");

  bool ok1 = run_case(PropagationScenario::Case::kOverloadedServer,
                      "(b) Overloaded server", "server1", MbRole::kOverloaded);
  bool ok2 =
      run_case(PropagationScenario::Case::kUnderloadedClient,
               "(c) Underloaded client", "client", MbRole::kUnderloaded);
  bool ok3 = run_case(PropagationScenario::Case::kBuggyNfs,
                      "(d) Problematic NFS (memory leak)", "nfs",
                      MbRole::kOverloaded);

  std::printf("\n");
  shape_check(ok1 && ok2 && ok3,
              "all three propagation cases identify the true root cause");
  return ok1 && ok2 && ok3 ? 0 : 1;
}
