// Figures 13/14: a multi-tenant operator workflow.
//
// Two tenants, each client -> LB -> server, both LBs on one physical
// machine.  Tenant 1 offers 180 Mbps; tenant 2 offers 360 Mbps but its LB
// processes only 200 Mbps.  Timeline (paper used 10 s phases; 2 s here):
//   phase 1: tenant 2 capped at ~200 Mbps; PerfSight shows LB2's TUN
//            dropping and LB2 Overloaded (busy, not blocked) -> bottleneck.
//   phase 2: a memory-intensive management task lands on the LB machine;
//            both tenants collapse; both LB VMs drop at their TUNs and the
//            LB apps turn ReadBlocked -> memory-bandwidth contention.
//   phase 3: the operator migrates the task away -> throughput recovers.
//   phase 4: the operator scales LB2 out and reroutes half of tenant 2's
//            traffic -> tenant 2 reaches its full 360 Mbps.
#include "bench_util.h"
#include "cluster/scenarios.h"

using namespace perfsight;
using namespace perfsight::bench;
using cluster::MultiTenantScenario;

int main() {
  heading("Figures 13/14: multi-tenant bottleneck, contention, scale-out",
          "PerfSight (IMC'15) Fig. 13 & 14 / Sec. 7.3");
  MultiTenantScenario s;
  const Duration half = Duration::millis(500);

  // Phase schedule (on the scenario's simulator clock).
  s.sim().at(SimTime::seconds(2.0), [&] { s.start_management_task(30e9); });
  s.sim().at(SimTime::seconds(4.0), [&] { s.stop_management_task(); });
  s.sim().at(SimTime::seconds(6.0), [&] { s.scale_out_tenant2(); });

  row({"t(s)", "tenant1(Mbps)", "tenant2(Mbps)", "phase"});
  auto phase_name = [](double t) {
    if (t <= 2.0) return "bottleneck";
    if (t <= 4.0) return "mem-task";
    if (t <= 6.0) return "migrated";
    return "scaled-out";
  };
  double t1_sum[4] = {0}, t2_sum[4] = {0};
  int n_sum[4] = {0};
  for (int i = 0; i < 16; ++i) {
    s.sim().run_for(half);
    double t = (i + 1) * 0.5;
    double t1 = s.tenant1_throughput(half).mbits_per_sec();
    double t2 = s.tenant2_throughput(half).mbits_per_sec();
    row({fmt("%.1f", t), fmt("%.0f", t1), fmt("%.0f", t2), phase_name(t)});
    int phase = std::min(3, static_cast<int>((t - 0.01) / 2.0));
    // Skip the first sample of each phase (transition transient).
    if (i % 4 != 0) {
      t1_sum[phase] += t1;
      t2_sum[phase] += t2;
      n_sum[phase] += 1;
    }
  }
  double t1_avg[4], t2_avg[4];
  for (int p = 0; p < 4; ++p) {
    t1_avg[p] = t1_sum[p] / n_sum[p];
    t2_avg[p] = t2_sum[p] / n_sum[p];
  }

  note("LB2 TUN drops: %llu pkts (tenant 2's bottleneck symptom)",
       (unsigned long long)s.lb2_vm->tun()->stats().drop_pkts.value());
  note("LB1 TUN drops: %llu pkts (appeared during the management task)",
       (unsigned long long)s.lb1_vm->tun()->stats().drop_pkts.value());

  shape_check(t1_avg[0] > 160 && t2_avg[0] > 175 && t2_avg[0] < 235,
              "phase 1: tenant1 ~180, tenant2 capped at ~200 by its LB");
  shape_check(t1_avg[1] < 0.8 * t1_avg[0] && t2_avg[1] < 0.8 * t2_avg[0],
              "phase 2: the memory task degrades both tenants");
  shape_check(t1_avg[2] > 160 && t2_avg[2] > 175,
              "phase 3: migrating the task restores throughput");
  shape_check(t2_avg[3] > 320, "phase 4: scale-out lifts tenant 2 to ~360");
  shape_check(s.lb2_vm->tun()->stats().drop_pkts.value() > 100,
              "LB2's TUN shows the drops the operator keys off");
  return 0;
}
