// Figure 15: time-counter overhead across middlebox kinds.
//
// The paper repeats the Table 2 experiment over different middleboxes —
// proxy, load balancer, cache, redundancy eliminator (SmartRE), IPS
// (Snort) — and finds the normalized throughput with time counters stays
// above 95% in every case.  This bench runs each kind's real per-packet
// work model flat out, with and without the time counters, and reports the
// normalized throughput (median of repetitions, to shed scheduler noise).
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "perfsight/hotpath.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

double median_pps(const HotpathConfig& cfg, int reps, uint64_t packets) {
  std::vector<double> xs;
  xs.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    xs.push_back(run_hotpath(cfg, packets).pkts_per_sec());
  }
  std::nth_element(xs.begin(), xs.begin() + reps / 2, xs.end());
  return xs[reps / 2];
}

}  // namespace

int main() {
  heading("Figure 15: time-counter overhead within middleboxes",
          "PerfSight (IMC'15) Fig. 15 / Sec. 7.4");
  const MbWorkKind kinds[] = {MbWorkKind::kProxy, MbWorkKind::kLoadBalancer,
                              MbWorkKind::kCache, MbWorkKind::kRedundancyElim,
                              MbWorkKind::kIps};

  row({"middlebox", "plain(Mpps)", "counters(Mpps)", "normalized(%)"}, 16);
  bool all_above_90 = true;
  for (MbWorkKind kind : kinds) {
    HotpathConfig cfg;
    cfg.kind = kind;
    cfg.packet_bytes = 1500;
    cfg.simple_counters = true;
    cfg.time_counters = false;
    double base = median_pps(cfg, 15, 60000);
    cfg.time_counters = true;
    double instrumented = median_pps(cfg, 15, 60000);
    double normalized = instrumented / base * 100.0;
    all_above_90 = all_above_90 && normalized > 90.0;
    row({to_string(kind), fmt("%.2f", base / 1e6),
         fmt("%.2f", instrumented / 1e6), fmt("%.1f", normalized)},
        16);
  }
  shape_check(all_above_90,
              "normalized throughput stays high for every middlebox kind "
              "(paper: >95%)");
  return 0;
}
