// Figure 16: statistics-polling frequency vs CPU usage.
//
// The agent pulls counters from elements only when queried; the paper
// sweeps the query frequency up to ~180 Hz and finds CPU usage below 0.5%
// at the 10 Hz cadence diagnosis actually needs, and only a few percent at
// the extreme.  This bench registers a realistic element population with a
// real Agent, then measures the wall time spent performing poll sweeps
// (collect + wire-format encode, what a real agent does per element) as a
// fraction of one core.
#include <vector>

#include "bench_util.h"
#include "perfsight/agent.h"
#include "perfsight/counters.h"
#include "perfsight/hotpath.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr int kElements = 40;  // a busy host: stack + 8 VMs * guest chain

double poll_cpu_percent(double hz, double seconds) {
  // Element population backed by live counters.
  std::vector<ElementStats> stats(kElements);
  std::vector<HotpathStatsSource> sources;
  sources.reserve(kElements);
  Agent agent("agent");
  for (int i = 0; i < kElements; ++i) {
    stats[i].pkts_in.add(123456 + i);
    stats[i].bytes_in.add(1850184000ull + i);
    sources.emplace_back(ElementId{"m0/el" + std::to_string(i)}, &stats[i]);
  }
  for (auto& s : sources) {
    Status st = agent.add_element(&s);
    PS_CHECK(st.is_ok());
  }

  using clock = std::chrono::steady_clock;
  auto start = clock::now();
  auto end = start + std::chrono::duration<double>(seconds);
  int64_t period_ns = static_cast<int64_t>(1e9 / hz);
  uint64_t busy_ns = 0;
  uint64_t sweeps = 0;
  volatile uint64_t sink = 0;
  auto next = start;
  while (clock::now() < end) {
    auto t0 = clock::now();
    // One poll sweep: fetch every element and serialize the records, as the
    // agent does before answering the controller.
    for (auto& resp : agent.poll_all(SimTime::nanos(0))) {
      sink = sink + to_wire(resp.record).size();
    }
    busy_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    ++sweeps;
    next += std::chrono::nanoseconds(period_ns);
    while (clock::now() < next && clock::now() < end) {
      // idle-wait until the next poll slot
    }
  }
  double total_s =
      std::chrono::duration<double>(clock::now() - start).count();
  (void)sink;
  return static_cast<double>(busy_ns) / 1e9 / total_s * 100.0;
}

}  // namespace

int main() {
  heading("Figure 16: query frequency vs CPU usage",
          "PerfSight (IMC'15) Fig. 16 / Sec. 7.4");
  note("%d elements per sweep; poll = collect + wire-encode per element",
       kElements);

  row({"freq(Hz)", "cpu(%)"});
  double at_10hz = 0, at_180hz = 0;
  for (double hz : {1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 180.0}) {
    double pct = poll_cpu_percent(hz, 0.6);
    row({fmt("%.0f", hz), fmt("%.3f", pct)});
    if (hz == 10.0) at_10hz = pct;
    if (hz == 180.0) at_180hz = pct;
  }
  shape_check(at_10hz < 0.5,
              "CPU usage below 0.5% at the 10 Hz diagnosis cadence");
  shape_check(at_180hz < 5.0,
              "CPU usage only a few percent even at 180 Hz");
  return 0;
}
