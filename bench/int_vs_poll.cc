// In-band telemetry vs boundary polling: microburst detection and the
// stamping overhead (Fig. 16-style ablation for the INT extension).
//
// One per-VM dataplane chain runs 6 windows of 100 x 1ms ticks.  Window 3
// contains an intra-window microburst: a transient host-CPU squeeze backs
// the queues up past the detection threshold, then lifts, and the excursion
// drains fully before the next boundary.  Boundary polling — even at a
// per-window cadence, let alone the 300ms sweep the pull design runs —
// samples instantaneous depths at boundaries only and sees nothing: no
// deep queue, no drop counter movement.  INT stamping rides sampled
// packets through the excursion and the harvester flags the implicated
// elements at the very next window close; the hybrid trigger then pulls
// exactly those elements through the controller.
//
// Gated numbers are pure functions of the fixed scenario: detection bits,
// modelled latency, kIntReport wire bytes, hop/flight counts, targeted
// query counts, and the disabled/enabled differential.  Wall-clock tick
// throughput with and without stamping is info-only.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dataplane/backlog.h"
#include "dataplane/pnic.h"
#include "dataplane/pumps.h"
#include "dataplane/queues.h"
#include "perfsight/agent.h"
#include "perfsight/controller.h"
#include "perfsight/inband.h"
#include "perfsight/streaming.h"
#include "perfsight/wire.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr int kWindows = 6;
constexpr int kTicksPerWindow = 100;          // 1ms ticks, 100ms windows
constexpr int kBurstOnsetTick = 320;          // inside window 3
constexpr int kBurstTicks = 5;                // squeeze length
constexpr uint64_t kBurstThresholdPkts = 300; // microburst depth threshold
constexpr int kSweepEveryWindows = 3;         // 300ms pull-sweep cadence

PacketBatch mk_batch(uint64_t pkts, uint64_t size = 300) {
  return PacketBatch{FlowId{1}, pkts, pkts * size};
}

// Forwards the vswitch-side traffic into the TUN so the chain closes
// pNIC -> ... -> guest socket end to end (same rig as tests/inband_test).
struct ForwardPort : dp::PortIn {
  dp::PortIn* out = nullptr;
  void accept(PacketBatch b) override {
    if (out) out->accept(std::move(b));
  }
};

struct ChainRig {
  ResourcePool cpu{"cpu", 8.0};
  ResourcePool mem{"mem", 25e9, PoolPolicy::kProportional};
  ResourcePool::ConsumerId softirq, qemu_cpu, qemu_mem, vcpu, backlog_mem;
  dp::PNic pnic{ElementId{"pnic"}, {DataRate::gbps(10), 4096, 4096}};
  ForwardPort to_tun;
  std::unique_ptr<dp::PCpuBacklog> backlog;
  dp::Tun tun{ElementId{"tun"}, 0, QueueCaps{4096, 4 << 20}};
  dp::VNic vnic{ElementId{"vnic"}, 0, 4096};
  dp::GuestBacklog gbacklog{ElementId{"gb"}, 0, 4096};
  dp::GuestSocket gsocket{ElementId{"gs"}, 0, 64 << 20};
  std::unique_ptr<dp::NapiPoll> napi;
  std::unique_ptr<dp::HypervisorIo> hyperio;
  std::unique_ptr<dp::GuestStack> guest;
  SimTime now;

  ChainRig() {
    softirq = cpu.add_consumer({"softirq", 50.0, 2.0});
    qemu_cpu = cpu.add_consumer({"qemu", 1.0, 1.0});
    vcpu = cpu.add_consumer({"vcpu", 1.0, 1.0});
    backlog_mem = mem.add_consumer({"softirq-mem", 50.0, -1.0});
    qemu_mem = mem.add_consumer({"qemu-mem", 1.0, -1.0});
    backlog = std::make_unique<dp::PCpuBacklog>(
        ElementId{"backlog"}, dp::PCpuBacklog::Config{}, &cpu, softirq, &mem,
        backlog_mem, &to_tun);
    to_tun.out = &tun;
    napi = std::make_unique<dp::NapiPoll>(ElementId{"napi"},
                                          dp::NapiPoll::Config{}, &pnic,
                                          backlog.get(), &cpu, softirq);
    hyperio = std::make_unique<dp::HypervisorIo>(
        ElementId{"qemu-io"}, 0, dp::HypervisorIo::Config{}, &tun, &vnic,
        backlog.get(), &cpu, qemu_cpu, &mem, qemu_mem);
    guest = std::make_unique<dp::GuestStack>(
        "guest", dp::GuestStack::Config{}, &vnic, &gbacklog, &gsocket, &cpu,
        vcpu);
  }

  void attach(inband::IntStamper& s) {
    s.attach(pnic);
    s.attach(*napi);
    s.attach(tun);
    s.attach(*hyperio);
    s.attach(vnic);
    s.attach(gbacklog);
    int gs_slot = s.attach(gsocket);
    s.set_harvest(gs_slot, true);
  }

  std::vector<dp::Element*> elements() {
    return {&pnic,  napi.get(), &tun,      hyperio.get(),
            &vnic, &gbacklog,  &gsocket};
  }

  uint64_t max_queue_depth() const {
    uint64_t d = tun.queued_packets();
    if (vnic.rx_queued_packets() > d) d = vnic.rx_queued_packets();
    if (gbacklog.queued_packets() > d) d = gbacklog.queued_packets();
    return d;
  }

  // One 1ms tick of the fixed scenario: steady 60-pkt batches, with the
  // kBurstTicks-long CPU squeeze + 500-pkt surge starting at
  // kBurstOnsetTick.  Depths stay under every cap, so no counter anywhere
  // records a drop — the burst is invisible to boundary samples.
  void tick(int t, inband::IntStamper* s = nullptr) {
    const Duration dt = Duration::millis(1);
    if (s) s->set_now(now);
    const bool squeezed =
        t >= kBurstOnsetTick && t < kBurstOnsetTick + kBurstTicks;
    cpu.set_capacity_per_sec(squeezed ? 0.05 : 8.0);
    pnic.offer_rx(mk_batch(squeezed ? 500 : 60));
    cpu.step(now, dt);
    mem.step(now, dt);
    backlog->step(now, dt);
    pnic.step(now, dt);
    napi->step(now, dt);
    hyperio->step(now, dt);
    guest->step(now, dt);
    gsocket.fetch(UINT64_MAX, UINT64_MAX);  // the application keeps up
    now = now + dt;
  }
};

std::string canon(const dp::Element& e, SimTime at) {
  QueryResponse r;
  r.record = e.collect(at);
  r.quality = DataQuality::kFresh;
  r.attempts = 1;
  return wire::encode_frame(r).value();
}

}  // namespace

int main() {
  heading("int_vs_poll: in-band microburst detection vs boundary polling",
          "PerfSight §5 collection (in-band telemetry extension)");
  Reporter rep("int_vs_poll");

  // Three rigs over the identical schedule: bare (no INT anywhere),
  // attached-but-disabled, and stamping at 1-in-8.
  ChainRig bare;
  ChainRig off_rig;
  ChainRig on_rig;
  inband::IntStamper off_stamper;
  inband::IntStamper on_stamper(
      inband::IntStamper::Config{/*sample_every=*/8, 16, 4096});
  off_rig.attach(off_stamper);
  on_rig.attach(on_stamper);
  on_stamper.enable_all(true);

  StreamCache cache;
  inband::IntHarvester::Config hcfg;
  hcfg.agent = "a0/int";
  hcfg.microburst_depth_pkts = kBurstThresholdPkts;
  inband::IntHarvester harvester(&on_stamper, &cache, hcfg);

  // Hybrid trigger: the microburst callback pulls exactly the implicated
  // elements through the controller scatter path.
  Agent a0("a0", 7);
  for (dp::Element* e : on_rig.elements()) {
    PS_CHECK(a0.add_element(e).is_ok());
  }
  const TenantId tenant{1};
  SimTime ctl_now;
  Controller ctl(
      [&ctl_now](Duration d) {
        ctl_now = ctl_now + d;
        return ctl_now;
      },
      [&ctl_now] { return ctl_now; });
  ctl.register_agent(&a0);
  for (dp::Element* e : on_rig.elements()) {
    PS_CHECK(ctl.register_element(tenant, e->id(), &a0).is_ok());
  }
  uint64_t targeted_queries = 0;
  int int_detect_window = -1;
  bool int_burst_seen = false;
  harvester.set_on_microburst([&](const inband::IntHarvester::Microburst& m) {
    int_burst_seen = true;
    std::vector<Result<Controller::QualifiedRecord>> got = ctl.get_attr_many(
        tenant, m.elements, {attr::kQueuePkts, attr::kDropPkts});
    targeted_queries += got.size();
  });

  // The poll baseline over the same world: per-window boundary samples plus
  // the coarser 300ms sweep cadence — both read instantaneous depths and
  // cumulative drop counters through the agent channel.
  int poll_detect_window = -1;
  int sweep_detect_window = -1;
  uint64_t steady_targeted = 0;
  uint64_t on_ticks_ns = 0;
  uint64_t bare_ticks_ns = 0;

  for (int w = 0; w < kWindows; ++w) {
    for (int i = 0; i < kTicksPerWindow; ++i) {
      const int t = w * kTicksPerWindow + i;
      const auto b0 = std::chrono::steady_clock::now();
      bare.tick(t);
      const auto b1 = std::chrono::steady_clock::now();
      off_rig.tick(t, &off_stamper);
      const auto o0 = std::chrono::steady_clock::now();
      on_rig.tick(t, &on_stamper);
      const auto o1 = std::chrono::steady_clock::now();
      bare_ticks_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(b1 - b0)
              .count());
      on_ticks_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(o1 - o0)
              .count());
    }
    const SimTime boundary = on_rig.now;

    // Boundary poll: query every element, look for deep queues or drops.
    BatchResponse swept = a0.query_batch(
        {ElementId{"pnic"}, ElementId{"tun"}, ElementId{"vnic"},
         ElementId{"gb"}, ElementId{"gs"}},
        boundary);
    bool poll_sees = false;
    for (const QueryResponse& r : swept.responses) {
      if (r.record.get_or(attr::kQueuePkts, 0) >=
              static_cast<double>(kBurstThresholdPkts) ||
          r.record.get_or("rxQueuePkts", 0) >=
              static_cast<double>(kBurstThresholdPkts) ||
          r.record.get_or(attr::kDropPkts, 0) > 0) {
        poll_sees = true;
      }
    }
    if (poll_sees && poll_detect_window < 0) poll_detect_window = w;
    if (poll_sees && (w + 1) % kSweepEveryWindows == 0 &&
        sweep_detect_window < 0) {
      sweep_detect_window = w;
    }

    const uint64_t before = targeted_queries;
    harvester.close_window(boundary);
    if (int_burst_seen && int_detect_window < 0) int_detect_window = w;
    if (w < 3 && targeted_queries != before) {
      steady_targeted += targeted_queries - before;
    }
  }

  // Disabled differential: attached-but-off and stamping-on are both
  // byte-identical to the bare build through the collection codec.
  const SimTime at = bare.now;
  auto be = bare.elements();
  auto oe = off_rig.elements();
  auto ne = on_rig.elements();
  bool identical = true;
  for (size_t i = 0; i < be.size(); ++i) {
    if (canon(*oe[i], at) != canon(*be[i], at)) identical = false;
    if (canon(*ne[i], at) != canon(*be[i], at)) identical = false;
  }
  const inband::IntStamper::Stats off_stats = off_stamper.stats();
  const bool zero_bytes_off =
      off_stats.pkts_seen == 0 && off_stats.flights_started == 0 &&
      off_stats.hops_stamped == 0 && harvester.stats().windows_closed > 0;

  const inband::IntStamper::Stats on_stats = on_stamper.stats();
  const inband::IntHarvester::Stats h = harvester.stats();
  const double burst_onset_ms = static_cast<double>(kBurstOnsetTick);
  const double int_latency_ms =
      int_detect_window < 0
          ? -1
          : (int_detect_window + 1) * 100.0 - burst_onset_ms;

  note("windows=%d ticks/window=%d burst onset t=%dms squeeze=%d ticks",
       kWindows, kTicksPerWindow, kBurstOnsetTick, kBurstTicks);
  note("INT: flights started=%llu harvested=%llu hops=%llu report bytes=%llu",
       static_cast<unsigned long long>(on_stats.flights_started),
       static_cast<unsigned long long>(on_stats.flights_harvested),
       static_cast<unsigned long long>(on_stats.hops_stamped),
       static_cast<unsigned long long>(h.report_bytes));
  note("detection: INT window %d (latency %.0fms after onset), "
       "boundary poll window %d, 300ms sweep window %d",
       int_detect_window, int_latency_ms, poll_detect_window,
       sweep_detect_window);
  note("hybrid: targeted queries total=%llu steady-phase=%llu",
       static_cast<unsigned long long>(targeted_queries),
       static_cast<unsigned long long>(steady_targeted));
  note("walltime per tick: bare %.0fns vs stamping %.0fns",
       static_cast<double>(bare_ticks_ns) / (kWindows * kTicksPerWindow),
       static_cast<double>(on_ticks_ns) / (kWindows * kTicksPerWindow));

  shape_check(int_detect_window == 3,
              "INT flags the microburst at the burst window's own close");
  shape_check(poll_detect_window < 0 && sweep_detect_window < 0,
              "boundary polls and the 300ms sweep never see the excursion");
  shape_check(identical && zero_bytes_off,
              "disabled stamping is byte-identical with zero INT bytes");
  shape_check(steady_targeted == 0 && targeted_queries > 0,
              "hybrid pulls only fire on the burst, never in steady state");

  rep.gate("int_detected", int_detect_window >= 0 ? 1 : 0);
  rep.gate("poll_detected", poll_detect_window >= 0 ? 1 : 0);
  rep.gate("int_detect_latency_ms", int_latency_ms);
  rep.gate("int_report_bytes", static_cast<double>(h.report_bytes));
  rep.gate("int_flights_harvested",
           static_cast<double>(on_stats.flights_harvested));
  rep.gate("int_hops_stamped", static_cast<double>(on_stats.hops_stamped));
  rep.gate("differential_identical", identical && zero_bytes_off ? 1 : 0);
  rep.gate("targeted_queries_steady", static_cast<double>(steady_targeted));
  rep.gate("targeted_queries_burst",
           static_cast<double>(targeted_queries - steady_targeted));
  rep.info("bare_tick_ns",
           static_cast<double>(bare_ticks_ns) / (kWindows * kTicksPerWindow));
  rep.info("stamping_tick_ns",
           static_cast<double>(on_ticks_ns) / (kWindows * kTicksPerWindow));
  return 0;
}
