// Micro-benchmarks (google-benchmark) of the instrumentation primitives:
// per-update cost of the simple and time counters, the per-packet hotpath
// work models, stats-record serialization, and an agent poll sweep.  These
// are the building blocks behind Table 2 / Fig. 15 / Fig. 16.
#include <benchmark/benchmark.h>

#include "perfsight/agent.h"
#include "perfsight/counters.h"
#include "perfsight/hotpath.h"
#include "perfsight/stats.h"

namespace perfsight {
namespace {

void BM_SimpleCounterAdd(benchmark::State& state) {
  Counter c;
  uint64_t v = 0;
  for (auto _ : state) {
    c.add(++v & 0xFFF);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SimpleCounterAdd);

void BM_TimeCounterScope(benchmark::State& state) {
  IoTimeCounter c;
  for (auto _ : state) {
    ScopedIoTimer t(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TimeCounterScope);

void BM_HotpathPacket(benchmark::State& state) {
  HotpathConfig cfg;
  cfg.kind = static_cast<MbWorkKind>(state.range(0));
  cfg.packet_bytes = 1500;
  cfg.simple_counters = true;
  cfg.time_counters = state.range(1) != 0;
  for (auto _ : state) {
    HotpathResult r = run_hotpath(cfg, 512);
    benchmark::DoNotOptimize(r.checksum);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_HotpathPacket)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->ArgNames({"mbox", "timers"});

void BM_StatsRecordToWire(benchmark::State& state) {
  StatsRecord r;
  r.timestamp = SimTime::millis(42);
  r.element = ElementId{"m0/vm3/tun"};
  for (int i = 0; i < 8; ++i) {
    r.attrs.push_back({"attr" + std::to_string(i), 1234567.0 * i});
  }
  for (auto _ : state) {
    std::string wire = to_wire(r);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_StatsRecordToWire);

void BM_StatsRecordFromWire(benchmark::State& state) {
  StatsRecord r;
  r.timestamp = SimTime::millis(42);
  r.element = ElementId{"m0/vm3/tun"};
  for (int i = 0; i < 8; ++i) {
    r.attrs.push_back({"attr" + std::to_string(i), 1234567.0 * i});
  }
  std::string wire = to_wire(r);
  for (auto _ : state) {
    Result<StatsRecord> back = from_wire(wire);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_StatsRecordFromWire);

void BM_AgentPollSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<ElementStats> stats(n);
  std::vector<HotpathStatsSource> sources;
  sources.reserve(n);
  Agent agent("agent");
  for (int i = 0; i < n; ++i) {
    sources.emplace_back(ElementId{"el" + std::to_string(i)}, &stats[i]);
  }
  for (auto& s : sources) {
    if (!agent.add_element(&s).is_ok()) state.SkipWithError("dup");
  }
  for (auto _ : state) {
    auto all = agent.poll_all(SimTime::nanos(0));
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AgentPollSweep)->Arg(8)->Arg(40)->Arg(200);

}  // namespace
}  // namespace perfsight

BENCHMARK_MAIN();
