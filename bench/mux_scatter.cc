// Fleet event-loop scatter: what one poll()-multiplexed serve thread costs
// as the served-agent count grows.
//
// One RemoteAgentServer hosts {1, 4, 16} agents; one bound RemoteAgent per
// agent hammers query_batch from its own thread (the controller scatter
// pattern without the controller bookkeeping).  The old accept-then-serve
// loop would serialize the whole fleet behind a single connection; the
// event loop must keep aggregate throughput from collapsing as fan-in
// grows.  The differential contract doubles as the gate: every record off
// the multiplexed socket must be byte-identical to the in-process agent,
// and the oracle's wire rendering — a pure function of the fixed fleet —
// gates against BASELINE.json.  Wall-clock throughput is info-only.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "perfsight/agent.h"
#include "perfsight/remote_agent.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"
#include "perfsight/transport.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr size_t kPerAgent = 8;
constexpr int kSweeps = 200;  // batch round trips per adapter

class ConstSource : public StatsSource {
 public:
  ConstSource(ElementId id, uint64_t seed) : id_(std::move(id)) {
    attrs_ = {{attr::kRxPkts, static_cast<double>(1000000 + seed * 17)},
              {attr::kTxPkts, static_cast<double>(900000 + seed * 11)},
              {attr::kDropPkts, static_cast<double>(seed % 7)},
              {attr::kTxBytes, static_cast<double>(1500000000ull + seed)}};
  }
  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.element = id_;
    r.timestamp = now;
    r.attrs = attrs_;
    return r;
  }

 private:
  ElementId id_;
  std::vector<Attr> attrs_;
};

std::string record_bytes(const BatchResponse& b) {
  std::string out;
  for (const QueryResponse& r : b.responses) {
    out += to_wire(r.record);
    out += '|';
  }
  return out;
}

struct RunResult {
  bool identical = true;
  double batches_per_sec = 0;
  size_t oracle_bytes = 0;
};

RunResult run_fleet(size_t n_agents) {
  std::vector<std::unique_ptr<Agent>> agents;
  std::vector<std::unique_ptr<ConstSource>> sources;
  std::vector<std::vector<ElementId>> ids_of(n_agents);
  std::vector<Agent*> raw;
  for (size_t a = 0; a < n_agents; ++a) {
    agents.push_back(
        std::make_unique<Agent>("fleet-" + std::to_string(a), a + 1));
    for (size_t e = 0; e < kPerAgent; ++e) {
      sources.push_back(std::make_unique<ConstSource>(
          ElementId{"f" + std::to_string(a) + "/eth" + std::to_string(e)},
          a * kPerAgent + e));
      PS_CHECK(agents.back()->add_element(sources.back().get()).is_ok());
      ids_of[a].push_back(sources.back()->id());
    }
    raw.push_back(agents.back().get());
  }

  RemoteAgentServer server(raw, transport::Endpoint::tcp("127.0.0.1", 0));
  PS_CHECK(server.start().is_ok());
  std::vector<std::unique_ptr<RemoteAgent>> adapters;
  for (size_t a = 0; a < n_agents; ++a) {
    adapters.push_back(
        std::make_unique<RemoteAgent>(server.endpoint(), raw[a]->name()));
    PS_CHECK(adapters.back()->connect().is_ok());
  }

  RunResult out;
  for (size_t a = 0; a < n_agents; ++a) {
    const std::string oracle =
        record_bytes(raw[a]->query_batch(ids_of[a], SimTime::millis(0)));
    out.oracle_bytes += oracle.size();
    out.identical =
        out.identical &&
        record_bytes(adapters[a]->query_batch(ids_of[a], SimTime::millis(0))) ==
            oracle;
  }

  // One hammer thread per adapter: n concurrent connections fan into the
  // single event-loop thread.
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t a = 0; a < n_agents; ++a) {
    threads.emplace_back([&, a] {
      for (int s = 0; s < kSweeps; ++s) {
        BatchResponse b =
            adapters[a]->query_batch(ids_of[a], SimTime::millis(s));
        PS_CHECK(b.responses.size() == ids_of[a].size());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.batches_per_sec = static_cast<double>(n_agents * kSweeps) / secs;
  PS_CHECK(server.batches_served() >= n_agents * (kSweeps + 1));
  return out;
}

}  // namespace

int main() {
  heading("Fleet scatter over one poll()-multiplexed serve thread",
          "PerfSight (IMC'15) Sec. 3 distributed agents; fleet transport");
  Reporter report("mux_scatter");
  note("%zu elements per agent, %d sweeps per adapter, fleet sizes 1/4/16",
       kPerAgent, kSweeps);

  bool identical = true;
  double tput1 = 0, tput16 = 0;
  size_t oracle16 = 0;
  row({"agents", "batches/s", "us/batch"});
  for (size_t n : {1u, 4u, 16u}) {
    RunResult r = run_fleet(n);
    identical = identical && r.identical;
    if (n == 1) tput1 = r.batches_per_sec;
    if (n == 16) {
      tput16 = r.batches_per_sec;
      oracle16 = r.oracle_bytes;
    }
    row({fmt("%.0f", static_cast<double>(n)), fmt("%.0f", r.batches_per_sec),
         fmt("%.1f", 1e6 / r.batches_per_sec)});
  }

  // The oracle rendering is a pure function of the fixed fleet: gate it.
  // Throughput is loopback wall clock: info only.
  report.gate("oracle_record_bytes_16", static_cast<double>(oracle16));
  report.info("batches_per_sec_1", tput1);
  report.info("batches_per_sec_16", tput16);

  shape_check(identical,
              "fleet records off the mux byte-identical to in-process agents");
  shape_check(tput16 >= tput1 * 0.8,
              "16-agent fan-in does not collapse the event loop's throughput");
  return 0;
}
