// Poll-sweep scaling across the collection pool.
//
// A fleet sweep asks every agent to poll all of its elements.  The dominant
// per-element cost in a real deployment is channel latency, not CPU: Fig. 9
// measures ~2 ms for a net_device file read and hundreds of microseconds
// for the other channel kinds.  Those waits are independent across agents,
// so fanning the sweep out over the Deployment's collection pool overlaps
// them and the sweep time drops near-linearly with workers until the
// per-agent chains dominate.
//
// Each element here is backed by a source that does what an agent does per
// element in practice: block for the channel round trip (a real sleep
// standing in for the modelled RTT) and parse a /proc-style text blob into
// counters.  We sweep pool sizes {1, 2, 4, 8} over an 8-agent fleet and
// gate on >= 2x wall-clock speedup at 4 workers, plus byte-identical wire
// output between the sequential and parallel sweeps (the determinism
// contract the diagnosis path relies on).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/deployment.h"
#include "perfsight/agent.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"
#include "sim/simulator.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr size_t kAgents = 8;
constexpr size_t kElementsPerAgent = 4;
constexpr int kSweepsPerConfig = 24;
// Stand-in for the per-element channel round trip.  Real /proc and socket
// channels are 100-500 us (Fig. 9); net_device files are ~2 ms.
constexpr auto kChannelRtt = std::chrono::microseconds(150);

// An element whose counters arrive as /proc-net-dev-style text: collect()
// waits out the channel RTT, then parses the blob it "read" into attrs.
class ProcTextSource : public StatsSource {
 public:
  ProcTextSource(ElementId id, uint64_t seed) : id_(std::move(id)) {
    // Pre-render the blob once; a real agent re-reads it every poll.
    blob_ = " rx_packets: " + std::to_string(1000000 + seed * 17) +
            "\n rx_bytes: " + std::to_string(1500000000ull + seed * 1313) +
            "\n tx_packets: " + std::to_string(900000 + seed * 11) +
            "\n drop: " + std::to_string(seed % 7) + "\n";
  }

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }

  StatsRecord collect(SimTime now) const override {
    std::this_thread::sleep_for(kChannelRtt);  // channel round trip
    StatsRecord r;
    r.element = id_;
    r.timestamp = now;
    // Parse "key: value" lines from the blob.
    size_t pos = 0;
    while (pos < blob_.size()) {
      size_t colon = blob_.find(':', pos);
      size_t eol = blob_.find('\n', pos);
      if (colon == std::string::npos || eol == std::string::npos) break;
      std::string key = blob_.substr(pos, colon - pos);
      while (!key.empty() && key.front() == ' ') key.erase(key.begin());
      uint64_t value = std::stoull(blob_.substr(colon + 1, eol - colon - 1));
      r.attrs.push_back(Attr{key, static_cast<double>(value)});
      pos = eol + 1;
    }
    return r;
  }

 private:
  ElementId id_;
  std::string blob_;
};

struct Fleet {
  sim::Simulator sim{Duration::millis(1)};
  cluster::Deployment dep;
  std::vector<std::unique_ptr<ProcTextSource>> sources;

  explicit Fleet(size_t pool_workers) : dep(&sim, pool_workers) {
    for (size_t a = 0; a < kAgents; ++a) {
      Agent* agent = dep.add_agent("host" + std::to_string(a));
      for (size_t e = 0; e < kElementsPerAgent; ++e) {
        sources.push_back(std::make_unique<ProcTextSource>(
            ElementId{"host" + std::to_string(a) + "/eth" + std::to_string(e)},
            a * kElementsPerAgent + e));
        Status st = agent->add_element(sources.back().get());
        PS_CHECK(st.is_ok());
      }
    }
  }
};

// Wall time of kSweepsPerConfig fleet sweeps, plus the concatenated wire
// encoding of the last sweep (for the determinism check).
double sweep_seconds(Fleet& fleet, std::string* wire_out) {
  auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < kSweepsPerConfig; ++s) {
    auto groups = fleet.dep.poll_sweep(SimTime::millis(s));
    if (s == kSweepsPerConfig - 1 && wire_out != nullptr) {
      for (const auto& group : groups) {
        for (const QueryResponse& resp : group) {
          *wire_out += to_wire(resp.record);
          *wire_out += '|';
        }
      }
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  heading("Poll-sweep scaling across the collection pool",
          "PerfSight (IMC'15) Sec. 7.4 collection overhead, parallelised");
  Reporter report("poll_scaling");
  note("%zu agents x %zu elements, %d sweeps per pool size", kAgents,
       kElementsPerAgent, kSweepsPerConfig);
  note("per-element cost: %lld us channel RTT + /proc text parse",
       static_cast<long long>(kChannelRtt.count()));

  row({"workers", "sweep(ms)", "speedup"});
  double base_s = 0;
  double speedup_at_4 = 0;
  std::string wire_seq, wire_par;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Fleet fleet(workers);
    std::string* wire = workers == 1 ? &wire_seq
                        : workers == 4 ? &wire_par
                                       : nullptr;
    double s = sweep_seconds(fleet, wire);
    if (workers == 1) base_s = s;
    double speedup = base_s / s;
    if (workers == 4) speedup_at_4 = speedup;
    row({fmt("%.0f", static_cast<double>(workers)),
         fmt("%.2f", s * 1e3 / kSweepsPerConfig), fmt("%.2fx", speedup)});
  }

  // The sweep's wire encoding is deterministic (fixed fleet, fixed seeds);
  // its byte count gates.  Wall-clock speedup depends on the runner's cores.
  report.gate("wire_bytes", static_cast<double>(wire_seq.size()));
  report.info("speedup_at_4", speedup_at_4);
  report.info("sweep_ms_sequential", base_s * 1e3 / kSweepsPerConfig);

  shape_check(speedup_at_4 >= 2.0,
              "fleet sweep >= 2x faster with 4 workers than sequential");
  shape_check(!wire_seq.empty() && wire_seq == wire_par,
              "parallel sweep wire output byte-identical to sequential");
  return 0;
}
