// Push-mode streaming vs per-window pull sweeps: steady-state bytes on the
// wire and modelled detection latency.
//
// The same 24-element world runs 64 windows twice.  Push mode captures each
// boundary once and ships it delta-coded (mode 2 — u32 integral deltas —
// dominates steady state); the pull baseline re-ships every window as the
// absolute snapshot a sweep response carries.  Detection: a pNIC starts
// dropping at window 32; the streamed cache feeds Algorithm 1 every window,
// the pull path sweeps on a 5-window monitoring cadence, and the gap
// between the two first problem-found diagnoses is the latency the paper's
// pull design trades away.  Every gated number is a pure function of the
// fixed scenario: wire bytes from the codec, latencies from the modelled
// clock.  Wall-clock pump throughput is info-only.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "perfsight/agent.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"
#include "perfsight/streaming.h"
#include "perfsight/wire.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr Duration kWindow = Duration::millis(100);
constexpr int kWindows = 64;
constexpr int kOnsetWindow = 32;  // pNIC drops start here
constexpr int kSweepEvery = 5;    // pull-mode monitoring cadence, windows

class FnSource : public StatsSource {
 public:
  FnSource(std::string id, ChannelKind kind,
           std::function<std::vector<Attr>(SimTime)> fn)
      : id_{std::move(id)}, kind_(kind), fn_(std::move(fn)) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = fn_(now);
    return r;
  }

 private:
  ElementId id_;
  ChannelKind kind_;
  std::function<std::vector<Attr>(SimTime)> fn_;
};

double win(SimTime t) { return static_cast<double>(t.ns() / kWindow.ns()); }

// 24 elements: one pNIC that starts dropping at kOnsetWindow, 23 clean
// tunnel ports.  Counters advance by integral amounts per window, the
// steady-state shape the delta codec is built for.
std::vector<std::unique_ptr<FnSource>> make_sources() {
  std::vector<std::unique_ptr<FnSource>> out;
  out.push_back(std::make_unique<FnSource>(
      "m0/pnic", ChannelKind::kNetDeviceFile, [](SimTime t) {
        const double w = win(t);
        const double sick = w > kOnsetWindow ? w - kOnsetWindow : 0;
        return std::vector<Attr>{
            {attr::kRxPkts, 12000 * w},
            {attr::kTxPkts, 12000 * w - 8000 * sick},
            {attr::kDropPkts, 8000 * sick},
            {attr::kType, static_cast<double>(ElementKind::kPNic)},
            {attr::kVm, -1}};
      }));
  for (int i = 0; i < 23; ++i) {
    out.push_back(std::make_unique<FnSource>(
        "m0/vm" + std::to_string(i) + "/tun", ChannelKind::kProcFs,
        [i](SimTime t) {
          const double w = win(t);
          return std::vector<Attr>{
              {attr::kRxPkts, (3000 + 100 * i) * w},
              {attr::kTxPkts, (3000 + 100 * i) * w},
              {attr::kType, static_cast<double>(ElementKind::kTun)},
              {attr::kVm, static_cast<double>(i)}};
        }));
  }
  return out;
}

struct World {
  std::vector<std::unique_ptr<FnSource>> sources = make_sources();
  Agent agent{"a0", 5};
  std::vector<ElementId> ids;

  World() {
    for (auto& s : sources) {
      PS_CHECK(agent.add_element(s.get()).is_ok());
      ids.push_back(s->id());
    }
  }
};

// First boundary (in windows) at which Algorithm 1 over `client` finds the
// problem, diagnosing at cadence `every` windows, one window behind the
// data frontier.  Returns -1 if never.
int detect_window(AgentClient* client, const std::vector<ElementId>& ids,
                  int every) {
  SimTime now;
  Controller c(
      [&now](Duration d) {
        now = now + d;
        return now;
      },
      [&now] { return now; });
  const TenantId tenant{1};
  c.register_agent(client);
  for (const ElementId& id : ids) {
    PS_CHECK(c.register_element(tenant, id, client).is_ok());
    c.register_stack_element(client, id);
  }
  ContentionDetector det(&c, RuleBook::standard());
  det.set_loss_threshold(1000);
  for (int k = 1; k < kWindows; ++k) {
    if (k % every != 0) continue;
    now = SimTime::nanos(kWindow.ns() * (k - 1));
    ContentionReport r = det.diagnose(tenant, kWindow);
    if (r.problem_found) return k;
  }
  return -1;
}

}  // namespace

int main() {
  heading("stream_vs_sweep: push-mode bytes & detection latency vs pull sweeps",
          "PerfSight §5 collection cost (streaming extension)");
  Reporter rep("stream_vs_sweep");

  // --- bytes on the wire ----------------------------------------------------
  World push_world;
  StreamCache cache;
  StreamPipeline pipe(&cache);
  pipe.add_agent(&push_world.agent);

  World pull_world;
  uint64_t sweep_bytes = 0;
  uint64_t snapshot_bytes = 0;  // frame 1 of the stream (absolute)
  uint64_t steady_bytes = 0;    // last frame of the stream (delta-coded)

  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kWindows; ++k) {
    const SimTime at = SimTime::nanos(kWindow.ns() * k);
    PS_CHECK(pipe.pump(at).is_ok());
    const uint64_t before = sweep_bytes;

    // The pull baseline ships the same boundary absolute, every window.
    BatchResponse b = pull_world.agent.query_batch(pull_world.ids, at);
    wire::StreamDataMsg m;
    m.agent = pull_world.agent.name();
    m.seq = static_cast<uint64_t>(k) + 1;
    m.window_start = at;
    m.responses = b.responses;
    sweep_bytes += wire::encode_stream_data(m, nullptr).value().size();
    if (k == 0) snapshot_bytes = sweep_bytes - before;
  }
  const double pump_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const uint64_t streamed_bytes = pipe.bytes_published();
  steady_bytes = (streamed_bytes - snapshot_bytes) / (kWindows - 1);

  note("windows=%d elements=%zu window=%lldms", kWindows,
       push_world.ids.size(),
       static_cast<long long>(kWindow.ns() / 1000000));
  note("streamed bytes total   %llu (snapshot %llu + %d delta frames)",
       static_cast<unsigned long long>(streamed_bytes),
       static_cast<unsigned long long>(snapshot_bytes), kWindows - 1);
  note("sweep bytes total      %llu",
       static_cast<unsigned long long>(sweep_bytes));
  note("steady-state per window: streamed %llu vs sweep %llu (%.1f%%)",
       static_cast<unsigned long long>(steady_bytes),
       static_cast<unsigned long long>(snapshot_bytes),
       100.0 * static_cast<double>(steady_bytes) /
           static_cast<double>(snapshot_bytes));

  // --- detection latency ----------------------------------------------------
  // Streamed: diagnosis runs off the cache every window.  Pull: every
  // kSweepEvery windows (continuous per-window sweeps would cost the full
  // snapshot bytes above every window — the cadence IS the tradeoff).
  StreamCacheAgent sca(&cache, push_world.agent);
  const int det_stream = detect_window(&sca, push_world.ids, 1);
  World pull_world2;
  const int det_sweep =
      detect_window(&pull_world2.agent, pull_world2.ids, kSweepEvery);
  PS_CHECK(det_stream > 0 && det_sweep > 0);
  const double stream_ms =
      static_cast<double>((det_stream - kOnsetWindow) * kWindow.ns()) / 1e6;
  const double sweep_ms =
      static_cast<double>((det_sweep - kOnsetWindow) * kWindow.ns()) / 1e6;
  note("detection: onset w%d -> streamed w%d (%.0fms), sweep w%d (%.0fms)",
       kOnsetWindow, det_stream, stream_ms, det_sweep, sweep_ms);

  shape_check(steady_bytes * 2 < snapshot_bytes,
              "steady-state delta frame is < half the absolute sweep frame");
  shape_check(streamed_bytes < sweep_bytes,
              "stream total (incl. snapshot) undercuts the sweep total");
  shape_check(stream_ms < sweep_ms,
              "per-window streamed diagnosis detects before the sweep cadence");

  rep.gate("streamed_bytes_total", static_cast<double>(streamed_bytes));
  rep.gate("sweep_bytes_total", static_cast<double>(sweep_bytes));
  rep.gate("steady_bytes_per_window", static_cast<double>(steady_bytes));
  rep.gate("detect_latency_streamed_ms", stream_ms);
  rep.gate("detect_latency_sweep_ms", sweep_ms);
  rep.info("pump_walltime_secs", pump_secs);
  return 0;
}
