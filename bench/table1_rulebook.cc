// Table 1: the resource-shortage / drop-location rule book, regenerated.
//
// The paper builds its rule book by exhaustively exercising each resource
// shortage in controlled experiments and recording where packets drop.
// This bench replays that methodology against the simulated stack: one
// scenario per shortage, observed drop location compared with the rule
// book's entry (and, through Algorithm 1 + aux signals, the diagnosed
// resource compared with the injected one).
#include <algorithm>
#include <string>

#include "bench_util.h"
#include "cluster/deployment.h"
#include "perfsight/contention.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;
using namespace perfsight::bench;

namespace {

struct Outcome {
  ElementKind drop_location = ElementKind::kOther;
  LossSpread spread = LossSpread::kNone;
  std::vector<ResourceKind> diagnosed;
};

struct Rig {
  sim::Simulator sim{Duration::millis(1)};
  std::unique_ptr<vm::PhysicalMachine> machine;
  std::unique_ptr<cluster::Deployment> dep;

  explicit Rig(dp::StackParams params = {}) {
    machine = std::make_unique<vm::PhysicalMachine>("m0", params, &sim);
    dep = std::make_unique<cluster::Deployment>(&sim);
  }
  Outcome finish() {
    Agent* agent = dep->add_agent("agent");
    dep->attach(machine.get(), agent);
    PS_CHECK(
        dep->assign(TenantId{1}, machine->tun(0)->id(), agent).is_ok());
    sim.run_for(Duration::seconds(2.0));
    ContentionDetector det(dep->controller(), RuleBook::standard());
    det.set_loss_threshold(100);
    ContentionReport r = det.diagnose(TenantId{1}, Duration::seconds(1.0),
                                      machine->aux_signals());
    Outcome o;
    if (r.problem_found) {
      o.drop_location = r.primary_location;
      o.spread = r.spread;
      o.diagnosed = r.candidate_resources;
    }
    return o;
  }
};

FlowSpec flow(uint32_t id, uint32_t size = 1500) {
  FlowSpec f;
  f.id = FlowId{id};
  f.packet_size = size;
  return f;
}

void add_sink_vm(Rig& rig, int i, DataRate rx) {
  int v = rig.machine->add_vm({"vm" + std::to_string(i), 1.0});
  rig.machine->set_sink_app(v);
  FlowSpec f = flow(static_cast<uint32_t>(i + 1));
  rig.machine->route_flow_to_vm(f, v);
  rig.machine->add_ingress_source("s" + std::to_string(i), f, rx);
}

Outcome incoming_bandwidth() {
  Rig rig;
  add_sink_vm(rig, 0, 7_gbps);
  add_sink_vm(rig, 1, 7_gbps);  // 14 Gbps offered into 10 GbE
  return rig.finish();
}

Outcome outgoing_bandwidth() {
  Rig rig;
  for (int i = 0; i < 4; ++i) {
    int v = rig.machine->add_vm({"vm" + std::to_string(i), 1.0});
    FlowSpec f = flow(static_cast<uint32_t>(i + 1));
    f.direction = FlowDirection::kEgress;
    dp::SourceApp::Config cfg;
    cfg.flow = f;
    cfg.rate = DataRate::gbps(3.5);  // 14 Gbps offered egress
    rig.machine->set_source_app(v, cfg);
    rig.machine->route_flow_to_wire(f.id, "out" + std::to_string(i));
  }
  return rig.finish();
}

Outcome cpu_contention() {
  Rig rig;
  // Heavy packet rates make the I/O threads real CPU consumers (while
  // staying inside the softirq budget, so the backlog is not the limit)...
  add_sink_vm(rig, 0, DataRate::gbps(3.5));
  add_sink_vm(rig, 1, DataRate::gbps(3.5));
  // ...and six 3-vCPU compute VMs oversubscribe the 8-core host, squeezing
  // every VM's hypervisor I/O below what the traffic needs.
  for (int i = 2; i < 8; ++i) {
    rig.machine->add_vm({"vm" + std::to_string(i), 3.0});
    rig.machine->add_vm_cpu_hog(i)->set_demand_cores(8.0);
  }
  return rig.finish();
}

Outcome membw_contention() {
  Rig rig;
  add_sink_vm(rig, 0, DataRate::gbps(1.6));
  add_sink_vm(rig, 1, DataRate::gbps(1.6));
  rig.machine->add_vm({"memvm", 1.0});
  rig.machine->add_mem_hog("hog")->set_demand_bytes_per_sec(60e9);
  return rig.finish();
}

Outcome memory_space() {
  Rig rig;
  add_sink_vm(rig, 0, 2_gbps);
  add_sink_vm(rig, 1, 2_gbps);
  rig.machine->set_memory_pressure_bytes(
      rig.machine->params().buffer_memory_bytes - 4096);
  return rig.finish();
}

Outcome vm_bottleneck() {
  Rig rig;
  add_sink_vm(rig, 0, 500_mbps);
  add_sink_vm(rig, 1, 500_mbps);
  rig.machine->add_vm_cpu_hog(0)->set_demand_cores(1.0);
  return rig.finish();
}

Outcome backlog_flood() {
  dp::StackParams params;
  params.pnic_rate = 1_gbps;
  params.softirq_cost_per_pkt = 3.2e-6;
  params.qemu_cost_per_pkt = 0.25e-6;
  Rig rig(params);
  add_sink_vm(rig, 0, 500_mbps);
  int v = rig.machine->add_vm({"flooder", 1.0});
  FlowSpec f = flow(99, 64);
  f.direction = FlowDirection::kEgress;
  dp::SourceApp::Config cfg;
  cfg.flow = f;
  cfg.rate = 1_gbps;
  cfg.cost_per_pkt = 0.05e-6;
  rig.machine->set_source_app(v, cfg);
  rig.machine->route_flow_to_wire(f.id, "flood");
  rig.machine->pin_flow_to_core(FlowId{1}, 0);
  rig.machine->pin_flow_to_core(f.id, 0);
  return rig.finish();
}

bool diagnosed_contains(const Outcome& o, ResourceKind r) {
  return std::find(o.diagnosed.begin(), o.diagnosed.end(), r) !=
         o.diagnosed.end();
}

}  // namespace

int main() {
  heading("Table 1: resource-in-shortage / drop-location rule book",
          "PerfSight (IMC'15) Table 1 / Sec. 5.1");
  RuleBook rb = RuleBook::standard();

  struct Row {
    const char* injected;
    ResourceKind resource;
    Outcome (*run)();
    LossSpread expect_spread;  // kNone = don't care
  };
  const Row rows[] = {
      {"incoming bandwidth", ResourceKind::kIncomingBandwidth,
       incoming_bandwidth, LossSpread::kNone},
      {"outgoing bandwidth", ResourceKind::kOutgoingBandwidth,
       outgoing_bandwidth, LossSpread::kNone},
      {"CPU (host contention)", ResourceKind::kCpu, cpu_contention,
       LossSpread::kMultiVm},
      {"memory bandwidth", ResourceKind::kMemoryBandwidth, membw_contention,
       LossSpread::kMultiVm},
      {"memory space", ResourceKind::kMemorySpace, memory_space,
       LossSpread::kMultiVm},
      {"VM-local (bottleneck)", ResourceKind::kVmLocal, vm_bottleneck,
       LossSpread::kSingleVm},
      {"pCPU backlog queue", ResourceKind::kBacklogQueue, backlog_flood,
       LossSpread::kSharedElement},
  };

  row({"injected shortage", "drop location", "spread", "diagnosed?"}, 24);
  bool all_ok = true;
  for (const Row& r : rows) {
    Outcome o = r.run();
    // (1) the observed drop location appears in the rule book row for the
    // injected resource; (2) Algorithm 1 + aux signals name the resource.
    auto locs = rb.symptom_locations(r.resource);
    bool loc_ok = std::find(locs.begin(), locs.end(), o.drop_location) !=
                  locs.end();
    bool diag_ok = diagnosed_contains(o, r.resource);
    bool spread_ok =
        r.expect_spread == LossSpread::kNone || o.spread == r.expect_spread;
    bool ok = loc_ok && diag_ok && spread_ok;
    all_ok = all_ok && ok;
    row({r.injected, to_string(o.drop_location), to_string(o.spread),
         ok ? "PASS" : "FAIL"},
        24);
  }
  shape_check(all_ok,
              "every injected shortage drops at its Table 1 location and is "
              "diagnosed back to the right resource");
  return all_ok ? 0 : 1;
}
