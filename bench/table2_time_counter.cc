// Table 2: throughput with/without time counters (plus §7.4's per-update
// counter costs).
//
// The paper runs an HTTP proxy in two regimes — ReadBlocked (client rate-
// limited; throughput set by the offered load) and Overloaded (TCP
// saturates the link; the proxy is the limit) — with and without PerfSight
// time counters, 100 repetitions each, reporting mean and variance.  The
// conclusion: < 2% throughput impact.
//
// This bench runs the real proxy hotpath on the host CPU: "Blocked" paces
// packet processing (throughput fixed by the pacing, counters only add
// latency headroom); "Overloaded" runs flat out (counters directly steal
// cycles).  Means and variances over 100 repetitions are reported in Mbps
// at 1500 B packets.
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "perfsight/hotpath.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr uint32_t kPktBytes = 1500;
constexpr int kReps = 100;

// One "Overloaded" repetition: process packets as fast as possible.
double overloaded_mbps(bool time_counters) {
  HotpathConfig cfg;
  cfg.kind = MbWorkKind::kProxy;
  cfg.packet_bytes = kPktBytes;
  cfg.simple_counters = true;
  cfg.time_counters = time_counters;
  HotpathResult r = run_hotpath(cfg, 8000);
  return r.gbps(kPktBytes) * 1000.0;
}

// One "Blocked" repetition: pace batches so the offered load, not the CPU,
// sets throughput (like a rate-limited sender upstream).
double blocked_mbps(bool time_counters) {
  HotpathConfig cfg;
  cfg.kind = MbWorkKind::kProxy;
  cfg.packet_bytes = kPktBytes;
  cfg.simple_counters = true;
  cfg.time_counters = time_counters;
  using clock = std::chrono::steady_clock;
  auto start = clock::now();
  uint64_t packets = 0;
  // 40 batches of 100 packets, one batch per 800 us -> 125 Kpps offered,
  // well below the ~260 Kpps CPU limit, so pacing dominates.
  for (int batch = 0; batch < 40; ++batch) {
    HotpathResult r = run_hotpath(cfg, 100);
    packets += r.packets;
    auto deadline = start + std::chrono::microseconds(800 * (batch + 1));
    while (clock::now() < deadline) {
      // spin: a sleeping thread would add scheduler noise at this scale
    }
  }
  double secs = std::chrono::duration<double>(clock::now() - start).count();
  return static_cast<double>(packets) * kPktBytes * 8.0 / secs / 1e6;
}

struct MeanVar {
  double mean = 0, var = 0;
};

template <typename Fn>
MeanVar repeat(Fn&& fn, int reps) {
  std::vector<double> xs;
  xs.reserve(reps);
  for (int i = 0; i < reps; ++i) xs.push_back(fn());
  MeanVar mv;
  for (double x : xs) mv.mean += x;
  mv.mean /= reps;
  for (double x : xs) mv.var += (x - mv.mean) * (x - mv.mean);
  mv.var /= reps;
  return mv;
}

}  // namespace

int main() {
  heading("Table 2: throughput with/without time counters",
          "PerfSight (IMC'15) Table 2 / Sec. 7.4");

  // Per-update costs (paper: simple counters ~3 ns, time counters ~0.29 us).
  double simple_ns = measure_simple_counter_ns(2000000);
  double timer_ns = measure_time_counter_ns(200000);
  note("simple counter update: %.2f ns (paper: ~3 ns)", simple_ns);
  note("time counter update:   %.3f us (paper: ~0.29 us)", timer_ns / 1000.0);

  MeanVar b_off = repeat([] { return blocked_mbps(false); }, kReps);
  MeanVar b_on = repeat([] { return blocked_mbps(true); }, kReps);
  MeanVar o_off = repeat([] { return overloaded_mbps(false); }, kReps);
  MeanVar o_on = repeat([] { return overloaded_mbps(true); }, kReps);

  row({"experiment", "mean(Mbps)", "variance"}, 30);
  row({"1 Blocked, no counters", fmt("%.1f", b_off.mean),
       fmt("%.2f", b_off.var)},
      30);
  row({"2 Blocked, with counters", fmt("%.1f", b_on.mean),
       fmt("%.2f", b_on.var)},
      30);
  row({"3 Overloaded, no counters", fmt("%.1f", o_off.mean),
       fmt("%.2f", o_off.var)},
      30);
  row({"4 Overloaded, with counters", fmt("%.1f", o_on.mean),
       fmt("%.2f", o_on.var)},
      30);

  double blocked_impact = (b_off.mean - b_on.mean) / b_off.mean * 100;
  double overloaded_impact = (o_off.mean - o_on.mean) / o_off.mean * 100;
  note("throughput impact: blocked %.2f%%, overloaded %.2f%% (paper: <2%%)",
       blocked_impact, overloaded_impact);

  shape_check(simple_ns < 20, "simple counter update costs only a few ns");
  shape_check(timer_ns < 1000,
              "time counter update stays well below a microsecond");
  shape_check(std::fabs(blocked_impact) < 3.0,
              "time counters barely affect a blocked (paced) middlebox");
  shape_check(std::fabs(overloaded_impact) < 5.0,
              "time counters cost <5% even when CPU-bound (paper <2%)");
  return 0;
}
