// Flight-recorder overhead on the real hotpath.
//
// The paper's overhead budget (Table 2, Fig. 15) is < 5% on a busy
// middlebox.  The tracing layer must fit the same budget, so this bench
// runs the wall-clock hotpath harness three ways:
//
//   1. counters on, tracing disabled (the production default) — the cost is
//      one branch per instrumentation point;
//   2. counters on, tracing enabled at one event per packet — the worst
//      case: every packet pushes into a bounded ring;
//   3. the isolated per-push cost, and proof the rings stay bounded
//      (overwrite-oldest, drops counted, no allocation growth).
#include <algorithm>
#include <chrono>
#include <cstdint>

#include "bench_util.h"
#include "perfsight/hotpath.h"
#include "perfsight/trace.h"

using namespace perfsight;

namespace {

// Best-of-N to shed scheduler noise.
double best_pkts_per_sec(const HotpathConfig& cfg, uint64_t packets,
                         int repeats) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    HotpathResult res = run_hotpath(cfg, packets);
    best = std::max(best, res.pkts_per_sec());
  }
  return best;
}

}  // namespace

int main() {
  bench::heading("flight-recorder tracing overhead on the hotpath",
                 "overhead budget of Table 2 / Fig. 15 (< 5%)");
  bench::Reporter report("trace_overhead");

  constexpr uint64_t kPackets = 100000;
  constexpr int kRepeats = 3;

  HotpathConfig base;
  base.kind = MbWorkKind::kProxy;
  base.packet_bytes = 1500;
  base.simple_counters = true;
  base.trace_events = true;  // honoured only while a recorder is enabled

  bench::note("proxy workload, %llu packets x %d repeats (best-of)",
              static_cast<unsigned long long>(kPackets), kRepeats);

  // Tracing disabled: the global recorder is off, so cfg.trace_events costs
  // the production single branch.
  double off = best_pkts_per_sec(base, kPackets, kRepeats);

  // Tracing enabled, one event per packet into a bounded ring.
  double on = 0;
  uint64_t ring_total = 0, ring_dropped = 0, ring_live = 0;
  {
    ScopedTraceRecorder scoped;
    on = best_pkts_per_sec(base, kPackets, kRepeats);
    ring_total = scoped.recorder().total_events();
    ring_dropped = scoped.recorder().dropped_events();
    ring_live = ring_total - ring_dropped;
  }

  double regression = off > 0 ? (off - on) / off * 100.0 : 0;
  bench::row({"config", "pkts/s", "Gbps"});
  bench::row({"trace off", bench::fmt("%.0f", off),
              bench::fmt("%.2f", off * 1500 * 8 / 1e9)});
  bench::row({"trace on", bench::fmt("%.0f", on),
              bench::fmt("%.2f", on * 1500 * 8 / 1e9)});
  bench::note("regression with per-packet events: %.2f%%", regression);

  // Bounded-ring accounting: 3 repeats x 100k events into one 1024-slot
  // ring must overwrite, never grow.
  bench::note("ring accounting: %llu recorded, %llu overwritten, %llu live",
              static_cast<unsigned long long>(ring_total),
              static_cast<unsigned long long>(ring_dropped),
              static_cast<unsigned long long>(ring_live));

  // Isolated per-push cost.
  {
    ScopedTraceRecorder scoped;
    TraceRing* ring = scoped.recorder().ring(ElementId{"micro"});
    constexpr uint64_t kIters = 2000000;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
      ring->push(SimTime::nanos(static_cast<int64_t>(i)),
                 TraceEventKind::kDrop, 1.0, "micro event");
    }
    auto t1 = std::chrono::steady_clock::now();
    double ns_per_push =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(kIters);
    bench::note("isolated ring push: %.1f ns/event", ns_per_push);
    report.info("ns_per_push", ns_per_push);
  }

  // Deterministic quantities gate; wall-clock throughput is informational.
  report.gate("ring_total_events", static_cast<double>(ring_total));
  report.gate("ring_live_events", static_cast<double>(ring_live));
  report.info("regression_pct", regression);
  report.info("pkts_per_sec_trace_off", off);
  report.info("pkts_per_sec_trace_on", on);

  bench::shape_check(regression < 5.0,
                     "per-packet tracing costs the hotpath < 5%");
  bench::shape_check(ring_total == static_cast<uint64_t>(kRepeats) * kPackets,
                     "every event accounted for (recorded = offered)");
  bench::shape_check(ring_dropped > 0 && ring_live <= 1024,
                     "ring stayed bounded: overwrote oldest, counted drops");
  return 0;
}
