// Socket transport round trips: what one PSB1 batch costs over loopback.
//
// A RemoteAgentServer wraps an in-process agent; a RemoteAgent dials it over
// tcp (127.0.0.1) and a unix-domain socket, and we measure query_batch wall
// time per sweep at several batch widths.  The contract under test doubles
// as the gate: the records that cross the socket must be byte-identical to
// the in-process agent's own answers, and one 64-element batch must beat 64
// single-element round trips by a wide margin (the length-chained framing
// amortises the per-trip syscall + poll cost exactly like the controller's
// batching amortises modelled channel time).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "perfsight/agent.h"
#include "perfsight/remote_agent.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"
#include "perfsight/transport.h"
#include "perfsight/wire.h"

using namespace perfsight;
using namespace perfsight::bench;

namespace {

constexpr size_t kElements = 64;
constexpr int kSweeps = 400;

class ConstSource : public StatsSource {
 public:
  ConstSource(ElementId id, uint64_t seed) : id_(std::move(id)) {
    attrs_ = {{attr::kRxPkts, static_cast<double>(1000000 + seed * 17)},
              {attr::kTxPkts, static_cast<double>(900000 + seed * 11)},
              {attr::kDropPkts, static_cast<double>(seed % 7)},
              {attr::kTxBytes, static_cast<double>(1500000000ull + seed)}};
  }
  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.element = id_;
    r.timestamp = now;
    r.attrs = attrs_;
    return r;
  }

 private:
  ElementId id_;
  std::vector<Attr> attrs_;
};

std::string record_bytes(const BatchResponse& b) {
  std::string out;
  for (const QueryResponse& r : b.responses) {
    out += to_wire(r.record);
    out += '|';
  }
  return out;
}

// Wall seconds for kSweeps batch round trips of `ids` against `remote`.
double sweep_seconds(RemoteAgent& remote, const std::vector<ElementId>& ids) {
  auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < kSweeps; ++s) {
    BatchResponse b = remote.query_batch(ids, SimTime::millis(s));
    PS_CHECK(b.responses.size() == ids.size());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  heading("PSB1 batch round trips over real sockets",
          "PerfSight (IMC'15) Sec. 3 distributed agents; transport layer");
  Reporter report("transport_roundtrip");
  note("%zu elements on one agent, %d sweeps per config", kElements, kSweeps);

  Agent agent("bench-agent", 1);
  std::vector<std::unique_ptr<ConstSource>> sources;
  std::vector<ElementId> ids;
  for (size_t e = 0; e < kElements; ++e) {
    sources.push_back(std::make_unique<ConstSource>(
        ElementId{"host/eth" + std::to_string(e)}, e));
    PS_CHECK(agent.add_element(sources.back().get()).is_ok());
    ids.push_back(sources.back()->id());
  }

  const std::string unix_path =
      "/tmp/ps-bench-" + std::to_string(::getpid()) + ".sock";
  struct Config {
    const char* name;
    transport::Endpoint ep;
  } configs[] = {
      {"tcp", transport::Endpoint::tcp("127.0.0.1", 0)},
      {"unix", transport::Endpoint::unix_path(unix_path)},
  };

  const std::string oracle =
      record_bytes(agent.query_batch(ids, SimTime::millis(0)));
  bool identical = true;
  double tcp_batch64_s = 0, tcp_single_s = 0;

  row({"transport", "batch", "sweep(us)", "elem(us)"});
  for (const Config& cfg : configs) {
    RemoteAgentServer server(&agent, cfg.ep);
    PS_CHECK(server.start().is_ok());
    RemoteAgent remote(server.endpoint());
    PS_CHECK(remote.connect().is_ok());

    identical = identical &&
                record_bytes(remote.query_batch(ids, SimTime::millis(0))) ==
                    oracle;

    for (size_t width : {1u, 16u, 64u}) {
      std::vector<ElementId> sub(ids.begin(), ids.begin() + width);
      double s = sweep_seconds(remote, sub);
      if (cfg.ep.kind == transport::Endpoint::Kind::kTcp) {
        if (width == 64) tcp_batch64_s = s;
        if (width == 1) tcp_single_s = s;
      }
      row({cfg.name, fmt("%.0f", static_cast<double>(width)),
           fmt("%.1f", s * 1e6 / kSweeps),
           fmt("%.2f", s * 1e6 / kSweeps / width)});
    }
  }

  // 64 elements per trip vs 64 trips of 1: the batch pays one syscall+poll
  // chain for the sweep, the singles pay it per element.
  const double amortisation = (tcp_single_s * 64.0) / tcp_batch64_s;
  note("tcp amortisation: 64x1 would cost %.2fx one 64-wide batch",
       amortisation);

  // The oracle's wire rendering is a pure function of the fixed fleet, so
  // its size gates; round-trip timings are loopback wall clock, info only.
  report.gate("oracle_record_bytes", static_cast<double>(oracle.size()));
  report.info("tcp_amortisation_64", amortisation);
  report.info("tcp_batch64_sweep_us", tcp_batch64_s * 1e6 / kSweeps);

  shape_check(identical,
              "records off the socket byte-identical to in-process agent");
  shape_check(amortisation >= 3.0,
              "64-wide batch >= 3x cheaper than 64 single-element trips");
  return 0;
}
