file(REMOVE_RECURSE
  "CMakeFiles/ablation_aux_signals.dir/ablation_aux_signals.cc.o"
  "CMakeFiles/ablation_aux_signals.dir/ablation_aux_signals.cc.o.d"
  "ablation_aux_signals"
  "ablation_aux_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aux_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
