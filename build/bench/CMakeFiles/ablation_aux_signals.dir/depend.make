# Empty dependencies file for ablation_aux_signals.
# This may be replaced when dependencies are built.
