file(REMOVE_RECURSE
  "CMakeFiles/ablation_backlog_limit.dir/ablation_backlog_limit.cc.o"
  "CMakeFiles/ablation_backlog_limit.dir/ablation_backlog_limit.cc.o.d"
  "ablation_backlog_limit"
  "ablation_backlog_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backlog_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
