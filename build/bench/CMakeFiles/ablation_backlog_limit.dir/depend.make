# Empty dependencies file for ablation_backlog_limit.
# This may be replaced when dependencies are built.
