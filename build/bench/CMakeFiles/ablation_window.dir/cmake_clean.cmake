file(REMOVE_RECURSE
  "CMakeFiles/ablation_window.dir/ablation_window.cc.o"
  "CMakeFiles/ablation_window.dir/ablation_window.cc.o.d"
  "ablation_window"
  "ablation_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
