
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/baseline_comparison.cc" "bench/CMakeFiles/baseline_comparison.dir/baseline_comparison.cc.o" "gcc" "bench/CMakeFiles/baseline_comparison.dir/baseline_comparison.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ps_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mbox/CMakeFiles/ps_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ps_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/ps_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsight/CMakeFiles/ps_perfsight.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/ps_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ps_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
