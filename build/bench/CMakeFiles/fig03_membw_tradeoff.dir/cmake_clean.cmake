file(REMOVE_RECURSE
  "CMakeFiles/fig03_membw_tradeoff.dir/fig03_membw_tradeoff.cc.o"
  "CMakeFiles/fig03_membw_tradeoff.dir/fig03_membw_tradeoff.cc.o.d"
  "fig03_membw_tradeoff"
  "fig03_membw_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_membw_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
