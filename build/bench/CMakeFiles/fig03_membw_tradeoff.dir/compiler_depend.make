# Empty compiler generated dependencies file for fig03_membw_tradeoff.
# This may be replaced when dependencies are built.
