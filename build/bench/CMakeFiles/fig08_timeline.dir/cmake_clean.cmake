file(REMOVE_RECURSE
  "CMakeFiles/fig08_timeline.dir/fig08_timeline.cc.o"
  "CMakeFiles/fig08_timeline.dir/fig08_timeline.cc.o.d"
  "fig08_timeline"
  "fig08_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
