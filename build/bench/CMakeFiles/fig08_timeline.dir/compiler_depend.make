# Empty compiler generated dependencies file for fig08_timeline.
# This may be replaced when dependencies are built.
