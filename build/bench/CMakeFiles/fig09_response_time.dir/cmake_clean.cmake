file(REMOVE_RECURSE
  "CMakeFiles/fig09_response_time.dir/fig09_response_time.cc.o"
  "CMakeFiles/fig09_response_time.dir/fig09_response_time.cc.o.d"
  "fig09_response_time"
  "fig09_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
