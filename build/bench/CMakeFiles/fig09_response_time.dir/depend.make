# Empty dependencies file for fig09_response_time.
# This may be replaced when dependencies are built.
