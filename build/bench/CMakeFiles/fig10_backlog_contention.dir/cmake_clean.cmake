file(REMOVE_RECURSE
  "CMakeFiles/fig10_backlog_contention.dir/fig10_backlog_contention.cc.o"
  "CMakeFiles/fig10_backlog_contention.dir/fig10_backlog_contention.cc.o.d"
  "fig10_backlog_contention"
  "fig10_backlog_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_backlog_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
