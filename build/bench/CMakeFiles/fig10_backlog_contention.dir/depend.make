# Empty dependencies file for fig10_backlog_contention.
# This may be replaced when dependencies are built.
