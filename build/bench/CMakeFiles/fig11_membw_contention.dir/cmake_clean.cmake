file(REMOVE_RECURSE
  "CMakeFiles/fig11_membw_contention.dir/fig11_membw_contention.cc.o"
  "CMakeFiles/fig11_membw_contention.dir/fig11_membw_contention.cc.o.d"
  "fig11_membw_contention"
  "fig11_membw_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_membw_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
