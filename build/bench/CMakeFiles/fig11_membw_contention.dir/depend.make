# Empty dependencies file for fig11_membw_contention.
# This may be replaced when dependencies are built.
