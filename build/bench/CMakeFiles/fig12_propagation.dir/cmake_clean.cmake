file(REMOVE_RECURSE
  "CMakeFiles/fig12_propagation.dir/fig12_propagation.cc.o"
  "CMakeFiles/fig12_propagation.dir/fig12_propagation.cc.o.d"
  "fig12_propagation"
  "fig12_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
