# Empty dependencies file for fig12_propagation.
# This may be replaced when dependencies are built.
