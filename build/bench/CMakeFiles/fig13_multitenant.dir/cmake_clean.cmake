file(REMOVE_RECURSE
  "CMakeFiles/fig13_multitenant.dir/fig13_multitenant.cc.o"
  "CMakeFiles/fig13_multitenant.dir/fig13_multitenant.cc.o.d"
  "fig13_multitenant"
  "fig13_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
