# Empty compiler generated dependencies file for fig13_multitenant.
# This may be replaced when dependencies are built.
