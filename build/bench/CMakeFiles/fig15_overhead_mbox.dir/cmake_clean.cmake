file(REMOVE_RECURSE
  "CMakeFiles/fig15_overhead_mbox.dir/fig15_overhead_mbox.cc.o"
  "CMakeFiles/fig15_overhead_mbox.dir/fig15_overhead_mbox.cc.o.d"
  "fig15_overhead_mbox"
  "fig15_overhead_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_overhead_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
