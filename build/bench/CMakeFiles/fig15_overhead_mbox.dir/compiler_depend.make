# Empty compiler generated dependencies file for fig15_overhead_mbox.
# This may be replaced when dependencies are built.
