file(REMOVE_RECURSE
  "CMakeFiles/fig16_poll_overhead.dir/fig16_poll_overhead.cc.o"
  "CMakeFiles/fig16_poll_overhead.dir/fig16_poll_overhead.cc.o.d"
  "fig16_poll_overhead"
  "fig16_poll_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_poll_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
