# Empty compiler generated dependencies file for fig16_poll_overhead.
# This may be replaced when dependencies are built.
