file(REMOVE_RECURSE
  "CMakeFiles/micro_counters.dir/micro_counters.cc.o"
  "CMakeFiles/micro_counters.dir/micro_counters.cc.o.d"
  "micro_counters"
  "micro_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
