# Empty compiler generated dependencies file for micro_counters.
# This may be replaced when dependencies are built.
