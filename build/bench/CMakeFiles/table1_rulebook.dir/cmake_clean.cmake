file(REMOVE_RECURSE
  "CMakeFiles/table1_rulebook.dir/table1_rulebook.cc.o"
  "CMakeFiles/table1_rulebook.dir/table1_rulebook.cc.o.d"
  "table1_rulebook"
  "table1_rulebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rulebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
