# Empty compiler generated dependencies file for table1_rulebook.
# This may be replaced when dependencies are built.
