file(REMOVE_RECURSE
  "CMakeFiles/table2_time_counter.dir/table2_time_counter.cc.o"
  "CMakeFiles/table2_time_counter.dir/table2_time_counter.cc.o.d"
  "table2_time_counter"
  "table2_time_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_time_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
