# Empty compiler generated dependencies file for table2_time_counter.
# This may be replaced when dependencies are built.
