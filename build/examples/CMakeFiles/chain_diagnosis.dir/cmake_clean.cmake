file(REMOVE_RECURSE
  "CMakeFiles/chain_diagnosis.dir/chain_diagnosis.cpp.o"
  "CMakeFiles/chain_diagnosis.dir/chain_diagnosis.cpp.o.d"
  "chain_diagnosis"
  "chain_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
