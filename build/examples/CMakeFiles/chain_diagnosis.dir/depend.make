# Empty dependencies file for chain_diagnosis.
# This may be replaced when dependencies are built.
