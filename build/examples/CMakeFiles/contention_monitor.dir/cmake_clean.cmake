file(REMOVE_RECURSE
  "CMakeFiles/contention_monitor.dir/contention_monitor.cpp.o"
  "CMakeFiles/contention_monitor.dir/contention_monitor.cpp.o.d"
  "contention_monitor"
  "contention_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
