# Empty compiler generated dependencies file for contention_monitor.
# This may be replaced when dependencies are built.
