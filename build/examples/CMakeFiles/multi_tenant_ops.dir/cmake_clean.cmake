file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_ops.dir/multi_tenant_ops.cpp.o"
  "CMakeFiles/multi_tenant_ops.dir/multi_tenant_ops.cpp.o.d"
  "multi_tenant_ops"
  "multi_tenant_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
