# Empty dependencies file for multi_tenant_ops.
# This may be replaced when dependencies are built.
