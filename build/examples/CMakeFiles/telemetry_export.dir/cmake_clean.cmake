file(REMOVE_RECURSE
  "CMakeFiles/telemetry_export.dir/telemetry_export.cpp.o"
  "CMakeFiles/telemetry_export.dir/telemetry_export.cpp.o.d"
  "telemetry_export"
  "telemetry_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
