# Empty compiler generated dependencies file for telemetry_export.
# This may be replaced when dependencies are built.
