file(REMOVE_RECURSE
  "CMakeFiles/ps_cluster.dir/scenarios.cc.o"
  "CMakeFiles/ps_cluster.dir/scenarios.cc.o.d"
  "libps_cluster.a"
  "libps_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
