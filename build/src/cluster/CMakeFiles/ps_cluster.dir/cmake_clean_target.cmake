file(REMOVE_RECURSE
  "libps_cluster.a"
)
