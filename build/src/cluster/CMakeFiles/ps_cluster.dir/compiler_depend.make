# Empty compiler generated dependencies file for ps_cluster.
# This may be replaced when dependencies are built.
