file(REMOVE_RECURSE
  "CMakeFiles/ps_common.dir/log.cc.o"
  "CMakeFiles/ps_common.dir/log.cc.o.d"
  "CMakeFiles/ps_common.dir/units.cc.o"
  "CMakeFiles/ps_common.dir/units.cc.o.d"
  "libps_common.a"
  "libps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
