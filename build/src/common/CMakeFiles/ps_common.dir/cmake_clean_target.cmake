file(REMOVE_RECURSE
  "libps_common.a"
)
