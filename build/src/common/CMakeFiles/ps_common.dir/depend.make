# Empty dependencies file for ps_common.
# This may be replaced when dependencies are built.
