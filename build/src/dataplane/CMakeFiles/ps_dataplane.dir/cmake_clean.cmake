file(REMOVE_RECURSE
  "CMakeFiles/ps_dataplane.dir/backlog.cc.o"
  "CMakeFiles/ps_dataplane.dir/backlog.cc.o.d"
  "CMakeFiles/ps_dataplane.dir/element.cc.o"
  "CMakeFiles/ps_dataplane.dir/element.cc.o.d"
  "CMakeFiles/ps_dataplane.dir/pnic.cc.o"
  "CMakeFiles/ps_dataplane.dir/pnic.cc.o.d"
  "CMakeFiles/ps_dataplane.dir/pumps.cc.o"
  "CMakeFiles/ps_dataplane.dir/pumps.cc.o.d"
  "libps_dataplane.a"
  "libps_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
