file(REMOVE_RECURSE
  "libps_dataplane.a"
)
