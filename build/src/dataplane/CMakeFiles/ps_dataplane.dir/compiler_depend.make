# Empty compiler generated dependencies file for ps_dataplane.
# This may be replaced when dependencies are built.
