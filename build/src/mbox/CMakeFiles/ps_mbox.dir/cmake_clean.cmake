file(REMOVE_RECURSE
  "CMakeFiles/ps_mbox.dir/app.cc.o"
  "CMakeFiles/ps_mbox.dir/app.cc.o.d"
  "CMakeFiles/ps_mbox.dir/stream.cc.o"
  "CMakeFiles/ps_mbox.dir/stream.cc.o.d"
  "libps_mbox.a"
  "libps_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
