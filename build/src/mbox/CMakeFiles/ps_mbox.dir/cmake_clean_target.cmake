file(REMOVE_RECURSE
  "libps_mbox.a"
)
