# Empty compiler generated dependencies file for ps_mbox.
# This may be replaced when dependencies are built.
