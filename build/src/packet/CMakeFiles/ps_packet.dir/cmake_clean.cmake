file(REMOVE_RECURSE
  "CMakeFiles/ps_packet.dir/queue.cc.o"
  "CMakeFiles/ps_packet.dir/queue.cc.o.d"
  "libps_packet.a"
  "libps_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
