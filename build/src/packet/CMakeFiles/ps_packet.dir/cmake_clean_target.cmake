file(REMOVE_RECURSE
  "libps_packet.a"
)
