# Empty compiler generated dependencies file for ps_packet.
# This may be replaced when dependencies are built.
