
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfsight/agent.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/agent.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/agent.cc.o.d"
  "/root/repo/src/perfsight/bottleneck.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/bottleneck.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/bottleneck.cc.o.d"
  "/root/repo/src/perfsight/contention.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/contention.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/contention.cc.o.d"
  "/root/repo/src/perfsight/controller.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/controller.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/controller.cc.o.d"
  "/root/repo/src/perfsight/hotpath.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/hotpath.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/hotpath.cc.o.d"
  "/root/repo/src/perfsight/json_export.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/json_export.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/json_export.cc.o.d"
  "/root/repo/src/perfsight/monitor.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/monitor.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/monitor.cc.o.d"
  "/root/repo/src/perfsight/remediation.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/remediation.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/remediation.cc.o.d"
  "/root/repo/src/perfsight/rootcause.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/rootcause.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/rootcause.cc.o.d"
  "/root/repo/src/perfsight/rulebook.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/rulebook.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/rulebook.cc.o.d"
  "/root/repo/src/perfsight/stats.cc" "src/perfsight/CMakeFiles/ps_perfsight.dir/stats.cc.o" "gcc" "src/perfsight/CMakeFiles/ps_perfsight.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
