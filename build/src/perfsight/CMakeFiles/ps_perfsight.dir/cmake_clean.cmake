file(REMOVE_RECURSE
  "CMakeFiles/ps_perfsight.dir/agent.cc.o"
  "CMakeFiles/ps_perfsight.dir/agent.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/bottleneck.cc.o"
  "CMakeFiles/ps_perfsight.dir/bottleneck.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/contention.cc.o"
  "CMakeFiles/ps_perfsight.dir/contention.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/controller.cc.o"
  "CMakeFiles/ps_perfsight.dir/controller.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/hotpath.cc.o"
  "CMakeFiles/ps_perfsight.dir/hotpath.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/json_export.cc.o"
  "CMakeFiles/ps_perfsight.dir/json_export.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/monitor.cc.o"
  "CMakeFiles/ps_perfsight.dir/monitor.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/remediation.cc.o"
  "CMakeFiles/ps_perfsight.dir/remediation.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/rootcause.cc.o"
  "CMakeFiles/ps_perfsight.dir/rootcause.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/rulebook.cc.o"
  "CMakeFiles/ps_perfsight.dir/rulebook.cc.o.d"
  "CMakeFiles/ps_perfsight.dir/stats.cc.o"
  "CMakeFiles/ps_perfsight.dir/stats.cc.o.d"
  "libps_perfsight.a"
  "libps_perfsight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_perfsight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
