file(REMOVE_RECURSE
  "libps_perfsight.a"
)
