# Empty dependencies file for ps_perfsight.
# This may be replaced when dependencies are built.
