
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/maxmin.cc" "src/resources/CMakeFiles/ps_resources.dir/maxmin.cc.o" "gcc" "src/resources/CMakeFiles/ps_resources.dir/maxmin.cc.o.d"
  "/root/repo/src/resources/pool.cc" "src/resources/CMakeFiles/ps_resources.dir/pool.cc.o" "gcc" "src/resources/CMakeFiles/ps_resources.dir/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
