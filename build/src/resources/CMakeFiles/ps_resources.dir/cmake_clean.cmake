file(REMOVE_RECURSE
  "CMakeFiles/ps_resources.dir/maxmin.cc.o"
  "CMakeFiles/ps_resources.dir/maxmin.cc.o.d"
  "CMakeFiles/ps_resources.dir/pool.cc.o"
  "CMakeFiles/ps_resources.dir/pool.cc.o.d"
  "libps_resources.a"
  "libps_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
