file(REMOVE_RECURSE
  "libps_resources.a"
)
