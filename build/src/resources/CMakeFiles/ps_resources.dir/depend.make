# Empty dependencies file for ps_resources.
# This may be replaced when dependencies are built.
