file(REMOVE_RECURSE
  "CMakeFiles/ps_sim.dir/simulator.cc.o"
  "CMakeFiles/ps_sim.dir/simulator.cc.o.d"
  "libps_sim.a"
  "libps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
