file(REMOVE_RECURSE
  "libps_sim.a"
)
