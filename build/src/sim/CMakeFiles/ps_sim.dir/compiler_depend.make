# Empty compiler generated dependencies file for ps_sim.
# This may be replaced when dependencies are built.
