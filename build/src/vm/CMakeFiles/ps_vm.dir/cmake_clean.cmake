file(REMOVE_RECURSE
  "CMakeFiles/ps_vm.dir/machine.cc.o"
  "CMakeFiles/ps_vm.dir/machine.cc.o.d"
  "libps_vm.a"
  "libps_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
