file(REMOVE_RECURSE
  "libps_vm.a"
)
