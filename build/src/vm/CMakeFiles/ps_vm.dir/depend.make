# Empty dependencies file for ps_vm.
# This may be replaced when dependencies are built.
