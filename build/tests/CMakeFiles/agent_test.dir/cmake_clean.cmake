file(REMOVE_RECURSE
  "CMakeFiles/agent_test.dir/agent_test.cc.o"
  "CMakeFiles/agent_test.dir/agent_test.cc.o.d"
  "agent_test"
  "agent_test.pdb"
  "agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
