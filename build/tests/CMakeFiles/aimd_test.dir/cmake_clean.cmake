file(REMOVE_RECURSE
  "CMakeFiles/aimd_test.dir/aimd_test.cc.o"
  "CMakeFiles/aimd_test.dir/aimd_test.cc.o.d"
  "aimd_test"
  "aimd_test.pdb"
  "aimd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aimd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
