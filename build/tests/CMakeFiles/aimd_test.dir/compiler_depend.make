# Empty compiler generated dependencies file for aimd_test.
# This may be replaced when dependencies are built.
