file(REMOVE_RECURSE
  "CMakeFiles/backlog_test.dir/backlog_test.cc.o"
  "CMakeFiles/backlog_test.dir/backlog_test.cc.o.d"
  "backlog_test"
  "backlog_test.pdb"
  "backlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
