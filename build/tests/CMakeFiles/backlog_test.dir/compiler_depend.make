# Empty compiler generated dependencies file for backlog_test.
# This may be replaced when dependencies are built.
