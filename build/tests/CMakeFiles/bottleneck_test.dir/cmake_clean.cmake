file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_test.dir/bottleneck_test.cc.o"
  "CMakeFiles/bottleneck_test.dir/bottleneck_test.cc.o.d"
  "bottleneck_test"
  "bottleneck_test.pdb"
  "bottleneck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
