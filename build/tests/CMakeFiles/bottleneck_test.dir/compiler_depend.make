# Empty compiler generated dependencies file for bottleneck_test.
# This may be replaced when dependencies are built.
