file(REMOVE_RECURSE
  "CMakeFiles/conservation_test.dir/conservation_test.cc.o"
  "CMakeFiles/conservation_test.dir/conservation_test.cc.o.d"
  "conservation_test"
  "conservation_test.pdb"
  "conservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
