# Empty compiler generated dependencies file for conservation_test.
# This may be replaced when dependencies are built.
