file(REMOVE_RECURSE
  "CMakeFiles/contention_unit_test.dir/contention_unit_test.cc.o"
  "CMakeFiles/contention_unit_test.dir/contention_unit_test.cc.o.d"
  "contention_unit_test"
  "contention_unit_test.pdb"
  "contention_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
