# Empty dependencies file for contention_unit_test.
# This may be replaced when dependencies are built.
