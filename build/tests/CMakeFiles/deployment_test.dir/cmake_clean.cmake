file(REMOVE_RECURSE
  "CMakeFiles/deployment_test.dir/deployment_test.cc.o"
  "CMakeFiles/deployment_test.dir/deployment_test.cc.o.d"
  "deployment_test"
  "deployment_test.pdb"
  "deployment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
