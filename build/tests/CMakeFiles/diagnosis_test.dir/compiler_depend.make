# Empty compiler generated dependencies file for diagnosis_test.
# This may be replaced when dependencies are built.
