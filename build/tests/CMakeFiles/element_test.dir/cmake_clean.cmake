file(REMOVE_RECURSE
  "CMakeFiles/element_test.dir/element_test.cc.o"
  "CMakeFiles/element_test.dir/element_test.cc.o.d"
  "element_test"
  "element_test.pdb"
  "element_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
