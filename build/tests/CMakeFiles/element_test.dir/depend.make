# Empty dependencies file for element_test.
# This may be replaced when dependencies are built.
