file(REMOVE_RECURSE
  "CMakeFiles/fabric_test.dir/fabric_test.cc.o"
  "CMakeFiles/fabric_test.dir/fabric_test.cc.o.d"
  "fabric_test"
  "fabric_test.pdb"
  "fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
