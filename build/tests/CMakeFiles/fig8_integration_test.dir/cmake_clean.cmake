file(REMOVE_RECURSE
  "CMakeFiles/fig8_integration_test.dir/fig8_integration_test.cc.o"
  "CMakeFiles/fig8_integration_test.dir/fig8_integration_test.cc.o.d"
  "fig8_integration_test"
  "fig8_integration_test.pdb"
  "fig8_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
