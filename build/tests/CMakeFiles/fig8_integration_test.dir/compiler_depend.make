# Empty compiler generated dependencies file for fig8_integration_test.
# This may be replaced when dependencies are built.
