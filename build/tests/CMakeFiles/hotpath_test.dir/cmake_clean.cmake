file(REMOVE_RECURSE
  "CMakeFiles/hotpath_test.dir/hotpath_test.cc.o"
  "CMakeFiles/hotpath_test.dir/hotpath_test.cc.o.d"
  "hotpath_test"
  "hotpath_test.pdb"
  "hotpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
