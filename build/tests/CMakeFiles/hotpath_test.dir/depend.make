# Empty dependencies file for hotpath_test.
# This may be replaced when dependencies are built.
