file(REMOVE_RECURSE
  "CMakeFiles/json_export_test.dir/json_export_test.cc.o"
  "CMakeFiles/json_export_test.dir/json_export_test.cc.o.d"
  "json_export_test"
  "json_export_test.pdb"
  "json_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
