# Empty dependencies file for json_export_test.
# This may be replaced when dependencies are built.
