file(REMOVE_RECURSE
  "CMakeFiles/maxmin_test.dir/maxmin_test.cc.o"
  "CMakeFiles/maxmin_test.dir/maxmin_test.cc.o.d"
  "maxmin_test"
  "maxmin_test.pdb"
  "maxmin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
