# Empty dependencies file for maxmin_test.
# This may be replaced when dependencies are built.
