file(REMOVE_RECURSE
  "CMakeFiles/pnic_test.dir/pnic_test.cc.o"
  "CMakeFiles/pnic_test.dir/pnic_test.cc.o.d"
  "pnic_test"
  "pnic_test.pdb"
  "pnic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
