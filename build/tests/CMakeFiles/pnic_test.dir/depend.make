# Empty dependencies file for pnic_test.
# This may be replaced when dependencies are built.
