file(REMOVE_RECURSE
  "CMakeFiles/pool_test.dir/pool_test.cc.o"
  "CMakeFiles/pool_test.dir/pool_test.cc.o.d"
  "pool_test"
  "pool_test.pdb"
  "pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
