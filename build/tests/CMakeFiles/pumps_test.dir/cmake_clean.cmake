file(REMOVE_RECURSE
  "CMakeFiles/pumps_test.dir/pumps_test.cc.o"
  "CMakeFiles/pumps_test.dir/pumps_test.cc.o.d"
  "pumps_test"
  "pumps_test.pdb"
  "pumps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pumps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
