# Empty compiler generated dependencies file for pumps_test.
# This may be replaced when dependencies are built.
