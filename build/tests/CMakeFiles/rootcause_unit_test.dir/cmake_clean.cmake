file(REMOVE_RECURSE
  "CMakeFiles/rootcause_unit_test.dir/rootcause_unit_test.cc.o"
  "CMakeFiles/rootcause_unit_test.dir/rootcause_unit_test.cc.o.d"
  "rootcause_unit_test"
  "rootcause_unit_test.pdb"
  "rootcause_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootcause_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
