# Empty compiler generated dependencies file for rootcause_unit_test.
# This may be replaced when dependencies are built.
