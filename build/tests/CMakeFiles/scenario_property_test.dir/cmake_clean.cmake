file(REMOVE_RECURSE
  "CMakeFiles/scenario_property_test.dir/scenario_property_test.cc.o"
  "CMakeFiles/scenario_property_test.dir/scenario_property_test.cc.o.d"
  "scenario_property_test"
  "scenario_property_test.pdb"
  "scenario_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
