# Empty dependencies file for scenario_property_test.
# This may be replaced when dependencies are built.
