file(REMOVE_RECURSE
  "CMakeFiles/stream_edge_test.dir/stream_edge_test.cc.o"
  "CMakeFiles/stream_edge_test.dir/stream_edge_test.cc.o.d"
  "stream_edge_test"
  "stream_edge_test.pdb"
  "stream_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
