# Empty dependencies file for stream_edge_test.
# This may be replaced when dependencies are built.
