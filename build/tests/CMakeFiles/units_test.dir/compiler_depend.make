# Empty compiler generated dependencies file for units_test.
# This may be replaced when dependencies are built.
