file(REMOVE_RECURSE
  "CMakeFiles/vswitch_test.dir/vswitch_test.cc.o"
  "CMakeFiles/vswitch_test.dir/vswitch_test.cc.o.d"
  "vswitch_test"
  "vswitch_test.pdb"
  "vswitch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vswitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
