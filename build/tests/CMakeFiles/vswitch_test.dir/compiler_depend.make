# Empty compiler generated dependencies file for vswitch_test.
# This may be replaced when dependencies are built.
