// Diagnosing a middlebox chain: the NFS-bug story from the paper's intro.
//
// A load balancer, a content filter and an HTTP server form a chain; the
// content filter writes logs synchronously to a shared NFS server.  A
// memory leak (CentOS bug 7267 in the paper) slowly degrades the NFS
// server, and the whole chain's throughput collapses — every middlebox
// LOOKS slow.  This example runs Algorithm 2 before and after the bug
// bites and shows PerfSight pinning the NFS server, not the middleboxes
// the symptoms point at.
#include <cstdio>

#include "cluster/scenarios.h"

using namespace perfsight;
using cluster::PropagationScenario;

int main() {
  std::printf("chain: client -> LB -> CF -> HTTP server;  CF logs to NFS\n");
  std::printf("all vNICs: 100 Mbps\n\n");

  // Healthy operation first.
  {
    PropagationScenario healthy(PropagationScenario::Case::kHealthy);
    healthy.settle();
    RootCauseReport r = healthy.diagnose();
    std::printf("--- healthy chain (client at 60 of 100 Mbps) ---\n%s",
                to_text(r).c_str());
    std::printf(
        "note: with the chain keeping up, every middlebox is ReadBlocked\n"
        "(waiting for work) and filtering leaves only the traffic source —\n"
        "no middlebox is implicated.\n\n");
  }

  // Now with the NFS memory leak.  The clients complain: end-to-end
  // throughput collapsed.  Naive monitoring blames the content filter (it
  // is the one visibly stalled), but its stall is propagation.
  {
    PropagationScenario buggy(PropagationScenario::Case::kBuggyNfs);
    buggy.settle(Duration::seconds(4.0));

    // What the tenant sees: bytes crawling through the chain.
    double in_mbps =
        static_cast<double>(buggy.cf1->stats().bytes_in.value()) * 8 /
        buggy.sim().now().sec() / 1e6;
    std::printf("--- after the NFS memory leak ---\n");
    std::printf("content filter is moving only ~%.0f Mbps (was ~100)\n\n",
                in_mbps);

    RootCauseReport r = buggy.diagnose();
    std::printf("%s\n", to_text(r).c_str());
    std::printf(
        "note: LB and CF are WriteBlocked (victims of propagation), the\n"
        "HTTP server is ReadBlocked (starved downstream), and the busy NFS\n"
        "server is the one that survives Algorithm 2's filtering.\n");
  }
  return 0;
}
