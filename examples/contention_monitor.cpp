// A continuously-running contention monitor: the operator-facing loop an
// infrastructure team would actually deploy.
//
// Every second it sweeps the virtualization-stack elements with Algorithm 1
// and prints a one-line status; when loss appears it prints the full
// report — drop location, contention vs bottleneck, candidate resources.
// The scenario underneath injects a memory hog halfway through, then a
// CPU hog inside one VM, so the monitor demonstrates both verdicts.
#include <cstdio>

#include "cluster/deployment.h"
#include "perfsight/contention.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;

int main() {
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine machine("m0", dp::StackParams{}, &sim);

  // Four tenant VMs receiving steady traffic.
  for (int i = 0; i < 4; ++i) {
    int v = machine.add_vm({"vm" + std::to_string(i), 1.0});
    machine.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    machine.route_flow_to_vm(f, v);
    machine.add_ingress_source("s" + std::to_string(i), f,
                               DataRate::gbps(1.2));
  }
  vm::MemHog* hog = machine.add_mem_hog("rogue-backup-job");
  vm::CpuHog* vm2_hog = machine.add_vm_cpu_hog(2);

  cluster::Deployment deployment(&sim);
  Agent* agent = deployment.add_agent("agent-m0");
  deployment.attach(&machine, agent);
  const TenantId tenant{1};
  PS_CHECK(deployment.assign(tenant, machine.tun(0)->id(), agent).is_ok());

  // Injections: a machine-wide memory hog at t=3s (cleared at 6s), then a
  // compute job inside vm2 at t=8s.
  sim.at(SimTime::seconds(3.0), [&] { hog->set_demand_bytes_per_sec(60e9); });
  sim.at(SimTime::seconds(6.0), [&] { hog->set_demand_bytes_per_sec(0); });
  sim.at(SimTime::seconds(8.0), [&] { vm2_hog->set_demand_cores(1.0); });

  ContentionDetector detector(deployment.controller(), RuleBook::standard());
  detector.set_loss_threshold(100);

  std::printf("monitoring %s every second...\n\n", machine.name().c_str());
  for (int t = 0; t < 11; ++t) {
    // diagnose() advances simulated time by the measurement window itself.
    ContentionReport r = detector.diagnose(tenant, Duration::seconds(1.0),
                                           machine.aux_signals());
    if (!r.problem_found) {
      std::printf("[t=%4.1fs] OK - no significant loss\n", sim.now().sec());
      continue;
    }
    std::printf("[t=%4.1fs] ALERT - %s\n", sim.now().sec(),
                r.narrative.c_str());
    std::printf("%s\n", to_text(r).c_str());
  }
  return 0;
}
