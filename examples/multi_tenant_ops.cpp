// The Fig. 13/14 operator story as a narrated walkthrough: detect a tenant
// bottleneck, distinguish it from machine-level contention, and fix both —
// migration for the contention, scale-out for the bottleneck.
#include <cstdio>

#include "cluster/scenarios.h"
#include "perfsight/rootcause.h"

using namespace perfsight;
using cluster::MultiTenantScenario;

namespace {

void report(MultiTenantScenario& s, const char* phase) {
  const Duration w = Duration::seconds(1.0);
  s.tenant1_throughput(w);  // reset meters
  s.tenant2_throughput(w);
  s.sim().run_for(w);
  std::printf("[%s]\n", phase);
  std::printf("  tenant1: %s   tenant2: %s\n",
              to_string(s.tenant1_throughput(w)).c_str(),
              to_string(s.tenant2_throughput(w)).c_str());
  std::printf("  LB1 TUN drops: %llu   LB2 TUN drops: %llu\n",
              (unsigned long long)s.lb1_vm->tun()->stats().drop_pkts.value(),
              (unsigned long long)s.lb2_vm->tun()->stats().drop_pkts.value());
}

}  // namespace

int main() {
  MultiTenantScenario s;
  RootCauseAnalyzer analyzer(s.deployment().controller());

  // Phase 1: tenant 2 complains.  Its LB is the bottleneck (processing
  // capacity 200 Mbps against 360 Mbps offered).
  s.sim().run_for(Duration::seconds(2.0));
  report(s, "phase 1: tenant 2 underperforms");
  RootCauseReport r2 =
      analyzer.analyze(MultiTenantScenario::kTenant2, Duration::seconds(1.0));
  std::printf("%s\n", to_text(r2).c_str());
  std::printf("-> the LB survives filtering while busy: tenant-2's own LB is "
              "the bottleneck.\n\n");

  // Phase 2: the operator's management task lands on the LB machine and
  // NOW tenant 1 complains too — that is contention, not a bottleneck.
  s.start_management_task(30e9);
  s.sim().run_for(Duration::seconds(2.0));
  report(s, "phase 2: management task on the LB machine");
  RootCauseReport r1 =
      analyzer.analyze(MultiTenantScenario::kTenant1, Duration::seconds(1.0));
  std::printf("%s", to_text(r1).c_str());
  std::printf("-> both tenants' LB VMs drop at their TUNs and read slowly: "
              "machine-level interference.\n\n");

  // Operator action 1: migrate the task away.
  s.stop_management_task();
  s.sim().run_for(Duration::seconds(2.0));
  report(s, "phase 3: task migrated away");
  std::printf("-> tenant 1 healthy again; tenant 2 still capped by its LB.\n\n");

  // Operator action 2: scale tenant 2's LB out.
  s.scale_out_tenant2();
  s.sim().run_for(Duration::seconds(2.0));
  report(s, "phase 4: tenant 2's LB scaled out");
  std::printf("-> tenant 2 reaches its full offered load.\n");
  return 0;
}
