// Quickstart: build a one-machine software dataplane, attach PerfSight,
// and ask the basic monitoring questions of Fig. 6 — throughput, packet
// loss, average packet size — through the controller API.
//
//   $ ./quickstart
//
// Walks through: (1) constructing a PhysicalMachine with two VMs, (2)
// routing an ingress flow to each, (3) wiring agents + controller, (4)
// running the simulation while querying element statistics.
#include <cstdio>

#include "cluster/deployment.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;

int main() {
  // --- 1. the software dataplane -----------------------------------------
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine machine("m0", dp::StackParams{}, &sim);

  int web_vm = machine.add_vm({"web", 1.0});
  int db_vm = machine.add_vm({"db", 1.0});
  machine.set_sink_app(web_vm);
  machine.set_sink_app(db_vm);

  // --- 2. tenant traffic ---------------------------------------------------
  FlowSpec to_web;
  to_web.id = FlowId{1};
  to_web.label = "internet->web";
  to_web.packet_size = 1500;
  machine.route_flow_to_vm(to_web, web_vm);
  machine.add_ingress_source("web-traffic", to_web, 800_mbps);

  FlowSpec to_db;
  to_db.id = FlowId{2};
  to_db.label = "web->db";
  to_db.packet_size = 512;
  machine.route_flow_to_vm(to_db, db_vm);
  machine.add_ingress_source("db-traffic", to_db, 200_mbps);

  // --- 3. PerfSight ----------------------------------------------------------
  cluster::Deployment deployment(&sim);
  Agent* agent = deployment.add_agent("agent-m0");
  deployment.attach(&machine, agent);
  const TenantId tenant{1};
  PS_CHECK(deployment.assign(tenant, machine.tun(web_vm)->id(), agent).is_ok());
  PS_CHECK(deployment.assign(tenant, machine.tun(db_vm)->id(), agent).is_ok());
  Controller* controller = deployment.controller();

  // --- 4. monitor -------------------------------------------------------------
  sim.run_for(Duration::seconds(1.0));  // warm up

  std::printf("elements on %s:\n", agent->name().c_str());
  for (const ElementId& id : agent->element_ids()) {
    std::printf("  %s\n", id.name.c_str());
  }

  // Fig. 6 utility routines.  Each takes two samples one window apart;
  // "sleeping" advances simulated time.
  const Duration window = Duration::seconds(1.0);
  auto tput = controller->get_throughput(tenant, machine.tun(web_vm)->id(),
                                         window);
  auto loss = controller->get_pkt_loss(tenant, machine.tun(web_vm)->id(),
                                       window);
  auto size = controller->get_avg_pkt_size(tenant, machine.tun(db_vm)->id(),
                                           window);
  std::printf("\nweb TUN throughput: %s\n", to_string(tput.value()).c_str());
  std::printf("web TUN packet loss over the window: %lld packets\n",
              static_cast<long long>(loss.value()));
  std::printf("db TUN average packet size: %.0f bytes\n", size.value());

  // Raw records in the paper's unified wire format.
  auto rec = controller->get_attr(
      tenant, machine.tun(web_vm)->id(),
      {attr::kRxPkts, attr::kTxPkts, attr::kDropPkts, attr::kQueuePkts});
  std::printf("\nraw record: %s\n", to_wire(rec.value()).c_str());
  return 0;
}
