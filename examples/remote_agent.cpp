// Remote agents over a real socket: the controller side of PerfSight talking
// to a per-server fleet stub through the PSB1/PSM1 wire protocol.
//
// One process plays both roles for the demo: two Agents — the machine's edge
// dataplane and its middlebox chain — share a single RemoteAgentServer on a
// unix-domain socket.  The server is one poll() event loop, so both agents
// (and any number of controllers) multiplex through one serve thread; the
// hello handshake advertises the roster, and Deployment::add_remote_agents
// dials once and binds one adapter per fleet member.  After that the
// controller cannot tell either apart from an in-process agent.  The second
// half tears a batch mid-frame to show the degradation contract: lost frames
// come back as kMissing blind spots ("unavailable after 1 attempt(s)"),
// never as silent absence.  The finale turns on fleet tracing: a traced
// query scatters with a trace context on the envelope, each agent's serve
// spans come back on its replies under its own process lane, and the merged
// Chrome trace lands in a file you can open at ui.perfetto.dev.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "cluster/deployment.h"
#include "perfsight/agent.h"
#include "perfsight/remote_agent.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"
#include "perfsight/trace.h"
#include "perfsight/transport.h"
#include "perfsight/wire.h"
#include "sim/simulator.h"

using namespace perfsight;

namespace {

class ConstSource : public StatsSource {
 public:
  ConstSource(ElementId id, double rx, double drop) : id_(std::move(id)) {
    attrs_ = {{attr::kRxPkts, rx},
              {attr::kTxPkts, rx * 0.97},
              {attr::kDropPkts, drop}};
  }
  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kProcFs; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.element = id_;
    r.timestamp = now;
    r.attrs = attrs_;
    return r;
  }

 private:
  ElementId id_;
  std::vector<Attr> attrs_;
};

}  // namespace

int main() {
  // --- the agents' machine: two agents, one serve loop ---------------------
  Agent edge("edge-0", /*seed=*/1);
  ConstSource tun{ElementId{"edge-0/vm0/tun"}, 125000, 40};
  ConstSource vnic{ElementId{"edge-0/vm0/vnic"}, 124960, 0};
  ConstSource pnic{ElementId{"edge-0/pnic"}, 250000, 2};
  for (ConstSource* s : {&tun, &vnic, &pnic}) {
    PS_CHECK(edge.add_element(s).is_ok());
  }

  Agent chain("chain-0", /*seed=*/2);
  ConstSource lb{ElementId{"chain-0/lb"}, 80000, 0};
  ConstSource nfs{ElementId{"chain-0/nfs"}, 79800, 120};
  for (ConstSource* s : {&lb, &nfs}) {
    PS_CHECK(chain.add_element(s).is_ok());
  }

  const std::string sock_path =
      "/tmp/perfsight-remote-agent-" + std::to_string(::getpid()) + ".sock";
  RemoteAgentServer server({&edge, &chain},
                           transport::Endpoint::unix_path(sock_path));
  PS_CHECK(server.start().is_ok());
  std::printf("fleet of 2 agents (%zu + %zu elements) serving on %s\n",
              edge.element_ids().size(), chain.element_ids().size(),
              server.endpoint().to_string().c_str());

  // --- the operator's controller: one dial binds the whole roster ----------
  sim::Simulator sim(Duration::millis(1));
  cluster::Deployment dep(&sim);
  Result<std::vector<RemoteAgent*>> fleet =
      dep.add_remote_agents(server.endpoint().to_string());
  PS_CHECK(fleet.ok());
  RemoteAgent* redge = fleet.value()[0];   // roster order = server order
  RemoteAgent* rchain = fleet.value()[1];
  std::printf("roster bound: '%s' and '%s'\n", redge->name().c_str(),
              rchain->name().c_str());

  const TenantId tenant{1};
  std::vector<ElementId> edge_ids, all_ids;
  for (ConstSource* s : {&tun, &vnic, &pnic}) {
    PS_CHECK(dep.assign_remote(tenant, s->id(), redge).is_ok());
    edge_ids.push_back(s->id());
    all_ids.push_back(s->id());
  }
  for (ConstSource* s : {&lb, &nfs}) {
    PS_CHECK(dep.assign_remote(tenant, s->id(), rchain).is_ok());
    all_ids.push_back(s->id());
  }

  // One scatter fans over both agents; both batches multiplex through the
  // same socket endpoint and the same serve thread.
  std::printf("\nGetAttr fan-in across the fleet:\n");
  for (const auto& r : dep.controller()->get_attr_many(
           tenant, all_ids, {attr::kRxPkts, attr::kDropPkts})) {
    if (r.ok()) {
      std::printf("  %s\n", to_wire(r.value().record).c_str());
    } else {
      std::printf("  error: %s\n", r.status().message().c_str());
    }
  }

  // --- a torn stream: lost frames become blind spots -----------------------
  // Keep the header and the first frame; kill the connection mid-batch.
  BatchResponse probe = redge->query_batch(edge_ids, sim.now());
  Result<std::string> f0 = wire::encode_frame(probe.responses[0]);
  PS_CHECK(f0.ok());
  server.inject_truncate_next_batch(wire::kBatchHeaderSize +
                                    f0.value().size());

  std::printf("\nsame query over a torn connection:\n");
  for (const auto& r : dep.controller()->get_attr_many(
           tenant, all_ids, {attr::kRxPkts, attr::kDropPkts})) {
    if (r.ok()) {
      std::printf("  %s\n", to_wire(r.value().record).c_str());
    } else {
      std::printf("  blind spot: %s\n", r.status().message().c_str());
    }
  }

  RemoteAgent::TransportStats stats = redge->transport_stats();
  std::printf(
      "\ntransport (edge-0 adapter): %llu connects, %llu reconnects, "
      "%llu batches, %llu damaged\n",
      static_cast<unsigned long long>(stats.connects),
      static_cast<unsigned long long>(stats.reconnects),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.damaged));

  // --- fleet tracing: one traced scatter, merged across processes ----------
  // Installing a recorder flips tracing on; the next query carries a trace
  // context over the wire, each agent's serve spans piggyback on its own
  // replies (lanes keyed by agent name), and an explicit harvest drains
  // whatever is left in the server's rings.
  {
    ScopedTraceRecorder scoped;
    for (const auto& r : dep.controller()->get_attr_many(
             tenant, all_ids, {attr::kRxPkts, attr::kDropPkts})) {
      PS_CHECK(r.ok());
    }
    PS_CHECK(redge->harvest_trace().is_ok());

    TraceRecorder& rec = scoped.recorder();
    size_t serve_spans = 0;
    for (const auto& lane : rec.remote_lanes()) {
      for (const TraceEvent& e : lane.events) {
        if (e.is_span()) ++serve_spans;
      }
    }
    std::printf(
        "\nfleet tracing: %zu local events, %zu remote lane(s), "
        "%zu remote span(s), clock offset %+lld ns\n",
        rec.events().size(), rec.num_remote_lanes(), serve_spans,
        static_cast<long long>(redge->clock_offset_ns()));

    const std::string path = "/tmp/perfsight-fleet-trace-" +
                             std::to_string(::getpid()) + ".json";
    std::ofstream out(path);
    out << to_chrome_trace(rec);
    PS_CHECK(out.good());
    std::printf("merged Chrome trace written to %s (ui.perfetto.dev)\n",
                path.c_str());
  }
  return 0;
}
