// Telemetry export: wiring PerfSight into a dashboard/log pipeline.
//
// Shows every machine-readable surface, end to end: (1) raw element records
// in the paper's wire format and in JSON, (2) time series collected by the
// Monitor, (3) a Prometheus-style metrics scrape covering element counters
// and PerfSight's own self-profiling, (4) an AlertWatcher rule firing on
// the drop-rate series and auto-running Algorithm 1, and (5) the flight
// recorder's Chrome-trace export of the whole episode (open it in
// chrome://tracing or ui.perfetto.dev).
#include <cstdio>

#include "cluster/deployment.h"
#include "perfsight/alert.h"
#include "perfsight/contention.h"
#include "perfsight/json_export.h"
#include "perfsight/metrics.h"
#include "perfsight/monitor.h"
#include "perfsight/remediation.h"
#include "perfsight/trace.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;

int main() {
  // Flight recorder on for the whole run: drops, queue watermarks, arbiter
  // shortfalls, alerts and diagnosis runs all land in per-element rings.
  ScopedTraceRecorder tracing;

  // A machine under memory contention (so there is something to report).
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine machine("m0", dp::StackParams{}, &sim);
  cluster::Deployment dep(&sim);
  for (int i = 0; i < 2; ++i) {
    int v = machine.add_vm({"vm" + std::to_string(i), 1.0});
    machine.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    machine.route_flow_to_vm(f, v);
    machine.add_ingress_source("s" + std::to_string(i), f,
                               DataRate::gbps(1.6));
  }
  machine.add_mem_hog("batch-job")->set_demand_bytes_per_sec(60e9);
  Agent* agent = dep.add_agent("agent-m0");
  dep.attach(&machine, agent);
  const TenantId tenant{1};
  PS_CHECK(dep.assign(tenant, machine.tun(0)->id(), agent).is_ok());

  // 1. Periodic sampling into time series.
  Monitor monitor(dep.controller(), tenant);
  monitor.watch(machine.tun(0)->id(), attr::kTxBytes);
  monitor.watch(machine.tun(0)->id(), attr::kDropPkts);
  for (int i = 0; i < 6; ++i) {
    sim.run_for(Duration::millis(500));
    monitor.sample();
  }

  // 2. Raw element records, both wire formats.
  auto rec = dep.controller()->get_attr(
      tenant, machine.tun(0)->id(),
      {attr::kRxPkts, attr::kTxPkts, attr::kDropPkts});
  std::printf("paper wire format:\n  %s\n", to_wire(rec.value()).c_str());
  std::printf("JSON:\n  %s\n\n", json::to_json(rec.value()).c_str());

  // 3. Time series -> rates.
  Monitor::Series drops =
      monitor.rates(machine.tun(0)->id(), attr::kDropPkts);
  std::printf("vm0 TUN drop rate series (pkts/s):");
  for (const auto& p : drops.points) {
    std::printf(" [%.1fs: %.0f]", p.t.sec(), p.value);
  }
  std::printf("\n\n");

  // 4. Alerting: a rule on the drop-rate series auto-runs Algorithm 1 when
  // it breaches — one-shot diagnosis turned into continuous monitoring.
  ContentionDetector detector(dep.controller(), RuleBook::standard());
  detector.set_loss_threshold(100);
  detector.set_metrics(dep.metrics());  // self-profile diagnosis latency
  AlertWatcher watcher(&monitor, &detector, nullptr);
  AlertRule rule;
  rule.name = "tun-drop-rate";
  rule.element = machine.tun(0)->id();
  rule.attr = attr::kDropPkts;
  rule.threshold = 1000;  // pkts/s
  watcher.add_rule(rule);
  for (const Alert& alert : watcher.check(machine.aux_signals())) {
    std::printf("%s\n", to_text(alert).c_str());
    std::printf("alert diagnosis JSON:\n  %s\n\n",
                json::to_json(alert.contention).c_str());
    RemediationAdvisor advisor;
    std::printf("%s", to_text(advisor.advise(alert.contention)).c_str());
  }

  // 5. Metrics scrape: element counters via the agents, channel and
  // diagnosis latency histograms, flight-recorder health — one text
  // exposition for any Prometheus-compatible collector.
  std::string exposition = dep.metrics()->expose(sim.now());
  std::printf("\nmetrics exposition (%zu bytes), excerpt:\n",
              exposition.size());
  size_t shown = 0;
  for (size_t pos = 0; pos < exposition.size() && shown < 12;) {
    size_t eol = exposition.find('\n', pos);
    if (eol == std::string::npos) eol = exposition.size();
    std::printf("  %s\n", exposition.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }

  // 6. Flight-recorder export: the whole episode as Chrome-trace JSON.
  std::string trace = to_chrome_trace(tracing.recorder());
  PS_CHECK(json::lint(trace).is_ok());
  std::printf("\nchrome trace: %zu events, %zu bytes of JSON "
              "(load in chrome://tracing or ui.perfetto.dev)\n",
              tracing.recorder().events().size(), trace.size());
  std::printf("trace excerpt: %s...\n", trace.substr(0, 200).c_str());
  return 0;
}
