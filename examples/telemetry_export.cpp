// Telemetry export: wiring PerfSight into a dashboard/log pipeline.
//
// Shows the three machine-readable surfaces: (1) raw element records in the
// paper's wire format and in JSON, (2) time series collected by the
// Monitor, (3) diagnosis reports (Algorithm 1) plus remediation advice as
// JSON — everything an operator console needs, end to end.
#include <cstdio>

#include "cluster/deployment.h"
#include "perfsight/contention.h"
#include "perfsight/json_export.h"
#include "perfsight/monitor.h"
#include "perfsight/remediation.h"
#include "sim/simulator.h"
#include "vm/machine.h"

using namespace perfsight;
using namespace perfsight::literals;

int main() {
  // A machine under memory contention (so there is something to report).
  sim::Simulator sim(Duration::millis(1));
  vm::PhysicalMachine machine("m0", dp::StackParams{}, &sim);
  cluster::Deployment dep(&sim);
  for (int i = 0; i < 2; ++i) {
    int v = machine.add_vm({"vm" + std::to_string(i), 1.0});
    machine.set_sink_app(v);
    FlowSpec f;
    f.id = FlowId{static_cast<uint32_t>(i + 1)};
    f.packet_size = 1500;
    machine.route_flow_to_vm(f, v);
    machine.add_ingress_source("s" + std::to_string(i), f,
                               DataRate::gbps(1.6));
  }
  machine.add_mem_hog("batch-job")->set_demand_bytes_per_sec(60e9);
  Agent* agent = dep.add_agent("agent-m0");
  dep.attach(&machine, agent);
  const TenantId tenant{1};
  PS_CHECK(dep.assign(tenant, machine.tun(0)->id(), agent).is_ok());

  // 1. Periodic sampling into time series.
  Monitor monitor(dep.controller(), tenant);
  monitor.watch(machine.tun(0)->id(), attr::kTxBytes);
  monitor.watch(machine.tun(0)->id(), attr::kDropPkts);
  for (int i = 0; i < 6; ++i) {
    sim.run_for(Duration::millis(500));
    monitor.sample();
  }

  // 2. Raw element records, both wire formats.
  auto rec = dep.controller()->get_attr(
      tenant, machine.tun(0)->id(),
      {attr::kRxPkts, attr::kTxPkts, attr::kDropPkts});
  std::printf("paper wire format:\n  %s\n", to_wire(rec.value()).c_str());
  std::printf("JSON:\n  %s\n\n", json::to_json(rec.value()).c_str());

  // 3. Time series -> rates.
  Monitor::Series drops =
      monitor.rates(machine.tun(0)->id(), attr::kDropPkts);
  std::printf("vm0 TUN drop rate series (pkts/s):");
  for (const auto& p : drops.points) {
    std::printf(" [%.1fs: %.0f]", p.t.sec(), p.value);
  }
  std::printf("\n\n");

  // 4. Diagnosis + remediation, machine readable.
  ContentionDetector detector(dep.controller(), RuleBook::standard());
  detector.set_loss_threshold(100);
  ContentionReport report = detector.diagnose(tenant, Duration::seconds(1.0),
                                              machine.aux_signals());
  std::printf("diagnosis JSON:\n  %s\n\n", json::to_json(report).c_str());
  RemediationAdvisor advisor;
  std::printf("%s", to_text(advisor.advise(report)).c_str());
  return 0;
}
