// Deployment: wires PerfSight over a simulated cluster.
//
// One Agent per physical machine, one Controller for the operator, plus the
// tenant bookkeeping the controller needs (which elements belong to which
// tenant, which middleboxes form which chain).  The controller's
// "sleep(T)" is bound to the simulator, so Fig. 6's interval-based
// utilities advance simulated time.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "mbox/app.h"
#include "mbox/stream.h"
#include "perfsight/agent.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/metrics.h"
#include "perfsight/remote_agent.h"
#include "perfsight/rootcause.h"
#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight::cluster {

class Deployment {
 public:
  // `poll_workers` sizes the collection pool that fans agent polling,
  // metrics scrapes and diagnosis sweeps out across threads.  The default
  // of 1 spawns no threads at all, preserving the exact sequential
  // behaviour (and simulated-time determinism) of existing scenarios;
  // wall-clock deployments pass ThreadPool::default_workers().
  explicit Deployment(sim::Simulator* sim, size_t poll_workers = 1)
      : sim_(sim),
        pool_(poll_workers),
        controller_(
            [sim](Duration d) {
              sim->run_for(d);
              return sim->now();
            },
            [sim] { return sim->now(); }) {
    metrics_.set_pool(&pool_);
    // Multi-element controller queries (get_attr_many and everything built
    // on it) scatter per-agent batches over the same collection pool.
    controller_.set_pool(&pool_);
    controller_.set_metrics(&metrics_);
  }

  sim::Simulator* simulator() { return sim_; }
  Controller* controller() { return &controller_; }

  // The deployment-wide collection pool (hand it to ContentionDetector /
  // Monitor / Agent batch calls that should fan out).
  ThreadPool* pool() { return &pool_; }

  // Deployment-wide metrics registry: every agent added below is scraped by
  // expose(), so one endpoint covers the whole cluster.
  MetricsRegistry* metrics() { return &metrics_; }

  Agent* add_agent(const std::string& name) {
    agents_.push_back(std::make_unique<Agent>(name));
    Agent* a = agents_.back().get();
    controller_.register_agent(a);
    metrics_.add_agent(a);
    // Agents added after fault config was set inherit it.
    if (fault_plan_ != nullptr) a->set_fault_plan(fault_plan_);
    if (retry_set_) a->set_retry_policy(retry_);
    if (breaker_set_) a->set_breaker_config(breaker_);
    if (adaptive_set_) a->set_adaptive_budget(adaptive_);
    return a;
  }

  // Registers a socket-backed agent: dials `endpoint_spec` (see
  // transport::Endpoint::parse — "tcp:<host>:<port>" or "unix:<path>"),
  // completes the hello handshake, and registers the adapter with the
  // controller.  The scatter-gather path then treats it exactly like an
  // in-process agent; transport loss degrades to kMissing blind spots.
  // The deployment-wide retry/breaker config drives its reconnect policy.
  // `agent_name` binds the adapter to that entry of a fleet server's
  // roster; empty binds the primary (the only agent of a single-agent
  // server) over the pre-roster protocol.
  Result<RemoteAgent*> add_remote_agent(const std::string& endpoint_spec,
                                        const std::string& agent_name = {}) {
    Result<transport::Endpoint> ep = transport::Endpoint::parse(endpoint_spec);
    if (!ep.ok()) return ep.status();
    auto remote =
        std::make_unique<RemoteAgent>(std::move(ep).take(), agent_name);
    if (retry_set_) remote->set_retry_policy(retry_);
    if (breaker_set_) remote->set_breaker_config(breaker_);
    Status st = remote->connect();
    if (!st.is_ok()) return st;
    remote->set_metrics(&metrics_);
    RemoteAgent* r = remote.get();
    remote_agents_.push_back(std::move(remote));
    controller_.register_agent(r);
    return r;
  }

  // Fleet form: dials `endpoint_spec` once unbound to learn the server's
  // roster, then binds one adapter per hosted agent (each with its own
  // connection into the server's event loop) and registers them all.
  // Returned pointers follow roster order (primary first).  Fails without
  // registering anything if any dial fails.
  Result<std::vector<RemoteAgent*>> add_remote_agents(
      const std::string& endpoint_spec) {
    Result<transport::Endpoint> ep = transport::Endpoint::parse(endpoint_spec);
    if (!ep.ok()) return ep.status();
    // A scout connection reads the roster off the hello; it binds the
    // primary, so it is kept as the primary's adapter rather than redialed.
    auto scout = std::make_unique<RemoteAgent>(ep.value());
    if (retry_set_) scout->set_retry_policy(retry_);
    if (breaker_set_) scout->set_breaker_config(breaker_);
    Status st = scout->connect();
    if (!st.is_ok()) return st;
    const std::vector<std::string> roster = scout->roster_names();

    std::vector<std::unique_ptr<RemoteAgent>> pending;
    pending.push_back(std::move(scout));
    for (size_t i = 1; i < roster.size(); ++i) {
      auto remote = std::make_unique<RemoteAgent>(ep.value(), roster[i]);
      if (retry_set_) remote->set_retry_policy(retry_);
      if (breaker_set_) remote->set_breaker_config(breaker_);
      Status dial = remote->connect();
      if (!dial.is_ok()) return dial;  // nothing registered yet: clean fail
      pending.push_back(std::move(remote));
    }

    std::vector<RemoteAgent*> out;
    out.reserve(pending.size());
    for (auto& remote : pending) {
      remote->set_metrics(&metrics_);
      RemoteAgent* r = remote.get();
      remote_agents_.push_back(std::move(remote));
      controller_.register_agent(r);
      out.push_back(r);
    }
    return out;
  }

  // Maps a tenant's element to a socket-backed agent (the remote mirror of
  // assign()).
  Status assign_remote(TenantId tenant, const ElementId& id, RemoteAgent* r) {
    return controller_.register_element(tenant, id, r);
  }

  // Declares `agent` a read replica for a tenant's element (quorum reads):
  // when the primary fails, get_attr_many and get_attr_q fall back to the
  // replica before declaring a blind spot, annotating the answer
  // DataQuality::kReplica.  Works for in-process and remote agents alike.
  Status mirror_element(TenantId tenant, const ElementId& id,
                        AgentClient* agent) {
    return controller_.register_mirror(tenant, id, agent);
  }

  // One reconnect's element-set delta on one socket-backed agent, as
  // surfaced by its hello diff (see RemoteAgent::RosterDiff).
  struct RemoteRosterDelta {
    RemoteAgent* agent = nullptr;
    RemoteAgent::RosterDiff diff;
  };
  // Drains the roster diffs every remote adapter observed at reconnects,
  // oldest first per agent.  Removed elements are already answered as
  // "departed at reconnect" blind spots by the adapter; added elements are
  // already servable (the reconnect hello registered them — no redial).
  // This view lets scenarios log or re-plan around fleet churn.
  std::vector<RemoteRosterDelta> drain_remote_roster_diffs() {
    std::vector<RemoteRosterDelta> out;
    for (auto& r : remote_agents_) {
      for (RemoteAgent::RosterDiff& d : r->drain_roster_diffs()) {
        out.push_back(RemoteRosterDelta{r.get(), std::move(d)});
      }
    }
    return out;
  }

  // --- fault tolerance (deployment-wide) ------------------------------------
  // Installs a fault plan / retry policy / breaker config on every agent,
  // current and future.  The plan is not owned unless it came from
  // use_env_fault_plan().
  void set_fault_plan(const FaultPlan* plan) {
    fault_plan_ = plan;
    for (auto& a : agents_) a->set_fault_plan(plan);
    // The exposition reports campaign state (perfsight_fault_campaign_active)
    // and per-agent breaker gauges while a plan is armed.
    metrics_.set_fault_plan(plan);
  }
  void set_retry_policy(RetryPolicy p) {
    retry_ = p;
    retry_set_ = true;
    for (auto& a : agents_) a->set_retry_policy(p);
  }
  void set_breaker_config(CircuitBreakerConfig c) {
    breaker_ = c;
    breaker_set_ = true;
    for (auto& a : agents_) a->set_breaker_config(c);
  }
  // Adaptive retry budgets (observed per-kind p99 × max attempts) on every
  // in-process agent, current and future.  Off by default; the fixed-budget
  // path is byte-identical when disabled.
  void set_adaptive_budget(bool on) {
    adaptive_ = on;
    adaptive_set_ = true;
    for (auto& a : agents_) a->set_adaptive_budget(on);
  }
  // Adopts PERFSIGHT_FAULTS from the environment (CI fault matrix; scenario
  // binaries call this so operators can rerun any scenario under faults).
  // Returns true when a plan was installed.
  bool use_env_fault_plan() {
    env_plan_ = FaultPlan::from_env();
    if (!env_plan_.has_value()) return false;
    set_fault_plan(&env_plan_.value());
    return true;
  }
  const FaultPlan* fault_plan() const { return fault_plan_; }

  // Aggregate view of one sweep's collection quality: how many responses
  // came back at each DataQuality level (scenarios print this so fault runs
  // are self-describing).
  struct SweepQuality {
    size_t fresh = 0;
    size_t replica = 0;  // served by a quorum read replica, not the primary
    size_t stale = 0;
    size_t torn = 0;
    size_t missing = 0;
    size_t total() const { return fresh + replica + stale + torn + missing; }
  };
  static SweepQuality summarize(
      const std::vector<std::vector<QueryResponse>>& sweep) {
    SweepQuality q;
    for (const auto& per_agent : sweep) {
      for (const QueryResponse& r : per_agent) {
        switch (r.quality) {
          case DataQuality::kFresh:
            ++q.fresh;
            break;
          case DataQuality::kReplica:
            ++q.replica;
            break;
          case DataQuality::kStale:
            ++q.stale;
            break;
          case DataQuality::kTorn:
            ++q.torn;
            break;
          case DataQuality::kMissing:
            ++q.missing;
            break;
        }
      }
    }
    return q;
  }

  // One cluster-wide poll sweep (the Fig. 16 workload at fleet scale):
  // every agent polls its elements, independent agents in parallel across
  // the collection pool.  Responses come back grouped by agent in
  // registration order — each agent's RNG is its own, so the result is
  // identical at any pool size.
  std::vector<std::vector<QueryResponse>> poll_sweep(SimTime now) {
    std::vector<std::vector<QueryResponse>> out(agents_.size());
    parallel_for_or_inline(&pool_, agents_.size(), [&](size_t i) {
      out[i] = agents_[i]->poll_all(now);
    });
    return out;
  }

  // Registers every element of a packet-path machine with `agent` and
  // declares its virtualization-stack elements to the controller.
  void attach(vm::PhysicalMachine* machine, Agent* agent) {
    for (const ElementId& id : machine->register_elements(agent)) {
      controller_.register_stack_element(agent, id);
    }
  }
  // Same for a stream machine.
  void attach(mbox::StreamMachine* machine, Agent* agent) {
    for (const ElementId& id : machine->register_elements(agent)) {
      controller_.register_stack_element(agent, id);
    }
  }

  // Tenant bookkeeping.
  Status assign(TenantId tenant, const ElementId& id, Agent* agent) {
    return controller_.register_element(tenant, id, agent);
  }
  // Declares a stream app a middlebox of `tenant` (node of its chain).
  Status add_middlebox(TenantId tenant, const mbox::StreamApp* app,
                       Agent* agent) {
    Status st = controller_.register_element(tenant, app->id(), agent);
    if (!st.is_ok()) return st;
    controller_.register_middlebox(tenant, app->id());
    return Status::ok();
  }
  void chain(TenantId tenant, const mbox::StreamApp* from,
             const mbox::StreamApp* to) {
    controller_.add_chain_edge(tenant, from->id(), to->id());
  }

 private:
  sim::Simulator* sim_;
  ThreadPool pool_;
  Controller controller_;
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<std::unique_ptr<RemoteAgent>> remote_agents_;
  // Fault config replayed onto agents added later.
  const FaultPlan* fault_plan_ = nullptr;
  std::optional<FaultPlan> env_plan_;
  RetryPolicy retry_;
  CircuitBreakerConfig breaker_;
  bool retry_set_ = false;
  bool breaker_set_ = false;
  bool adaptive_ = false;
  bool adaptive_set_ = false;
};

}  // namespace perfsight::cluster
