// Deployment: wires PerfSight over a simulated cluster.
//
// One Agent per physical machine, one Controller for the operator, plus the
// tenant bookkeeping the controller needs (which elements belong to which
// tenant, which middleboxes form which chain).  The controller's
// "sleep(T)" is bound to the simulator, so Fig. 6's interval-based
// utilities advance simulated time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "mbox/app.h"
#include "mbox/stream.h"
#include "perfsight/agent.h"
#include "perfsight/contention.h"
#include "perfsight/controller.h"
#include "perfsight/metrics.h"
#include "perfsight/rootcause.h"
#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight::cluster {

class Deployment {
 public:
  // `poll_workers` sizes the collection pool that fans agent polling,
  // metrics scrapes and diagnosis sweeps out across threads.  The default
  // of 1 spawns no threads at all, preserving the exact sequential
  // behaviour (and simulated-time determinism) of existing scenarios;
  // wall-clock deployments pass ThreadPool::default_workers().
  explicit Deployment(sim::Simulator* sim, size_t poll_workers = 1)
      : sim_(sim),
        pool_(poll_workers),
        controller_(
            [sim](Duration d) {
              sim->run_for(d);
              return sim->now();
            },
            [sim] { return sim->now(); }) {
    metrics_.set_pool(&pool_);
  }

  sim::Simulator* simulator() { return sim_; }
  Controller* controller() { return &controller_; }

  // The deployment-wide collection pool (hand it to ContentionDetector /
  // Monitor / Agent batch calls that should fan out).
  ThreadPool* pool() { return &pool_; }

  // Deployment-wide metrics registry: every agent added below is scraped by
  // expose(), so one endpoint covers the whole cluster.
  MetricsRegistry* metrics() { return &metrics_; }

  Agent* add_agent(const std::string& name) {
    agents_.push_back(std::make_unique<Agent>(name));
    controller_.register_agent(agents_.back().get());
    metrics_.add_agent(agents_.back().get());
    return agents_.back().get();
  }

  // One cluster-wide poll sweep (the Fig. 16 workload at fleet scale):
  // every agent polls its elements, independent agents in parallel across
  // the collection pool.  Responses come back grouped by agent in
  // registration order — each agent's RNG is its own, so the result is
  // identical at any pool size.
  std::vector<std::vector<QueryResponse>> poll_sweep(SimTime now) {
    std::vector<std::vector<QueryResponse>> out(agents_.size());
    parallel_for_or_inline(&pool_, agents_.size(), [&](size_t i) {
      out[i] = agents_[i]->poll_all(now);
    });
    return out;
  }

  // Registers every element of a packet-path machine with `agent` and
  // declares its virtualization-stack elements to the controller.
  void attach(vm::PhysicalMachine* machine, Agent* agent) {
    for (const ElementId& id : machine->register_elements(agent)) {
      controller_.register_stack_element(agent, id);
    }
  }
  // Same for a stream machine.
  void attach(mbox::StreamMachine* machine, Agent* agent) {
    for (const ElementId& id : machine->register_elements(agent)) {
      controller_.register_stack_element(agent, id);
    }
  }

  // Tenant bookkeeping.
  Status assign(TenantId tenant, const ElementId& id, Agent* agent) {
    return controller_.register_element(tenant, id, agent);
  }
  // Declares a stream app a middlebox of `tenant` (node of its chain).
  Status add_middlebox(TenantId tenant, const mbox::StreamApp* app,
                       Agent* agent) {
    Status st = controller_.register_element(tenant, app->id(), agent);
    if (!st.is_ok()) return st;
    controller_.register_middlebox(tenant, app->id());
    return Status::ok();
  }
  void chain(TenantId tenant, const mbox::StreamApp* from,
             const mbox::StreamApp* to) {
    controller_.add_chain_edge(tenant, from->id(), to->id());
  }

 private:
  sim::Simulator* sim_;
  ThreadPool pool_;
  Controller controller_;
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Agent>> agents_;
};

}  // namespace perfsight::cluster
