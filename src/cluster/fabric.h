// SwitchFabric: the hardware network connecting physical machines (and the
// cloud gateway to the outside world).
//
// The paper treats the fabric as a given — packets leave one server's pNIC
// and arrive at another's (Fig. 2) — so the model is a non-blocking switch:
// a transmitted batch is steered by its flow id either to the destination
// machine's pNIC (where line rate and ring capacity apply) or out of the
// cloud (counted per flow: this is where end-to-end tenant goodput is
// measured).  Cross-machine middlebox chains on the packet path hang
// together through this class.
#pragma once

#include <unordered_map>

#include "common/status.h"
#include "packet/flow.h"
#include "vm/machine.h"

namespace perfsight::cluster {

class SwitchFabric {
 public:
  // Takes over `m`'s pNIC tx sink; call once per machine, before routing.
  void attach(vm::PhysicalMachine* m) {
    m->pnic()->set_tx_sink([this](PacketBatch b) { deliver(std::move(b)); });
  }

  // Traffic of `flow` goes to `dst`'s pNIC.
  void route_flow(FlowId flow, vm::PhysicalMachine* dst) {
    routes_[flow] = dst;
  }
  // Traffic of `flow` leaves the cloud (gateway egress); counted.
  void route_flow_external(FlowId flow) { routes_[flow] = nullptr; }

  uint64_t external_bytes(FlowId flow) const {
    auto it = external_bytes_.find(flow);
    return it == external_bytes_.end() ? 0 : it->second;
  }
  uint64_t external_packets(FlowId flow) const {
    auto it = external_pkts_.find(flow);
    return it == external_pkts_.end() ? 0 : it->second;
  }
  // Packets whose flow had no route (configuration error surface).
  uint64_t unrouted_packets() const { return unrouted_pkts_; }

 private:
  void deliver(PacketBatch b) {
    auto it = routes_.find(b.flow);
    if (it == routes_.end()) {
      unrouted_pkts_ += b.packets;
      return;
    }
    if (it->second == nullptr) {
      external_pkts_[b.flow] += b.packets;
      external_bytes_[b.flow] += b.bytes;
      return;
    }
    it->second->pnic()->offer_rx(std::move(b));
  }

  std::unordered_map<FlowId, vm::PhysicalMachine*> routes_;
  std::unordered_map<FlowId, uint64_t> external_bytes_;
  std::unordered_map<FlowId, uint64_t> external_pkts_;
  uint64_t unrouted_pkts_ = 0;
};

}  // namespace perfsight::cluster
