#include "cluster/scenarios.h"

namespace perfsight::cluster {

using namespace literals;
using mbox::StreamAppConfig;
using mbox::StreamConnConfig;
using mbox::StreamVmConfig;

// ---------------------------------------------------------------------------
// PropagationScenario (Fig. 12)
// ---------------------------------------------------------------------------

PropagationScenario::PropagationScenario(Case c)
    : sim_(Duration::millis(1)) {
  machine_ = std::make_unique<mbox::StreamMachine>(
      mbox::StreamMachineConfig{"m0", 8, 25.0e9, 16.0}, &sim_);
  deployment_ = std::make_unique<Deployment>(&sim_);

  auto vm = [&](const std::string& vm_name) {
    StreamVmConfig cfg;
    cfg.name = vm_name;
    cfg.vnic = 100_mbps;
    return machine_->add_vm(cfg);
  };
  mbox::StreamVm* vm_client = vm("vm-client");
  mbox::StreamVm* vm_lb = vm("vm-lb");
  mbox::StreamVm* vm_cf1 = vm("vm-cf1");
  mbox::StreamVm* vm_cf2 = vm("vm-cf2");
  mbox::StreamVm* vm_nfs = vm("vm-nfs");
  mbox::StreamVm* vm_s1 = vm("vm-s1");
  mbox::StreamVm* vm_s2 = vm("vm-s2");

  auto conn = [&](const std::string& cname, mbox::StreamVm* s,
                  mbox::StreamVm* d) {
    StreamConnConfig cfg;
    cfg.name = cname;
    return machine_->connect(s, d, cfg);
  };
  mbox::StreamConn* c_client_lb = conn("client-lb", vm_client, vm_lb);
  mbox::StreamConn* c_lb_cf1 = conn("lb-cf1", vm_lb, vm_cf1);
  mbox::StreamConn* c_lb_cf2 = conn("lb-cf2", vm_lb, vm_cf2);
  mbox::StreamConn* c_cf1_s1 = conn("cf1-s1", vm_cf1, vm_s1);
  mbox::StreamConn* c_cf2_s2 = conn("cf2-s2", vm_cf2, vm_s2);
  mbox::StreamConn* c_cf1_nfs = conn("cf1-nfs", vm_cf1, vm_nfs);
  mbox::StreamConn* c_cf2_nfs = conn("cf2-nfs", vm_cf2, vm_nfs);

  // Apps.  The measured traffic runs through branch 1 (client POSTs target
  // server 1, as in the paper's dashed box).
  StreamAppConfig client_cfg;
  switch (c) {
    case Case::kUnderloadedClient:
      client_cfg = mbox::presets::client(15_mbps);
      break;
    case Case::kHealthy:
      // Comfortable operating point: the chain keeps up with the offer.
      client_cfg = mbox::presets::client(60_mbps);
      break;
    default:
      client_cfg = mbox::presets::client_unbounded();
  }
  client = machine_->add_app(vm_client, "client", client_cfg);
  client->add_output(c_client_lb, 1.0);

  lb = machine_->add_app(vm_lb, "lb", mbox::presets::load_balancer());
  lb->add_input(c_client_lb);
  lb->add_output(c_lb_cf1, 1.0);
  lb->add_output(c_lb_cf2, 0.0);

  cf1 = machine_->add_app(vm_cf1, "cf1", mbox::presets::content_filter());
  cf1->add_input(c_lb_cf1);
  cf1->add_output(c_cf1_s1, 1.0);
  cf1->add_output(c_cf1_nfs, 0.1);  // synchronous logging, 10% of volume

  cf2 = machine_->add_app(vm_cf2, "cf2", mbox::presets::content_filter());
  cf2->add_input(c_lb_cf2);
  cf2->add_output(c_cf2_s2, 1.0);
  cf2->add_output(c_cf2_nfs, 0.1);

  DataRate s1_rate =
      c == Case::kOverloadedServer ? 30_mbps : DataRate::mbps(10000);
  server1 = machine_->add_app(vm_s1, "server1", mbox::presets::server(s1_rate));
  server1->add_input(c_cf1_s1);
  server2 = machine_->add_app(vm_s2, "server2",
                              mbox::presets::server(DataRate::mbps(10000)));
  server2->add_input(c_cf2_s2);

  DataRate nfs_rate =
      c == Case::kBuggyNfs ? DataRate::mbps(1) : DataRate::mbps(10000);
  nfs = machine_->add_app(vm_nfs, "nfs", mbox::presets::server(nfs_rate));
  nfs->add_input(c_cf1_nfs);
  nfs->add_input(c_cf2_nfs);

  // PerfSight wiring.
  Agent* agent = deployment_->add_agent("agent-m0");
  deployment_->attach(machine_.get(), agent);
  for (mbox::StreamApp* app :
       {client, lb, cf1, cf2, nfs, server1, server2}) {
    Status st = deployment_->add_middlebox(kTenant, app, agent);
    PS_CHECK(st.is_ok());
  }
  deployment_->chain(kTenant, client, lb);
  deployment_->chain(kTenant, lb, cf1);
  deployment_->chain(kTenant, lb, cf2);
  deployment_->chain(kTenant, cf1, server1);
  deployment_->chain(kTenant, cf2, server2);
  deployment_->chain(kTenant, cf1, nfs);
  deployment_->chain(kTenant, cf2, nfs);
}

// ---------------------------------------------------------------------------
// MultiTenantScenario (Fig. 13/14)
// ---------------------------------------------------------------------------

MultiTenantScenario::MultiTenantScenario() : sim_(Duration::millis(1)) {
  edge_machine_ = std::make_unique<mbox::StreamMachine>(
      mbox::StreamMachineConfig{"edge", 16, 50.0e9, 16.0}, &sim_);
  lb_machine_ = std::make_unique<mbox::StreamMachine>(
      mbox::StreamMachineConfig{"m-lb", 8, 25.0e9, 16.0}, &sim_);
  deployment_ = std::make_unique<Deployment>(&sim_);

  auto edge_vm = [&](const std::string& n, DataRate r) {
    StreamVmConfig cfg;
    cfg.name = n;
    cfg.vnic = r;
    return edge_machine_->add_vm(cfg);
  };
  auto lb_vm = [&](const std::string& n, DataRate r) {
    StreamVmConfig cfg;
    cfg.name = n;
    cfg.vnic = r;
    return lb_machine_->add_vm(cfg);
  };

  mbox::StreamVm* vm_c1 = edge_vm("vm-client1", 500_mbps);
  mbox::StreamVm* vm_c2 = edge_vm("vm-client2", 500_mbps);
  mbox::StreamVm* vm_s1 = edge_vm("vm-server1", 500_mbps);
  mbox::StreamVm* vm_s2 = edge_vm("vm-server2", 500_mbps);
  lb1_vm = lb_vm("vm-lb1", 500_mbps);
  lb2_vm = lb_vm("vm-lb2", 500_mbps);
  mbox::StreamVm* vm_lb2b = lb_vm("vm-lb2b", 500_mbps);

  auto conn = [&](const std::string& n, mbox::StreamVm* s, mbox::StreamVm* d) {
    StreamConnConfig cfg;
    cfg.name = n;
    // Cross-machine connections are owned by the LB machine for stepping.
    return lb_machine_->connect(s, d, cfg);
  };
  mbox::StreamConn* c1_lb1 = conn("c1-lb1", vm_c1, lb1_vm);
  mbox::StreamConn* lb1_s1 = conn("lb1-s1", lb1_vm, vm_s1);
  mbox::StreamConn* c2_lb2 = conn("c2-lb2", vm_c2, lb2_vm);
  mbox::StreamConn* lb2_s2 = conn("lb2-s2", lb2_vm, vm_s2);
  mbox::StreamConn* c2_lb2b = conn("c2-lb2b", vm_c2, vm_lb2b);
  mbox::StreamConn* lb2b_s2 = conn("lb2b-s2", vm_lb2b, vm_s2);
  t1_server_conn_ = lb1_s1;
  t2_server_conn_ = lb2_s2;
  t2_server_conn_b_ = lb2b_s2;

  client1 = lb_machine_->add_app(vm_c1, "client1",
                                 mbox::presets::client(180_mbps));
  client1->add_output(c1_lb1, 1.0);
  lb1 = lb_machine_->add_app(lb1_vm, "lb1", mbox::presets::load_balancer());
  lb1->add_input(c1_lb1);
  lb1->add_output(lb1_s1, 1.0);
  server1 = lb_machine_->add_app(vm_s1, "server1",
                                 mbox::presets::server(DataRate::gbps(10)));
  server1->add_input(lb1_s1);

  client2 = lb_machine_->add_app(vm_c2, "client2",
                                 mbox::presets::client(360_mbps));
  // Until scale-out, everything goes to lb2.
  client2->add_output(c2_lb2, 1.0);
  client2->add_output(c2_lb2b, 0.0);
  StreamAppConfig lb2_cfg = mbox::presets::load_balancer();
  lb2_cfg.proc_bytes_per_sec = (200_mbps).bytes_per_sec();  // the bottleneck
  lb2 = lb_machine_->add_app(lb2_vm, "lb2", lb2_cfg);
  lb2->add_input(c2_lb2);
  lb2->add_output(lb2_s2, 1.0);
  lb2b = lb_machine_->add_app(vm_lb2b, "lb2b", lb2_cfg);
  lb2b->add_input(c2_lb2b);
  lb2b->add_output(lb2b_s2, 1.0);
  server2 = lb_machine_->add_app(vm_s2, "server2",
                                 mbox::presets::server(DataRate::gbps(10)));
  server2->add_input(lb2_s2);
  server2->add_input(lb2b_s2);

  Agent* lb_agent = deployment_->add_agent("agent-m-lb");
  Agent* edge_agent = deployment_->add_agent("agent-edge");
  deployment_->attach(lb_machine_.get(), lb_agent);
  deployment_->attach(edge_machine_.get(), edge_agent);

  // NOTE: apps were added through lb_machine_, so they register there.
  for (auto [tenant, app] :
       {std::pair{kTenant1, client1}, {kTenant1, lb1}, {kTenant1, server1}}) {
    PS_CHECK(deployment_->add_middlebox(tenant, app, lb_agent).is_ok());
  }
  for (auto [tenant, app] : {std::pair{kTenant2, client2}, {kTenant2, lb2},
                             {kTenant2, lb2b}, {kTenant2, server2}}) {
    PS_CHECK(deployment_->add_middlebox(tenant, app, lb_agent).is_ok());
  }
  deployment_->chain(kTenant1, client1, lb1);
  deployment_->chain(kTenant1, lb1, server1);
  deployment_->chain(kTenant2, client2, lb2);
  deployment_->chain(kTenant2, lb2, server2);
  deployment_->chain(kTenant2, client2, lb2b);
  deployment_->chain(kTenant2, lb2b, server2);
}

void MultiTenantScenario::start_management_task(double bytes_per_sec) {
  if (mgmt_task_ == nullptr) {
    mgmt_task_ = lb_machine_->add_mem_hog("mgmt-task");
  }
  mgmt_task_->set_demand_bytes_per_sec(bytes_per_sec);
}

void MultiTenantScenario::stop_management_task() {
  if (mgmt_task_ != nullptr) mgmt_task_->set_demand_bytes_per_sec(0);
}

void MultiTenantScenario::scale_out_tenant2() {
  // Reroute half of tenant 2's traffic to the new instance.  The client's
  // outputs are independent, so this is a share change.
  client2->set_output_share(0, 0.5);
  client2->set_output_share(1, 0.5);
}

DataRate MultiTenantScenario::tenant1_throughput(Duration dt) {
  uint64_t now_bytes = t1_server_conn_->delivered_bytes();
  uint64_t delta = now_bytes - t1_last_;
  t1_last_ = now_bytes;
  return rate_of(delta, dt);
}

DataRate MultiTenantScenario::tenant2_throughput(Duration dt) {
  uint64_t now_bytes =
      t2_server_conn_->delivered_bytes() + t2_server_conn_b_->delivered_bytes();
  uint64_t delta = now_bytes - t2_last_;
  t2_last_ = now_bytes;
  return rate_of(delta, dt);
}

// ---------------------------------------------------------------------------
// Fig8Scenario
// ---------------------------------------------------------------------------

Fig8Scenario::Fig8Scenario() : sim_(Duration::millis(1)) {
  dp::StackParams params;
  params.pnic_rate = 10_gbps;
  // Fast virtio enqueue path, so a guest small-packet flood can outrun the
  // per-core backlog processing rate (the Fig. 8 / Fig. 10 mechanism).
  params.qemu_cost_per_pkt = 0.25e-6;
  machine_ = std::make_unique<vm::PhysicalMachine>("m0", params, &sim_);
  deployment_ = std::make_unique<Deployment>(&sim_);

  // 8 VMs: vm0, vm1 are middlebox (load-balancer) VMs; vm2..vm7 tenants.
  for (int i = 0; i < 8; ++i) {
    machine_->add_vm({"vm" + std::to_string(i), 1.0});
  }

  // Long-lived flows traversing the two middlebox VMs (forward and leave).
  uint32_t next_flow = 1;
  for (int i = 0; i < kNumMb; ++i) {
    FlowSpec in;
    in.id = FlowId{next_flow++};
    in.label = "mb" + std::to_string(i) + "-in";
    in.packet_size = 1500;
    FlowId out{next_flow++};
    dp::ForwardApp::Config fwd;
    fwd.capacity = DataRate::gbps(5);  // LB software itself is not a limit
    fwd.egress_flow = out;
    machine_->set_forward_app(i, fwd);
    machine_->route_flow_to_vm(in, i);
    machine_->route_flow_to_wire(out, in.label + "-out");
    mb_sources_.push_back(
        machine_->add_ingress_source(in.label, in, 400_mbps));
  }

  // Tenant sink VMs receive background traffic (victims of the rx flood).
  // vm6 is reserved as the egress flooder below (one app per VM).
  for (int i = kNumMb; i < 8; ++i) {
    if (i == 6) continue;
    machine_->set_sink_app(i);
    FlowSpec f;
    f.id = FlowId{next_flow++};
    f.label = "tenant" + std::to_string(i);
    f.packet_size = 1500;
    machine_->route_flow_to_vm(f, i);
    machine_->add_ingress_source(f.label, f, 200_mbps);
  }

  // Injection machinery (idle until scheduled).
  FlowSpec flood;
  flood.id = FlowId{next_flow++};
  flood.label = "rx-flood";
  flood.packet_size = 1500;
  machine_->route_flow_to_vm(flood, 5);  // received by a non-mb VM
  flood_source_ = machine_->add_ingress_source("rx-flood", flood,
                                               DataRate::zero());

  FlowSpec egress_flood;
  egress_flood.id = FlowId{next_flow++};
  egress_flood.label = "tx-flood";
  egress_flood.packet_size = 64;
  egress_flood.direction = FlowDirection::kEgress;
  dp::SourceApp::Config src_cfg;
  src_cfg.flow = egress_flood;
  src_cfg.rate = DataRate::zero();
  src_cfg.cost_per_pkt = 0.05e-6;
  egress_flood_ = machine_->set_source_app(6, src_cfg);
  machine_->route_flow_to_wire(egress_flood.id, "tx-flood-out");
  // The flood and one middlebox flow share a backlog core.
  machine_->pin_flow_to_core(egress_flood.id, 0);
  machine_->pin_flow_to_core(FlowId{1}, 0);

  for (int i = 2; i < 5; ++i) {
    tenant_cpu_hogs_.push_back(machine_->add_vm_cpu_hog(i));
  }
  for (int i = 0; i < 3; ++i) {
    tenant_mem_hogs_.push_back(
        machine_->add_mem_hog("tenant-mem-hog" + std::to_string(i)));
  }
  mb_internal_hog_ = machine_->add_vm_cpu_hog(0);

  Agent* agent = deployment_->add_agent("agent-m0");
  deployment_->attach(machine_.get(), agent);
}

void Fig8Scenario::schedule_phases(Duration phase) {
  auto at_phase = [&](int n, std::function<void()> fn) {
    sim_.at(SimTime::nanos(phase.ns() * n), std::move(fn));
  };
  // Phase 1 (10-20 s): rx flood overwhelms the pNIC.
  at_phase(1, [this] { flood_source_->set_rate(DataRate::gbps(12)); });
  at_phase(2, [this] { flood_source_->set_rate(DataRate::zero()); });
  // Phase 3 (30-40 s): tenant VM floods small egress packets.
  at_phase(3, [this] { egress_flood_->set_rate(DataRate::gbps(2)); });
  at_phase(4, [this] { egress_flood_->set_rate(DataRate::zero()); });
  // Phase 5 (50-60 s): tenant VMs run CPU-intensive workloads.  Demanding
  // far beyond their vCPUs oversubscribes the host.
  at_phase(5, [this] {
    for (auto* h : tenant_cpu_hogs_) h->set_demand_cores(8.0);
  });
  at_phase(6, [this] {
    for (auto* h : tenant_cpu_hogs_) h->set_demand_cores(0.0);
  });
  // Phase 7 (70-80 s): tenant VMs hammer the memory bus.  Demands well
  // beyond the bus capacity: proportional arbitration lets a determined
  // memcpy stream squeeze the copy-heavy hypervisor I/O handlers.
  at_phase(7, [this] {
    for (auto* h : tenant_mem_hogs_) h->set_demand_bytes_per_sec(20e9);
  });
  at_phase(8, [this] {
    for (auto* h : tenant_mem_hogs_) h->set_demand_bytes_per_sec(0);
  });
  // Phase 9 (90-100 s): CPU hog inside one middlebox VM.
  at_phase(9, [this] { mb_internal_hog_->set_demand_cores(1.0); });
  at_phase(10, [this] { mb_internal_hog_->set_demand_cores(0.0); });
}

DataRate Fig8Scenario::mb_throughput(Duration dt) {
  uint64_t total = 0;
  for (int i = 0; i < kNumMb; ++i) {
    total += machine_->app(i)->stats().bytes_out.value();
  }
  uint64_t delta = total - mb_bytes_last_;
  mb_bytes_last_ = total;
  return rate_of(delta, dt);
}

}  // namespace perfsight::cluster
