// Reusable scenario builders for the paper's evaluation setups.  Benches
// and integration tests share these so the topology under test is identical
// in both.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/deployment.h"
#include "mbox/presets.h"

namespace perfsight::cluster {

// --- Fig. 12: multi-chain propagation ---------------------------------------
//
//   client -> LB -> CF1 -> server1      CF1 --+
//                -> CF2 -> server2      CF2 --+-> NFS (shared log store)
//
// All vNICs 100 Mbps; the measured datapath is the branch through CF1.
class PropagationScenario {
 public:
  enum class Case {
    kHealthy,            // nothing injected
    kOverloadedServer,   // fast client, server1 service-limited (Fig. 12b)
    kUnderloadedClient,  // client uploads slowly (Fig. 12c)
    kBuggyNfs,           // NFS memory leak degrades its service (Fig. 12d)
  };

  explicit PropagationScenario(Case c);

  // Runs warm-up so states settle before diagnosis.
  void settle(Duration d = Duration::seconds(2.0)) { sim_.run_for(d); }

  RootCauseReport diagnose(Duration window = Duration::seconds(1.0)) {
    RootCauseAnalyzer analyzer(deployment_->controller());
    return analyzer.analyze(kTenant, window);
  }

  static constexpr TenantId kTenant{1};

  sim::Simulator& sim() { return sim_; }
  Deployment& deployment() { return *deployment_; }
  mbox::StreamMachine& machine() { return *machine_; }

  mbox::StreamApp* client = nullptr;
  mbox::StreamApp* lb = nullptr;
  mbox::StreamApp* cf1 = nullptr;
  mbox::StreamApp* cf2 = nullptr;
  mbox::StreamApp* nfs = nullptr;
  mbox::StreamApp* server1 = nullptr;
  mbox::StreamApp* server2 = nullptr;

 private:
  sim::Simulator sim_;
  std::unique_ptr<mbox::StreamMachine> machine_;
  std::unique_ptr<Deployment> deployment_;
};

// --- Fig. 13/14: multi-tenant operator workflow -------------------------------
//
// Two tenants, each client -> LB -> server; both LBs placed on one physical
// machine.  Tenant 1 offers 180 Mbps; tenant 2 offers 360 Mbps but its LB
// can only process 200 Mbps.  The operator then (a) suffers a memory-
// intensive management task on the LB machine, (b) migrates it away, and
// (c) scales tenant 2's LB out to a second instance.
class MultiTenantScenario {
 public:
  MultiTenantScenario();

  // Operator actions (scheduled by benches at Fig. 13's phase boundaries).
  void start_management_task(double bytes_per_sec = 24e9);
  void stop_management_task();
  void scale_out_tenant2();

  // Tenant goodput over the last sampling interval.
  DataRate tenant1_throughput(Duration dt);
  DataRate tenant2_throughput(Duration dt);

  static constexpr TenantId kTenant1{1};
  static constexpr TenantId kTenant2{2};

  sim::Simulator& sim() { return sim_; }
  Deployment& deployment() { return *deployment_; }
  mbox::StreamMachine& lb_machine() { return *lb_machine_; }

  mbox::StreamApp* client1 = nullptr;
  mbox::StreamApp* lb1 = nullptr;
  mbox::StreamApp* server1 = nullptr;
  mbox::StreamApp* client2 = nullptr;
  mbox::StreamApp* lb2 = nullptr;
  mbox::StreamApp* lb2b = nullptr;  // scale-out instance (idle until used)
  mbox::StreamApp* server2 = nullptr;
  mbox::StreamVm* lb1_vm = nullptr;
  mbox::StreamVm* lb2_vm = nullptr;

 private:
  sim::Simulator sim_;
  std::unique_ptr<mbox::StreamMachine> edge_machine_;  // clients + servers
  std::unique_ptr<mbox::StreamMachine> lb_machine_;
  std::unique_ptr<Deployment> deployment_;
  vm::MemHog* mgmt_task_ = nullptr;
  mbox::StreamConn* t1_server_conn_ = nullptr;
  mbox::StreamConn* t2_server_conn_ = nullptr;
  mbox::StreamConn* t2_server_conn_b_ = nullptr;
  uint64_t t1_last_ = 0;
  uint64_t t2_last_ = 0;
};

// --- Fig. 8: timeline of injected problems on one packet-path machine ---------
//
// 8 VMs (2 middlebox forwarders, 6 tenant VMs).  Long-lived flows traverse
// the middlebox VMs; over time the scenario injects: an rx flood (10-20 s),
// an egress small-packet flood (30-40 s), tenant CPU hogs (50-60 s), tenant
// memory hogs (70-80 s), and a CPU hog inside one middlebox VM (90-100 s).
class Fig8Scenario {
 public:
  Fig8Scenario();

  // Schedules all phases on the simulator (phase length `phase`).
  void schedule_phases(Duration phase = Duration::seconds(10.0));

  sim::Simulator& sim() { return sim_; }
  Deployment& deployment() { return *deployment_; }
  vm::PhysicalMachine& machine() { return *machine_; }

  static constexpr TenantId kTenant{1};
  static constexpr int kNumMb = 2;

  // Middlebox VM indices [0, kNumMb); tenant VMs fill the rest.
  int mb_vm(int i) const { return i; }
  // Aggregate middlebox goodput since the last call.
  DataRate mb_throughput(Duration dt);

 private:
  sim::Simulator sim_;
  std::unique_ptr<vm::PhysicalMachine> machine_;
  std::unique_ptr<Deployment> deployment_;
  std::vector<vm::IngressSource*> mb_sources_;
  vm::IngressSource* flood_source_ = nullptr;
  dp::SourceApp* egress_flood_ = nullptr;
  std::vector<vm::CpuHog*> tenant_cpu_hogs_;
  std::vector<vm::MemHog*> tenant_mem_hogs_;
  vm::CpuHog* mb_internal_hog_ = nullptr;
  uint64_t mb_bytes_last_ = 0;
};

}  // namespace perfsight::cluster
