// Identifier types for the entities PerfSight reasons about.
//
// Element identifiers are hierarchical strings ("m0/tun.vm2", "m1/pnic") so
// that agents and the controller can address them without a shared numeric
// registry — matching the paper's record format where an element is named by
// a device-like string (e.g. "eth0").  Machine / VM / tenant / flow ids are
// small integer handles used inside the simulator where speed matters.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace perfsight {

// Strongly typed integral handle.  Tag makes MachineId, VmId, ... distinct.
template <typename Tag>
class Handle {
 public:
  constexpr Handle() = default;
  explicit constexpr Handle(uint32_t v) : v_(v) {}
  constexpr uint32_t value() const { return v_; }
  constexpr auto operator<=>(const Handle&) const = default;

 private:
  uint32_t v_ = 0;
};

struct MachineTag {};
struct VmTag {};
struct TenantTag {};
struct FlowTag {};
struct AppTag {};

using MachineId = Handle<MachineTag>;
using VmId = Handle<VmTag>;
using TenantId = Handle<TenantTag>;
using FlowId = Handle<FlowTag>;
using AppId = Handle<AppTag>;

// Name of one software-dataplane element, unique within the cluster.
struct ElementId {
  std::string name;

  bool operator==(const ElementId&) const = default;
  auto operator<=>(const ElementId&) const = default;
};

inline ElementId element_id(std::string name) { return ElementId{std::move(name)}; }

}  // namespace perfsight

template <typename Tag>
struct std::hash<perfsight::Handle<Tag>> {
  size_t operator()(perfsight::Handle<Tag> h) const noexcept {
    return std::hash<uint32_t>{}(h.value());
  }
};

template <>
struct std::hash<perfsight::ElementId> {
  size_t operator()(const perfsight::ElementId& e) const noexcept {
    return std::hash<std::string>{}(e.name);
  }
};
