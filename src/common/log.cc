#include "common/log.h"

#include <atomic>

namespace perfsight {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_impl(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  char line[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof(line), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), line);
}

}  // namespace perfsight
