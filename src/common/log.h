// Tiny leveled logger.
//
// The simulator is single-threaded; benches may log from a polling thread,
// so emission is a single stdio call (atomic enough for line-oriented logs).
// Level is process-global and defaults to kWarn so tests stay quiet.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace perfsight {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_impl(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace perfsight

#define PS_LOG_DEBUG(...) \
  ::perfsight::log_impl(::perfsight::LogLevel::kDebug, __VA_ARGS__)
#define PS_LOG_INFO(...) \
  ::perfsight::log_impl(::perfsight::LogLevel::kInfo, __VA_ARGS__)
#define PS_LOG_WARN(...) \
  ::perfsight::log_impl(::perfsight::LogLevel::kWarn, __VA_ARGS__)
#define PS_LOG_ERROR(...) \
  ::perfsight::log_impl(::perfsight::LogLevel::kError, __VA_ARGS__)
