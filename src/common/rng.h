// Deterministic pseudo-random number generation (PCG32).
//
// Everything stochastic in the simulator draws from a seeded Pcg32 so that
// scenarios, tests and benches are exactly reproducible run to run.
#pragma once

#include <cstdint>

namespace perfsight {

// PCG-XSH-RR 64/32 (Melissa O'Neill, pcg-random.org; minimal variant).
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  uint32_t next_u32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // Uniform in [0, bound) without modulo bias.
  uint32_t next_below(uint32_t bound) {
    if (bound <= 1) return 0;
    uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u32()) / 4294967296.0;
  }

  // Uniform in [lo, hi].
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace perfsight
