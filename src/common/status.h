// Minimal Status / Result types for recoverable errors.
//
// The query path (controller → agent → element) can fail in expected ways —
// unknown element, unknown attribute, channel timeout — which callers must
// handle; those paths return Status / Result<T>.  Programming errors
// (violated invariants) use PS_CHECK and abort.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace perfsight {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kUnavailable,
  kFailedPrecondition,
  kDeadlineExceeded,
};

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status not_found(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status invalid_argument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status failed_precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  // A query (or its retry budget) ran past its deadline.  Distinct from
  // kUnavailable: the channel may be healthy but slow, and callers with
  // budgets treat the two differently.
  static Status deadline_exceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return message_.empty() ? "error" : message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-status.  `value()` asserts success; check `ok()` first on paths
// where failure is expected.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!value_) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.to_string().c_str());
      std::abort();
    }
    return *value_;
  }
  T& value() & {
    return const_cast<T&>(static_cast<const Result*>(this)->value());
  }
  T&& take() && {
    value();  // abort on error
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace perfsight

// Invariant check: aborts with location on failure.  Used for programmer
// errors only, never for input validation.
#define PS_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PS_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
