#include "common/threadpool.h"

#include <algorithm>

namespace perfsight {

ThreadPool::ThreadPool(size_t workers) {
  if (workers <= 1) return;  // inline mode: no threads
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::run(std::function<void()> fn) {
  if (sequential()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  if (sequential()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return active_ == 0 && queue_.empty(); });
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (sequential() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // One contiguous chunk per worker (or per index when n < workers); the
  // caller blocks on a local completion latch rather than wait_idle() so
  // overlapping parallel_for calls from different threads don't interfere.
  const size_t chunks = std::min(workers(), n);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;  // first `extra` chunks get one more

  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  } latch{{}, {}, chunks};

  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    run([&body, &latch, begin, end] {
      for (size_t i = begin; i < end; ++i) body(i);
      std::lock_guard<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_one();
    });
    begin = end;
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
}

size_t ThreadPool::default_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace perfsight
