// Fixed-size thread pool for the parallel collection runtime.
//
// PerfSight's agent polling is embarrassingly parallel — independent
// elements, independent agents — but every cost is paid serially in the
// seed implementation.  This pool is the one concurrency primitive the
// collection layer builds on: a plain FIFO task queue behind one mutex (no
// work stealing; collection tasks are uniform enough that stealing buys
// nothing and costs determinism-debugging pain).
//
// Determinism contract: a pool constructed with `workers <= 1` spawns no
// threads at all — run() and parallel_for() execute inline on the caller,
// so simulated-time scenarios keep their exact sequential behaviour (same
// RNG consumption order, same trace-event order).  Callers that need
// byte-identical output at any pool size must draw their per-task
// randomness before fanning out and merge results by a stable key; the
// collection paths in perfsight/ do exactly that.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perfsight {

class ThreadPool {
 public:
  // `workers <= 1` selects inline (sequential) mode: no threads are spawned
  // and every task runs on the calling thread.
  explicit ThreadPool(size_t workers = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (1 in inline mode).
  size_t workers() const { return threads_.empty() ? 1 : threads_.size(); }
  bool sequential() const { return threads_.empty(); }

  // Enqueues one task (inline mode: runs it immediately).  Tasks must not
  // throw; an escaping exception terminates the process.
  void run(std::function<void()> fn);

  // Blocks until every task submitted so far has completed.
  void wait_idle();

  // Runs body(i) for every i in [0, n), partitioned into one contiguous
  // chunk per worker, and blocks until all indices are done.  Index-to-chunk
  // assignment is deterministic; chunk *execution order* is not (unless the
  // pool is sequential, which runs 0..n-1 in order on the caller).
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  // A sensible worker count for wall-clock workloads: hardware concurrency,
  // at least 1.
  static size_t default_workers();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: queue non-empty/stop
  std::condition_variable idle_cv_;  // signals wait_idle: all work drained
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// Runs body(i) for i in [0, n): through `pool` when it is non-null and
// parallel, inline otherwise.  The collection paths use this so a null pool
// (the default everywhere) means "exactly the sequential seed behaviour".
inline void parallel_for_or_inline(ThreadPool* pool, size_t n,
                                   const std::function<void(size_t)>& body) {
  if (pool != nullptr && !pool->sequential() && n > 1) {
    pool->parallel_for(n, body);
  } else {
    for (size_t i = 0; i < n; ++i) body(i);
  }
}

}  // namespace perfsight
