#include "common/units.h"

#include <cstdio>

namespace perfsight {

namespace {
std::string format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string to_string(SimTime t) { return format("%.3fms", t.ms()); }

std::string to_string(Duration d) { return format("%.3fms", d.ms()); }

std::string to_string(DataRate r) {
  if (r.bits_per_sec() >= 1e9) return format("%.2fGbps", r.gbits_per_sec());
  if (r.bits_per_sec() >= 1e6) return format("%.2fMbps", r.mbits_per_sec());
  return format("%.2fKbps", r.bits_per_sec() / 1e3);
}

}  // namespace perfsight
