// Strong unit types shared across the PerfSight codebase.
//
// The simulator and the diagnosis library both traffic in bytes, packets,
// data rates and simulated time.  Raw integers invite unit bugs (bits vs
// bytes, ns vs us), so each quantity gets a distinct type with explicit,
// named conversions.  All types are trivially copyable value types.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace perfsight {

// Simulated time, in nanoseconds since simulation start.  Signed so that
// differences are representable without surprises.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime nanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime micros(int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime millis(int64_t ms) { return SimTime(ms * 1000000); }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e9));
  }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// A span of simulated time.  Kept distinct from SimTime (a point) so that
// "time + duration" type-checks but "time + time" does not.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration millis(int64_t ms) {
    return Duration(ms * 1000000);
  }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }

  constexpr int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration(ns_ + o.ns_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(ns_ - o.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration operator*(double f) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * f));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

constexpr SimTime operator+(SimTime t, Duration d) {
  return SimTime::nanos(t.ns() + d.ns());
}
constexpr SimTime operator-(SimTime t, Duration d) {
  return SimTime::nanos(t.ns() - d.ns());
}
constexpr Duration operator-(SimTime a, SimTime b) {
  return Duration::nanos(a.ns() - b.ns());
}

// Data rate in bits per second.  Stored as double: rates are the product of
// arbitration and calibration arithmetic, and exactness in bits/s is not
// meaningful.
class DataRate {
 public:
  constexpr DataRate() = default;
  static constexpr DataRate bps(double v) { return DataRate(v); }
  static constexpr DataRate kbps(double v) { return DataRate(v * 1e3); }
  static constexpr DataRate mbps(double v) { return DataRate(v * 1e6); }
  static constexpr DataRate gbps(double v) { return DataRate(v * 1e9); }
  static constexpr DataRate zero() { return DataRate(0); }

  constexpr double bits_per_sec() const { return bps_; }
  constexpr double mbits_per_sec() const { return bps_ / 1e6; }
  constexpr double gbits_per_sec() const { return bps_ / 1e9; }
  constexpr double bytes_per_sec() const { return bps_ / 8.0; }

  // Bytes transferable in `d` at this rate (floor).
  constexpr uint64_t bytes_in(Duration d) const {
    double b = bps_ / 8.0 * d.sec();
    return b <= 0 ? 0 : static_cast<uint64_t>(b);
  }

  constexpr auto operator<=>(const DataRate&) const = default;
  constexpr DataRate operator+(DataRate o) const {
    return DataRate(bps_ + o.bps_);
  }
  constexpr DataRate operator-(DataRate o) const {
    return DataRate(bps_ - o.bps_);
  }
  constexpr DataRate operator*(double f) const { return DataRate(bps_ * f); }

 private:
  explicit constexpr DataRate(double bps) : bps_(bps) {}
  double bps_ = 0;
};

// Rate implied by moving `bytes` over `d`.  Returns zero rate for empty
// intervals rather than dividing by zero: callers compare against capacity
// thresholds and a zero interval carries no information.
constexpr DataRate rate_of(uint64_t bytes, Duration d) {
  if (d.ns() <= 0) return DataRate::zero();
  return DataRate::bps(static_cast<double>(bytes) * 8.0 / d.sec());
}

// User-defined literals for readable scenario code: 100_mbps, 10_gbps, ...
namespace literals {
constexpr DataRate operator""_mbps(unsigned long long v) {
  return DataRate::mbps(static_cast<double>(v));
}
constexpr DataRate operator""_gbps(unsigned long long v) {
  return DataRate::gbps(static_cast<double>(v));
}
constexpr DataRate operator""_kbps(unsigned long long v) {
  return DataRate::kbps(static_cast<double>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<double>(v));
}
constexpr uint64_t operator""_KiB(unsigned long long v) { return v * 1024; }
constexpr uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024 * 1024;
}
}  // namespace literals

std::string to_string(SimTime t);
std::string to_string(Duration d);
std::string to_string(DataRate r);

}  // namespace perfsight
