// Packet-level applications running inside VMs (the "middlebox software"
// element of Fig. 5 for open-loop workloads).
//
// Stream-oriented middleboxes with TCP backpressure (Fig. 12–14) live in
// src/mbox; the apps here are the packet-path workloads of the contention
// experiments: sinks, rate-limited forwarders (a middlebox whose processing
// capacity can be exceeded — the "bottleneck middlebox"), and sources
// (tenant VMs generating egress, including small-packet floods).
#pragma once

#include <algorithm>

#include "dataplane/element.h"
#include "dataplane/queues.h"
#include "packet/flow.h"
#include "resources/pool.h"
#include "sim/simulator.h"

namespace perfsight::dp {

class PacketApp : public Element, public sim::Steppable {
 public:
  PacketApp(ElementId id, int vm, GuestSocket* in, VNic* out,
            ResourcePool* cpu, ResourcePool::ConsumerId vcpu)
      : Element(std::move(id), ElementKind::kMiddleboxApp, vm),
        in_(in),
        out_(out),
        cpu_(cpu),
        vcpu_(vcpu) {}

  std::string name() const override { return id().name; }

 protected:
  GuestSocket* in_;
  VNic* out_;
  ResourcePool* cpu_;
  ResourcePool::ConsumerId vcpu_;
};

// Consumes everything that reaches it (an application endpoint).
struct SinkAppConfig {
  double cost_per_pkt = 0.3e-6;
};

class SinkApp : public PacketApp {
 public:
  using Config = SinkAppConfig;

  SinkApp(ElementId id, int vm, GuestSocket* in, ResourcePool* cpu,
          ResourcePool::ConsumerId vcpu, Config cfg = Config())
      : PacketApp(std::move(id), vm, in, nullptr, cpu, vcpu), cfg_(cfg) {}

  void step(SimTime /*now*/, Duration /*dt*/) override {
    uint64_t pkts = in_->queued_packets();
    if (pkts == 0) return;
    double want =
        static_cast<double>(pkts) * cfg_.cost_per_pkt;
    double grant = cpu_->request(vcpu_, want);
    uint64_t budget =
        static_cast<uint64_t>(grant / cfg_.cost_per_pkt + 0.5);
    while (budget > 0) {
      PacketBatch b = in_->fetch(budget, UINT64_MAX);
      if (b.empty()) break;
      budget -= b.packets;
      note_in(b);
    }
  }

 private:
  Config cfg_;
};

// Rate-limited forwarding middlebox: reads from its socket, "processes" at
// up to `capacity`, re-tags onto the egress flow and writes to the vNIC tx
// ring.  When offered load exceeds `capacity`, the socket overflows —
// drops confined to this VM, the bottleneck-middlebox signature.
class ForwardApp : public PacketApp {
 public:
  struct Config {
    DataRate capacity = DataRate::mbps(1000);  // processing rate
    double cost_per_pkt = 0.8e-6;
    FlowId egress_flow;  // identity of traffic after this middlebox
  };

  ForwardApp(ElementId id, int vm, GuestSocket* in, VNic* out,
             ResourcePool* cpu, ResourcePool::ConsumerId vcpu, Config cfg)
      : PacketApp(std::move(id), vm, in, out, cpu, vcpu), cfg_(cfg) {}

  void set_capacity(DataRate c) { cfg_.capacity = c; }

  void step(SimTime /*now*/, Duration dt) override {
    uint64_t byte_budget = cfg_.capacity.bytes_in(dt) + carry_;
    uint64_t pkts = in_->queued_packets();
    if (pkts == 0 || byte_budget == 0) {
      carry_ = std::min<uint64_t>(byte_budget, cfg_.capacity.bytes_in(dt));
      return;
    }
    double want =
        static_cast<double>(pkts) * cfg_.cost_per_pkt;
    double grant = cpu_->request(vcpu_, want);
    uint64_t pkt_budget =
        static_cast<uint64_t>(grant / cfg_.cost_per_pkt + 0.5);
    while (pkt_budget > 0 && byte_budget > 0) {
      PacketBatch b = in_->fetch(pkt_budget, byte_budget);
      if (b.empty()) break;
      pkt_budget -= b.packets;
      byte_budget -= std::min(byte_budget, b.bytes);
      note_in(b);
      PacketBatch fwd{cfg_.egress_flow, b.packets, b.bytes};
      note_out(fwd);
      out_->push_tx(std::move(fwd));
    }
    carry_ = 0;
  }

 private:
  Config cfg_;
  uint64_t carry_ = 0;  // unused byte budget, smooths sub-packet rates
};

// Egress traffic generator inside a VM (tenant VM sending traffic, or the
// small-packet flooder of Fig. 10).  Writes straight into the vNIC tx ring
// as a guest application would.
class SourceApp : public PacketApp {
 public:
  struct Config {
    FlowSpec flow;
    DataRate rate = DataRate::zero();  // offered load
    double cost_per_pkt = 0.3e-6;
  };

  SourceApp(ElementId id, int vm, VNic* out, ResourcePool* cpu,
            ResourcePool::ConsumerId vcpu, Config cfg)
      : PacketApp(std::move(id), vm, nullptr, out, cpu, vcpu), cfg_(cfg) {}

  void set_rate(DataRate r) { cfg_.rate = r; }
  DataRate rate() const { return cfg_.rate; }

  void step(SimTime /*now*/, Duration dt) override {
    double offered = static_cast<double>(cfg_.rate.bytes_in(dt)) + carry_;
    uint64_t pkts =
        static_cast<uint64_t>(offered / cfg_.flow.packet_size);
    carry_ = offered - static_cast<double>(pkts * cfg_.flow.packet_size);
    if (pkts == 0) return;
    double want =
        static_cast<double>(pkts) * cfg_.cost_per_pkt;
    double grant = cpu_->request(vcpu_, want);
    uint64_t budget =
        static_cast<uint64_t>(grant / cfg_.cost_per_pkt + 0.5);
    pkts = std::min(pkts, budget);
    if (pkts == 0) return;
    PacketBatch b = cfg_.flow.make_batch(pkts);
    note_out(b);
    out_->push_tx(std::move(b));
  }

 private:
  Config cfg_;
  double carry_ = 0;
};

// The video transcoder of §2.3: non-blocking I/O plus busy-waiting, so its
// CPU utilization reads 100% regardless of offered load — the middlebox
// that breaks utilization-based bottleneck detection.  It processes
// traffic perfectly well; it just never yields the vCPU.
class BusyWaitSinkApp : public PacketApp {
 public:
  struct Config {
    double cost_per_pkt = 0.3e-6;
  };

  BusyWaitSinkApp(ElementId id, int vm, GuestSocket* in, ResourcePool* cpu,
                  ResourcePool::ConsumerId vcpu, Config cfg)
      : PacketApp(std::move(id), vm, in, nullptr, cpu, vcpu), cfg_(cfg) {}

  void step(SimTime /*now*/, Duration dt) override {
    // Real work first...
    uint64_t pkts = in_->queued_packets();
    double want_work = static_cast<double>(pkts) * cfg_.cost_per_pkt;
    double grant = cpu_->request(vcpu_, want_work);
    uint64_t budget = static_cast<uint64_t>(grant / cfg_.cost_per_pkt + 0.5);
    while (budget > 0) {
      PacketBatch b = in_->fetch(budget, UINT64_MAX);
      if (b.empty()) break;
      budget -= b.packets;
      note_in(b);
    }
    // ...then burn the rest of the allocation polling for more input.
    cpu_->request(vcpu_, dt.sec());
  }

 private:
  Config cfg_;
};

}  // namespace perfsight::dp
