#include "dataplane/backlog.h"

#include <algorithm>

namespace perfsight::dp {

void PCpuBacklog::offer(PacketBatch b, int core) {
  if (b.empty()) return;
  note_in(b);
  size_t q = core >= 0 ? static_cast<size_t>(core) % cores_.size()
                       : static_cast<size_t>(core_for(b.flow));
  Core& c = cores_[q];
  c.arrivals.push_back(b);
  c.arrival_pkts += b.packets;
  c.arrival_bytes += b.bytes;
}

int PCpuBacklog::core_for(FlowId f) const {
  auto it = pinned_.find(f);
  if (it != pinned_.end()) {
    return it->second % static_cast<int>(cores_.size());
  }
  // Toeplitz-ish spreading: multiply to decorrelate consecutive flow ids.
  return static_cast<int>((f.value() * 2654435761u) % cores_.size());
}

uint64_t PCpuBacklog::queued_packets() const {
  uint64_t total = 0;
  for (const Core& c : cores_) total += c.level_pkts + c.arrival_pkts;
  return total;
}

void PCpuBacklog::extra_attrs(StatsRecord& r) const {
  r.set(attr::kQueuePkts, static_cast<double>(queued_packets()));
}

void PCpuBacklog::step(SimTime /*now*/, Duration dt) {
  // CPU demand: cost of working off everything queued + newly arrived, but
  // a core can contribute at most `dt` of cpu time per tick.
  double want_cpu = 0;
  std::vector<double> want_core(cores_.size(), 0);
  uint64_t total_bytes = 0;
  for (size_t q = 0; q < cores_.size(); ++q) {
    const Core& c = cores_[q];
    double w = static_cast<double>(c.level_pkts + c.arrival_pkts) *
               cfg_.proc_cost_per_pkt;
    want_core[q] = std::min(w, dt.sec());
    want_cpu += want_core[q];
    total_bytes += c.arrival_bytes;
    for (const PacketBatch& b : c.level) total_bytes += b.bytes;
  }
  double cpu_grant = cpu_->request(cpu_consumer_, want_cpu);
  double cpu_scale = want_cpu > 0 ? cpu_grant / want_cpu : 1.0;

  double want_mem = static_cast<double>(total_bytes) * cfg_.mem_per_byte;
  double mem_grant =
      cfg_.mem_per_byte > 0 ? membus_->request(mem_consumer_, want_mem) : 0;
  double mem_scale = want_mem > 0 ? mem_grant / want_mem : 1.0;
  double scale = std::min(cpu_scale, cfg_.mem_per_byte > 0 ? mem_scale : 1.0);

  for (size_t q = 0; q < cores_.size(); ++q) {
    Core& c = cores_[q];
    uint64_t backlog_pkts = c.level_pkts + c.arrival_pkts;
    if (backlog_pkts == 0) continue;

    // This core's service this tick, in packets.
    double svc_cpu = want_core[q] * scale;
    uint64_t service =
        static_cast<uint64_t>(svc_cpu / cfg_.proc_cost_per_pkt + 0.5);
    service = std::min(service, backlog_pkts);

    // Tick-end overflow: whatever could neither be served nor fit in the
    // per-core cap is dropped, charged proportionally to this tick's
    // arrivals (queued packets are never revoked).
    uint64_t carry = backlog_pkts - service;
    uint64_t dropped =
        carry > cfg_.per_core_pkts ? carry - cfg_.per_core_pkts : 0;
    double drop_frac =
        c.arrival_pkts > 0
            ? static_cast<double>(dropped) / static_cast<double>(c.arrival_pkts)
            : 0.0;

    // Trim arrivals by the drop fraction (drop-tail falls on new arrivals).
    std::vector<PacketBatch> admitted;
    admitted.reserve(c.arrivals.size());
    for (PacketBatch& b : c.arrivals) {
      double exact = static_cast<double>(b.packets) * drop_frac;
      uint64_t drop_p = static_cast<uint64_t>(exact);
      // Probabilistic rounding of the fractional packet (deterministic rng).
      if (rng_.next_double() < exact - static_cast<double>(drop_p)) ++drop_p;
      drop_p = std::min(drop_p, b.packets);
      if (drop_p > 0) {
        PacketBatch lost = take_front(b, drop_p, UINT64_MAX);
        note_drop(lost.packets, lost.bytes);
      }
      if (!b.empty()) admitted.push_back(b);
    }

    // Serve FIFO: carried-over level first, then admitted arrivals.
    std::vector<PacketBatch> fifo = std::move(c.level);
    fifo.insert(fifo.end(), admitted.begin(), admitted.end());
    c.level.clear();
    c.level_pkts = 0;
    c.arrivals.clear();
    c.arrival_pkts = 0;
    c.arrival_bytes = 0;

    uint64_t budget = service;
    for (PacketBatch& b : fifo) {
      if (budget > 0 && !b.empty()) {
        PacketBatch served = take_front(b, budget, UINT64_MAX);
        budget -= served.packets;
        note_out(served);
        out_->accept(served);
      }
      if (!b.empty()) {
        // Residual stays queued; clamp defensively to the cap.
        if (c.level_pkts >= cfg_.per_core_pkts) {
          note_drop(b.packets, b.bytes);
          continue;
        }
        uint64_t room = cfg_.per_core_pkts - c.level_pkts;
        if (b.packets > room) {
          PacketBatch keep = take_front(b, room, UINT64_MAX);
          note_drop(b.packets, b.bytes);
          b = keep;
        }
        c.level_pkts += b.packets;
        c.level.push_back(b);
      }
    }
  }
}

}  // namespace perfsight::dp
