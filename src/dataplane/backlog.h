// The per-core pCPU backlog — the shared enqueue point both the receive
// path (NAPI poll → backlog) and every VM's transmit path (TAP transmit →
// backlog) funnel through (Fig. 5), and therefore the premier contention
// point of the virtualization stack (Fig. 10).
//
// Each core's queue holds at most `per_core_pkts` packets (Linux
// netdev_max_backlog = 300 in the paper's kernel) regardless of packet
// size, which is why a small-packet flood starves a high-byte-rate flow:
// slots, not bytes, run out.
//
// Service is modelled fluidly per tick: producers call offer() during a
// tick; at the next step() the element obtains CPU (softirq consumer) and
// memory-bus grants, computes each core's drain capacity, forwards what it
// can to the virtual switch, and charges drop-tail losses — split across
// the tick's arrivals in proportion to their volume — to its own drop
// counters ("backlog enqueue" drops).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dataplane/element.h"
#include "packet/queue.h"
#include "resources/pool.h"
#include "sim/simulator.h"

namespace perfsight::dp {

class PCpuBacklog : public Element, public sim::Steppable {
 public:
  struct Config {
    int cores = 8;
    uint64_t per_core_pkts = 300;
    double proc_cost_per_pkt = 1.6e-6;  // softirq cpu-seconds per packet
    double mem_per_byte = 1.0;          // bus bytes per processed byte
  };

  PCpuBacklog(ElementId id, Config cfg, ResourcePool* cpu,
              ResourcePool::ConsumerId cpu_consumer, ResourcePool* membus,
              ResourcePool::ConsumerId mem_consumer, PortIn* out)
      : Element(std::move(id), ElementKind::kPCpuBacklog),
        cfg_(cfg),
        cpu_(cpu),
        cpu_consumer_(cpu_consumer),
        membus_(membus),
        mem_consumer_(mem_consumer),
        out_(out),
        cores_(static_cast<size_t>(cfg.cores)) {}

  // Enqueue-side entry point.  `core < 0` hashes the flow to a core; flows
  // can be pinned (scenarios use this to co-locate a victim and an
  // aggressor on one core).
  void offer(PacketBatch b, int core = -1);
  void pin_flow(FlowId f, int core) { pinned_[f] = core; }
  int core_for(FlowId f) const;

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return id().name; }

  uint64_t queued_packets() const;

 protected:
  void extra_attrs(StatsRecord& r) const override;

 private:
  struct Core {
    std::vector<PacketBatch> level;     // carried-over queue (within cap)
    uint64_t level_pkts = 0;
    std::vector<PacketBatch> arrivals;  // offered since last step
    uint64_t arrival_pkts = 0;
    uint64_t arrival_bytes = 0;
  };

  Config cfg_;
  ResourcePool* cpu_;
  ResourcePool::ConsumerId cpu_consumer_;
  ResourcePool* membus_;
  ResourcePool::ConsumerId mem_consumer_;
  PortIn* out_;
  std::vector<Core> cores_;
  std::unordered_map<FlowId, int> pinned_;
  // Unbiased rounding of fractional per-batch drops: a small flow sharing a
  // core with a flood must lose its proportional share, not round up to
  // losing everything.
  Pcg32 rng_{0x9e3779b97f4a7c15ULL};
};

}  // namespace perfsight::dp
