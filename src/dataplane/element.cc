#include "dataplane/element.h"

#include "perfsight/inband.h"

namespace perfsight::dp {

bool Element::int_active() const {
  return int_stamper_ != nullptr && int_stamper_->enabled(int_slot_);
}

ChannelKind channel_for(ElementKind kind) {
  switch (kind) {
    case ElementKind::kPNic:
    case ElementKind::kTun:
      return ChannelKind::kNetDeviceFile;  // net_device via file system
    case ElementKind::kPCpuBacklog:
    case ElementKind::kNapi:
      return ChannelKind::kProcFs;  // softnet_data via /proc
    case ElementKind::kVSwitch:
      return ChannelKind::kOvsChannel;
    case ElementKind::kHypervisorIo:
      return ChannelKind::kQemuLog;  // instrumented QEMU, log-scraped
    case ElementKind::kVNic:
    case ElementKind::kGuestBacklog:
    case ElementKind::kGuestSocket:
      return ChannelKind::kGuestProc;
    case ElementKind::kMiddleboxApp:
      return ChannelKind::kMbSocket;
    case ElementKind::kOther:
      return ChannelKind::kProcFs;
  }
  return ChannelKind::kProcFs;
}

StatsRecord Element::collect(SimTime now) const {
  StatsRecord r;
  r.timestamp = now;
  r.element = id_;
  r.attrs = {
      {attr::kRxPkts, static_cast<double>(stats_.pkts_in.value())},
      {attr::kTxPkts, static_cast<double>(stats_.pkts_out.value())},
      {attr::kRxBytes, static_cast<double>(stats_.bytes_in.value())},
      {attr::kTxBytes, static_cast<double>(stats_.bytes_out.value())},
      {attr::kDropPkts, static_cast<double>(stats_.drop_pkts.value())},
      {attr::kDropBytes, static_cast<double>(stats_.drop_bytes.value())},
      {attr::kInTimeNs, static_cast<double>(stats_.in_time.nanos())},
      {attr::kOutTimeNs, static_cast<double>(stats_.out_time.nanos())},
      {attr::kType, static_cast<double>(static_cast<int>(kind_))},
      {attr::kVm, static_cast<double>(vm_)},
  };
  if (size_hist_) size_hist_->export_attrs(r);
  extra_attrs(r);
  return r;
}

}  // namespace perfsight::dp
