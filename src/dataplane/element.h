// Element: base class for every instrumented software-dataplane component.
//
// An element is "a logical unit that reads traffic from or writes traffic
// to another by buffers or function calls" (§1).  Each element owns the
// standard PerfSight counter set and implements StatsSource, so the agent
// can interrogate it over the channel matching its real-world access path
// (net_device file for NICs/TUNs, /proc for backlogs, the OVS control
// channel for the virtual switch, QEMU logs for the hypervisor I/O handler,
// sockets for middlebox software).
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "common/ids.h"
#include "packet/batch.h"
#include "perfsight/counters.h"
#include "perfsight/histogram.h"
#include "perfsight/rulebook.h"
#include "perfsight/stats_source.h"
#include "perfsight/trace.h"

namespace perfsight::inband {
class IntStamper;
}

namespace perfsight::dp {

// Channel the agent uses for an element of this kind (§6's implementation
// mapping).
ChannelKind channel_for(ElementKind kind);

class Element : public StatsSource {
 public:
  // `vm` is the owning VM index within its machine, or -1 for elements of
  // the shared virtualization stack.
  Element(ElementId id, ElementKind kind, int vm = -1)
      : id_(std::move(id)), kind_(kind), vm_(vm) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return channel_for(kind_); }
  ElementKind kind() const { return kind_; }
  int vm() const { return vm_; }

  StatsRecord collect(SimTime now) const override;

  const ElementStats& stats() const { return stats_; }

  // Optional richer statistic (§4.1): per-element packet-size distribution.
  // Off by default; the operator opts in per element and accepts the cost.
  void enable_size_tracking() {
    if (!size_hist_) size_hist_ = std::make_unique<PacketSizeHistogram>();
  }
  const PacketSizeHistogram* size_histogram() const {
    return size_hist_.get();
  }

  // In-band telemetry attachment (perfsight/inband.h), set by
  // IntStamper::attach.  A never-attached element's INT hooks reduce to one
  // null-pointer test, so the default packet path is bit-identical to a
  // build without INT.
  void set_int_stamper(inband::IntStamper* s, int slot) {
    int_stamper_ = s;
    int_slot_ = slot;
  }
  inband::IntStamper* int_stamper() const { return int_stamper_; }
  int int_slot() const { return int_slot_; }
  // Attached AND the slot's enable bit is on.
  bool int_active() const;

 protected:
  // Counter updates used by subclasses on their datapaths.
  void note_in(const PacketBatch& b) {
    stats_.pkts_in.add(b.packets);
    stats_.bytes_in.add(b.bytes);
    if (size_hist_ && b.packets > 0) {
      size_hist_->record(static_cast<uint32_t>(b.avg_packet_size()),
                         b.packets);
    }
  }
  void note_out(const PacketBatch& b) {
    stats_.pkts_out.add(b.packets);
    stats_.bytes_out.add(b.bytes);
  }
  void note_drop(uint64_t pkts, uint64_t bytes) {
    if (pkts == 0 && bytes == 0) return;
    stats_.drop_pkts.add(pkts);
    stats_.drop_bytes.add(bytes);
    // Flight recorder: drops are the rule book's primary evidence, so each
    // burst is logged with the candidate resources for this element kind.
    trace_drop(id_, kind_, pkts);
  }
  void note_in_time(Duration d) { stats_.in_time.add(d); }
  void note_out_time(Duration d) { stats_.out_time.add(d); }

  // Subclasses append element-specific attributes (queue depth, rule stats).
  virtual void extra_attrs(StatsRecord& r) const { (void)r; }

  ElementStats stats_;

 private:
  ElementId id_;
  ElementKind kind_;
  int vm_;
  std::unique_ptr<PacketSizeHistogram> size_hist_;
  inband::IntStamper* int_stamper_ = nullptr;
  int int_slot_ = -1;
};

// Anything that accepts traffic pushed by an upstream element.
class PortIn {
 public:
  virtual ~PortIn() = default;
  virtual void accept(PacketBatch b) = 0;
};

}  // namespace perfsight::dp
