// Calibration constants of the virtualization-stack model.
//
// Defaults approximate the paper's testbed (Dell T5500: 8 cores, 16 GB RAM,
// 10 GbE, Linux 3.2 + OVS + QEMU/KVM).  Two constants do the heavy lifting:
//
//  * `softirq_cost_per_pkt`: host softirq work per packet.  With the 1.0 µs
//    default, one core sustains ~1 Mpps — 10 GbE at 1500 B MTU fits in one
//    softirq core, while small-packet floods exceed it (Fig. 10's backlog
//    contention).
//  * `napi/qemu_mem_per_byte`: memory-bus bytes moved per wire byte across
//    the stack (copies, descriptor churn, cache misses).  The sum (18.2)
//    is calibrated against Fig. 3's measured slope — 439 Mbps of network
//    throughput lost per 1 GB/s of competing memory traffic — i.e.
//    1 GB/s / (439 Mb/s / 8 b per B) ≈ 18.2 bus bytes per wire byte.
//
// Every scenario may override any field; benches print the values they use.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace perfsight::dp {

struct StackParams {
  // --- host hardware ------------------------------------------------------
  int cores = 8;
  double membus_bytes_per_sec = 25.0e9;  // aggregate copy bandwidth
  DataRate pnic_rate = DataRate::gbps(10);
  uint64_t buffer_memory_bytes = 64ull * 1024 * 1024;  // kernel buffer budget

  // --- CPU costs (cpu-seconds) --------------------------------------------
  double softirq_cost_per_pkt = 1.0e-6;  // driver + NAPI + vswitch, per pkt
  double softirq_cores_cap = 2.0;        // softirq parallelism limit
  double qemu_cost_per_pkt = 1.2e-6;     // hypervisor I/O handler, per pkt
  double qemu_cost_per_byte = 0.15e-9;
  double qemu_cores_cap = 1.0;           // one I/O thread per VM
  double guest_cost_per_pkt = 1.0e-6;    // guest stack, per pkt
  double guest_cost_per_byte = 0.1e-9;

  // --- memory-bus cost (bus bytes per wire byte) --------------------------
  // The kernel receive path barely touches DRAM (DDIO delivers packets into
  // LLC; NAPI is pointer work), while the QEMU/guest copies stream through
  // it.  Their sum (18.2) is the Fig. 3 calibration constant.
  double napi_mem_per_byte = 0.5;
  double qemu_mem_per_byte = 17.7;
  double hog_weight = 16.0;  // memcpy streams hit the bus unthrottled

  // --- queues ---------------------------------------------------------------
  uint64_t pnic_ring_pkts = 4096;        // rx DMA ring
  uint64_t pnic_txring_pkts = 4096;
  uint64_t pcpu_backlog_pkts = 300;  // per core (netdev_max_backlog)
  // TUN queue depth must exceed one tick's burst at line rate or the tick
  // quantisation itself causes drops; starvation still fills it within a
  // few ticks, preserving the drop-location semantics.
  uint64_t tun_queue_pkts = 4096;  // TUN/TAP socket queue
  uint64_t tun_queue_bytes = 4 * 1024 * 1024;
  // Guest-side buffers are exchanged once per tick, so their depth bounds
  // per-VM throughput at (depth / tick).  Sized for >4 Mpps per VM at 1 ms
  // ticks; backpressure semantics (full ring stalls the producer) are what
  // matters, not the absolute depth.
  uint64_t vnic_ring_pkts = 4096;
  uint64_t guest_backlog_pkts = 4096;
  uint64_t guest_socket_bytes = 2 * 1024 * 1024;

  // --- per-stream memcpy speed (for I/O-time accounting) -------------------
  double memcpy_bytes_per_sec = 3.2e9;
};

}  // namespace perfsight::dp
