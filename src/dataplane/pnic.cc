#include "dataplane/pnic.h"

#include <algorithm>

#include "perfsight/inband.h"

namespace perfsight::dp {

void PNic::offer_rx(PacketBatch b) {
  if (b.empty()) return;
  rx_staged_bytes_ += b.bytes;
  rx_staging_.push_back(std::move(b));
}

void PNic::admit_rx(Duration dt) {
  if (rx_staging_.empty()) return;
  uint64_t budget = cfg_.line_rate.bytes_in(dt);
  // Proportional clamp when the tick's offers exceed line rate: arrivals
  // interleave on the wire, so everyone loses the same fraction.
  double admit_frac =
      rx_staged_bytes_ <= budget
          ? 1.0
          : static_cast<double>(budget) / static_cast<double>(rx_staged_bytes_);
  for (PacketBatch& b : rx_staging_) {
    PacketBatch fit = b;
    if (admit_frac < 1.0) {
      uint64_t admit_pkts = static_cast<uint64_t>(
          static_cast<double>(b.packets) * admit_frac + 0.5);
      fit = take_front(b, admit_pkts, UINT64_MAX);
      if (!b.empty()) {
        note_drop(b.packets, b.bytes);
        rx_drop_pkts_ += b.packets;
      }
    }
    if (fit.empty()) continue;
    if (int_active()) {
      // Ingress sampling: the pNIC is where flights begin.  The stamped
      // depth is the ring occupancy the sampled packet found on arrival.
      fit.int_tag =
          int_stamper()->maybe_tag(int_slot(), fit, rx_ring_.packets());
    }
    uint64_t dp = rx_ring_.dropped_packets();
    uint64_t db = rx_ring_.dropped_bytes();
    uint64_t accepted_pkts = rx_ring_.enqueue(fit);
    if (fit.int_tag != 0 && accepted_pkts == 0) {
      int_stamper()->mark_dropped(int_slot(), fit.int_tag,
                                  rx_ring_.packets());
    }
    uint64_t newly_dp = rx_ring_.dropped_packets() - dp;
    note_drop(newly_dp, rx_ring_.dropped_bytes() - db);
    rx_drop_pkts_ += newly_dp;
    if (accepted_pkts > 0) {
      double frac = static_cast<double>(accepted_pkts) /
                    static_cast<double>(accepted_pkts + newly_dp);
      uint64_t bytes_in =
          static_cast<uint64_t>(static_cast<double>(fit.bytes) * frac);
      note_in(PacketBatch{fit.flow, accepted_pkts, bytes_in});
      rx_wire_bytes_ += bytes_in;
    }
  }
  rx_staging_.clear();
  rx_staged_bytes_ = 0;
}

PacketBatch PNic::fetch_rx(uint64_t max_pkts, uint64_t max_bytes) {
  return rx_ring_.dequeue(max_pkts, max_bytes);
}

void PNic::accept(PacketBatch b) {
  if (b.empty()) return;
  uint64_t dp = tx_ring_.dropped_packets();
  uint64_t db = tx_ring_.dropped_bytes();
  tx_ring_.enqueue(b);
  uint64_t newly = tx_ring_.dropped_packets() - dp;
  note_drop(newly, tx_ring_.dropped_bytes() - db);
  tx_drop_pkts_ += newly;
}

void PNic::step(SimTime /*now*/, Duration dt) {
  // Admit wire arrivals staged during the previous tick.
  admit_rx(dt);
  // Drain the tx ring at line rate.
  uint64_t budget = cfg_.line_rate.bytes_in(dt);
  while (budget > 0 && !tx_ring_.empty()) {
    PacketBatch b = tx_ring_.dequeue(UINT64_MAX, budget);
    if (b.empty()) break;
    budget -= std::min(budget, b.bytes);
    note_out(b);
    tx_wire_bytes_ += b.bytes;
    if (tx_sink_) tx_sink_(std::move(b));
  }
}

void PNic::extra_attrs(StatsRecord& r) const {
  r.set("rxDropPkts", static_cast<double>(rx_drop_pkts_));
  r.set("txDropPkts", static_cast<double>(tx_drop_pkts_));
  r.set(attr::kQueuePkts,
        static_cast<double>(rx_ring_.packets() + tx_ring_.packets()));
  r.set(attr::kCapacityMbps, cfg_.line_rate.mbits_per_sec());
}

}  // namespace perfsight::dp
