// Physical NIC model: line-rate limited rx with a DMA ring, and a tx ring
// drained at line rate toward the switch fabric.
//
// Drop semantics follow real hardware: rx traffic beyond line rate, or
// arriving while the DMA ring is full because the host is not polling fast
// enough, is lost at the pNIC (the Table 1 symptom of an incoming-bandwidth
// shortage, and of Fig. 8's rx-flood phase); egress beyond line rate backs
// up in the tx ring and overflow is charged here as tx drops (outgoing-
// bandwidth shortage).
#pragma once

#include <functional>
#include <vector>

#include "common/units.h"
#include "dataplane/element.h"
#include "packet/queue.h"
#include "sim/simulator.h"

namespace perfsight::dp {

class PNic : public Element, public sim::Steppable, public PortIn {
 public:
  struct Config {
    DataRate line_rate = DataRate::gbps(10);
    uint64_t rx_ring_pkts = 4096;
    uint64_t tx_ring_pkts = 4096;
  };
  using TxSink = std::function<void(PacketBatch)>;

  PNic(ElementId id, Config cfg)
      : Element(std::move(id), ElementKind::kPNic),
        cfg_(cfg),
        rx_ring_(QueueCaps{cfg.rx_ring_pkts, UINT64_MAX}),
        tx_ring_(QueueCaps{cfg.tx_ring_pkts, UINT64_MAX}) {}

  // --- fabric side ---------------------------------------------------------
  // Packets arriving on the wire.  Offers are staged and admitted at the
  // next step(): when the tick's offers exceed the line-rate budget, every
  // offer is clamped proportionally (wire arrivals interleave, so no single
  // sender can monopolise the line); the excess and any DMA-ring overflow
  // are rx drops charged to the pNIC.
  void offer_rx(PacketBatch b);

  // Where transmitted packets go (fabric, another machine, a sink).
  void set_tx_sink(TxSink sink) { tx_sink_ = std::move(sink); }

  // --- host side -----------------------------------------------------------
  // NAPI poll: pull received packets out of the DMA ring.
  PacketBatch fetch_rx(uint64_t max_pkts, uint64_t max_bytes);
  bool rx_empty() const { return rx_ring_.empty(); }
  uint64_t rx_queued_packets() const { return rx_ring_.packets(); }

  // Virtual switch output port: queue for transmission.
  void accept(PacketBatch b) override;

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return id().name; }

  DataRate line_rate() const { return cfg_.line_rate; }
  uint64_t rx_dropped_packets() const { return rx_drop_pkts_; }
  uint64_t tx_dropped_packets() const { return tx_drop_pkts_; }
  uint64_t tx_wire_bytes() const { return tx_wire_bytes_; }
  uint64_t rx_wire_bytes() const { return rx_wire_bytes_; }

 protected:
  void extra_attrs(StatsRecord& r) const override;

 private:
  void admit_rx(Duration dt);

  Config cfg_;
  BoundedPacketQueue rx_ring_;
  BoundedPacketQueue tx_ring_;
  TxSink tx_sink_;
  std::vector<PacketBatch> rx_staging_;  // offers since last step
  uint64_t rx_staged_bytes_ = 0;
  uint64_t rx_drop_pkts_ = 0;
  uint64_t tx_drop_pkts_ = 0;
  uint64_t rx_wire_bytes_ = 0;  // accepted off the wire
  uint64_t tx_wire_bytes_ = 0;  // delivered to the wire
};

}  // namespace perfsight::dp
