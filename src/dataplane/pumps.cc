#include "dataplane/pumps.h"

#include <algorithm>

#include "perfsight/inband.h"

namespace perfsight::dp {

void NapiPoll::step(SimTime /*now*/, Duration dt) {
  if (pnic_->rx_empty()) return;
  // Ask for enough CPU to clear the ring, bounded by one tick of one core
  // (the poll loop runs on a single core at a time).
  // Demand is estimated from what is visible in the ring right now.
  double want = std::min(
      static_cast<double>(pnic_->rx_queued_packets()) * cfg_.cost_per_pkt,
      dt.sec());
  double grant = cpu_->request(cpu_consumer_, want);
  uint64_t budget_pkts =
      static_cast<uint64_t>(grant / cfg_.cost_per_pkt + 0.5);
  while (budget_pkts > 0) {
    PacketBatch b = pnic_->fetch_rx(budget_pkts, UINT64_MAX);
    if (b.empty()) break;
    budget_pkts -= b.packets;
    if (b.int_tag != 0 && int_active()) {
      // The poll loop holds no queue; the stamped depth is what remains in
      // the ring behind the tagged packet, and the io-time is its share of
      // this tick's per-packet poll cost.
      int_stamper()->stamp(int_slot(), b.int_tag,
                           pnic_->rx_queued_packets());
      int_stamper()->add_io_time(
          b.int_tag, Duration::seconds(static_cast<double>(b.packets) *
                                       cfg_.cost_per_pkt));
    }
    note_in(b);
    note_out(b);
    backlog_->offer(std::move(b));
  }
}

void HypervisorIo::step(SimTime /*now*/, Duration dt) {
  uint64_t rx_pkts = tun_->queued_packets();
  uint64_t rx_bytes = tun_->queued_bytes();
  uint64_t tx_pkts = vnic_->tx_queued_packets();
  uint64_t tx_bytes = vnic_->tx_queued_bytes();

  uint64_t total_pkts = rx_pkts + tx_pkts;
  if (total_pkts == 0) {
    // Nothing to move: the I/O thread blocks on the TAP fd.
    note_in_time(dt);
    return;
  }
  uint64_t total_bytes = rx_bytes + tx_bytes;
  // Per-tick work bound, applied uniformly to both directions so the
  // rx/tx split stays consistent with the resource demands below.
  double max_bytes_tick = cfg_.max_bytes_per_sec * dt.sec();
  double f_cap = static_cast<double>(total_bytes) > max_bytes_tick
                     ? max_bytes_tick / static_cast<double>(total_bytes)
                     : 1.0;
  double want_pkts = static_cast<double>(total_pkts) * f_cap;
  double want_bytes = static_cast<double>(total_bytes) * f_cap;

  double want_cpu = want_pkts * cfg_.cost_per_pkt +
                    want_bytes * cfg_.cost_per_byte;
  double cpu_grant = cpu_->request(cpu_consumer_, want_cpu);
  double cpu_scale = want_cpu > 0 ? cpu_grant / want_cpu : 1.0;

  double want_mem = want_bytes * cfg_.mem_per_byte;
  double mem_grant = membus_->request(mem_consumer_, want_mem);
  double mem_scale = want_mem > 0 ? mem_grant / want_mem : 1.0;

  // Fraction of the queued work this tick's grants can move.
  double scale = f_cap * std::min(cpu_scale, mem_scale);
  auto scaled = [&](uint64_t v) {
    return static_cast<uint64_t>(static_cast<double>(v) * scale + 0.5);
  };
  uint64_t rx_pkt_budget = scaled(rx_pkts);
  uint64_t tx_pkt_budget = scaled(tx_pkts);
  uint64_t rx_byte_budget = scaled(rx_bytes);
  uint64_t tx_byte_budget = scaled(tx_bytes);

  uint64_t moved_bytes = 0;

  // Receive: TUN -> vNIC rx ring, gated by ring space (when the guest is
  // not consuming, packets stay in the TUN and drop there).
  uint64_t rx_space = vnic_->rx_space_packets();
  rx_pkt_budget = std::min(rx_pkt_budget, rx_space);
  while (rx_pkt_budget > 0 && rx_byte_budget > 0) {
    PacketBatch b = tun_->fetch(rx_pkt_budget, rx_byte_budget);
    if (b.empty()) break;
    rx_pkt_budget -= b.packets;
    rx_byte_budget -= std::min(rx_byte_budget, b.bytes);
    moved_bytes += b.bytes;
    if (b.int_tag != 0 && int_active()) {
      // Copy-engine hop: depth is what is still waiting in the TUN, and the
      // io-time is the memcpy cost of this batch.
      int_stamper()->stamp(int_slot(), b.int_tag, tun_->queued_packets());
      int_stamper()->add_io_time(
          b.int_tag, Duration::seconds(static_cast<double>(b.bytes) /
                                       cfg_.memcpy_bytes_per_sec));
    }
    note_in(b);
    note_out(b);
    vnic_->push_rx(std::move(b));
  }

  // Transmit: vNIC tx ring -> pCPU backlog enqueue.
  while (tx_pkt_budget > 0 && tx_byte_budget > 0) {
    PacketBatch b = vnic_->fetch_tx(tx_pkt_budget, tx_byte_budget);
    if (b.empty()) break;
    tx_pkt_budget -= b.packets;
    tx_byte_budget -= std::min(tx_byte_budget, b.bytes);
    moved_bytes += b.bytes;
    note_in(b);
    note_out(b);
    backlog_->offer(std::move(b));
  }

  // I/O-time accounting: copying time for what moved; the rest of the tick
  // was either blocked (nothing available / no grant) or overhead.
  double copy_sec = static_cast<double>(moved_bytes) / cfg_.memcpy_bytes_per_sec;
  note_out_time(Duration::seconds(std::min(copy_sec, dt.sec())));
}

void GuestStack::step(SimTime /*now*/, Duration /*dt*/) {
  // Stage 1: vNIC rx ring -> guest backlog ("interrupt", cheap).
  while (true) {
    uint64_t space = backlog_->space_packets();
    if (space == 0) break;
    PacketBatch b = vnic_->fetch_rx(space, UINT64_MAX);
    if (b.empty()) break;
    backlog_->accept(std::move(b));
  }

  // Stage 2: guest backlog -> socket buffer, paced by vCPU.
  uint64_t pkts = backlog_->queued_packets();
  uint64_t bytes = backlog_->queued_bytes();
  if (pkts == 0) return;
  double want = static_cast<double>(pkts) * cfg_.cost_per_pkt +
                static_cast<double>(bytes) * cfg_.cost_per_byte;
  double grant = cpu_->request(vcpu_consumer_, want);
  double scale = want > 0 ? grant / want : 1.0;
  uint64_t pkt_budget =
      static_cast<uint64_t>(static_cast<double>(pkts) * scale + 0.5);
  while (pkt_budget > 0) {
    PacketBatch b = backlog_->fetch(pkt_budget, UINT64_MAX);
    if (b.empty()) break;
    pkt_budget -= b.packets;
    socket_->accept(std::move(b));
  }
}

}  // namespace perfsight::dp
