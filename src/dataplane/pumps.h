// Active ("pump") elements that move traffic between buffers each tick,
// consuming shared resources to do so:
//
//  * NapiPoll — the NAPI receive path: polls the pNIC DMA ring and feeds
//    the per-core pCPU backlog.  CPU-limited (softirq consumer); when it
//    starves, the DMA ring overflows and the pNIC drops (Fig. 8, 10–20 s).
//  * HypervisorIo — the QEMU I/O handler of one VM: moves packets TUN→vNIC
//    (receive) and vNIC→backlog (transmit; "the TAP transmit function
//    enqueues the packets into the pCPU backlog queue", §6).  Consumes its
//    VM's I/O-thread CPU slice and the memory bus (payload copies).  When
//    starved of either, the TUN overflows — the aggregated-TUN-drop symptom
//    of CPU or memory-bandwidth contention.
#pragma once

#include "dataplane/backlog.h"
#include "dataplane/element.h"
#include "dataplane/pnic.h"
#include "dataplane/queues.h"
#include "resources/pool.h"
#include "sim/simulator.h"

namespace perfsight::dp {

class NapiPoll : public Element, public sim::Steppable {
 public:
  struct Config {
    double cost_per_pkt = 0.6e-6;  // cpu-seconds per polled packet
  };

  NapiPoll(ElementId id, Config cfg, PNic* pnic, PCpuBacklog* backlog,
           ResourcePool* cpu, ResourcePool::ConsumerId cpu_consumer)
      : Element(std::move(id), ElementKind::kNapi),
        cfg_(cfg),
        pnic_(pnic),
        backlog_(backlog),
        cpu_(cpu),
        cpu_consumer_(cpu_consumer) {}

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return id().name; }

 private:
  Config cfg_;
  PNic* pnic_;
  PCpuBacklog* backlog_;
  ResourcePool* cpu_;
  ResourcePool::ConsumerId cpu_consumer_;
};

class HypervisorIo : public Element, public sim::Steppable {
 public:
  struct Config {
    double cost_per_pkt = 1.2e-6;
    double cost_per_byte = 0.15e-9;
    double mem_per_byte = 17.2;  // bus bytes per wire byte (copy-heavy)
    double memcpy_bytes_per_sec = 3.2e9;  // for I/O-time accounting
    // Per-tick work bound: an I/O thread can only issue so much per
    // scheduling quantum, so a deep backlog must drain over several ticks
    // rather than inflating one tick's resource demand without limit.
    double max_bytes_per_sec = 2.5e9;
  };

  HypervisorIo(ElementId id, int vm, Config cfg, Tun* tun, VNic* vnic,
               PCpuBacklog* backlog, ResourcePool* cpu,
               ResourcePool::ConsumerId cpu_consumer, ResourcePool* membus,
               ResourcePool::ConsumerId mem_consumer)
      : Element(std::move(id), ElementKind::kHypervisorIo, vm),
        cfg_(cfg),
        tun_(tun),
        vnic_(vnic),
        backlog_(backlog),
        cpu_(cpu),
        cpu_consumer_(cpu_consumer),
        membus_(membus),
        mem_consumer_(mem_consumer) {}

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return id().name; }

 private:
  Config cfg_;
  Tun* tun_;
  VNic* vnic_;
  PCpuBacklog* backlog_;
  ResourcePool* cpu_;
  ResourcePool::ConsumerId cpu_consumer_;
  ResourcePool* membus_;
  ResourcePool::ConsumerId mem_consumer_;
};

// Guest kernel datapath of one VM: vNIC rx ring → guest backlog → guest
// socket buffer, paced by the VM's vCPU allocation.  (The application side
// — reading the socket, producing egress — is the PacketApp hierarchy.)
class GuestStack : public sim::Steppable {
 public:
  struct Config {
    double cost_per_pkt = 1.0e-6;
    double cost_per_byte = 0.1e-9;
  };

  GuestStack(std::string name, Config cfg, VNic* vnic, GuestBacklog* backlog,
             GuestSocket* socket, ResourcePool* cpu,
             ResourcePool::ConsumerId vcpu_consumer)
      : name_(std::move(name)),
        cfg_(cfg),
        vnic_(vnic),
        backlog_(backlog),
        socket_(socket),
        cpu_(cpu),
        vcpu_consumer_(vcpu_consumer) {}

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Config cfg_;
  VNic* vnic_;
  GuestBacklog* backlog_;
  GuestSocket* socket_;
  ResourcePool* cpu_;
  ResourcePool::ConsumerId vcpu_consumer_;
};

}  // namespace perfsight::dp
