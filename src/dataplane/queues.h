// Queue-owning elements of the software dataplane: TUN/TAP socket queues,
// vNIC rings, guest backlog and guest socket buffers.
//
// Each wraps a BoundedPacketQueue and records arrivals, departures and
// drop-tail losses in its PerfSight counters; the drop *location* (which of
// these elements lost the packets) is the primary signal Algorithm 1 feeds
// into the rule book.
#pragma once

#include "dataplane/element.h"
#include "packet/queue.h"
#include "perfsight/inband.h"

namespace perfsight::dp {

// Generic bounded-buffer element: upstream pushes via accept() (drops are
// charged here, matching nonblocking writers in the real stack), downstream
// pulls via fetch().
class QueueElement : public Element, public PortIn {
 public:
  QueueElement(ElementId id, ElementKind kind, int vm, QueueCaps caps)
      : Element(std::move(id), kind, vm), q_(caps) {}

  void accept(PacketBatch b) override {
    note_in(b);
    if (b.int_tag != 0 && int_active()) {
      // Stamp the arrival occupancy — the depth the tagged packet found,
      // not the depth after it joined.  At a harvest slot the flight
      // finalizes here and the tag stops travelling.
      if (int_stamper()->harvesting(int_slot())) {
        int_stamper()->harvest(int_slot(), b.int_tag, q_.packets());
        b.int_tag = 0;
      } else {
        int_stamper()->stamp(int_slot(), b.int_tag, q_.packets());
      }
    }
    const uint64_t tag = b.int_tag;
    uint64_t dp = q_.dropped_packets();
    uint64_t db = q_.dropped_bytes();
    const uint64_t accepted = q_.enqueue(b);
    note_drop(q_.dropped_packets() - dp, q_.dropped_bytes() - db);
    if (tag != 0 && accepted == 0 && int_stamper() != nullptr) {
      // The tag rides the batch's first packet; a full-batch drop is the
      // only way the tagged packet itself tail-dropped.  (A tag can reach
      // an unattached element when only part of the chain participates.)
      int_stamper()->mark_dropped(int_slot(), tag, q_.packets());
    }
    if (trace_enabled()) note_watermark();
  }

  PacketBatch fetch(uint64_t max_pkts, uint64_t max_bytes) {
    PacketBatch b = q_.dequeue(max_pkts, max_bytes);
    if (!b.empty()) note_out(b);
    if (trace_enabled()) note_watermark();
    return b;
  }

  bool queue_empty() const { return q_.empty(); }
  uint64_t queued_packets() const { return q_.packets(); }
  uint64_t queued_bytes() const { return q_.bytes(); }
  uint64_t space_packets() const {
    uint64_t cap = q_.caps().max_packets;
    return cap > q_.packets() ? cap - q_.packets() : 0;
  }
  uint64_t space_bytes() const {
    uint64_t cap = q_.caps().max_bytes;
    return cap > q_.bytes() ? cap - q_.bytes() : 0;
  }
  void set_caps(QueueCaps caps) { q_.set_caps(caps); }
  const BoundedPacketQueue& queue() const { return q_; }

 protected:
  void extra_attrs(StatsRecord& r) const override {
    r.set(attr::kQueuePkts, static_cast<double>(q_.packets()));
    r.set(attr::kQueueBytes, static_cast<double>(q_.bytes()));
  }

  BoundedPacketQueue q_;

 private:
  // Occupancy as a fraction of the tightest finite cap dimension; unbounded
  // dimensions (UINT64_MAX) don't constrain and are skipped.
  double occupancy_fraction() const {
    double frac = 0;
    const QueueCaps caps = q_.caps();
    if (caps.max_packets != UINT64_MAX && caps.max_packets > 0) {
      frac = static_cast<double>(q_.packets()) /
             static_cast<double>(caps.max_packets);
    }
    if (caps.max_bytes != UINT64_MAX && caps.max_bytes > 0) {
      double bf = static_cast<double>(q_.bytes()) /
                  static_cast<double>(caps.max_bytes);
      if (bf > frac) frac = bf;
    }
    return frac;
  }

  // Hysteresis watermark events: one event on crossing 75% occupancy, one
  // on draining back below 25%.  The two-threshold gap keeps a queue
  // hovering near a single threshold from flooding the flight recorder.
  void note_watermark() {
    double frac = occupancy_fraction();
    if (!above_high_ && frac >= 0.75) {
      above_high_ = true;
      trace_event_now(id(), TraceEventKind::kQueueHighWater, frac,
                      "occupancy above 75%");
    } else if (above_high_ && frac <= 0.25) {
      above_high_ = false;
      trace_event_now(id(), TraceEventKind::kQueueLowWater, frac,
                      "drained below 25%");
    }
  }

  bool above_high_ = false;
};

// TUN/TAP: the socket queue between the virtual switch and the hypervisor
// I/O handler — "the last buffer before entering VMs" and the single most
// diagnostic drop location in the rule book (CPU / memory-bandwidth /
// egress contention when many VMs drop here; a VM bottleneck when one
// does).  Its byte cap can be re-clamped each tick under buffer-memory
// pressure (the Memory Space row of Table 1).
class Tun : public QueueElement {
 public:
  Tun(ElementId id, int vm, QueueCaps caps)
      : QueueElement(std::move(id), ElementKind::kTun, vm, caps) {}
};

// Paired rx/tx rings between QEMU and the guest.  Drops are charged to the
// vNIC when a ring is full (virtio ring exhaustion).
class VNic : public Element {
 public:
  VNic(ElementId id, int vm, uint64_t ring_pkts)
      : Element(std::move(id), ElementKind::kVNic, vm),
        rx_(QueueCaps{ring_pkts, UINT64_MAX}),
        tx_(QueueCaps{ring_pkts, UINT64_MAX}) {}

  // Hypervisor side.
  void push_rx(PacketBatch b) {
    note_in(b);
    if (b.int_tag != 0 && int_active()) {
      if (int_stamper()->harvesting(int_slot())) {
        int_stamper()->harvest(int_slot(), b.int_tag, rx_.packets());
        b.int_tag = 0;
      } else {
        int_stamper()->stamp(int_slot(), b.int_tag, rx_.packets());
      }
    }
    const uint64_t tag = b.int_tag;
    uint64_t dp = rx_.dropped_packets(), db = rx_.dropped_bytes();
    const uint64_t accepted = rx_.enqueue(b);
    note_drop(rx_.dropped_packets() - dp, rx_.dropped_bytes() - db);
    if (tag != 0 && accepted == 0 && int_stamper() != nullptr) {
      int_stamper()->mark_dropped(int_slot(), tag, rx_.packets());
    }
  }
  PacketBatch fetch_tx(uint64_t max_pkts, uint64_t max_bytes) {
    return tx_.dequeue(max_pkts, max_bytes);
  }

  // Guest side.
  PacketBatch fetch_rx(uint64_t max_pkts, uint64_t max_bytes) {
    PacketBatch b = rx_.dequeue(max_pkts, max_bytes);
    if (!b.empty()) note_out(b);
    return b;
  }
  void push_tx(PacketBatch b) {
    uint64_t dp = tx_.dropped_packets(), db = tx_.dropped_bytes();
    tx_.enqueue(b);
    note_drop(tx_.dropped_packets() - dp, tx_.dropped_bytes() - db);
  }

  uint64_t rx_space_packets() const {
    return rx_.caps().max_packets - rx_.packets();
  }
  uint64_t rx_queued_packets() const { return rx_.packets(); }
  uint64_t tx_queued_packets() const { return tx_.packets(); }
  uint64_t tx_queued_bytes() const { return tx_.bytes(); }
  bool rx_empty() const { return rx_.empty(); }
  bool tx_empty() const { return tx_.empty(); }

 protected:
  void extra_attrs(StatsRecord& r) const override {
    r.set("rxQueuePkts", static_cast<double>(rx_.packets()));
    r.set("txQueuePkts", static_cast<double>(tx_.packets()));
  }

 private:
  BoundedPacketQueue rx_;
  BoundedPacketQueue tx_;
};

// Guest-kernel vCPU backlog (mirror of the host's, inside the VM).
class GuestBacklog : public QueueElement {
 public:
  GuestBacklog(ElementId id, int vm, uint64_t pkts)
      : QueueElement(std::move(id), ElementKind::kGuestBacklog, vm,
                     QueueCaps{pkts, UINT64_MAX}) {}
};

// Socket receive buffer between the guest kernel and middlebox software;
// overflows when the application reads slower than the vNIC delivers.
class GuestSocket : public QueueElement {
 public:
  GuestSocket(ElementId id, int vm, uint64_t bytes)
      : QueueElement(std::move(id), ElementKind::kGuestSocket, vm,
                     QueueCaps{UINT64_MAX, bytes}) {}
};

}  // namespace perfsight::dp
