// Virtual switch (Open vSwitch stand-in).
//
// Invoked by backlog processing as a function call (no buffer of its own —
// Fig. 5), the switch matches each batch's flow against its rule table and
// forwards to the matching output port: a VM's TUN, the pNIC tx ring, or
// another port object.  Per-rule packet/byte counters mirror OVS's per-rule
// statistics, exported through the OVS control channel kind.  Packets with
// no matching rule are dropped and charged to the switch itself.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "dataplane/element.h"

namespace perfsight::dp {

class VirtualSwitch : public Element, public PortIn {
 public:
  explicit VirtualSwitch(ElementId id)
      : Element(std::move(id), ElementKind::kVSwitch) {}

  // Installs a forwarding rule for `flow`.  Later installs override.
  void add_rule(FlowId flow, PortIn* out, std::string rule_name) {
    auto it = rule_index_.find(flow);
    if (it != rule_index_.end()) {
      rules_[it->second].out = out;
      rules_[it->second].name = std::move(rule_name);
      return;
    }
    rule_index_[flow] = rules_.size();
    rules_.push_back(Rule{std::move(rule_name), out, 0, 0});
  }

  // Frame-handling entry point (called by the backlog / NAPI routine).
  void accept(PacketBatch b) override {
    if (b.empty()) return;
    note_in(b);
    auto it = rule_index_.find(b.flow);
    if (it == rule_index_.end()) {
      note_drop(b.packets, b.bytes);
      return;
    }
    Rule& r = rules_[it->second];
    r.pkts += b.packets;
    r.bytes += b.bytes;
    note_out(b);
    r.out->accept(std::move(b));
  }

  struct Rule {
    std::string name;
    PortIn* out = nullptr;
    uint64_t pkts = 0;
    uint64_t bytes = 0;
  };
  const std::vector<Rule>& rules() const { return rules_; }

 protected:
  void extra_attrs(StatsRecord& r) const override {
    for (size_t i = 0; i < rules_.size(); ++i) {
      r.set("rule." + rules_[i].name + ".pkts",
            static_cast<double>(rules_[i].pkts));
      r.set("rule." + rules_[i].name + ".bytes",
            static_cast<double>(rules_[i].bytes));
    }
  }

 private:
  std::unordered_map<FlowId, size_t> rule_index_;
  std::vector<Rule> rules_;
};

}  // namespace perfsight::dp
