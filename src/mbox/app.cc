#include "mbox/app.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "perfsight/trace.h"

namespace perfsight::mbox {

const char* to_string(AppState s) {
  switch (s) {
    case AppState::kNormal:
      return "Normal";
    case AppState::kReadBlocked:
      return "ReadBlocked";
    case AppState::kWriteBlocked:
      return "WriteBlocked";
    case AppState::kOverloaded:
      return "Overloaded";
    case AppState::kUnderloaded:
      return "Underloaded";
  }
  return "?";
}

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kMss = 1448;  // for byte->packet counter conversion

PacketBatch as_batch(uint64_t bytes) {
  return PacketBatch{FlowId{0}, bytes / kMss + (bytes % kMss ? 1 : 0), bytes};
}
}  // namespace

void StreamApp::step(SimTime now, Duration dt) {
  // --- how much could each side move this tick? ---------------------------
  double avail;
  if (is_source()) {
    avail = kInf;  // generation is accounted as processing capacity
  } else {
    uint64_t r = 0;
    for (StreamConn* c : inputs_) r += c->readable();
    avail = static_cast<double>(r);
  }

  double rate = is_source()
                    ? std::min(cfg_.gen_bytes_per_sec, cfg_.proc_bytes_per_sec)
                    : cfg_.proc_bytes_per_sec;
  double proc_cap = std::min(rate * dt.sec() + proc_carry_, 2 * rate * dt.sec());

  double out_cap = kInf;
  double total_share = 0;
  if (!outputs_.empty()) {
    for (const Output& o : outputs_) total_share += o.share;
    if (cfg_.coupling == OutputCoupling::kCoupled) {
      for (const Output& o : outputs_) {
        if (o.share <= 0) continue;
        out_cap = std::min(out_cap,
                           static_cast<double>(o.conn->writable()) / o.share);
      }
    }
  }

  // --- move the bytes -------------------------------------------------------
  double processed = std::min(avail, proc_cap);
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;
  double blocked_out_share = 0;  // for independent outputs

  if (cfg_.coupling == OutputCoupling::kCoupled || outputs_.empty()) {
    processed = std::min(processed, out_cap);
    uint64_t b = static_cast<uint64_t>(processed);
    if (!is_source()) read_bytes = b;
    for (const Output& o : outputs_) {
      uint64_t w = static_cast<uint64_t>(static_cast<double>(b) * o.share);
      uint64_t accepted = o.conn->write(w);
      written_bytes += accepted;
    }
  } else {
    // Independent outputs: each backend takes its share; a stalled backend
    // only loses its own portion.
    uint64_t b_total = 0;
    for (const Output& o : outputs_) {
      double desired = processed * (total_share > 0 ? o.share / total_share : 0) *
                       total_share;  // = processed * o.share
      uint64_t w = static_cast<uint64_t>(
          std::min(desired, static_cast<double>(o.conn->writable())));
      uint64_t accepted = o.conn->write(w);
      written_bytes += accepted;
      b_total += accepted;
      if (static_cast<double>(accepted) + 1.0 < desired) {
        blocked_out_share += o.share;
      }
    }
    if (!is_source()) read_bytes = b_total;
    processed = static_cast<double>(b_total);
  }

  // Drain inputs proportionally for the bytes consumed.
  if (!is_source() && read_bytes > 0) {
    uint64_t remaining = read_bytes;
    for (StreamConn* c : inputs_) {
      uint64_t take = std::min<uint64_t>(remaining, c->readable());
      c->read(take);
      remaining -= take;
      if (remaining == 0) break;
    }
  }
  proc_carry_ = std::max(0.0, proc_cap - processed);
  if (rate < 1e14) {
    proc_carry_ = std::min(proc_carry_, rate * dt.sec());
  } else {
    proc_carry_ = 0;
  }

  // --- time accounting --------------------------------------------------------
  double t_copy_in = inputs_.empty()
                         ? 0
                         : static_cast<double>(read_bytes) / cfg_.memcpy_bytes_per_sec;
  double t_copy_out = outputs_.empty()
                          ? 0
                          : static_cast<double>(written_bytes) /
                                cfg_.memcpy_bytes_per_sec;
  double t_proc = rate < 1e14 ? processed / rate : 0;
  double leftover = std::max(0.0, dt.sec() - t_copy_in - t_copy_out - t_proc);

  // Charge the idle remainder to the binding side.  Input is binding only
  // when reading actually drained the receive buffers dry while more could
  // have been processed; otherwise a stalled output (full send buffer) is.
  bool input_exhausted = !is_source() && !inputs_.empty() &&
                         static_cast<double>(read_bytes) + 0.5 >= avail;
  bool could_do_more = processed < proc_cap - 0.5;
  bool input_bound = input_exhausted && could_do_more;
  bool output_bound = false;
  if (!input_bound) {
    if (cfg_.coupling == OutputCoupling::kCoupled) {
      output_bound =
          !outputs_.empty() && out_cap < std::min(avail, proc_cap) - 0.5;
    } else {
      output_bound = blocked_out_share > 0;
    }
  }

  double in_block = 0, out_block = 0;
  if (input_bound) {
    in_block = leftover;
  } else if (output_bound) {
    if (cfg_.coupling == OutputCoupling::kIndependent && total_share > 0) {
      out_block = leftover * std::min(1.0, blocked_out_share / total_share);
    } else {
      out_block = leftover;
    }
  }

  if (!inputs_.empty()) {
    note_in(as_batch(read_bytes));
    note_in_time(Duration::seconds(t_copy_in + in_block));
  }
  if (!outputs_.empty()) {
    note_out(as_batch(written_bytes));
    note_out_time(Duration::seconds(t_copy_out + out_block));
  }

  // --- state machine -----------------------------------------------------
  // Same binding-constraint analysis, folded into Fig. 7 vocabulary.  A
  // proc-bound relay is Overloaded (it, not its neighbours, limits the
  // chain); a proc/gen-bound source is Underloaded (it offers less than the
  // chain could carry).  Only transitions are traced.
  AppState next = AppState::kNormal;
  if (input_bound) {
    next = AppState::kReadBlocked;
  } else if (output_bound) {
    next = AppState::kWriteBlocked;
  } else if (processed + 0.5 >= proc_cap &&
             (is_source() || avail > processed + 0.5)) {
    next = is_source() ? AppState::kUnderloaded : AppState::kOverloaded;
  }
  if (next != state_) {
    state_ = next;
    trace_event(id(), now, TraceEventKind::kStreamState,
                static_cast<double>(next), to_string(next));
  }
}

StatsRecord StreamApp::collect(SimTime now) const {
  StatsRecord r = dp::Element::collect(now);
  r.set(attr::kInBytes, static_cast<double>(stats_.bytes_in.value()));
  r.set(attr::kOutBytes, static_cast<double>(stats_.bytes_out.value()));
  r.set(attr::kCapacityMbps, home_->vnic_rate().mbits_per_sec());
  return r;
}

}  // namespace perfsight::mbox
