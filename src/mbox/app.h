// Stream middlebox application with the I/O-time accounting Algorithm 2
// consumes (§5.2).
//
// Per tick the app reads from its input connections, "processes" at up to
// its capacity, and fans processed bytes onto its output connections.  Time
// splits across t_input + t_process + t_output: memory-copy time follows
// the bytes moved; the tick's residual idle time is charged to the *binding
// constraint* — the input side when the receive buffers ran dry (upstream
// too slow), the output side when the send buffers were full (downstream
// too slow), and processing otherwise (the app itself is the limiter, e.g.
// an Overloaded server).  This yields exactly the paper's states:
//
//   ReadBlocked   b_in/t_in  < C   (starved)
//   WriteBlocked  b_out/t_out < C  (backpressured)
//   neither       while busy processing — an Overloaded node does NOT look
//                 blocked, which is why Algorithm 2's filtering leaves it
//                 standing as the root cause.
#pragma once

#include <string>
#include <vector>

#include "dataplane/element.h"
#include "mbox/stream.h"

namespace perfsight::mbox {

// How a multi-output app reacts to one stalled output.
enum class OutputCoupling {
  // All outputs advance in fixed ratio; one full output stalls everything
  // (synchronous logging: a content filter blocked on its NFS log).
  kCoupled,
  // Outputs progress independently (a load balancer's backends).
  kIndependent,
};

// Coarse per-tick condition of the app, in the paper's Fig. 7 vocabulary.
// Derived from the same binding-constraint analysis as the time accounting;
// transitions land in the flight recorder (kStreamState) so a trace shows
// where along the chain the backpressure wave started.
enum class AppState {
  kNormal,       // keeping up with offered load, nothing binding
  kReadBlocked,  // starved: drained its inputs dry with capacity to spare
  kWriteBlocked, // backpressured: a full send buffer capped progress
  kOverloaded,   // its own processing capacity binds (the true root cause)
  kUnderloaded,  // a source generating below what the chain could carry
};
const char* to_string(AppState s);

struct StreamAppConfig {
  // Processing capacity in bytes/second; huge = pure relay.
  double proc_bytes_per_sec = 1e15;
  // Source mode: generate this many bytes/second instead of reading inputs
  // (0 = not a source).  Use a huge value for "as fast as possible".
  double gen_bytes_per_sec = 0;
  double memcpy_bytes_per_sec = 3.2e9;
  OutputCoupling coupling = OutputCoupling::kCoupled;
};

class StreamApp : public dp::Element, public sim::Steppable {
 public:
  StreamApp(ElementId id, StreamVm* home, StreamAppConfig cfg)
      : dp::Element(std::move(id), ElementKind::kMiddleboxApp),
        home_(home),
        cfg_(cfg) {}

  void add_input(StreamConn* c) { inputs_.push_back(c); }
  void add_output(StreamConn* c, double share) {
    outputs_.push_back(Output{c, share});
  }
  // Re-weights an existing output (e.g. rerouting after a scale-out).
  void set_output_share(size_t index, double share) {
    PS_CHECK(index < outputs_.size());
    outputs_[index].share = share;
  }

  // Fault injection / scaling knobs.
  void set_proc_rate(double bytes_per_sec) {
    cfg_.proc_bytes_per_sec = bytes_per_sec;
  }
  double proc_rate() const { return cfg_.proc_bytes_per_sec; }
  void set_gen_rate(double bytes_per_sec) {
    cfg_.gen_bytes_per_sec = bytes_per_sec;
  }

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return id().name; }

  StatsRecord collect(SimTime now) const override;

  StreamVm* home() const { return home_; }
  bool is_source() const { return cfg_.gen_bytes_per_sec > 0; }
  bool is_sink() const { return outputs_.empty(); }

  // Condition as of the last step(); kNormal before the first tick.
  AppState state() const { return state_; }

 private:
  struct Output {
    StreamConn* conn;
    double share;
  };

  StreamVm* home_;
  StreamAppConfig cfg_;
  std::vector<StreamConn*> inputs_;
  std::vector<Output> outputs_;
  double proc_carry_ = 0;
  AppState state_ = AppState::kNormal;
};

}  // namespace perfsight::mbox
