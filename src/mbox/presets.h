// Preset configurations for the middlebox kinds the paper deploys: the
// Balance load balancer, CherryProxy content filter, NFS server, HTTP
// server/client.  Thin helpers over StreamAppConfig so scenario code reads
// like the paper's topology descriptions.
#pragma once

#include "mbox/app.h"

namespace perfsight::mbox::presets {

// A TCP proxy / load balancer: pure relay, independent backends.
inline StreamAppConfig load_balancer() {
  StreamAppConfig cfg;
  cfg.coupling = OutputCoupling::kIndependent;
  return cfg;
}

// A content filter that synchronously logs to a file server: the log
// output is coupled to the main output, so a stalled log store stalls the
// filter (Fig. 12(d)'s propagation source).
inline StreamAppConfig content_filter(double proc_bytes_per_sec = 1e15) {
  StreamAppConfig cfg;
  cfg.proc_bytes_per_sec = proc_bytes_per_sec;
  cfg.coupling = OutputCoupling::kCoupled;
  return cfg;
}

// NFS / HTTP server endpoints: sinks with a service-rate capacity.
inline StreamAppConfig server(DataRate service_rate) {
  StreamAppConfig cfg;
  cfg.proc_bytes_per_sec = service_rate.bytes_per_sec();
  return cfg;
}

// Client uploading at `rate`; use client_unbounded() for "as fast as
// possible".
inline StreamAppConfig client(DataRate rate) {
  StreamAppConfig cfg;
  cfg.gen_bytes_per_sec = rate.bytes_per_sec();
  return cfg;
}
inline StreamAppConfig client_unbounded() {
  StreamAppConfig cfg;
  cfg.gen_bytes_per_sec = 1e15;
  return cfg;
}

}  // namespace perfsight::mbox::presets
