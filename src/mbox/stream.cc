#include "mbox/stream.h"

#include <algorithm>

#include "mbox/app.h"
#include "perfsight/agent.h"

namespace perfsight::mbox {

void StreamVm::step(SimTime /*now*/, Duration dt) {
  // Resource demand sized by last tick's offered ingress.
  double offered = static_cast<double>(offered_prev_);
  double mem_scale = 1.0, cpu_scale = 1.0;
  double want_mem = offered * cfg_.mem_per_byte;
  if (want_mem > 0) {
    double g = membus_->request(mem_consumer_, want_mem);
    mem_scale = g / want_mem;
  }
  double want_cpu = offered * cfg_.cpu_per_byte;
  if (want_cpu > 0) {
    double g = cpu_->request(cpu_consumer_, want_cpu);
    cpu_scale = g / want_cpu;
  }
  ingress_scale_ = std::min(mem_scale, cpu_scale);
  uint64_t budget = static_cast<uint64_t>(
      static_cast<double>(cfg_.vnic.bytes_in(dt)) * ingress_scale_);
  egress_budget_ = cfg_.vnic.bytes_in(dt);

  // Divide the ingress budget max-min fairly over the inbound connections
  // by last tick's offers; the remainder is spare, lent first-come.
  std::vector<Demand> demands;
  demands.reserve(conn_alloc_.size());
  for (size_t i = 0; i < conn_alloc_.size(); ++i) {
    demands.push_back(
        Demand{static_cast<double>(conn_offer_prev_[i]), 1.0, -1.0});
    conn_offer_prev_[i] = conn_offer_accum_[i];
    conn_offer_accum_[i] = 0;
  }
  std::vector<double> alloc =
      weighted_maxmin(static_cast<double>(budget), demands);
  uint64_t allotted = 0;
  for (size_t i = 0; i < conn_alloc_.size(); ++i) {
    conn_alloc_[i] = static_cast<uint64_t>(alloc[i]);
    allotted += conn_alloc_[i];
  }
  ingress_spare_ = budget > allotted ? budget - allotted : 0;

  offered_prev_ = offered_accum_;
  offered_accum_ = 0;
}

void StreamConn::step(SimTime /*now*/, Duration dt) {
  DataRate link =
      src_->vnic_rate() < dst_->vnic_rate() ? src_->vnic_rate() : dst_->vnic_rate();
  double budget = static_cast<double>(link.bytes_in(dt)) + carry_;
  uint64_t want = std::min(sbuf_.size(), static_cast<uint64_t>(budget));
  // Unused link budget is not bankable (an idle wire tick is gone); carry
  // only sub-MTU rounding residue.
  carry_ = std::min(budget - static_cast<double>(want),
                    static_cast<double>(cfg_.mtu));
  if (want == 0) return;

  // The sender's own egress shaping is not "throttling" — it defines what
  // actually reaches the wire toward the destination.
  want = std::min(want, src_->egress_available());
  if (want == 0) return;
  if (ingress_slot_ < 0) ingress_slot_ = dst_->register_ingress_conn();
  dst_->note_ingress_offer(ingress_slot_, want);

  uint64_t can = std::min(want, dst_->ingress_available(ingress_slot_));
  uint64_t deliverable = std::min(can, rbuf_.space());

  if (deliverable > 0) {
    sbuf_.pop(deliverable);
    rbuf_.push(deliverable);
    src_->take_egress(deliverable);
    dst_->take_ingress(ingress_slot_, deliverable);
    delivered_bytes_ += deliverable;
    dst_->tun()->record_delivered(deliverable, cfg_.mtu);
  }
  // Whatever the sender attempted beyond what the receiving VM could take
  // shows up (scaled by TCP's probing behaviour) as loss at the TUN.
  // Sub-MTU residue is rounding, not loss.
  uint64_t throttled = want - deliverable;
  if (throttled >= cfg_.mtu && cfg_.probe_drop_frac > 0) {
    uint64_t lost = static_cast<uint64_t>(static_cast<double>(throttled) *
                                          cfg_.probe_drop_frac);
    if (lost > 0) dst_->tun()->record_dropped(lost, cfg_.mtu);
  }
}

StreamMachine::StreamMachine(StreamMachineConfig cfg, sim::Simulator* sim)
    : cfg_(std::move(cfg)),
      sim_(sim),
      cpu_(cfg_.name + "/cpu", static_cast<double>(cfg_.cores)),
      membus_(cfg_.name + "/membus", cfg_.membus_bytes_per_sec,
              PoolPolicy::kProportional) {
  sim_->add(&cpu_);
  sim_->add(&membus_);
}

StreamMachine::~StreamMachine() = default;

StreamVm* StreamMachine::add_vm(StreamVmConfig cfg) {
  int index = static_cast<int>(vms_.size());
  auto cpu_c = cpu_.add_consumer({cfg.name + "/io", 1.0, 2.0});
  auto mem_c = membus_.add_consumer({cfg.name + "/mem", 1.0, -1.0});
  ElementId tun_id{cfg_.name + "/" + cfg.name + "/tun"};
  vms_.push_back(std::make_unique<StreamVm>(std::move(cfg), index, &cpu_,
                                            cpu_c, &membus_, mem_c,
                                            std::move(tun_id)));
  sim_->add(vms_.back().get());
  return vms_.back().get();
}

StreamConn* StreamMachine::connect(StreamVm* src, StreamVm* dst,
                                   StreamConnConfig cfg) {
  conns_.push_back(std::make_unique<StreamConn>(std::move(cfg), src, dst));
  sim_->add(conns_.back().get());
  return conns_.back().get();
}

StreamApp* StreamMachine::add_app(StreamVm* home, const std::string& app_name,
                                  const StreamAppConfig& cfg) {
  ElementId id{cfg_.name + "/" + home->name() + "/" + app_name};
  apps_.push_back(std::make_unique<StreamApp>(std::move(id), home, cfg));
  sim_->add(apps_.back().get());
  return apps_.back().get();
}

vm::MemHog* StreamMachine::add_mem_hog(const std::string& hog_name) {
  auto c = membus_.add_consumer({hog_name, cfg_.hog_weight, -1.0});
  mem_hogs_.push_back(
      std::make_unique<vm::MemHog>(cfg_.name + "/" + hog_name, &membus_, c));
  sim_->add(mem_hogs_.back().get());
  return mem_hogs_.back().get();
}

vm::CpuHog* StreamMachine::add_cpu_hog(const std::string& hog_name,
                                       double cap_cores) {
  auto c = cpu_.add_consumer({hog_name, 1.0, cap_cores});
  cpu_hogs_.push_back(
      std::make_unique<vm::CpuHog>(cfg_.name + "/" + hog_name, &cpu_, c));
  sim_->add(cpu_hogs_.back().get());
  return cpu_hogs_.back().get();
}

std::vector<ElementId> StreamMachine::register_elements(Agent* agent) {
  std::vector<ElementId> stack_ids;
  for (auto& v : vms_) {
    Status st = agent->add_element(v->tun());
    PS_CHECK(st.is_ok());
    stack_ids.push_back(v->tun()->id());
  }
  for (auto& a : apps_) {
    Status st = agent->add_element(a.get());
    PS_CHECK(st.is_ok());
  }
  return stack_ids;
}

}  // namespace perfsight::mbox
