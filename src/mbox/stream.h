// Stream-oriented (TCP-like) transport between middlebox applications.
//
// The propagation experiments (Fig. 12–14) run middlebox chains over TCP,
// where backpressure — not packet drops — carries performance problems
// up- and down-stream (Fig. 7).  This module models that fluidly:
//
//   * StreamConn: a connection with bounded send/receive buffers.  Each
//     tick it moves min(sbuf, link rate, src egress budget, dst ingress
//     budget, rbuf space) bytes.  A full rbuf stalls the sender (the
//     receiver is slow); an empty rbuf starves the reader (the sender is
//     slow) — exactly the two propagation directions of §5.2.
//   * StreamVm: per-VM vNIC capacity plus machine-resource coupling: the
//     VM's ingress service is scaled by its memory-bus/CPU grants, so a
//     memory hog on the machine throttles every VM's delivery (Fig. 13/14's
//     management-task interference).  Throttled or overflowing delivery
//     charges drops to the VM's TUN counter — the signal the operator sees.
//   * StreamMachine: owns the pools, VMs, connections and apps of one
//     physical server.
//
// The instrumented entities (TUN counters, apps) implement StatsSource, so
// the same PerfSight agent/controller/diagnosis stack runs unchanged on
// top of stream scenarios.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "dataplane/element.h"
#include "resources/maxmin.h"
#include "resources/pool.h"
#include "sim/simulator.h"
#include "vm/workloads.h"

namespace perfsight::mbox {

// Bounded FIFO byte reservoir (contents are fluid; no per-byte data).
class ByteBuf {
 public:
  explicit ByteBuf(uint64_t cap) : cap_(cap) {}
  uint64_t push(uint64_t n) {
    uint64_t take = std::min(n, cap_ - size_);
    size_ += take;
    return take;
  }
  uint64_t pop(uint64_t n) {
    uint64_t take = std::min(n, size_);
    size_ -= take;
    return take;
  }
  uint64_t size() const { return size_; }
  uint64_t space() const { return cap_ - size_; }
  uint64_t cap() const { return cap_; }

 private:
  uint64_t cap_;
  uint64_t size_ = 0;
};

// TUN/TAP counter surface for a stream VM: the per-VM drop/throughput
// element agents query.  (Stream delivery is fluid, so this element records
// rather than queues.)
class TunCounter : public dp::Element {
 public:
  TunCounter(ElementId id, int vm_index)
      : dp::Element(std::move(id), ElementKind::kTun, vm_index) {}

  void record_delivered(uint64_t bytes, uint32_t mtu) {
    PacketBatch b{FlowId{0}, bytes / mtu + (bytes % mtu ? 1 : 0), bytes};
    note_in(b);
    note_out(b);
  }
  void record_dropped(uint64_t bytes, uint32_t mtu) {
    note_drop(bytes / mtu + (bytes % mtu ? 1 : 0), bytes);
  }
};

struct StreamVmConfig {
  std::string name;
  DataRate vnic = DataRate::mbps(100);
  double mem_per_byte = 17.2;   // bus bytes per delivered wire byte
  double cpu_per_byte = 1.2e-9; // cpu-seconds per delivered wire byte
};

class StreamVm : public sim::Steppable {
 public:
  StreamVm(StreamVmConfig cfg, int index, ResourcePool* cpu,
           ResourcePool::ConsumerId cpu_consumer, ResourcePool* membus,
           ResourcePool::ConsumerId mem_consumer, ElementId tun_id)
      : cfg_(std::move(cfg)),
        cpu_(cpu),
        cpu_consumer_(cpu_consumer),
        membus_(membus),
        mem_consumer_(mem_consumer),
        tun_(std::move(tun_id), index) {}

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return cfg_.name; }

  DataRate vnic_rate() const { return cfg_.vnic; }
  void set_vnic_rate(DataRate r) { cfg_.vnic = r; }

  // --- connection side --------------------------------------------------
  // Inbound connections register once; the per-tick ingress budget is
  // divided max-min fairly across them by last tick's offers (no one
  // connection can monopolize the vNIC), with unclaimed budget lent out
  // work-conservingly.
  int register_ingress_conn() {
    conn_alloc_.push_back(0);
    conn_offer_prev_.push_back(0);
    conn_offer_accum_.push_back(0);
    return static_cast<int>(conn_alloc_.size() - 1);
  }
  uint64_t ingress_available(int conn) const {
    return conn_alloc_[conn] + ingress_spare_;
  }
  void take_ingress(int conn, uint64_t n) {
    uint64_t from_alloc = std::min(conn_alloc_[conn], n);
    conn_alloc_[conn] -= from_alloc;
    ingress_spare_ -= std::min(ingress_spare_, n - from_alloc);
  }
  uint64_t egress_available() const { return egress_budget_; }
  void take_egress(uint64_t n) { egress_budget_ -= std::min(egress_budget_, n); }
  // Offered (pre-throttle) ingress volume: sizes next tick's resource
  // demand and this connection's fair share.
  void note_ingress_offer(int conn, uint64_t n) {
    offered_accum_ += n;
    conn_offer_accum_[conn] += n;
  }

  TunCounter* tun() { return &tun_; }
  // Fraction of nominal ingress service currently granted (1 = unthrottled).
  double ingress_scale() const { return ingress_scale_; }

 private:
  StreamVmConfig cfg_;
  ResourcePool* cpu_;
  ResourcePool::ConsumerId cpu_consumer_;
  ResourcePool* membus_;
  ResourcePool::ConsumerId mem_consumer_;
  TunCounter tun_;

  uint64_t egress_budget_ = 0;
  uint64_t offered_accum_ = 0;
  uint64_t offered_prev_ = 0;
  double ingress_scale_ = 1.0;
  std::vector<uint64_t> conn_alloc_;        // per-conn budget this tick
  std::vector<uint64_t> conn_offer_prev_;   // per-conn offers last tick
  std::vector<uint64_t> conn_offer_accum_;  // per-conn offers this tick
  uint64_t ingress_spare_ = 0;              // unallocated, lent FCFS
};

struct StreamConnConfig {
  std::string name;
  // Sized for sub-Gbps connections: far above one tick's volume (no tick-
  // quantisation stalls) yet small enough that backpressure propagates
  // within a fraction of a second.
  uint64_t sbuf_cap = 512 * 1024;
  uint64_t rbuf_cap = 512 * 1024;
  uint32_t mtu = 1448;
  // Fraction of throttled (undeliverable) volume that manifests as TUN
  // drops: TCP keeps probing, so a starved receiver shows real loss.
  double probe_drop_frac = 0.05;
};

class StreamConn : public sim::Steppable {
 public:
  StreamConn(StreamConnConfig cfg, StreamVm* src, StreamVm* dst)
      : cfg_(std::move(cfg)),
        src_(src),
        dst_(dst),
        sbuf_(cfg_.sbuf_cap),
        rbuf_(cfg_.rbuf_cap) {}

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return cfg_.name; }

  // --- application side ---------------------------------------------------
  uint64_t write(uint64_t n) { return sbuf_.push(n); }
  uint64_t writable() const { return sbuf_.space(); }
  uint64_t readable() const { return rbuf_.size(); }
  uint64_t read(uint64_t n) { return rbuf_.pop(n); }

  uint64_t delivered_bytes() const { return delivered_bytes_; }
  StreamVm* src() const { return src_; }
  StreamVm* dst() const { return dst_; }

 private:
  StreamConnConfig cfg_;
  StreamVm* src_;
  StreamVm* dst_;
  ByteBuf sbuf_;
  ByteBuf rbuf_;
  uint64_t delivered_bytes_ = 0;
  double carry_ = 0;       // fractional link budget
  int ingress_slot_ = -1;  // registration with the destination VM
};

class StreamApp;
struct StreamAppConfig;

}  // namespace perfsight::mbox

namespace perfsight {
class Agent;  // perfsight/agent.h
}

namespace perfsight::mbox {

struct StreamMachineConfig {
  std::string name = "m0";
  int cores = 8;
  double membus_bytes_per_sec = 25.0e9;
  double hog_weight = 16.0;
};

class StreamMachine {
 public:
  StreamMachine(StreamMachineConfig cfg, sim::Simulator* sim);
  ~StreamMachine();

  StreamVm* add_vm(StreamVmConfig cfg);
  StreamConn* connect(StreamVm* src, StreamVm* dst, StreamConnConfig cfg);
  StreamApp* add_app(StreamVm* home, const std::string& app_name,
                     const StreamAppConfig& cfg);

  vm::MemHog* add_mem_hog(const std::string& name);
  vm::CpuHog* add_cpu_hog(const std::string& name, double cap_cores = -1);

  // Registers TUN counters and apps with `agent`; returns the stack-element
  // (TUN) ids.
  std::vector<ElementId> register_elements(Agent* agent);

  ResourcePool* cpu_pool() { return &cpu_; }
  ResourcePool* membus() { return &membus_; }
  const std::string& name() const { return cfg_.name; }
  sim::Simulator* simulator() { return sim_; }

 private:
  StreamMachineConfig cfg_;
  sim::Simulator* sim_;
  ResourcePool cpu_;
  ResourcePool membus_;
  std::vector<std::unique_ptr<StreamVm>> vms_;
  std::vector<std::unique_ptr<StreamConn>> conns_;
  std::vector<std::unique_ptr<StreamApp>> apps_;
  std::vector<std::unique_ptr<vm::MemHog>> mem_hogs_;
  std::vector<std::unique_ptr<vm::CpuHog>> cpu_hogs_;
};

}  // namespace perfsight::mbox
