// PacketBatch: the unit of traffic in the simulator.
//
// Moving individual packet objects through a 100-second, multi-Gbps scenario
// would dominate runtime without changing any statistic PerfSight collects —
// the instrumentation only ever needs packet counts, byte counts and drop
// counts per element.  A batch is an aggregate of same-flow packets
// (count + bytes); queues and elements split batches exactly, conserving
// both packets and bytes, so every counter is identical to a packet-level
// run of the same fluid schedule.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/status.h"

namespace perfsight {

struct PacketBatch {
  FlowId flow;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  // In-band telemetry tag (perfsight/inband.h): nonzero when one sampled
  // packet of this batch carries an INT metadata flight.  0 — the only
  // value the packet path ever sees with stamping disabled — costs nothing:
  // no counter, split or drop decision reads it.  Splits keep the tag on
  // the front part (the tag rides a single packet, modelled as the batch's
  // first), merges keep the receiving batch's tag.
  uint64_t int_tag = 0;

  bool empty() const { return packets == 0; }
  // Average packet size; batches are same-flow so this is the flow's MTU-ish
  // packet size, not a lossy mixture.
  double avg_packet_size() const {
    return packets == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(packets);
  }
};

// Splits `b` into a front part of at most `max_packets` / `max_bytes`
// (whichever binds first) and leaves the remainder in `b`.  Byte split is
// proportional to packets taken, rounded so that packets and bytes are both
// conserved exactly across the two parts.
inline PacketBatch take_front(PacketBatch& b, uint64_t max_packets,
                              uint64_t max_bytes) {
  PS_CHECK(b.packets > 0);
  double pkt_size = b.avg_packet_size();
  uint64_t by_pkts = max_packets;
  uint64_t by_bytes =
      pkt_size > 0 ? static_cast<uint64_t>(static_cast<double>(max_bytes) / pkt_size) : b.packets;
  uint64_t n = by_pkts < by_bytes ? by_pkts : by_bytes;
  if (n >= b.packets) {
    PacketBatch all = b;
    b = PacketBatch{b.flow, 0, 0};
    return all;
  }
  if (n == 0) return PacketBatch{b.flow, 0, 0};
  // The INT tag rides the batch's first packet, so the front keeps it and
  // the remainder continues untagged.
  PacketBatch front{b.flow, n, 0, b.int_tag};
  front.bytes =
      static_cast<uint64_t>(static_cast<double>(b.bytes) * static_cast<double>(n) /
                            static_cast<double>(b.packets));
  b.packets -= n;
  b.bytes -= front.bytes;
  b.int_tag = 0;
  return front;
}

}  // namespace perfsight
