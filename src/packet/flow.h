// Flow descriptors.
//
// A flow is a unidirectional stream of same-sized packets between two
// endpoints of the virtual topology.  The simulator routes batches by
// FlowId; FlowSpec carries the routing and shaping metadata the scenario
// declared (destination VM, packet size, offered rate).
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.h"
#include "common/units.h"
#include "packet/batch.h"

namespace perfsight {

enum class FlowDirection {
  kIngress,  // fabric → pNIC → ... → VM
  kEgress,   // VM → ... → pNIC → fabric
};

struct FlowSpec {
  FlowId id;
  std::string label;          // for reports/traces
  TenantId tenant;
  VmId dst_vm;                // VM whose TUN the ingress path targets
  VmId src_vm;                // for egress flows
  FlowDirection direction = FlowDirection::kIngress;
  uint32_t packet_size = 1500;  // bytes on the wire

  // Batch of `n` packets of this flow.
  PacketBatch make_batch(uint64_t n) const {
    return PacketBatch{id, n, n * packet_size};
  }
  // Batch carrying ~`bytes` of this flow (whole packets, at least 1 if
  // bytes > 0).
  PacketBatch make_batch_bytes(uint64_t bytes) const {
    uint64_t n = bytes / packet_size;
    if (n == 0 && bytes > 0) n = 1;
    return make_batch(n);
  }
};

}  // namespace perfsight
