#include "packet/queue.h"

namespace perfsight {

PacketBatch BoundedPacketQueue::dequeue(uint64_t max_packets,
                                        uint64_t max_bytes) {
  // Single-flow fast path: the common case is a queue holding one flow's
  // backlog; returns one merged batch.  With multiple flows at the head we
  // return only the head flow's share this call; callers loop if they want
  // to drain a byte budget across flows (see pop_some).
  if (q_.empty() || max_packets == 0 || max_bytes == 0) return PacketBatch{};
  PacketBatch& head = q_.front();
  PacketBatch out = take_front(head, max_packets, max_bytes);
  if (head.empty()) q_.pop_front();
  packets_ -= out.packets;
  bytes_ -= out.bytes;
  return out;
}

PacketBatch BoundedPacketQueue::pop_some(uint64_t& budget_packets,
                                         uint64_t& budget_bytes) {
  PacketBatch out = dequeue(budget_packets, budget_bytes);
  budget_packets -= out.packets;
  budget_bytes -= out.bytes > budget_bytes ? budget_bytes : out.bytes;
  return out;
}

}  // namespace perfsight
