// Bounded drop-tail packet queue.
//
// Every buffer in the software dataplane (pNIC DMA ring, pCPU backlog,
// TUN socket queue, vNIC ring, guest backlog) is one of these.  Two caps
// matter independently: the Linux per-core backlog limits *packets*
// (netdev_max_backlog = 300 in the paper's kernel — this is what makes the
// Fig. 10 small-packet flood starve VM1), while socket buffers limit
// *bytes*.  A queue enforces whichever caps are set and counts drops, which
// is precisely the statistic Algorithm 1 ranks elements by.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <unordered_map>

#include "packet/batch.h"

namespace perfsight {

struct QueueCaps {
  uint64_t max_packets = std::numeric_limits<uint64_t>::max();
  uint64_t max_bytes = std::numeric_limits<uint64_t>::max();
};

class BoundedPacketQueue {
 public:
  explicit BoundedPacketQueue(QueueCaps caps = {}) : caps_(caps) {}

  // Enqueues as much of `b` as fits; the overflow is dropped (drop-tail) and
  // accounted.  Returns the number of packets accepted.
  uint64_t enqueue(PacketBatch b) {
    if (b.empty()) return 0;
    // Saturating: caps may have been re-clamped (memory pressure) below the
    // current contents.
    uint64_t space_pkts =
        caps_.max_packets > packets_ ? caps_.max_packets - packets_ : 0;
    uint64_t space_bytes =
        caps_.max_bytes > bytes_ ? caps_.max_bytes - bytes_ : 0;
    if (space_pkts == 0 || space_bytes < static_cast<uint64_t>(b.avg_packet_size())) {
      drop(b);
      return 0;
    }
    PacketBatch fit = take_front(b, space_pkts, space_bytes);
    push(fit);
    if (!b.empty()) drop(b);
    return fit.packets;
  }

  // Dequeues up to `max_packets`/`max_bytes` worth of traffic, preserving
  // FIFO order; batches at the head are split if needed.
  PacketBatch dequeue(uint64_t max_packets, uint64_t max_bytes);

  // Dequeue honoring per-batch granularity for callers that iterate flows:
  // pops the head batch limited by the caps; returns empty batch when the
  // caps are exhausted or the queue is empty.
  PacketBatch pop_some(uint64_t& budget_packets, uint64_t& budget_bytes);

  bool empty() const { return q_.empty(); }
  uint64_t packets() const { return packets_; }
  uint64_t bytes() const { return bytes_; }
  uint64_t dropped_packets() const { return dropped_packets_; }
  uint64_t dropped_bytes() const { return dropped_bytes_; }
  const QueueCaps& caps() const { return caps_; }
  void set_caps(QueueCaps caps) { caps_ = caps; }

  // Per-flow drop accounting (used by scenario assertions and per-rule
  // virtual-switch statistics).
  uint64_t dropped_packets_for(FlowId f) const {
    auto it = per_flow_drops_.find(f);
    return it == per_flow_drops_.end() ? 0 : it->second;
  }

 private:
  void push(const PacketBatch& b) {
    // Merge with tail if same flow — keeps the deque small under steady
    // per-tick arrivals without changing FIFO semantics between flows that
    // never interleave within a tick.
    if (!q_.empty() && q_.back().flow == b.flow) {
      q_.back().packets += b.packets;
      q_.back().bytes += b.bytes;
      // A merged batch can carry only one INT tag; the tail keeps its own,
      // an untagged tail adopts the arrival's.  (A tag lost this way is an
      // orphaned flight the stamper expires — never a wrong counter.)
      if (q_.back().int_tag == 0) q_.back().int_tag = b.int_tag;
    } else {
      q_.push_back(b);
    }
    packets_ += b.packets;
    bytes_ += b.bytes;
  }
  void drop(const PacketBatch& b) {
    dropped_packets_ += b.packets;
    dropped_bytes_ += b.bytes;
    per_flow_drops_[b.flow] += b.packets;
  }

  QueueCaps caps_;
  std::deque<PacketBatch> q_;
  uint64_t packets_ = 0;
  uint64_t bytes_ = 0;
  uint64_t dropped_packets_ = 0;
  uint64_t dropped_bytes_ = 0;
  std::unordered_map<FlowId, uint64_t> per_flow_drops_;
};

}  // namespace perfsight
