#include "perfsight/agent.h"

#include <algorithm>

#include "perfsight/trace.h"

namespace perfsight {

const char* to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kNetDeviceFile:
      return "net_device";
    case ChannelKind::kProcFs:
      return "procfs";
    case ChannelKind::kOvsChannel:
      return "ovs_channel";
    case ChannelKind::kQemuLog:
      return "qemu_log";
    case ChannelKind::kGuestProc:
      return "guest_proc";
    case ChannelKind::kMbSocket:
      return "mb_socket";
  }
  return "unknown";
}

ChannelLatencyModel default_latency(ChannelKind kind) {
  using namespace literals;
  // Calibrated to Fig. 9: net-device file reads ~2 ms; everything else
  // completes within 500 us.
  switch (kind) {
    case ChannelKind::kNetDeviceFile:
      return {Duration::micros(1900), Duration::micros(400)};
    case ChannelKind::kProcFs:
      return {Duration::micros(120), Duration::micros(60)};
    case ChannelKind::kOvsChannel:
      return {Duration::micros(350), Duration::micros(120)};
    case ChannelKind::kQemuLog:
      return {Duration::micros(400), Duration::micros(100)};
    case ChannelKind::kGuestProc:
      return {Duration::micros(250), Duration::micros(100)};
    case ChannelKind::kMbSocket:
      return {Duration::micros(180), Duration::micros(80)};
  }
  return {Duration::micros(500), Duration::micros(100)};
}

Status Agent::add_element(const StatsSource* source) {
  PS_CHECK(source != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sources_.emplace(source->id(), source);
  (void)it;
  if (!inserted) {
    return Status::invalid_argument("duplicate element id: " +
                                    source->id().name);
  }
  return Status::ok();
}

Status Agent::remove_element(const ElementId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sources_.erase(id) == 0) {
    return Status::not_found("agent " + name_ + ": no element " + id.name);
  }
  cache_.erase(id);
  return Status::ok();
}

std::vector<ElementId> Agent::element_ids() const {
  std::vector<ElementId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(sources_.size());
    for (const auto& [id, src] : sources_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Duration Agent::channel_delay_locked(ChannelKind kind) {
  ChannelLatencyModel m = has_override_[static_cast<size_t>(kind)]
                              ? latency_override_[static_cast<size_t>(kind)]
                              : default_latency(kind);
  return m.base + m.jitter * rng_.next_double();
}

void Agent::observe_channel(ChannelKind kind, Duration delay) {
  std::lock_guard<std::mutex> lock(mu_);
  channel_hist_[static_cast<size_t>(kind)].observe(delay.sec());
}

Result<QueryResponse> Agent::query(const ElementId& id, SimTime now) {
  const StatsSource* source = nullptr;
  ChannelKind kind = ChannelKind::kNetDeviceFile;
  Duration delay;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sources_.find(id);
    if (it == sources_.end()) {
      return Status::not_found("agent " + name_ + ": no element " + id.name);
    }
    source = it->second;
    kind = source->channel_kind();
    delay = channel_delay_locked(kind);
  }
  QueryResponse resp;
  resp.record = source->collect(now);
  resp.response_time = delay;
  observe_channel(kind, delay);
  if (trace_enabled()) {
    trace_event(id, now, TraceEventKind::kAgentQueryIssued, 0,
                to_string(kind));
    trace_event(id, now + resp.response_time,
                TraceEventKind::kAgentQueryCompleted, resp.response_time.us(),
                to_string(kind));
  }
  return resp;
}

Result<QueryResponse> Agent::query_attrs(const ElementId& id,
                                         const std::vector<std::string>& attrs,
                                         SimTime now) {
  Result<QueryResponse> full = query(id, now);
  if (!full.ok()) return full.status();
  QueryResponse resp = full.value();
  resp.record = project(resp.record, attrs);
  return resp;
}

Result<QueryResponse> Agent::query_cached(const ElementId& id, SimTime now,
                                          Duration max_age) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(id);
    if (it != cache_.end() && now - it->second.record.timestamp <= max_age) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      QueryResponse hit = it->second;
      hit.response_time = Duration::nanos(0);  // served locally
      // No channel was used (so no channel_hist_ observe), but the
      // flight-recorder timeline must still show the query: emit a
      // zero-latency cache-hit event.
      trace_event(id, now, TraceEventKind::kAgentCacheHit, 0, "cache");
      return hit;
    }
  }
  Result<QueryResponse> fresh = query(id, now);
  if (fresh.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[id] = fresh.value();
  }
  return fresh;
}

BatchResponse Agent::query_batch(const std::vector<ElementId>& ids,
                                 SimTime now, ThreadPool* pool) {
  BatchResponse batch;
  std::vector<PlannedQuery> plan;
  std::array<bool, kNumChannelKinds> kind_used = {};
  std::array<Duration, kNumChannelKinds> kind_delay = {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan.reserve(ids.size());
    for (const ElementId& id : ids) {
      auto it = sources_.find(id);
      if (it == sources_.end()) {
        ++batch.unknown_ids;
        continue;
      }
      PlannedQuery q;
      q.id = id;
      q.source = it->second;
      q.kind = it->second->channel_kind();
      kind_used[static_cast<size_t>(q.kind)] = true;
      plan.push_back(std::move(q));
    }
    // One round trip per channel kind present, drawn in kind order so the
    // RNG stream is independent of the requested id order and pool size.
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      if (!kind_used[k]) continue;
      kind_delay[k] = channel_delay_locked(static_cast<ChannelKind>(k));
      batch.channel_time += kind_delay[k];
    }
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedQuery& a, const PlannedQuery& b) {
              return a.id < b.id;
            });
  for (PlannedQuery& q : plan) {
    q.delay = kind_delay[static_cast<size_t>(q.kind)];
  }

  batch.responses.resize(plan.size());
  std::vector<QueryResponse>& out = batch.responses;
  parallel_for_or_inline(pool, plan.size(), [&](size_t i) {
    out[i].record = plan[i].source->collect(now);
    out[i].response_time = plan[i].delay;
  });

  // Merge step, sequential on the caller: self-profiling and tracing in
  // deterministic (kind, then id) order — one histogram observe and one
  // trace pair per channel round trip actually paid.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      if (kind_used[k]) channel_hist_[k].observe(kind_delay[k].sec());
    }
  }
  if (trace_enabled()) {
    const ElementId batch_id{name_ + "/batch"};
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      if (!kind_used[k]) continue;
      size_t group = 0;
      for (const PlannedQuery& q : plan) {
        if (static_cast<size_t>(q.kind) == k) ++group;
      }
      trace_event(batch_id, now, TraceEventKind::kAgentQueryIssued,
                  static_cast<double>(group),
                  to_string(static_cast<ChannelKind>(k)));
      trace_event(batch_id, now + kind_delay[k],
                  TraceEventKind::kAgentQueryCompleted, kind_delay[k].us(),
                  to_string(static_cast<ChannelKind>(k)));
    }
  }
  return batch;
}

std::vector<QueryResponse> Agent::poll_all(SimTime now, ThreadPool* pool) {
  std::vector<PlannedQuery> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan.reserve(sources_.size());
    for (const auto& [id, src] : sources_) {
      plan.push_back(PlannedQuery{id, src, src->channel_kind(), {}});
    }
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedQuery& a, const PlannedQuery& b) {
              return a.id < b.id;
            });
  {
    // Jitter drawn in element-id order, exactly as the sequential sweep
    // consumed the RNG, so any pool size yields identical delays.
    std::lock_guard<std::mutex> lock(mu_);
    for (PlannedQuery& q : plan) q.delay = channel_delay_locked(q.kind);
  }

  std::vector<QueryResponse> out(plan.size());
  parallel_for_or_inline(pool, plan.size(), [&](size_t i) {
    out[i].record = plan[i].source->collect(now);
    out[i].response_time = plan[i].delay;
  });

  // Deterministic merge: per-element self-profiling and trace events in
  // element-id order, matching the sequential sweep event for event.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const PlannedQuery& q : plan) {
      channel_hist_[static_cast<size_t>(q.kind)].observe(q.delay.sec());
    }
  }
  if (trace_enabled()) {
    for (const PlannedQuery& q : plan) {
      trace_event(q.id, now, TraceEventKind::kAgentQueryIssued, 0,
                  to_string(q.kind));
      trace_event(q.id, now + q.delay, TraceEventKind::kAgentQueryCompleted,
                  q.delay.us(), to_string(q.kind));
    }
  }
  return out;
}

}  // namespace perfsight
