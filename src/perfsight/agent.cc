#include "perfsight/agent.h"

#include <algorithm>

#include "perfsight/trace.h"

namespace perfsight {

const char* to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kNetDeviceFile:
      return "net_device";
    case ChannelKind::kProcFs:
      return "procfs";
    case ChannelKind::kOvsChannel:
      return "ovs_channel";
    case ChannelKind::kQemuLog:
      return "qemu_log";
    case ChannelKind::kGuestProc:
      return "guest_proc";
    case ChannelKind::kMbSocket:
      return "mb_socket";
  }
  return "unknown";
}

ChannelLatencyModel default_latency(ChannelKind kind) {
  using namespace literals;
  // Calibrated to Fig. 9: net-device file reads ~2 ms; everything else
  // completes within 500 us.
  switch (kind) {
    case ChannelKind::kNetDeviceFile:
      return {Duration::micros(1900), Duration::micros(400)};
    case ChannelKind::kProcFs:
      return {Duration::micros(120), Duration::micros(60)};
    case ChannelKind::kOvsChannel:
      return {Duration::micros(350), Duration::micros(120)};
    case ChannelKind::kQemuLog:
      return {Duration::micros(400), Duration::micros(100)};
    case ChannelKind::kGuestProc:
      return {Duration::micros(250), Duration::micros(100)};
    case ChannelKind::kMbSocket:
      return {Duration::micros(180), Duration::micros(80)};
  }
  return {Duration::micros(500), Duration::micros(100)};
}

Status Agent::add_element(const StatsSource* source) {
  PS_CHECK(source != nullptr);
  auto [it, inserted] = sources_.emplace(source->id(), source);
  (void)it;
  if (!inserted) {
    return Status::invalid_argument("duplicate element id: " +
                                    source->id().name);
  }
  return Status::ok();
}

Status Agent::remove_element(const ElementId& id) {
  if (sources_.erase(id) == 0) {
    return Status::not_found("agent " + name_ + ": no element " + id.name);
  }
  cache_.erase(id);
  return Status::ok();
}

std::vector<ElementId> Agent::element_ids() const {
  std::vector<ElementId> ids;
  ids.reserve(sources_.size());
  for (const auto& [id, src] : sources_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Duration Agent::channel_delay(ChannelKind kind) {
  ChannelLatencyModel m = has_override_[static_cast<size_t>(kind)]
                              ? latency_override_[static_cast<size_t>(kind)]
                              : default_latency(kind);
  return m.base + m.jitter * rng_.next_double();
}

Result<QueryResponse> Agent::query(const ElementId& id, SimTime now) {
  auto it = sources_.find(id);
  if (it == sources_.end()) {
    return Status::not_found("agent " + name_ + ": no element " + id.name);
  }
  ChannelKind kind = it->second->channel_kind();
  QueryResponse resp;
  resp.record = it->second->collect(now);
  resp.response_time = channel_delay(kind);
  channel_hist_[static_cast<size_t>(kind)].observe(resp.response_time.sec());
  if (trace_enabled()) {
    trace_event(id, now, TraceEventKind::kAgentQueryIssued, 0,
                to_string(kind));
    trace_event(id, now + resp.response_time,
                TraceEventKind::kAgentQueryCompleted, resp.response_time.us(),
                to_string(kind));
  }
  return resp;
}

Result<QueryResponse> Agent::query_attrs(const ElementId& id,
                                         const std::vector<std::string>& attrs,
                                         SimTime now) {
  Result<QueryResponse> full = query(id, now);
  if (!full.ok()) return full.status();
  QueryResponse resp = full.value();
  resp.record = project(resp.record, attrs);
  return resp;
}

Result<QueryResponse> Agent::query_cached(const ElementId& id, SimTime now,
                                          Duration max_age) {
  auto it = cache_.find(id);
  if (it != cache_.end() && now - it->second.record.timestamp <= max_age) {
    ++cache_hits_;
    QueryResponse hit = it->second;
    hit.response_time = Duration::nanos(0);  // served locally
    return hit;
  }
  Result<QueryResponse> fresh = query(id, now);
  if (fresh.ok()) cache_[id] = fresh.value();
  return fresh;
}

std::vector<QueryResponse> Agent::poll_all(SimTime now) {
  std::vector<QueryResponse> out;
  out.reserve(sources_.size());
  for (const ElementId& id : element_ids()) {
    Result<QueryResponse> r = query(id, now);
    if (r.ok()) out.push_back(r.value());
  }
  return out;
}

}  // namespace perfsight
