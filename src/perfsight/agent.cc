#include "perfsight/agent.h"

#include <algorithm>

#include "perfsight/trace.h"

namespace perfsight {

const char* to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kNetDeviceFile:
      return "net_device";
    case ChannelKind::kProcFs:
      return "procfs";
    case ChannelKind::kOvsChannel:
      return "ovs_channel";
    case ChannelKind::kQemuLog:
      return "qemu_log";
    case ChannelKind::kGuestProc:
      return "guest_proc";
    case ChannelKind::kMbSocket:
      return "mb_socket";
  }
  return "unknown";
}

ChannelLatencyModel default_latency(ChannelKind kind) {
  using namespace literals;
  // Calibrated to Fig. 9: net-device file reads ~2 ms; everything else
  // completes within 500 us.
  switch (kind) {
    case ChannelKind::kNetDeviceFile:
      return {Duration::micros(1900), Duration::micros(400)};
    case ChannelKind::kProcFs:
      return {Duration::micros(120), Duration::micros(60)};
    case ChannelKind::kOvsChannel:
      return {Duration::micros(350), Duration::micros(120)};
    case ChannelKind::kQemuLog:
      return {Duration::micros(400), Duration::micros(100)};
    case ChannelKind::kGuestProc:
      return {Duration::micros(250), Duration::micros(100)};
    case ChannelKind::kMbSocket:
      return {Duration::micros(180), Duration::micros(80)};
  }
  return {Duration::micros(500), Duration::micros(100)};
}

Status query_failure_status(const std::string& agent_name, const ElementId& id,
                            uint32_t attempts, StatusCode code) {
  std::string m = "agent " + agent_name + ": element " + id.name;
  if (code == StatusCode::kFailedPrecondition) {
    // The element vanished from the agent's advertised set between
    // connections (reconnect-aware hello diff); no attempts were spent on a
    // channel, the roster itself is the authority.
    m += " departed at reconnect";
    return Status::failed_precondition(std::move(m));
  }
  if (attempts == 0) {
    m += " skipped: circuit open";
  } else if (code == StatusCode::kDeadlineExceeded) {
    m += " deadline exceeded after " + std::to_string(attempts) + " attempt(s)";
  } else {
    m += " unavailable after " + std::to_string(attempts) + " attempt(s)";
  }
  return code == StatusCode::kDeadlineExceeded
             ? Status::deadline_exceeded(std::move(m))
             : Status::unavailable(std::move(m));
}

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

Status Agent::add_element(const StatsSource* source) {
  PS_CHECK(source != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sources_.emplace(source->id(), source);
  (void)it;
  if (!inserted) {
    return Status::invalid_argument("duplicate element id: " +
                                    source->id().name);
  }
  return Status::ok();
}

Status Agent::remove_element(const ElementId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sources_.erase(id) == 0) {
    return Status::not_found("agent " + name_ + ": no element " + id.name);
  }
  cache_.erase(id);
  return Status::ok();
}

std::vector<ElementId> Agent::element_ids() const {
  std::vector<ElementId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(sources_.size());
    for (const auto& [id, src] : sources_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Duration Agent::channel_delay_locked(ChannelKind kind) {
  ChannelLatencyModel m = has_override_[static_cast<size_t>(kind)]
                              ? latency_override_[static_cast<size_t>(kind)]
                              : default_latency(kind);
  return m.base + m.jitter * rng_.next_double();
}

void Agent::observe_channel(ChannelKind kind, Duration delay) {
  std::lock_guard<std::mutex> lock(mu_);
  channel_hist_[static_cast<size_t>(kind)].observe(delay.sec());
}

void Agent::emit_pending(const std::vector<PendingTrace>& traces) {
  for (const PendingTrace& p : traces) {
    trace_event(p.id, p.t, p.kind, p.value, p.detail);
  }
}

void Agent::absorb_crashes_locked(SimTime now,
                                  std::vector<PendingTrace>* traces) {
  if (plan_ == nullptr || now <= last_crash_check_) return;
  size_t n = plan_->crashes_between(name_, last_crash_check_, now);
  last_crash_check_ = now;
  if (n == 0) return;
  // The whole agent restarted: in-memory state is gone and every element's
  // counters read from zero on the next collect (the Monitor's negative-
  // delta reset detection absorbs the discontinuity).
  fstats_.crashes += n;
  cache_.clear();
  last_good_.clear();
  reset_offset_.clear();
  pending_reset_.clear();
  for (const auto& [id, src] : sources_) {
    (void)src;
    pending_reset_.insert(id);
  }
  for (Breaker& b : breakers_) b = Breaker{};
  if (trace_enabled() && traces != nullptr) {
    traces->push_back(PendingTrace{ElementId{name_}, now,
                                   TraceEventKind::kAgentCrashRestart,
                                   static_cast<double>(n), "counters reset"});
  }
}

void Agent::plan_outcome_locked(PlannedQuery& q, SimTime now,
                                bool shared_first, Duration shared_delay,
                                bool agent_down,
                                std::vector<PendingTrace>* traces) {
  const size_t ki = static_cast<size_t>(q.kind);
  Breaker& br = breakers_[ki];
  const bool tracing = trace_enabled() && traces != nullptr;
  const ElementId breaker_id{name_ + "/" + to_string(q.kind)};

  if (br.state == BreakerState::kOpen) {
    if (now - br.opened_at < breaker_cfg_.cooldown) {
      // Fast fail: known-dead channel, no modelled time paid, no RNG drawn.
      q.failed = true;
      q.quality = DataQuality::kMissing;
      q.attempts = 0;
      q.delay = Duration::nanos(0);
      q.fail_code = StatusCode::kUnavailable;
      ++fstats_.breaker_fast_fails;
      return;
    }
    br.state = BreakerState::kHalfOpen;
    if (tracing) {
      traces->push_back(PendingTrace{breaker_id, now,
                                     TraceEventKind::kBreakerStateChange,
                                     static_cast<double>(static_cast<int>(
                                         BreakerState::kHalfOpen)),
                                     "half_open"});
    }
  }

  Duration elapsed;
  const uint32_t max_attempts = std::max<uint32_t>(1, retry_.max_attempts);
  Duration budget = retry_.element_budget;
  if (adaptive_budget_) {
    // Budget derived from this kind's observed latency distribution: p99 of
    // the modelled channel delays paid so far × the attempt cap, never
    // looser than the configured budget (the sweep deadline) when one is
    // set.  No observations yet → the configured budget stands.
    const double p99 = channel_hist_[ki].approx_quantile(0.99);
    if (p99 > 0) {
      Duration derived =
          Duration::seconds(p99) * static_cast<double>(max_attempts);
      if (budget.ns() == 0 || derived < budget) budget = derived;
    }
  }
  // Hoisted once per element: when the effective spec cannot fire, the
  // per-attempt decision hash is skipped entirely (decide() would return
  // kNone anyway), keeping an installed-but-inert plan near-free.
  const ChannelFaultSpec* fspec =
      plan_ != nullptr ? &plan_->spec_for(q.id, q.kind) : nullptr;
  const bool may_fault = fspec != nullptr && fspec->any();
  uint32_t attempt = 1;
  bool success = false;
  StatusCode last_code = StatusCode::kUnavailable;
  for (;; ++attempt) {
    Duration d = (attempt == 1 && shared_first) ? shared_delay
                                                : channel_delay_locked(q.kind);
    // A scheduled outage window makes every attempt fail like a transient
    // error — the schedule is the authority, no Bernoulli draw consulted,
    // so the same plan at the same simulated time fails identically in the
    // single, batch and poll paths.
    FaultDecision dec;
    if (may_fault && !agent_down) dec = plan_->decide(q.id, q.kind, now, attempt);
    if (dec.kind != FaultKind::kNone) ++fstats_.faults_injected;
    bool attempt_failed = agent_down;
    DataQuality quality = DataQuality::kFresh;
    if (agent_down) last_code = StatusCode::kUnavailable;
    switch (dec.kind) {
      case FaultKind::kNone:
        break;
      case FaultKind::kStale: {
        auto lg = last_good_.find(q.id);
        if (lg != last_good_.end()) {
          q.serve_stale = true;
          q.stale_record = lg->second;
          quality = DataQuality::kStale;
        } else {
          attempt_failed = true;  // nothing cached to serve: acts transient
          last_code = StatusCode::kUnavailable;
        }
        break;
      }
      case FaultKind::kTorn:
        q.torn_salt = dec.torn_salt;
        quality = DataQuality::kTorn;
        break;
      case FaultKind::kTimeout:
        d = plan_->timeout_spike();
        if (retry_.attempt_timeout.ns() > 0 && retry_.attempt_timeout < d) {
          d = retry_.attempt_timeout;
        }
        attempt_failed = true;
        last_code = StatusCode::kDeadlineExceeded;
        break;
      case FaultKind::kTransient:
        attempt_failed = true;
        last_code = StatusCode::kUnavailable;
        break;
    }
    if (budget.ns() > 0 && elapsed + d > budget) {
      // Budget clamp: the sweep never runs past its deadline; the element
      // is reported missing rather than late.
      elapsed = budget;
      q.fail_code = StatusCode::kDeadlineExceeded;
      ++fstats_.deadline_hits;
      break;
    }
    elapsed += d;
    if (!attempt_failed) {
      success = true;
      q.quality = quality;
      if (quality == DataQuality::kStale) ++fstats_.stale_served;
      if (quality == DataQuality::kTorn) ++fstats_.torn_reads;
      break;
    }
    if (attempt >= max_attempts) {
      q.fail_code = last_code;
      ++fstats_.exhausted;
      break;
    }
    // Exponential backoff with deterministic jitter, drawn pre-fan-out from
    // the same RNG stream as the channel jitter.
    Duration backoff = retry_.initial_backoff;
    for (uint32_t i = 1; i < attempt; ++i) {
      backoff = backoff * retry_.backoff_multiplier;
    }
    if (retry_.max_backoff.ns() > 0 && retry_.max_backoff < backoff) {
      backoff = retry_.max_backoff;
    }
    if (retry_.jitter_frac > 0) {
      backoff = backoff * (1.0 + retry_.jitter_frac * rng_.next_double());
    }
    if (budget.ns() > 0 && elapsed + backoff >= budget) {
      elapsed = budget;
      q.fail_code = StatusCode::kDeadlineExceeded;
      ++fstats_.deadline_hits;
      break;
    }
    elapsed += backoff;
    ++fstats_.retries;
    if (tracing) {
      traces->push_back(PendingTrace{q.id, now + elapsed,
                                     TraceEventKind::kAgentRetry,
                                     static_cast<double>(attempt),
                                     to_string(dec.kind)});
    }
  }
  q.delay = elapsed;
  q.attempts = attempt;
  q.failed = !success;
  if (q.failed) q.quality = DataQuality::kMissing;

  if (success) {
    br.consecutive_failures = 0;
    if (br.state == BreakerState::kHalfOpen) {
      br.state = BreakerState::kClosed;
      ++fstats_.breaker_closed;
      if (tracing) {
        traces->push_back(PendingTrace{
            breaker_id, now, TraceEventKind::kBreakerStateChange,
            static_cast<double>(static_cast<int>(BreakerState::kClosed)),
            "closed"});
      }
    }
  } else {
    ++br.consecutive_failures;
    const bool reopen = br.state == BreakerState::kHalfOpen;
    const bool trip = br.state == BreakerState::kClosed &&
                      br.consecutive_failures >= breaker_cfg_.failure_threshold;
    if (reopen || trip) {
      br.state = BreakerState::kOpen;
      br.opened_at = now;
      ++fstats_.breaker_opened;
      if (tracing) {
        traces->push_back(PendingTrace{
            breaker_id, now, TraceEventKind::kBreakerStateChange,
            static_cast<double>(static_cast<int>(BreakerState::kOpen)),
            "open"});
      }
    }
  }
}

void Agent::apply_fault_bookkeeping(const ElementId& id, StatsRecord& record,
                                    bool track_last_good) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_reset_.erase(id) > 0) {
    // First collect after a crash: capture the current monotone counter
    // values as offsets so the element appears to restart from zero.
    std::vector<Attr> offsets;
    for (const Attr& a : record.attrs) {
      if (is_monotone_counter(a.name)) offsets.push_back(a);
    }
    reset_offset_[id] = std::move(offsets);
  }
  auto it = reset_offset_.find(id);
  if (it != reset_offset_.end()) {
    for (Attr& a : record.attrs) {
      for (const Attr& o : it->second) {
        if (o.name == a.name) {
          a.value = a.value >= o.value ? a.value - o.value : 0;
          break;
        }
      }
    }
  }
  if (track_last_good) last_good_[id] = record;
}

Result<QueryResponse> Agent::query(const ElementId& id, SimTime now) {
  PlannedQuery q;
  bool fault_mode = false;
  bool track_last_good = false, bookkeep = false;
  std::vector<PendingTrace> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    absorb_crashes_locked(now, &pending);
    auto it = sources_.find(id);
    if (it == sources_.end()) {
      return Status::not_found("agent " + name_ + ": no element " + id.name);
    }
    q.id = id;
    q.source = it->second;
    q.kind = it->second->channel_kind();
    fault_mode = plan_ != nullptr;
    if (fault_mode) {
      track_last_good = plan_->serves_stale();
      bookkeep = track_last_good || !pending_reset_.empty() ||
                 !reset_offset_.empty();
    }
    const bool down = fault_mode && plan_->has_campaign() &&
                      plan_->agent_down(name_, now);
    plan_outcome_locked(q, now, /*shared_first=*/false, Duration{}, down,
                        &pending);
  }
  emit_pending(pending);

  if (q.failed) {
    if (q.attempts > 0) observe_channel(q.kind, q.delay);
    if (trace_enabled()) {
      if (q.attempts > 0) {
        trace_event(id, now, TraceEventKind::kAgentQueryIssued, 0,
                    to_string(q.kind));
      }
      trace_event(id, now + q.delay, TraceEventKind::kAgentQueryFailed,
                  static_cast<double>(q.attempts), to_string(q.kind));
    }
    return query_failure_status(name_, id, q.attempts, q.fail_code);
  }

  QueryResponse resp;
  if (q.serve_stale) {
    resp.record = std::move(q.stale_record);  // true (old) timestamp kept
  } else {
    resp.record = q.source->collect(now);
    if (bookkeep) apply_fault_bookkeeping(id, resp.record, track_last_good);
    if (q.quality == DataQuality::kTorn) {
      resp.record = apply_torn_read(resp.record, q.torn_salt);
    }
  }
  resp.response_time = q.delay;
  resp.quality = q.quality;
  resp.attempts = q.attempts;
  observe_channel(q.kind, q.delay);
  if (trace_enabled()) {
    trace_event(id, now, TraceEventKind::kAgentQueryIssued, 0,
                to_string(q.kind));
    trace_event(id, now + resp.response_time,
                TraceEventKind::kAgentQueryCompleted, resp.response_time.us(),
                to_string(q.kind));
  }
  return resp;
}

Result<QueryResponse> Agent::query_attrs(const ElementId& id,
                                         const std::vector<std::string>& attrs,
                                         SimTime now) {
  Result<QueryResponse> full = query(id, now);
  if (!full.ok()) return full.status();
  QueryResponse resp = full.value();
  resp.record = project(resp.record, attrs);
  return resp;
}

Result<QueryResponse> Agent::query_cached(const ElementId& id, SimTime now,
                                          Duration max_age) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(id);
    if (it != cache_.end() && now - it->second.record.timestamp <= max_age) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      QueryResponse hit = it->second;
      hit.response_time = Duration::nanos(0);  // served locally
      // No channel was used (so no channel_hist_ observe), but the
      // flight-recorder timeline must still show the query: emit a
      // zero-latency cache-hit event.
      trace_event(id, now, TraceEventKind::kAgentCacheHit, 0, "cache");
      return hit;
    }
  }
  Result<QueryResponse> fresh = query(id, now);
  if (fresh.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[id] = fresh.value();
  }
  return fresh;
}

BatchResponse Agent::query_batch(const std::vector<ElementId>& ids,
                                 SimTime now, ThreadPool* pool) {
  BatchResponse batch;
  std::vector<PlannedQuery> plan;
  std::array<bool, kNumChannelKinds> kind_used = {};
  std::array<Duration, kNumChannelKinds> kind_delay = {};
  bool fault_mode = false;
  bool down = false;
  bool track_last_good = false, bookkeep = false;
  std::vector<PendingTrace> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    absorb_crashes_locked(now, &pending);
    fault_mode = plan_ != nullptr;
    if (fault_mode) {
      track_last_good = plan_->serves_stale();
      bookkeep = track_last_good || !pending_reset_.empty() ||
                 !reset_offset_.empty();
      down = plan_->has_campaign() && plan_->agent_down(name_, now);
    }
    plan.reserve(ids.size());
    for (const ElementId& id : ids) {
      auto it = sources_.find(id);
      if (it == sources_.end()) {
        ++batch.unknown_ids;
        continue;
      }
      PlannedQuery q;
      q.id = id;
      q.source = it->second;
      q.kind = it->second->channel_kind();
      // A kind whose breaker is open (and still cooling down) gets no round
      // trip at all; its elements fast-fail cheaply in planning below.
      const Breaker& br = breakers_[static_cast<size_t>(q.kind)];
      const bool fast_fail = br.state == BreakerState::kOpen &&
                             now - br.opened_at < breaker_cfg_.cooldown;
      if (!fast_fail) kind_used[static_cast<size_t>(q.kind)] = true;
      plan.push_back(std::move(q));
    }
    // One round trip per channel kind present, drawn in kind order so the
    // RNG stream is independent of the requested id order and pool size.
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      if (!kind_used[k]) continue;
      kind_delay[k] = channel_delay_locked(static_cast<ChannelKind>(k));
      batch.channel_time += kind_delay[k];
    }
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedQuery& a, const PlannedQuery& b) {
              return a.id < b.id;
            });
  {
    // Fault decisions and retry chains, planned in element-id order before
    // the fan-out.  The first attempt of each element rides its kind's
    // shared round trip; retries pay their own trips on top.
    std::lock_guard<std::mutex> lock(mu_);
    for (PlannedQuery& q : plan) {
      const size_t k = static_cast<size_t>(q.kind);
      plan_outcome_locked(q, now, kind_used[k], kind_delay[k], down, &pending);
      if (fault_mode && q.delay > kind_delay[k]) {
        batch.channel_time += q.delay - kind_delay[k];
      }
    }
  }
  emit_pending(pending);

  batch.responses.resize(plan.size());
  std::vector<QueryResponse>& out = batch.responses;
  parallel_for_or_inline(pool, plan.size(), [&](size_t i) {
    PlannedQuery& q = plan[i];
    QueryResponse& r = out[i];
    r.response_time = q.delay;
    r.quality = q.quality;
    r.attempts = q.attempts;
    if (q.failed) {
      r.fail_code = q.fail_code;
      // Blind spot: keep the element visible with an empty record.
      r.record.timestamp = now;
      r.record.element = q.id;
      return;
    }
    if (q.serve_stale) {
      r.record = std::move(q.stale_record);
      return;
    }
    r.record = q.source->collect(now);
    if (bookkeep) apply_fault_bookkeeping(q.id, r.record, track_last_good);
    if (q.quality == DataQuality::kTorn) {
      r.record = apply_torn_read(r.record, q.torn_salt);
    }
  });
  for (const QueryResponse& r : batch.responses) {
    if (r.quality != DataQuality::kFresh) ++batch.degraded;
  }

  // Merge step, sequential on the caller: self-profiling and tracing in
  // deterministic (kind, then id) order — one histogram observe and one
  // trace pair per channel round trip actually paid.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      if (kind_used[k]) channel_hist_[k].observe(kind_delay[k].sec());
    }
  }
  if (trace_enabled()) {
    const ElementId batch_id{name_ + "/batch"};
    // With an active trace context (a traced scatter above us — installed by
    // the controller's fan-out worker or a remote server's serve loop), the
    // batch also records its span subtree: one kSpanAgentBatch covering the
    // slowest channel trip, one kSpanChannelTrip child per kind paid.
    const TraceContext ctx = current_trace_context();
    const uint64_t batch_span = ctx.active() ? next_span_id() : 0;
    Duration slowest;
    for (size_t k = 0; k < kNumChannelKinds; ++k) {
      if (!kind_used[k]) continue;
      size_t group = 0;
      for (const PlannedQuery& q : plan) {
        if (static_cast<size_t>(q.kind) == k) ++group;
      }
      trace_event(batch_id, now, TraceEventKind::kAgentQueryIssued,
                  static_cast<double>(group),
                  to_string(static_cast<ChannelKind>(k)));
      trace_event(batch_id, now + kind_delay[k],
                  TraceEventKind::kAgentQueryCompleted, kind_delay[k].us(),
                  to_string(static_cast<ChannelKind>(k)));
      if (ctx.active()) {
        trace_span(batch_id, now, TraceEventKind::kSpanChannelTrip,
                   kind_delay[k], next_span_id(), batch_span,
                   static_cast<double>(group),
                   to_string(static_cast<ChannelKind>(k)));
        if (kind_delay[k] > slowest) slowest = kind_delay[k];
      }
    }
    if (ctx.active()) {
      trace_span(batch_id, now, TraceEventKind::kSpanAgentBatch, slowest,
                 batch_span, ctx.span_id, static_cast<double>(plan.size()),
                 name_);
    }
    // Blind spots must be visible in the flight recorder: unknown ids and
    // non-fresh responses degrade the batch.
    if (batch.unknown_ids > 0 || batch.degraded > 0) {
      trace_event(batch_id, now, TraceEventKind::kAgentBatchDegraded,
                  static_cast<double>(batch.unknown_ids + batch.degraded),
                  "unknown or degraded elements");
    }
  }
  return batch;
}

std::vector<QueryResponse> Agent::poll_all(SimTime now, ThreadPool* pool) {
  std::vector<PlannedQuery> plan;
  bool fault_mode = false;
  bool down = false;
  bool track_last_good = false, bookkeep = false;
  std::vector<PendingTrace> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    absorb_crashes_locked(now, &pending);
    fault_mode = plan_ != nullptr;
    if (fault_mode) {
      track_last_good = plan_->serves_stale();
      bookkeep = track_last_good || !pending_reset_.empty() ||
                 !reset_offset_.empty();
      down = plan_->has_campaign() && plan_->agent_down(name_, now);
    }
    plan.reserve(sources_.size());
    for (const auto& [id, src] : sources_) {
      PlannedQuery q;
      q.id = id;
      q.source = src;
      q.kind = src->channel_kind();
      plan.push_back(std::move(q));
    }
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedQuery& a, const PlannedQuery& b) {
              return a.id < b.id;
            });
  {
    // Jitter (and, under a fault plan, fault decisions and backoff draws)
    // consumed in element-id order, exactly as the sequential sweep consumed
    // the RNG, so any pool size yields identical outcomes.
    std::lock_guard<std::mutex> lock(mu_);
    for (PlannedQuery& q : plan) {
      plan_outcome_locked(q, now, /*shared_first=*/false, Duration{}, down,
                          &pending);
    }
  }
  emit_pending(pending);

  std::vector<QueryResponse> out(plan.size());
  parallel_for_or_inline(pool, plan.size(), [&](size_t i) {
    PlannedQuery& q = plan[i];
    QueryResponse& r = out[i];
    r.response_time = q.delay;
    r.quality = q.quality;
    r.attempts = q.attempts;
    if (q.failed) {
      r.fail_code = q.fail_code;
      // Blind spot: keep the element visible with an empty record so the
      // diagnosis layer sees the hole instead of silently skipping it.
      r.record.timestamp = now;
      r.record.element = q.id;
      return;
    }
    if (q.serve_stale) {
      r.record = std::move(q.stale_record);
      return;
    }
    r.record = q.source->collect(now);
    if (bookkeep) apply_fault_bookkeeping(q.id, r.record, track_last_good);
    if (q.quality == DataQuality::kTorn) {
      r.record = apply_torn_read(r.record, q.torn_salt);
    }
  });

  // Deterministic merge: per-element self-profiling and trace events in
  // element-id order, matching the sequential sweep event for event.
  // Breaker fast-fails (attempts == 0) paid no channel time and are not
  // observed.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const PlannedQuery& q : plan) {
      if (q.attempts == 0) continue;
      channel_hist_[static_cast<size_t>(q.kind)].observe(q.delay.sec());
    }
  }
  if (trace_enabled()) {
    for (const PlannedQuery& q : plan) {
      if (q.failed) {
        if (q.attempts > 0) {
          trace_event(q.id, now, TraceEventKind::kAgentQueryIssued, 0,
                      to_string(q.kind));
        }
        trace_event(q.id, now + q.delay, TraceEventKind::kAgentQueryFailed,
                    static_cast<double>(q.attempts), to_string(q.kind));
        continue;
      }
      trace_event(q.id, now, TraceEventKind::kAgentQueryIssued, 0,
                  to_string(q.kind));
      trace_event(q.id, now + q.delay, TraceEventKind::kAgentQueryCompleted,
                  q.delay.us(), to_string(q.kind));
    }
  }
  return out;
}

}  // namespace perfsight
