// The per-server PerfSight agent (§4.2).
//
// One agent runs on each physical server.  It owns a registry of the
// server's instrumented elements and, on demand, pulls counter values over
// element-specific channels and returns them in the unified record format.
// Pull-only by design: elements pay nothing while nobody is diagnosing.
//
// Channel latencies are modelled per kind (calibrated against Fig. 9:
// net-device file reads ≈2 ms; /proc, OVS, QEMU-log and middlebox-socket
// reads ≤500 µs) with a small deterministic jitter, so response-time
// behaviour can be studied in simulated time.
//
// Collection runtime (this layer's concurrency contract): the agent is
// safe to use from multiple threads — registry/cache/RNG/histogram state is
// guarded by one internal mutex, cache_hits_ is a relaxed atomic.  poll_all
// and query_batch accept an optional ThreadPool and fan the element
// collect() calls out across it; channel jitter is drawn *before* the
// fan-out, in element-id order, and results are merged back by element id,
// so their output is byte-identical at any pool size.  Element objects are
// not owned: a remove_element racing an in-flight poll only deregisters the
// element — the poll may still observe it once, and the caller must keep
// the StatsSource alive until in-flight polls drain.
#pragma once

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "perfsight/metrics.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"

namespace perfsight {

// Modelled one-way agent→element→agent fetch latency for a channel kind.
struct ChannelLatencyModel {
  Duration base;
  Duration jitter;  // uniform [0, jitter) added per query
};

ChannelLatencyModel default_latency(ChannelKind kind);

struct QueryResponse {
  StatsRecord record;
  Duration response_time;  // modelled element-fetch latency
};

// Result of one batched fetch (query_batch): the per-element records plus
// the total modelled channel time actually paid — one round trip per
// channel kind present in the batch, not one per element.
struct BatchResponse {
  std::vector<QueryResponse> responses;  // ordered by element id
  Duration channel_time;                 // sum of the per-kind round trips
  size_t unknown_ids = 0;                // requested ids not registered
};

class Agent {
 public:
  explicit Agent(std::string name, uint64_t seed = 1)
      : name_(std::move(name)), rng_(seed) {}

  const std::string& name() const { return name_; }

  // Registers an element; not owned.  Fails if the id is already taken.
  Status add_element(const StatsSource* source);

  // Deregisters an element (VM teardown / element migration).  Fails if the
  // id is unknown; the Monitor simply stops producing points for it.
  Status remove_element(const ElementId& id);

  bool has_element(const ElementId& id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return sources_.count(id) > 0;
  }
  std::vector<ElementId> element_ids() const;

  // Fetches all counters of one element.
  Result<QueryResponse> query(const ElementId& id, SimTime now);

  // Fetches a projection (the paper's GetAttr reaches this).
  Result<QueryResponse> query_attrs(const ElementId& id,
                                    const std::vector<std::string>& attrs,
                                    SimTime now);

  // Cached fetch: reuses the last record if it is no older than `max_age`,
  // saving the channel round trip (response_time 0 on a hit).  Diagnosis
  // sweeps that touch the same element repeatedly within a window use this
  // to keep the per-query cost of Fig. 9 from multiplying.
  Result<QueryResponse> query_cached(const ElementId& id, SimTime now,
                                     Duration max_age);
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

  // Batched fetch: one channel round trip amortized across every requested
  // element sharing a channel kind (a real agent reads one /proc file and
  // parses many counters out of it).  Unknown ids are skipped and counted.
  // With a parallel `pool`, collect() calls fan out across workers; output
  // is byte-identical to the pool-less call.
  BatchResponse query_batch(const std::vector<ElementId>& ids, SimTime now,
                            ThreadPool* pool = nullptr);

  // Fetches every element on this server (one poll sweep, Fig. 16
  // workload); per-element channel cost.  With a parallel `pool` the
  // collect() calls fan out; jitter is pre-drawn in element-id order and
  // results merge by id, so output is byte-identical at any pool size.
  std::vector<QueryResponse> poll_all(SimTime now, ThreadPool* pool = nullptr);

  // Overrides the latency model for a channel kind (tests / calibration).
  void set_latency(ChannelKind kind, ChannelLatencyModel m) {
    std::lock_guard<std::mutex> lock(mu_);
    latency_override_[static_cast<size_t>(kind)] = m;
    has_override_[static_cast<size_t>(kind)] = true;
  }

  // Self-profiling: distribution of modelled channel delays this agent has
  // paid, per channel kind (the live Fig. 9 data).  Always on; one observe
  // per channel round trip.  Read when no poll is in flight.
  const LatencyHistogram& channel_latency(ChannelKind kind) const {
    return channel_hist_[static_cast<size_t>(kind)];
  }

 private:
  struct PlannedQuery {
    ElementId id;
    const StatsSource* source = nullptr;
    ChannelKind kind = ChannelKind::kNetDeviceFile;
    Duration delay;
  };

  Duration channel_delay_locked(ChannelKind kind);
  void observe_channel(ChannelKind kind, Duration delay);

  std::string name_;
  mutable std::mutex mu_;  // guards rng_, sources_, cache_, overrides, hists
  Pcg32 rng_;
  std::unordered_map<ElementId, const StatsSource*> sources_;
  std::unordered_map<ElementId, QueryResponse> cache_;
  std::atomic<uint64_t> cache_hits_{0};
  std::array<ChannelLatencyModel, kNumChannelKinds> latency_override_ = {};
  std::array<bool, kNumChannelKinds> has_override_ = {};
  std::array<LatencyHistogram, kNumChannelKinds> channel_hist_ = {};
};

}  // namespace perfsight
