// The per-server PerfSight agent (§4.2).
//
// One agent runs on each physical server.  It owns a registry of the
// server's instrumented elements and, on demand, pulls counter values over
// element-specific channels and returns them in the unified record format.
// Pull-only by design: elements pay nothing while nobody is diagnosing.
//
// Channel latencies are modelled per kind (calibrated against Fig. 9:
// net-device file reads ≈2 ms; /proc, OVS, QEMU-log and middlebox-socket
// reads ≤500 µs) with a small deterministic jitter, so response-time
// behaviour can be studied in simulated time.
//
// Collection runtime (this layer's concurrency contract): the agent is
// safe to use from multiple threads — registry/cache/RNG/histogram state is
// guarded by one internal mutex, cache_hits_ is a relaxed atomic.  poll_all
// and query_batch accept an optional ThreadPool and fan the element
// collect() calls out across it; channel jitter is drawn *before* the
// fan-out, in element-id order, and results are merged back by element id,
// so their output is byte-identical at any pool size.  Element objects are
// not owned: a remove_element racing an in-flight poll only deregisters the
// element — the poll may still observe it once, and the caller must keep
// the StatsSource alive until in-flight polls drain.
//
// Fault tolerance: an optional FaultPlan (faults.h) makes channels fail —
// transiently, by timing out, by serving stale or torn records, or by
// crashing the whole agent.  The query paths absorb those failures with a
// RetryPolicy (bounded attempts, exponential backoff with deterministic
// jitter, a per-element deadline budget in simulated time) and a per-channel
// circuit breaker that fast-fails queries to a kind that keeps failing until
// a cooldown expires and a half-open probe succeeds.  Every fault decision,
// retry, backoff draw and breaker transition happens in the sequential
// planning phase — before any fan-out, in element-id order — so the
// byte-identical parallel-vs-sequential contract holds under faults too.
// With no plan installed the fault path is never entered and behaviour is
// bit-for-bit the pre-fault agent.
#pragma once

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "perfsight/faults.h"
#include "perfsight/metrics.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"
#include "perfsight/trace.h"

namespace perfsight {

// Modelled one-way agent→element→agent fetch latency for a channel kind.
struct ChannelLatencyModel {
  Duration base;
  Duration jitter;  // uniform [0, jitter) added per query
};

ChannelLatencyModel default_latency(ChannelKind kind);

struct QueryResponse {
  StatsRecord record;
  Duration response_time;  // modelled element-fetch latency (incl. retries)
  DataQuality quality = DataQuality::kFresh;
  uint32_t attempts = 1;  // channel attempts made (0: breaker fast-fail)
  // Why a kMissing response failed (meaningful only when quality is
  // kMissing): batch callers reconstruct the exact Status the single-query
  // path would have returned.
  StatusCode fail_code = StatusCode::kOk;
};

// The Status a failed element query surfaces, shared by the single-query
// path and the controller's scatter-gather merge so both produce
// byte-identical error messages.
Status query_failure_status(const std::string& agent_name, const ElementId& id,
                            uint32_t attempts, StatusCode code);

// Result of one batched fetch (query_batch): the per-element records plus
// the total modelled channel time actually paid — one round trip per
// channel kind present in the batch, not one per element.  Under faults,
// elements whose retries exhausted still appear in `responses` with
// DataQuality::kMissing (empty attrs), so callers see their blind spots.
struct BatchResponse {
  std::vector<QueryResponse> responses;  // ordered by element id
  Duration channel_time;                 // sum of the per-kind round trips
  size_t unknown_ids = 0;                // requested ids not registered
  size_t degraded = 0;                   // responses that are not kFresh
};

// How the query paths absorb channel failures.  The default (one attempt,
// no deadline) is exactly the pre-fault behaviour: a failure surfaces
// immediately and nothing extra is drawn from the RNG.
struct RetryPolicy {
  uint32_t max_attempts = 1;  // total attempts (1 = no retry)
  Duration initial_backoff = Duration::micros(200);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Duration::millis(50);
  // Backoff jitter fraction: each backoff is scaled by a uniform draw in
  // [1, 1 + jitter_frac), taken from the agent RNG during the sequential
  // planning phase (like channel jitter, pre-fan-out in element-id order).
  double jitter_frac = 0.5;
  // Per-attempt deadline: a timed-out attempt costs at most this much
  // modelled time.  Zero = the fault plan's full timeout spike is paid.
  Duration attempt_timeout;
  // Per-element budget within one sweep, in simulated time.  An element's
  // whole retry chain (channel time + backoff) is clamped to this; hitting
  // it fails the element with kDeadlineExceeded.  Zero = unbounded.
  Duration element_budget;
};

// Per-channel-kind circuit breaker: after `failure_threshold` consecutive
// failures the breaker opens and queries over that kind fast-fail without
// paying channel time; after `cooldown` the next query runs as a half-open
// probe whose outcome closes or re-opens the breaker.
struct CircuitBreakerConfig {
  uint32_t failure_threshold = 5;
  Duration cooldown = Duration::millis(20);
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* to_string(BreakerState s);

// The query surface the controller scatters over.  In-process `Agent`
// implements it directly; `RemoteAgent` (remote_agent.h) implements it over
// a socket speaking the PSB1/PSM1 wire codec.  The contract both uphold:
// query_batch returns one response per *known* requested id in ascending
// element-id order (unknown ids are counted, not returned), and failures
// carry the attempts/fail_code a caller needs to reconstruct the exact
// single-path Status via query_failure_status — so the controller merge is
// byte-identical whichever implementation sits behind it.
//
// Tracing: when the calling thread carries an active TraceContext
// (trace.h), implementations record span events under it — the in-process
// agent an agent-batch span with one channel-trip span per kind, the
// remote adapter a transport round-trip span, and the remote *server* a
// serve span in its own process parented to the caller's span id off the
// wire.  With no context (or tracing disabled) both record nothing and the
// remote conversation is byte-identical.
class AgentClient {
 public:
  virtual ~AgentClient() = default;

  virtual const std::string& name() const = 0;
  virtual bool has_element(const ElementId& id) const = 0;
  virtual std::vector<ElementId> element_ids() const = 0;

  // Fetches a projection of one element (the paper's GetAttr reaches this).
  virtual Result<QueryResponse> query_attrs(
      const ElementId& id, const std::vector<std::string>& attrs,
      SimTime now) = 0;

  // Batched fetch: one channel round trip per channel kind in the batch.
  // `pool` is advisory (in-process agents fan collect() out; a remote agent
  // has its own concurrency and may ignore it).
  virtual BatchResponse query_batch(const std::vector<ElementId>& ids,
                                    SimTime now, ThreadPool* pool = nullptr) = 0;
};

// Running totals of the fault machinery, per agent.  Scraped into the
// MetricsRegistry exposition; read under the agent lock via fault_stats().
struct AgentFaultStats {
  uint64_t faults_injected = 0;   // fault-plan decisions != kNone
  uint64_t retries = 0;           // attempts after the first
  uint64_t exhausted = 0;         // queries that failed every attempt
  uint64_t deadline_hits = 0;     // element budgets exceeded
  uint64_t stale_served = 0;      // queries answered from the last-good record
  uint64_t torn_reads = 0;        // records delivered with attrs missing
  uint64_t breaker_opened = 0;    // closed/half-open -> open transitions
  uint64_t breaker_closed = 0;    // half-open -> closed transitions
  uint64_t breaker_fast_fails = 0;  // queries skipped while open
  uint64_t crashes = 0;           // whole-agent crash/restarts absorbed

  bool any() const {
    return faults_injected || retries || exhausted || deadline_hits ||
           stale_served || torn_reads || breaker_opened || breaker_closed ||
           breaker_fast_fails || crashes;
  }
};

class Agent : public AgentClient {
 public:
  explicit Agent(std::string name, uint64_t seed = 1)
      : name_(std::move(name)), rng_(seed) {}

  const std::string& name() const override { return name_; }

  // Registers an element; not owned.  Fails if the id is already taken.
  Status add_element(const StatsSource* source);

  // Deregisters an element (VM teardown / element migration).  Fails if the
  // id is unknown; the Monitor simply stops producing points for it.
  Status remove_element(const ElementId& id);

  bool has_element(const ElementId& id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return sources_.count(id) > 0;
  }
  std::vector<ElementId> element_ids() const override;

  // Fetches all counters of one element.
  Result<QueryResponse> query(const ElementId& id, SimTime now);

  // Fetches a projection (the paper's GetAttr reaches this).
  Result<QueryResponse> query_attrs(const ElementId& id,
                                    const std::vector<std::string>& attrs,
                                    SimTime now) override;

  // Cached fetch: reuses the last record if it is no older than `max_age`,
  // saving the channel round trip (response_time 0 on a hit).  Diagnosis
  // sweeps that touch the same element repeatedly within a window use this
  // to keep the per-query cost of Fig. 9 from multiplying.
  Result<QueryResponse> query_cached(const ElementId& id, SimTime now,
                                     Duration max_age);
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

  // Batched fetch: one channel round trip amortized across every requested
  // element sharing a channel kind (a real agent reads one /proc file and
  // parses many counters out of it).  Unknown ids are skipped and counted.
  // With a parallel `pool`, collect() calls fan out across workers; output
  // is byte-identical to the pool-less call.
  BatchResponse query_batch(const std::vector<ElementId>& ids, SimTime now,
                            ThreadPool* pool = nullptr) override;

  // Fetches every element on this server (one poll sweep, Fig. 16
  // workload); per-element channel cost.  With a parallel `pool` the
  // collect() calls fan out; jitter is pre-drawn in element-id order and
  // results merge by id, so output is byte-identical at any pool size.
  std::vector<QueryResponse> poll_all(SimTime now, ThreadPool* pool = nullptr);

  // Overrides the latency model for a channel kind (tests / calibration).
  void set_latency(ChannelKind kind, ChannelLatencyModel m) {
    std::lock_guard<std::mutex> lock(mu_);
    latency_override_[static_cast<size_t>(kind)] = m;
    has_override_[static_cast<size_t>(kind)] = true;
  }

  // --- fault tolerance ------------------------------------------------------
  // Installs a fault plan (not owned; null disables injection).  With no
  // plan the fault path is never entered.
  void set_fault_plan(const FaultPlan* plan) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
  }
  void set_retry_policy(RetryPolicy p) {
    std::lock_guard<std::mutex> lock(mu_);
    retry_ = p;
  }
  void set_breaker_config(CircuitBreakerConfig c) {
    std::lock_guard<std::mutex> lock(mu_);
    breaker_cfg_ = c;
  }
  // Adaptive per-element budgets: derive the retry budget from the observed
  // per-kind channel-latency p99 (× max attempts) instead of the fixed
  // element_budget constant, clamped to the configured budget (the sweep
  // deadline) when one is set.  Off by default; the fixed-constant path is
  // byte-identical when disabled.
  void set_adaptive_budget(bool on) {
    std::lock_guard<std::mutex> lock(mu_);
    adaptive_budget_ = on;
  }
  BreakerState breaker_state(ChannelKind kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    return breakers_[static_cast<size_t>(kind)].state;
  }
  AgentFaultStats fault_stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fstats_;
  }

  // Self-profiling: distribution of modelled channel delays this agent has
  // paid, per channel kind (the live Fig. 9 data).  Always on; one observe
  // per channel round trip.  Read when no poll is in flight.
  const LatencyHistogram& channel_latency(ChannelKind kind) const {
    return channel_hist_[static_cast<size_t>(kind)];
  }

 private:
  struct PlannedQuery {
    ElementId id;
    const StatsSource* source = nullptr;
    ChannelKind kind = ChannelKind::kNetDeviceFile;
    Duration delay;  // total modelled channel time incl. retries/backoff
    DataQuality quality = DataQuality::kFresh;
    uint32_t attempts = 1;
    uint64_t torn_salt = 0;
    bool failed = false;
    StatusCode fail_code = StatusCode::kUnavailable;
    bool serve_stale = false;
    StatsRecord stale_record;  // snapshot of last-good at planning time
  };

  // Trace events decided while holding mu_ are staged and emitted after
  // unlock (the recorder has its own lock; keep the order fixed).
  struct PendingTrace {
    ElementId id;
    SimTime t;
    TraceEventKind kind = TraceEventKind::kAgentRetry;
    double value = 0;
    const char* detail = "";
  };

  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    uint32_t consecutive_failures = 0;
    SimTime opened_at;
  };

  Duration channel_delay_locked(ChannelKind kind);
  void observe_channel(ChannelKind kind, Duration delay);
  // Consumes crashes the plan scheduled since the last query: caches are
  // lost, every element's counters restart from zero on its next collect.
  void absorb_crashes_locked(SimTime now, std::vector<PendingTrace>* traces);
  // Models the full retry chain of one element query: fault decisions,
  // channel delays, backoff, budget clamp, breaker bookkeeping.  Must run
  // with mu_ held, pre-fan-out, in element-id order.  When `shared_first`
  // is set the first attempt rides a batch's per-kind round trip instead of
  // drawing its own delay.  When `agent_down` is set (a scheduled campaign
  // window covers `now`), every attempt fails unavailable without
  // consulting the Bernoulli draw — delays, backoff and breakers behave as
  // for real transient failures, so outcomes match in every query path.
  void plan_outcome_locked(PlannedQuery& q, SimTime now, bool shared_first,
                           Duration shared_delay, bool agent_down,
                           std::vector<PendingTrace>* traces);
  // Post-collect bookkeeping in fault mode: applies crash counter resets
  // and (when the plan can serve stale reads) refreshes the last-good
  // record.  Callers skip it entirely when neither applies, so an inert
  // plan adds no per-element locking or copying.
  void apply_fault_bookkeeping(const ElementId& id, StatsRecord& record,
                               bool track_last_good);
  void emit_pending(const std::vector<PendingTrace>& traces);

  std::string name_;
  mutable std::mutex mu_;  // guards rng_, sources_, cache_, overrides, hists
  Pcg32 rng_;
  std::unordered_map<ElementId, const StatsSource*> sources_;
  std::unordered_map<ElementId, QueryResponse> cache_;
  std::atomic<uint64_t> cache_hits_{0};
  std::array<ChannelLatencyModel, kNumChannelKinds> latency_override_ = {};
  std::array<bool, kNumChannelKinds> has_override_ = {};
  std::array<LatencyHistogram, kNumChannelKinds> channel_hist_ = {};
  // Fault machinery (all under mu_): plan, policy, per-kind breakers,
  // last-good records for stale serving, crash reset bookkeeping, tallies.
  const FaultPlan* plan_ = nullptr;
  RetryPolicy retry_;
  bool adaptive_budget_ = false;
  CircuitBreakerConfig breaker_cfg_;
  std::array<Breaker, kNumChannelKinds> breakers_ = {};
  std::unordered_map<ElementId, StatsRecord> last_good_;
  std::unordered_set<ElementId> pending_reset_;
  std::unordered_map<ElementId, std::vector<Attr>> reset_offset_;
  SimTime last_crash_check_;
  AgentFaultStats fstats_;
};

}  // namespace perfsight
