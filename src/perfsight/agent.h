// The per-server PerfSight agent (§4.2).
//
// One agent runs on each physical server.  It owns a registry of the
// server's instrumented elements and, on demand, pulls counter values over
// element-specific channels and returns them in the unified record format.
// Pull-only by design: elements pay nothing while nobody is diagnosing.
//
// Channel latencies are modelled per kind (calibrated against Fig. 9:
// net-device file reads ≈2 ms; /proc, OVS, QEMU-log and middlebox-socket
// reads ≤500 µs) with a small deterministic jitter, so response-time
// behaviour can be studied in simulated time.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "perfsight/metrics.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"

namespace perfsight {

// Modelled one-way agent→element→agent fetch latency for a channel kind.
struct ChannelLatencyModel {
  Duration base;
  Duration jitter;  // uniform [0, jitter) added per query
};

ChannelLatencyModel default_latency(ChannelKind kind);

struct QueryResponse {
  StatsRecord record;
  Duration response_time;  // modelled element-fetch latency
};

class Agent {
 public:
  explicit Agent(std::string name, uint64_t seed = 1)
      : name_(std::move(name)), rng_(seed) {}

  const std::string& name() const { return name_; }

  // Registers an element; not owned.  Fails if the id is already taken.
  Status add_element(const StatsSource* source);

  // Deregisters an element (VM teardown / element migration).  Fails if the
  // id is unknown; the Monitor simply stops producing points for it.
  Status remove_element(const ElementId& id);

  bool has_element(const ElementId& id) const {
    return sources_.count(id) > 0;
  }
  std::vector<ElementId> element_ids() const;

  // Fetches all counters of one element.
  Result<QueryResponse> query(const ElementId& id, SimTime now);

  // Fetches a projection (the paper's GetAttr reaches this).
  Result<QueryResponse> query_attrs(const ElementId& id,
                                    const std::vector<std::string>& attrs,
                                    SimTime now);

  // Cached fetch: reuses the last record if it is no older than `max_age`,
  // saving the channel round trip (response_time 0 on a hit).  Diagnosis
  // sweeps that touch the same element repeatedly within a window use this
  // to keep the per-query cost of Fig. 9 from multiplying.
  Result<QueryResponse> query_cached(const ElementId& id, SimTime now,
                                     Duration max_age);
  uint64_t cache_hits() const { return cache_hits_; }

  // Fetches every element on this server (one poll sweep, Fig. 16 workload).
  std::vector<QueryResponse> poll_all(SimTime now);

  // Overrides the latency model for a channel kind (tests / calibration).
  void set_latency(ChannelKind kind, ChannelLatencyModel m) {
    latency_override_[static_cast<size_t>(kind)] = m;
    has_override_[static_cast<size_t>(kind)] = true;
  }

  // Self-profiling: distribution of modelled channel delays this agent has
  // paid, per channel kind (the live Fig. 9 data).  Always on; one observe
  // per query.
  const LatencyHistogram& channel_latency(ChannelKind kind) const {
    return channel_hist_[static_cast<size_t>(kind)];
  }

 private:
  Duration channel_delay(ChannelKind kind);

  std::string name_;
  Pcg32 rng_;
  std::unordered_map<ElementId, const StatsSource*> sources_;
  std::unordered_map<ElementId, QueryResponse> cache_;
  uint64_t cache_hits_ = 0;
  std::array<ChannelLatencyModel, kNumChannelKinds> latency_override_ = {};
  std::array<bool, kNumChannelKinds> has_override_ = {};
  std::array<LatencyHistogram, kNumChannelKinds> channel_hist_ = {};
};

}  // namespace perfsight
