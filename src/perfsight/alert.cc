#include "perfsight/alert.h"

#include "common/status.h"
#include "perfsight/trace.h"

namespace perfsight {

std::vector<Alert> AlertWatcher::check(const AuxSignals& aux) {
  // Phase 1 — breach scan, fanned out over the pool: each rule reads its
  // monitor series and compares against the threshold.  Pure reads into
  // per-rule slots, so any completion order yields the same breaches.
  struct Scan {
    bool breach = false;
    double observed = 0;
  };
  std::vector<Scan> scans(rules_.size());
  parallel_for_or_inline(pool_, rules_.size(), [&](size_t i) {
    const AlertRule& rule = rules_[i].rule;
    Scan& s = scans[i];
    if (rule.on_rate) {
      Monitor::Series r = monitor_->rates(rule.element, rule.attr);
      if (r.empty()) return;
      s.observed = r.last();
    } else {
      const Monitor::Series& v = monitor_->values(rule.element, rule.attr);
      if (v.empty()) return;
      s.observed = v.last();
    }
    s.breach = s.observed >= rule.threshold;
  });

  // Phase 2 — cooldown bookkeeping, traces and diagnoses, sequential in
  // rule order.  `now` is read per rule because a fired diagnosis advances
  // simulated time: later rules must see the post-diagnosis clock, exactly
  // as the sequential watcher did.
  std::vector<Alert> fired;
  for (size_t i = 0; i < rules_.size(); ++i) {
    RuleState& rs = rules_[i];
    const AlertRule& rule = rs.rule;
    if (!scans[i].breach) continue;
    const double observed = scans[i].observed;

    const SimTime now = monitor_->controller()->now();
    if (rs.fired_before && now - rs.last_fired < rule.cooldown) continue;
    rs.fired_before = true;
    rs.last_fired = now;

    trace_event(rule.element, now, TraceEventKind::kAlertFired, observed,
                rule.name);

    Alert alert;
    alert.at = now;
    alert.rule = rule.name;
    alert.element = rule.element;
    alert.attr = rule.attr;
    alert.observed = observed;
    alert.threshold = rule.threshold;
    switch (rule.action) {
      case AlertRule::Action::kContention:
        PS_CHECK(contention_ != nullptr);
        alert.contention =
            contention_->diagnose(monitor_->tenant(), rule.window, aux);
        alert.ran_contention = true;
        alert.coverage = alert.contention.coverage;
        break;
      case AlertRule::Action::kRootCause:
        PS_CHECK(rootcause_ != nullptr);
        alert.rootcause = rootcause_->analyze(monitor_->tenant(), rule.window);
        alert.ran_rootcause = true;
        alert.coverage = alert.rootcause.coverage;
        break;
      case AlertRule::Action::kNone:
        break;
    }
    history_.push_back(alert);
    fired.push_back(history_.back());
  }
  return fired;
}

std::string to_text(const Alert& alert) {
  std::string out = "ALERT [" + alert.rule + "] " + alert.element.name + "." +
                    alert.attr + " = " + std::to_string(alert.observed) +
                    " >= " + std::to_string(alert.threshold) + " at t=" +
                    std::to_string(alert.at.sec()) + "s\n";
  if (alert.coverage < 1.0) {
    out += "  (diagnosis ran on partial data: coverage " +
           std::to_string(static_cast<int>(alert.coverage * 100 + 0.5)) +
           "%)\n";
  }
  if (alert.ran_contention) out += to_text(alert.contention);
  if (alert.ran_rootcause) out += to_text(alert.rootcause);
  return out;
}

}  // namespace perfsight
