#include "perfsight/alert.h"

#include "common/status.h"
#include "perfsight/trace.h"

namespace perfsight {

std::vector<Alert> AlertWatcher::check(const AuxSignals& aux) {
  std::vector<Alert> fired;
  for (RuleState& rs : rules_) {
    const AlertRule& rule = rs.rule;
    double observed;
    if (rule.on_rate) {
      Monitor::Series r = monitor_->rates(rule.element, rule.attr);
      if (r.empty()) continue;
      observed = r.last();
    } else {
      const Monitor::Series& v = monitor_->values(rule.element, rule.attr);
      if (v.empty()) continue;
      observed = v.last();
    }
    if (observed < rule.threshold) continue;

    const SimTime now = monitor_->controller()->now();
    if (rs.fired_before && now - rs.last_fired < rule.cooldown) continue;
    rs.fired_before = true;
    rs.last_fired = now;

    trace_event(rule.element, now, TraceEventKind::kAlertFired, observed,
                rule.name);

    Alert alert;
    alert.at = now;
    alert.rule = rule.name;
    alert.element = rule.element;
    alert.attr = rule.attr;
    alert.observed = observed;
    alert.threshold = rule.threshold;
    switch (rule.action) {
      case AlertRule::Action::kContention:
        PS_CHECK(contention_ != nullptr);
        alert.contention =
            contention_->diagnose(monitor_->tenant(), rule.window, aux);
        alert.ran_contention = true;
        alert.coverage = alert.contention.coverage;
        break;
      case AlertRule::Action::kRootCause:
        PS_CHECK(rootcause_ != nullptr);
        alert.rootcause = rootcause_->analyze(monitor_->tenant(), rule.window);
        alert.ran_rootcause = true;
        alert.coverage = alert.rootcause.coverage;
        break;
      case AlertRule::Action::kNone:
        break;
    }
    history_.push_back(alert);
    fired.push_back(history_.back());
  }
  return fired;
}

std::string to_text(const Alert& alert) {
  std::string out = "ALERT [" + alert.rule + "] " + alert.element.name + "." +
                    alert.attr + " = " + std::to_string(alert.observed) +
                    " >= " + std::to_string(alert.threshold) + " at t=" +
                    std::to_string(alert.at.sec()) + "s\n";
  if (alert.coverage < 1.0) {
    out += "  (diagnosis ran on partial data: coverage " +
           std::to_string(static_cast<int>(alert.coverage * 100 + 0.5)) +
           "%)\n";
  }
  if (alert.ran_contention) out += to_text(alert.contention);
  if (alert.ran_rootcause) out += to_text(alert.rootcause);
  return out;
}

}  // namespace perfsight
