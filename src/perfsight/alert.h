// AlertWatcher: turns one-shot diagnosis into continuous monitoring.
//
// The paper's workflow is operator-driven: notice a symptom, run Algorithm
// 1 or 2 by hand.  The watcher closes the loop: rules over the Monitor's
// time series ("vm0 TUN drop *rate* above 1000 pkts/s") are evaluated after
// every sampling tick, and a breach automatically runs the configured
// diagnosis — the same ContentionDetector / RootCauseAnalyzer an operator
// would have run, over the same controller — and records the report in the
// alert.  A cooldown keeps a persistent problem from re-firing on every
// sample while it is being remediated.
//
// Each firing also lands in the flight recorder (kAlertFired), so a trace
// shows symptom onset, the alert, and the diagnosis run in one timeline.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "perfsight/contention.h"
#include "perfsight/monitor.h"
#include "perfsight/rootcause.h"

namespace perfsight {

struct AlertRule {
  std::string name;
  ElementId element;
  std::string attr;
  // Threshold applies to the per-second rate of the series (true) or to the
  // raw sampled value (false).
  bool on_rate = true;
  double threshold = 0;  // fires when observation >= threshold

  enum class Action { kNone, kContention, kRootCause };
  Action action = Action::kContention;
  Duration window = Duration::seconds(1);     // diagnosis window
  Duration cooldown = Duration::seconds(5);   // min spacing between firings
};

struct Alert {
  SimTime at;
  std::string rule;
  ElementId element;
  std::string attr;
  double observed = 0;
  double threshold = 0;
  // Filled according to the rule's action.
  bool ran_contention = false;
  ContentionReport contention;
  bool ran_rootcause = false;
  RootCauseReport rootcause;
  // Fraction of the triggered diagnosis's scan set measured fresh (copied
  // from the report).  < 1 means the verdict was drawn from partial data.
  double coverage = 1.0;
};

class AlertWatcher {
 public:
  // Monitor is the series source; the detectors are borrowed and may be
  // null when no rule uses the corresponding action.
  AlertWatcher(const Monitor* monitor, const ContentionDetector* contention,
               const RootCauseAnalyzer* rootcause)
      : monitor_(monitor), contention_(contention), rootcause_(rootcause) {}

  void add_rule(AlertRule rule) {
    rules_.push_back(RuleState{std::move(rule), SimTime{}, false});
  }
  size_t num_rules() const { return rules_.size(); }

  // Evaluation pool: the read-only breach scan (monitor series + threshold,
  // phase 1) fans out one task per rule; cooldown bookkeeping, traces and
  // diagnoses stay sequential in rule order (phase 2), so output is
  // byte-identical to the pool-less watcher.  Optional; not owned.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  // Evaluates every rule against the monitor's current series; call after
  // each Monitor::sample().  Triggered diagnoses advance simulated time by
  // their window (exactly like a manual run).  Returns the alerts fired by
  // this call; the full history stays available via history().
  std::vector<Alert> check(const AuxSignals& aux = {});

  const std::vector<Alert>& history() const { return history_; }

 private:
  struct RuleState {
    AlertRule rule;
    SimTime last_fired;
    bool fired_before = false;
  };

  const Monitor* monitor_;
  const ContentionDetector* contention_;
  const RootCauseAnalyzer* rootcause_;
  ThreadPool* pool_ = nullptr;
  std::vector<RuleState> rules_;
  std::vector<Alert> history_;
};

std::string to_text(const Alert& alert);

}  // namespace perfsight
