// The utilization-monitoring baseline PerfSight argues against (§2.3).
//
// "A common approach to detect bottlenecks is to monitor the resource
// utilization on VMs.  While this may work in some cases, there are a
// variety of middleboxes for which resource utilization does not reflect
// workload intensity" — e.g. a transcoder using non-blocking I/O busy-waits
// at 100% CPU while perfectly healthy, and memory-bandwidth contention
// shows no elevated utilization anywhere.  This detector implements that
// baseline faithfully so benches/tests can compare its verdicts against
// PerfSight's element-level diagnosis on the same scenarios.
#pragma once

#include <string>
#include <vector>

namespace perfsight {

struct VmUtilization {
  std::string vm_name;
  double cpu = 0;  // 0..1 of the VM's allocation
};

struct UtilizationSnapshot {
  double host_cpu = 0;  // 0..1 of all cores
  std::vector<VmUtilization> vms;
};

struct BaselineVerdict {
  bool problem_found = false;
  // VMs whose utilization exceeds the threshold — the baseline's
  // "suspicious set" (§5.1 uses the same notion as a pre-filter).
  std::vector<std::string> suspected_vms;
  bool suspects_host = false;
  std::string narrative;
};

class NaiveUtilizationDetector {
 public:
  explicit NaiveUtilizationDetector(double vm_threshold = 0.9,
                                    double host_threshold = 0.9)
      : vm_threshold_(vm_threshold), host_threshold_(host_threshold) {}

  BaselineVerdict diagnose(const UtilizationSnapshot& snap) const {
    BaselineVerdict v;
    for (const VmUtilization& vm : snap.vms) {
      if (vm.cpu >= vm_threshold_) {
        v.suspected_vms.push_back(vm.vm_name);
      }
    }
    v.suspects_host = snap.host_cpu >= host_threshold_;
    v.problem_found = v.suspects_host || !v.suspected_vms.empty();
    if (!v.problem_found) {
      v.narrative = "all utilizations nominal: no problem suspected";
    } else {
      v.narrative = "high utilization at:";
      if (v.suspects_host) v.narrative += " host-cpu";
      for (const std::string& n : v.suspected_vms) v.narrative += " " + n;
    }
    return v;
  }

 private:
  double vm_threshold_;
  double host_threshold_;
};

}  // namespace perfsight
