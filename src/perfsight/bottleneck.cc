#include "perfsight/bottleneck.h"

#include <unordered_map>

namespace perfsight {

namespace {

double util_of(const UtilizationSnapshot& snap, const std::string& vm) {
  for (const VmUtilization& u : snap.vms) {
    if (u.vm_name == vm) return u.cpu;
  }
  return 0;
}

}  // namespace

BottleneckReport BottleneckDetector::diagnose(
    TenantId tenant, const UtilizationSnapshot& utilization,
    const std::vector<SuspectVm>& vms, Duration window,
    bool degenerate) const {
  BottleneckReport report;

  // Build the suspicious set.
  std::vector<const SuspectVm*> suspects;
  for (const SuspectVm& vm : vms) {
    if (degenerate || util_of(utilization, vm.vm_name) >= threshold_) {
      suspects.push_back(&vm);
    }
  }

  // One shared window for every suspect's datapath elements.
  std::unordered_map<ElementId, double> first;
  std::vector<std::string> attrs{attr::kDropPkts};
  for (const SuspectVm* vm : suspects) {
    for (const ElementId& e : vm->datapath) {
      Result<StatsRecord> r = controller_->get_attr(tenant, e, attrs);
      if (r.ok()) first[e] = r.value().get_or(attr::kDropPkts, 0);
    }
  }
  controller_->advance(window);

  for (const SuspectVm* vm : suspects) {
    BottleneckVerdict v;
    v.vm_name = vm->vm_name;
    v.cpu_utilization = util_of(utilization, vm->vm_name);
    for (const ElementId& e : vm->datapath) {
      Result<StatsRecord> r = controller_->get_attr(tenant, e, attrs);
      if (!r.ok()) continue;
      auto it = first.find(e);
      if (it == first.end()) continue;
      v.loss_pkts += static_cast<int64_t>(
          r.value().get_or(attr::kDropPkts, 0) - it->second);
    }
    v.confirmed = v.loss_pkts > 0;
    if (v.confirmed) {
      report.confirmed.push_back(v.vm_name);
    } else {
      report.exonerated.push_back(v.vm_name);
    }
    report.verdicts.push_back(std::move(v));
  }
  return report;
}

std::string to_text(const BottleneckReport& report) {
  std::string out = "=== bottleneck-middlebox report ===\n";
  for (const BottleneckVerdict& v : report.verdicts) {
    out += "  " + v.vm_name + ": cpu=" +
           std::to_string(static_cast<int>(v.cpu_utilization * 100)) +
           "% loss=" + std::to_string(v.loss_pkts) + " pkts -> " +
           (v.confirmed ? "BOTTLENECK" : "busy-but-healthy") + "\n";
  }
  return out;
}

}  // namespace perfsight
