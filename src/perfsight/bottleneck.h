// Bottleneck-middlebox detection as described in §5.1:
//
//   "the operator first selects middleboxes with high resource utilization
//    and includes them in a 'suspicious' set; in the degenerate case all of
//    the tenant's middleboxes could be included.  Then, we use our
//    light-weight statistics to distinguish those middleboxes that are
//    facing legitimate issues, such as packet drops, against those whose
//    resources naturally run at a high utilization but are otherwise not
//    bottlenecks (e.g., a video encoder)."
//
// The detector takes the utilization snapshot (the same input the naive
// baseline uses) as a pre-filter, then measures packet loss on each
// suspect VM's datapath over one window.  Suspects with real loss are
// confirmed bottlenecks; busy-but-healthy ones are exonerated — the video
// transcoder case that breaks utilization-only monitoring.
#pragma once

#include <string>
#include <vector>

#include "perfsight/baseline.h"
#include "perfsight/controller.h"

namespace perfsight {

struct SuspectVm {
  std::string vm_name;
  // Elements on this VM's datapath whose drops implicate it (typically its
  // TUN and guest socket).
  std::vector<ElementId> datapath;
};

struct BottleneckVerdict {
  std::string vm_name;
  double cpu_utilization = 0;
  int64_t loss_pkts = 0;
  bool confirmed = false;  // high utilization AND real loss
};

struct BottleneckReport {
  std::vector<BottleneckVerdict> verdicts;  // every suspect, judged
  std::vector<std::string> confirmed;       // bottlenecks to act on
  std::vector<std::string> exonerated;      // busy but healthy
};

class BottleneckDetector {
 public:
  BottleneckDetector(const Controller* controller,
                     double utilization_threshold = 0.9)
      : controller_(controller), threshold_(utilization_threshold) {}

  // `vms` maps utilization entries to datapath elements; VMs below the
  // utilization threshold are skipped unless `degenerate` is set (the
  // paper's fallback when no utilization stands out).
  BottleneckReport diagnose(TenantId tenant,
                            const UtilizationSnapshot& utilization,
                            const std::vector<SuspectVm>& vms,
                            Duration window, bool degenerate = false) const;

 private:
  const Controller* controller_;
  double threshold_;
};

std::string to_text(const BottleneckReport& report);

}  // namespace perfsight
