#include "perfsight/contention.h"

#include <algorithm>
#include <set>

#include "perfsight/trace.h"

namespace perfsight {

namespace {
const ElementId kAlgo1Id{"diagnosis/contention"};
}  // namespace

namespace {

struct Sample {
  double drops = 0;
  double in_pkts = 0;
  double out_pkts = 0;
  ElementKind kind = ElementKind::kOther;
  int vm = -1;
  bool valid = false;
  bool has_drop_counter = false;
  DataQuality quality = DataQuality::kMissing;  // kFresh once sampled cleanly
};

// The attribute set one contention sample needs; shared by the single-element
// and batched sampling paths.
std::vector<std::string> sample_attrs() {
  return {attr::kDropPkts, attr::kRxPkts, attr::kTxPkts, attr::kType,
          attr::kVm};
}

Sample to_sample(const Result<Controller::QualifiedRecord>& r) {
  Sample s;
  if (!r.ok()) return s;
  s.quality = r.value().quality;
  const StatsRecord& rec = r.value().record;
  s.has_drop_counter = rec.get(attr::kDropPkts).has_value();
  s.drops = rec.get_or(attr::kDropPkts, 0);
  s.in_pkts = rec.get_or(attr::kRxPkts, 0);
  s.out_pkts = rec.get_or(attr::kTxPkts, 0);
  s.kind = static_cast<ElementKind>(
      static_cast<int>(rec.get_or(attr::kType, static_cast<double>(static_cast<int>(ElementKind::kOther)))));
  s.vm = static_cast<int>(rec.get_or(attr::kVm, -1));
  s.valid = true;
  return s;
}

bool is_shared_kind(ElementKind k) {
  switch (k) {
    case ElementKind::kPNic:
    case ElementKind::kPCpuBacklog:
    case ElementKind::kNapi:
    case ElementKind::kVSwitch:
      return true;
    default:
      return false;
  }
}

}  // namespace

ContentionReport ContentionDetector::diagnose(TenantId tenant, Duration window,
                                              const AuxSignals& aux) const {
  const SimTime t0 = controller_->now();
  const Duration ch0 = controller_->channel_time();
  trace_event(kAlgo1Id, t0, TraceEventKind::kDiagnosisStarted,
              static_cast<double>(tenant.value()), "Algorithm 1 sweep");

  // Runs at every exit: observe what this diagnosis itself cost (the sweep
  // window plus the modelled channel time of every query it issued).
  auto finish = [&](const ContentionReport& r) {
    const SimTime t1 = controller_->now();
    const Duration cost = (t1 - t0) + (controller_->channel_time() - ch0);
    if (metrics_ != nullptr) {
      metrics_
          ->histogram("perfsight_contention_diagnosis_seconds",
                      "End-to-end Algorithm 1 cost: measurement window plus "
                      "modelled channel time")
          .observe(cost.sec());
    }
    trace_event(kAlgo1Id, t1, TraceEventKind::kDiagnosisCompleted, cost.ms(),
                r.problem_found ? "problem found" : "healthy");
  };

  ContentionReport report;
  std::vector<ElementId> elements = controller_->stack_elements_for(tenant);

  // One shared measurement window for the whole sweep.  Each sweep is one
  // scatter-gather fan-in: the controller groups the elements by owning
  // agent, issues one batch per agent over the pool, and merges results
  // back in element order — so the report below never depends on completion
  // order, and the per-element channel cost amortizes per channel kind.
  const std::vector<std::string> attrs = sample_attrs();
  std::vector<Sample> first(elements.size());
  std::vector<Sample> second(elements.size());
  auto sweep = [&](std::vector<Sample>& out) {
    std::vector<Result<Controller::QualifiedRecord>> got =
        controller_->get_attr_many(tenant, elements, attrs, pool_);
    for (size_t i = 0; i < elements.size(); ++i) out[i] = to_sample(got[i]);
  };
  sweep(first);
  controller_->advance(window);
  sweep(second);
  for (size_t i = 0; i < elements.size(); ++i) {
    const ElementId& e = elements[i];
    const Sample& s1 = first[i];
    const Sample& s2 = second[i];
    // A loss delta is only trustworthy when *both* endpoints were actually
    // measured (fresh primary or quorum replica): stale counters produce
    // bogus deltas and torn records may be missing the very counters the
    // delta needs.  Degraded elements become blind spots instead of ranked
    // entries.
    const DataQuality q = worse(s1.quality, s2.quality);
    if (!s1.valid || !s2.valid || !is_measured(q)) {
      report.blind_spots.push_back(ContentionReport::BlindSpot{e, q});
      continue;
    }
    ElementLossEntry entry;
    entry.id = e;
    entry.kind = s2.kind;
    entry.vm = s2.vm;
    if (s2.has_drop_counter) {
      entry.loss_pkts = static_cast<int64_t>(s2.drops - s1.drops);
    } else {
      // The paper's (in - out) growth, for elements without an explicit
      // drop counter.
      entry.loss_pkts = static_cast<int64_t>((s2.in_pkts - s2.out_pkts) -
                                             (s1.in_pkts - s1.out_pkts));
    }
    if (entry.loss_pkts < 0) entry.loss_pkts = 0;
    report.ranked.push_back(entry);
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const ElementLossEntry& a, const ElementLossEntry& b) {
              if (a.loss_pkts != b.loss_pkts) return a.loss_pkts > b.loss_pkts;
              return a.id < b.id;
            });

  if (!elements.empty()) {
    report.coverage =
        static_cast<double>(elements.size() - report.blind_spots.size()) /
        static_cast<double>(elements.size());
  }
  // Appended to every narrative when the sweep had blind spots: a verdict
  // from partial data must say so.
  auto blind_note = [&]() -> std::string {
    if (report.blind_spots.empty()) return "";
    return "; " + std::to_string(report.blind_spots.size()) +
           " element(s) unmeasured (coverage " +
           std::to_string(static_cast<int>(report.coverage * 100 + 0.5)) +
           "%)";
  };

  if (report.ranked.empty() ||
      report.ranked.front().loss_pkts < loss_threshold_) {
    report.narrative = "no significant packet loss in the software dataplane" +
                       blind_note();
    finish(report);
    return report;
  }

  const ElementLossEntry& primary = report.ranked.front();
  report.problem_found = true;
  report.primary_location = primary.kind;

  // Spread: which VMs' per-VM elements (of the primary kind) are losing?
  std::set<int> vms;
  for (const ElementLossEntry& e : report.ranked) {
    if (e.kind == primary.kind && e.loss_pkts >= loss_threshold_ &&
        e.vm >= 0) {
      vms.insert(e.vm);
    }
  }
  report.affected_vms.assign(vms.begin(), vms.end());
  if (is_shared_kind(primary.kind)) {
    report.spread = LossSpread::kSharedElement;
    report.is_contention = true;
  } else if (vms.size() > 1) {
    report.spread = LossSpread::kMultiVm;
    report.is_contention = true;
  } else {
    report.spread = LossSpread::kSingleVm;
    report.is_contention = false;
  }

  report.candidate_resources =
      rulebook_.candidates(primary.kind, report.spread);
  report.candidate_resources =
      RuleBook::disambiguate(report.candidate_resources, aux);

  std::string where = to_string(primary.kind);
  report.narrative = "loss concentrated at " + where + " (" +
                     primary.id.name + ", " +
                     std::to_string(primary.loss_pkts) + " pkts); " +
                     (report.is_contention
                          ? std::string("contention across ") +
                                std::to_string(std::max<size_t>(
                                    vms.size(), report.is_contention ? 2 : 1)) +
                                " VMs"
                          : "bottleneck confined to one VM");
  report.narrative += blind_note();
  finish(report);
  return report;
}

std::string to_text(const ContentionReport& r) {
  std::string out;
  out += "=== Algorithm 1: contention / bottleneck report ===\n";
  if (!r.problem_found) {
    out += "  no significant loss detected\n";
    if (!r.blind_spots.empty()) {
      out += "  WARNING: verdict from partial data; " +
             std::to_string(r.blind_spots.size()) +
             " element(s) unmeasured (coverage " +
             std::to_string(static_cast<int>(r.coverage * 100 + 0.5)) +
             "%)\n";
    }
    return out;
  }
  out += "  primary drop location: ";
  out += to_string(r.primary_location);
  out += "  (spread: ";
  out += to_string(r.spread);
  out += ", classified as ";
  out += r.is_contention ? "CONTENTION" : "BOTTLENECK";
  out += ")\n  candidate resources:";
  for (ResourceKind res : r.candidate_resources) {
    out += " ";
    out += to_string(res);
  }
  out += "\n  ranked element losses:\n";
  for (const ElementLossEntry& e : r.ranked) {
    if (e.loss_pkts <= 0) continue;
    out += "    " + e.id.name + " [" + to_string(e.kind) +
           "]: " + std::to_string(e.loss_pkts) + " pkts\n";
  }
  if (!r.blind_spots.empty()) {
    out += "  blind spots (excluded from ranking, coverage " +
           std::to_string(static_cast<int>(r.coverage * 100 + 0.5)) + "%):\n";
    for (const ContentionReport::BlindSpot& b : r.blind_spots) {
      out += "    " + b.id.name + ": " + to_string(b.quality) + "\n";
    }
  }
  return out;
}

}  // namespace perfsight
