// Algorithm 1 (§5.1): detect contention and bottleneck middleboxes.
//
// Scans every virtualization-stack element on the machines hosting a
// tenant, measures each element's packet loss over a single shared window
// (one sample sweep, advance, second sweep — not one window per element),
// ranks elements by loss, and classifies:
//
//   * loss at a shared element (pNIC, pCPU backlog)            -> contention
//     for that element's resource among its users;
//   * loss at per-VM elements (TUNs) across multiple VMs        -> contention
//     for a shared resource (CPU / memory bandwidth / egress — the rule
//     book's ambiguous set, narrowed by auxiliary signals);
//   * loss confined to a single VM's datapath                   -> that VM is
//     a bottleneck (under-provisioned), not a victim of contention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "perfsight/controller.h"
#include "perfsight/metrics.h"
#include "perfsight/rulebook.h"

namespace perfsight {

struct ElementLossEntry {
  ElementId id;
  ElementKind kind = ElementKind::kOther;
  int vm = -1;  // owning VM, -1 for shared elements
  int64_t loss_pkts = 0;
};

struct ContentionReport {
  // An element the sweep could not measure reliably: its counters came back
  // stale, torn, or not at all (fault-tolerant collection).  Such elements
  // are excluded from the loss ranking — a stale counter pair yields a
  // bogus delta — and reported here instead, so the verdict is explicit
  // about where it is blind.
  struct BlindSpot {
    ElementId id;
    DataQuality quality = DataQuality::kMissing;
  };

  // All reliably-measured elements, sorted by descending loss
  // (Algorithm 1's output).
  std::vector<ElementLossEntry> ranked;
  bool problem_found = false;
  ElementKind primary_location = ElementKind::kOther;
  LossSpread spread = LossSpread::kNone;
  bool is_contention = false;  // vs single-VM bottleneck
  std::vector<int> affected_vms;
  std::vector<ResourceKind> candidate_resources;
  // Elements with degraded or missing data, in element-id order, and the
  // fraction of the scan set measured fresh (1.0 = full confidence).
  std::vector<BlindSpot> blind_spots;
  double coverage = 1.0;
  std::string narrative;
};

class ContentionDetector {
 public:
  ContentionDetector(const Controller* controller, RuleBook rulebook)
      : controller_(controller), rulebook_(std::move(rulebook)) {}

  // Minimum packet loss over the window to consider an element lossy
  // (filters measurement noise).
  void set_loss_threshold(int64_t pkts) { loss_threshold_ = pkts; }

  // Self-profiling sink: each diagnose() observes its end-to-end cost
  // (measurement window + modelled channel time) into
  // perfsight_contention_diagnosis_seconds.  Optional; not owned.
  void set_metrics(MetricsRegistry* m) { metrics_ = m; }

  // Collection pool for the stack sweeps: the two sample sweeps fan their
  // per-element queries out across workers and merge by element index, so
  // the report is byte-identical to the sequential scan.  Optional; not
  // owned; null means sequential.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  ContentionReport diagnose(TenantId tenant, Duration window,
                            const AuxSignals& aux = {}) const;

 private:
  const Controller* controller_;
  RuleBook rulebook_;
  int64_t loss_threshold_ = 1;
  MetricsRegistry* metrics_ = nullptr;
  ThreadPool* pool_ = nullptr;
};

std::string to_text(const ContentionReport& report);

}  // namespace perfsight
