#include "perfsight/controller.h"

#include <algorithm>
#include <unordered_set>

#include "perfsight/trace.h"
#include "perfsight/wire.h"

namespace perfsight {

namespace {
// Trace events of the scatter-gather layer hang off a synthetic element:
// the fan-out is controller-wide, not owned by any dataplane element.
const ElementId& controller_trace_id() {
  static const ElementId kId{"controller"};
  return kId;
}
}  // namespace

Status Controller::register_element(TenantId tenant, const ElementId& id,
                                    AgentClient* agent) {
  PS_CHECK(agent != nullptr);
  if (!agent->has_element(id)) {
    return Status::not_found("agent " + agent->name() +
                             " does not serve element " + id.name);
  }
  vnet_[tenant][id] = agent;
  return Status::ok();
}

Status Controller::register_mirror(TenantId tenant, const ElementId& id,
                                   AgentClient* agent) {
  PS_CHECK(agent != nullptr);
  if (!agent->has_element(id)) {
    return Status::not_found("agent " + agent->name() +
                             " does not serve element " + id.name);
  }
  mirror_[tenant][id] = agent;
  return Status::ok();
}

AgentClient* Controller::mirror_of(TenantId tenant, const ElementId& id) const {
  auto tit = mirror_.find(tenant);
  if (tit == mirror_.end()) return nullptr;
  auto eit = tit->second.find(id);
  return eit == tit->second.end() ? nullptr : eit->second;
}

const std::vector<ElementId>& Controller::middleboxes(TenantId tenant) const {
  static const std::vector<ElementId> kEmpty;
  auto it = tenant_mbs_.find(tenant);
  return it == tenant_mbs_.end() ? kEmpty : it->second;
}

const ChainTopology& Controller::chain(TenantId tenant) const {
  static const ChainTopology kEmpty;
  auto it = tenant_chain_.find(tenant);
  return it == tenant_chain_.end() ? kEmpty : it->second;
}

std::vector<ElementId> Controller::elements_of(TenantId tenant) const {
  std::vector<ElementId> out;
  auto it = vnet_.find(tenant);
  if (it == vnet_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [id, agent] : it->second) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElementId> Controller::stack_elements_for(TenantId tenant) const {
  std::vector<ElementId> out;
  auto it = vnet_.find(tenant);
  if (it == vnet_.end()) return out;
  std::unordered_set<AgentClient*> machines;
  for (const auto& [id, agent] : it->second) machines.insert(agent);
  for (AgentClient* agent : machines) {
    auto sit = stack_elements_.find(agent);
    if (sit == stack_elements_.end()) continue;
    out.insert(out.end(), sit->second.begin(), sit->second.end());
  }
  std::sort(out.begin(), out.end());
  // A mirrored element is registered as a stack element on its primary AND
  // its replica agent; the scan set is a set — without this, quorum-served
  // elements count twice in loss rankings and coverage denominators.
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

AgentClient* Controller::locate(TenantId tenant, const ElementId& id) const {
  auto tit = vnet_.find(tenant);
  if (tit != vnet_.end()) {
    auto eit = tit->second.find(id);
    if (eit != tit->second.end()) return eit->second;
  }
  // Stack elements are shared infrastructure, not owned by any tenant;
  // resolve them by asking the agents directly.
  for (AgentClient* a : agents_) {
    if (a->has_element(id)) return a;
  }
  return nullptr;
}

void Controller::set_metrics(MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    m_queries_single_ = m_queries_batch_ = nullptr;
    m_scatters_ = m_scatter_agents_ = nullptr;
    m_batch_channel_s_ = nullptr;
    return;
  }
  // Created once here: instrument creation mutates the registry's family
  // vectors (not thread-safe), but the instruments themselves have stable
  // addresses, so the query paths only touch these pointers — under
  // cost_mu_.
  m_queries_single_ =
      &m->counter("perfsight_controller_queries_total",
                  "Element queries the controller issued", "path=\"single\"");
  m_queries_batch_ =
      &m->counter("perfsight_controller_queries_total",
                  "Element queries the controller issued", "path=\"batch\"");
  m_scatters_ = &m->counter("perfsight_controller_batch_scatters_total",
                            "Multi-element queries fanned out as batches");
  m_scatter_agents_ =
      &m->counter("perfsight_controller_batch_agents_total",
                  "Per-agent batches issued by scatter-gather fan-outs");
  m_batch_channel_s_ =
      &m->histogram("perfsight_controller_batch_channel_seconds",
                    "Modelled channel time per scatter-gather fan-out");
}

void Controller::account(uint64_t queries, Duration channel_time,
                         bool batch) const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  queries_issued_ += queries;
  channel_time_ns_ += channel_time.ns();
  if (batch) {
    if (m_queries_batch_ != nullptr) m_queries_batch_->add(queries);
    if (m_scatters_ != nullptr) m_scatters_->increment();
    if (m_batch_channel_s_ != nullptr) {
      m_batch_channel_s_->observe(static_cast<double>(channel_time.ns()) /
                                  1e9);
    }
  } else {
    if (m_queries_single_ != nullptr) m_queries_single_->add(queries);
  }
}

Result<Controller::QualifiedRecord> Controller::get_attr_q(
    TenantId tenant, const ElementId& id,
    const std::vector<std::string>& attrs) const {
  AgentClient* agent = locate(tenant, id);
  if (agent == nullptr) {
    return Status::not_found("no agent serves element " + id.name);
  }
  Result<QueryResponse> resp = agent->query_attrs(id, attrs, now_());
  if (!resp.ok()) {
    // Quorum fallback: a collection failure (not a config error) on a
    // mirrored element earns one read from the replica before the blind
    // spot stands.  The answer is annotated kReplica; a double failure
    // re-raises the PRIMARY's Status so unmirrored and double-failed runs
    // are byte-identical.
    if (resp.status().code() != StatusCode::kNotFound) {
      AgentClient* mirror = mirror_of(tenant, id);
      if (mirror != nullptr) {
        Result<QueryResponse> mr = mirror->query_attrs(id, attrs, now_());
        if (mr.ok()) {
          account(1, mr.value().response_time, /*batch=*/false);
          return QualifiedRecord{
              mr.value().record,
              worse(DataQuality::kReplica, mr.value().quality)};
        }
      }
    }
    return resp.status();
  }
  account(1, resp.value().response_time, /*batch=*/false);
  return QualifiedRecord{resp.value().record, resp.value().quality};
}

Result<StatsRecord> Controller::get_attr(
    TenantId tenant, const ElementId& id,
    const std::vector<std::string>& attrs) const {
  Result<QualifiedRecord> q = get_attr_q(tenant, id, attrs);
  if (!q.ok()) return q.status();
  return std::move(q).take().record;
}

Result<DataRate> Controller::get_throughput(TenantId tenant,
                                            const ElementId& id,
                                            Duration window,
                                            DataQuality* quality) const {
  std::vector<std::string> attrs{attr::kTxBytes};
  Result<QualifiedRecord> s1 = get_attr_q(tenant, id, attrs);
  if (!s1.ok()) return s1.status();
  advance_(window);
  Result<QualifiedRecord> s2 = get_attr_q(tenant, id, attrs);
  if (!s2.ok()) return s2.status();
  if (quality != nullptr) *quality = worse(s1.value().quality,
                                           s2.value().quality);
  double b1 = s1.value().record.get_or(attr::kTxBytes, 0);
  double b2 = s2.value().record.get_or(attr::kTxBytes, 0);
  Duration dt = s2.value().record.timestamp - s1.value().record.timestamp;
  return rate_of(static_cast<uint64_t>(std::max(0.0, b2 - b1)), dt);
}

Result<int64_t> Controller::get_pkt_loss(TenantId tenant, const ElementId& id,
                                         Duration window,
                                         DataQuality* quality) const {
  std::vector<std::string> attrs{attr::kRxPkts, attr::kTxPkts,
                                 attr::kDropPkts};
  Result<QualifiedRecord> s1 = get_attr_q(tenant, id, attrs);
  if (!s1.ok()) return s1.status();
  advance_(window);
  Result<QualifiedRecord> s2 = get_attr_q(tenant, id, attrs);
  if (!s2.ok()) return s2.status();
  if (quality != nullptr) *quality = worse(s1.value().quality,
                                           s2.value().quality);

  const StatsRecord& r1 = s1.value().record;
  const StatsRecord& r2 = s2.value().record;
  if (r1.get(attr::kDropPkts) && r2.get(attr::kDropPkts)) {
    return static_cast<int64_t>(*r2.get(attr::kDropPkts) -
                                *r1.get(attr::kDropPkts));
  }
  double d1 = r1.get_or(attr::kRxPkts, 0) - r1.get_or(attr::kTxPkts, 0);
  double d2 = r2.get_or(attr::kRxPkts, 0) - r2.get_or(attr::kTxPkts, 0);
  return static_cast<int64_t>(d2 - d1);
}

Result<double> Controller::get_avg_pkt_size(TenantId tenant,
                                            const ElementId& id,
                                            Duration window,
                                            DataQuality* quality) const {
  std::vector<std::string> attrs{attr::kTxBytes, attr::kTxPkts};
  Result<QualifiedRecord> s1 = get_attr_q(tenant, id, attrs);
  if (!s1.ok()) return s1.status();
  advance_(window);
  Result<QualifiedRecord> s2 = get_attr_q(tenant, id, attrs);
  if (!s2.ok()) return s2.status();
  if (quality != nullptr) *quality = worse(s1.value().quality,
                                           s2.value().quality);
  double db = s2.value().record.get_or(attr::kTxBytes, 0) -
              s1.value().record.get_or(attr::kTxBytes, 0);
  double dp = s2.value().record.get_or(attr::kTxPkts, 0) -
              s1.value().record.get_or(attr::kTxPkts, 0);
  if (dp <= 0) return 0.0;
  return db / dp;
}

// --- scatter-gather ---------------------------------------------------------

std::vector<Result<Controller::QualifiedRecord>> Controller::scatter_gather(
    TenantId tenant, const std::vector<ElementId>& ids,
    const std::vector<std::string>& attrs, ThreadPool* pool) const {
  std::vector<Result<QualifiedRecord>> out(
      ids.size(),
      Result<QualifiedRecord>(Status::unavailable("unresolved scatter slot")));

  // Group the ids by owning agent.  Groups keep first-appearance order;
  // each group's id list is sorted and deduplicated (query_batch answers in
  // ascending id order), with every input slot the id must fill remembered.
  struct Group {
    AgentClient* agent = nullptr;
    std::unordered_map<ElementId, std::vector<size_t>> slots;
    std::vector<ElementId> sorted_ids;
  };
  std::vector<Group> groups;
  std::unordered_map<AgentClient*, size_t> group_of;
  for (size_t i = 0; i < ids.size(); ++i) {
    AgentClient* agent = locate(tenant, ids[i]);
    if (agent == nullptr) {
      out[i] = Status::not_found("no agent serves element " + ids[i].name);
      continue;
    }
    auto [it, fresh] = group_of.try_emplace(agent, groups.size());
    if (fresh) {
      groups.emplace_back();
      groups.back().agent = agent;
    }
    groups[it->second].slots[ids[i]].push_back(i);
  }
  for (Group& g : groups) {
    g.sorted_ids.reserve(g.slots.size());
    for (const auto& [id, slots] : g.slots) g.sorted_ids.push_back(id);
    std::sort(g.sorted_ids.begin(), g.sorted_ids.end());
  }

  // One timestamp for the whole fan-out: every per-agent batch samples the
  // same instant, exactly like the sequential loop (which cannot advance
  // time between queries either — only the interval utilities advance).
  const SimTime now = now_();
  trace_event(controller_trace_id(), now, TraceEventKind::kControllerScatter,
              static_cast<double>(ids.size()), "scatter");

  // Root of this sweep's span tree.  Each pool worker re-installs the
  // context (thread-locals do not cross the fan-out boundary), so agent
  // batch spans — and, over sockets, the remote server's serve spans — all
  // parent to this scatter span.
  const bool traced = trace_enabled();
  const TraceContext scatter_ctx =
      traced ? TraceContext{next_span_id(), next_span_id()} : TraceContext{};

  // Fan the agents out over the pool.  query_batch gets no pool of its own:
  // a worker blocking inside a nested parallel_for on the same pool can
  // deadlock, and the per-agent batch is already one channel round trip per
  // kind — the win is agent-level parallelism.
  std::vector<BatchResponse> br(groups.size());
  parallel_for_or_inline(pool, groups.size(), [&](size_t gi) {
    ScopedTraceContext span_ctx(scatter_ctx);
    br[gi] = groups[gi].agent->query_batch(groups[gi].sorted_ids, now);
  });

  // Optionally round-trip each batch through the wire codec, exactly as a
  // remote controller would receive it.  The loopback is lossless (no
  // damage model here — that is wire_test's job), so decode must succeed
  // and the merge below is unchanged.
  if (wire_loopback_) {
    for (BatchResponse& b : br) {
      Result<std::string> bytes = wire::encode_batch(b);
      PS_CHECK(bytes.ok());
      wire::DecodeStats st;
      Result<BatchResponse> decoded = wire::decode_batch(bytes.value(), &st);
      PS_CHECK(decoded.ok() && st.complete());
      b = std::move(decoded).take();
    }
  }

  // Gather: merge per-agent responses back into input slots, sequentially,
  // in group order.  Response lists are ascending by element id; ids absent
  // from a list were unknown to the agent and surface with the exact Status
  // text Agent::query would have produced.
  uint64_t ok_slots = 0;
  size_t served = 0;
  Duration total_channel;
  // Quorum second round: kMissing slots whose element has a registered
  // replica are collected per mirror agent and retried below, before their
  // blind spots stand.
  std::vector<Group> mgroups;
  std::unordered_map<AgentClient*, size_t> mgroup_of;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& g = groups[gi];
    const std::vector<QueryResponse>& resp = br[gi].responses;
    total_channel = total_channel + br[gi].channel_time;
    size_t ri = 0;
    for (const ElementId& id : g.sorted_ids) {
      while (ri < resp.size() && resp[ri].record.element < id) ++ri;
      const std::vector<size_t>& slots = g.slots.at(id);
      if (ri >= resp.size() || !(resp[ri].record.element == id)) {
        Status miss = Status::not_found("agent " + g.agent->name() +
                                        ": no element " + id.name);
        for (size_t s : slots) out[s] = miss;
        continue;
      }
      const QueryResponse& r = resp[ri];
      ++ri;
      if (r.quality == DataQuality::kMissing) {
        // Retries exhausted / budget hit / breaker open: reconstruct the
        // Status the single-query path returns for this failure.  It stays
        // the answer unless a replica can serve the element below.
        Status fail =
            query_failure_status(g.agent->name(), id, r.attempts, r.fail_code);
        for (size_t s : slots) out[s] = fail;
        if (!mirror_.empty()) {
          AgentClient* mirror = mirror_of(tenant, id);
          if (mirror != nullptr) {
            auto [mit, mfresh] = mgroup_of.try_emplace(mirror, mgroups.size());
            if (mfresh) {
              mgroups.emplace_back();
              mgroups.back().agent = mirror;
            }
            for (size_t s : slots) mgroups[mit->second].slots[id].push_back(s);
          }
        }
        continue;
      }
      QualifiedRecord q{project(r.record, attrs), r.quality};
      for (size_t s : slots) {
        out[s] = q;
        ++ok_slots;
      }
      ++served;
    }
  }

  // The mirror round mirrors the primary round: one batch per replica
  // agent, fanned over the pool, merged by ascending element id.  A replica
  // answer replaces the blind spot annotated kReplica; a replica failure
  // leaves the primary's Status in place (byte-identical to no mirror).
  if (!mgroups.empty()) {
    for (Group& g : mgroups) {
      g.sorted_ids.reserve(g.slots.size());
      for (const auto& [id, slots] : g.slots) g.sorted_ids.push_back(id);
      std::sort(g.sorted_ids.begin(), g.sorted_ids.end());
    }
    std::vector<BatchResponse> mbr(mgroups.size());
    parallel_for_or_inline(pool, mgroups.size(), [&](size_t gi) {
      ScopedTraceContext span_ctx(scatter_ctx);
      mbr[gi] = mgroups[gi].agent->query_batch(mgroups[gi].sorted_ids, now);
    });
    for (size_t gi = 0; gi < mgroups.size(); ++gi) {
      const Group& g = mgroups[gi];
      const std::vector<QueryResponse>& resp = mbr[gi].responses;
      total_channel = total_channel + mbr[gi].channel_time;
      size_t ri = 0;
      for (const ElementId& id : g.sorted_ids) {
        while (ri < resp.size() && resp[ri].record.element < id) ++ri;
        if (ri >= resp.size() || !(resp[ri].record.element == id)) continue;
        const QueryResponse& r = resp[ri];
        ++ri;
        if (r.quality == DataQuality::kMissing) continue;
        QualifiedRecord q{project(r.record, attrs),
                          worse(DataQuality::kReplica, r.quality)};
        for (size_t s : g.slots.at(id)) {
          out[s] = q;
          ++ok_slots;
        }
        ++served;
      }
    }
  }

  account(ok_slots, total_channel, /*batch=*/true);
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    if (m_scatter_agents_ != nullptr) {
      m_scatter_agents_->add(groups.size() + mgroups.size());
    }
  }
  trace_event(controller_trace_id(), now, TraceEventKind::kControllerGather,
              static_cast<double>(served), "gather");
  if (traced) {
    // The scatter span covers the whole fan-out; its duration is the
    // modelled channel time the sweep consumed (deterministic, unlike the
    // wall clock the pool happens to deliver).
    trace_span(controller_trace_id(), now, TraceEventKind::kSpanScatter,
               total_channel, scatter_ctx.span_id, /*parent_span=*/0,
               static_cast<double>(ids.size()), "scatter");
  }
  return out;
}

std::vector<Result<Controller::QualifiedRecord>> Controller::get_attr_many(
    TenantId tenant, const std::vector<ElementId>& ids,
    const std::vector<std::string>& attrs, ThreadPool* pool_override) const {
  // The sequential per-element loop is the oracle the differential suite
  // holds the scatter-gather path to; batching off selects it explicitly.
  if (!batching_ || ids.size() <= 1) {
    std::vector<Result<QualifiedRecord>> out;
    out.reserve(ids.size());
    for (const ElementId& id : ids) {
      out.push_back(get_attr_q(tenant, id, attrs));
    }
    return out;
  }
  return scatter_gather(tenant, ids, attrs,
                        pool_override != nullptr ? pool_override : pool_);
}

std::vector<Result<DataRate>> Controller::get_throughput_many(
    TenantId tenant, const std::vector<ElementId>& ids, Duration window,
    std::vector<DataQuality>* quality, ThreadPool* pool_override) const {
  std::vector<std::string> attrs{attr::kTxBytes};
  auto s1 = get_attr_many(tenant, ids, attrs, pool_override);
  advance_(window);
  auto s2 = get_attr_many(tenant, ids, attrs, pool_override);
  if (quality != nullptr) {
    quality->assign(ids.size(), DataQuality::kMissing);
  }
  std::vector<Result<DataRate>> out;
  out.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!s1[i].ok()) {
      out.push_back(s1[i].status());
      continue;
    }
    if (!s2[i].ok()) {
      out.push_back(s2[i].status());
      continue;
    }
    if (quality != nullptr) {
      (*quality)[i] = worse(s1[i].value().quality, s2[i].value().quality);
    }
    double b1 = s1[i].value().record.get_or(attr::kTxBytes, 0);
    double b2 = s2[i].value().record.get_or(attr::kTxBytes, 0);
    Duration dt =
        s2[i].value().record.timestamp - s1[i].value().record.timestamp;
    out.push_back(rate_of(static_cast<uint64_t>(std::max(0.0, b2 - b1)), dt));
  }
  return out;
}

std::vector<Result<int64_t>> Controller::get_pkt_loss_many(
    TenantId tenant, const std::vector<ElementId>& ids, Duration window,
    std::vector<DataQuality>* quality, ThreadPool* pool_override) const {
  std::vector<std::string> attrs{attr::kRxPkts, attr::kTxPkts,
                                 attr::kDropPkts};
  auto s1 = get_attr_many(tenant, ids, attrs, pool_override);
  advance_(window);
  auto s2 = get_attr_many(tenant, ids, attrs, pool_override);
  if (quality != nullptr) {
    quality->assign(ids.size(), DataQuality::kMissing);
  }
  std::vector<Result<int64_t>> out;
  out.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!s1[i].ok()) {
      out.push_back(s1[i].status());
      continue;
    }
    if (!s2[i].ok()) {
      out.push_back(s2[i].status());
      continue;
    }
    if (quality != nullptr) {
      (*quality)[i] = worse(s1[i].value().quality, s2[i].value().quality);
    }
    const StatsRecord& r1 = s1[i].value().record;
    const StatsRecord& r2 = s2[i].value().record;
    if (r1.get(attr::kDropPkts) && r2.get(attr::kDropPkts)) {
      out.push_back(static_cast<int64_t>(*r2.get(attr::kDropPkts) -
                                         *r1.get(attr::kDropPkts)));
      continue;
    }
    double d1 = r1.get_or(attr::kRxPkts, 0) - r1.get_or(attr::kTxPkts, 0);
    double d2 = r2.get_or(attr::kRxPkts, 0) - r2.get_or(attr::kTxPkts, 0);
    out.push_back(static_cast<int64_t>(d2 - d1));
  }
  return out;
}

std::vector<Result<double>> Controller::get_avg_pkt_size_many(
    TenantId tenant, const std::vector<ElementId>& ids, Duration window,
    std::vector<DataQuality>* quality, ThreadPool* pool_override) const {
  std::vector<std::string> attrs{attr::kTxBytes, attr::kTxPkts};
  auto s1 = get_attr_many(tenant, ids, attrs, pool_override);
  advance_(window);
  auto s2 = get_attr_many(tenant, ids, attrs, pool_override);
  if (quality != nullptr) {
    quality->assign(ids.size(), DataQuality::kMissing);
  }
  std::vector<Result<double>> out;
  out.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!s1[i].ok()) {
      out.push_back(s1[i].status());
      continue;
    }
    if (!s2[i].ok()) {
      out.push_back(s2[i].status());
      continue;
    }
    if (quality != nullptr) {
      (*quality)[i] = worse(s1[i].value().quality, s2[i].value().quality);
    }
    double db = s2[i].value().record.get_or(attr::kTxBytes, 0) -
                s1[i].value().record.get_or(attr::kTxBytes, 0);
    double dp = s2[i].value().record.get_or(attr::kTxPkts, 0) -
                s1[i].value().record.get_or(attr::kTxPkts, 0);
    out.push_back(dp <= 0 ? 0.0 : db / dp);
  }
  return out;
}

}  // namespace perfsight
