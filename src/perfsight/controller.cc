#include "perfsight/controller.h"

#include <algorithm>
#include <unordered_set>

namespace perfsight {

Status Controller::register_element(TenantId tenant, const ElementId& id,
                                    Agent* agent) {
  PS_CHECK(agent != nullptr);
  if (!agent->has_element(id)) {
    return Status::not_found("agent " + agent->name() +
                             " does not serve element " + id.name);
  }
  vnet_[tenant][id] = agent;
  return Status::ok();
}

const std::vector<ElementId>& Controller::middleboxes(TenantId tenant) const {
  static const std::vector<ElementId> kEmpty;
  auto it = tenant_mbs_.find(tenant);
  return it == tenant_mbs_.end() ? kEmpty : it->second;
}

const ChainTopology& Controller::chain(TenantId tenant) const {
  static const ChainTopology kEmpty;
  auto it = tenant_chain_.find(tenant);
  return it == tenant_chain_.end() ? kEmpty : it->second;
}

std::vector<ElementId> Controller::elements_of(TenantId tenant) const {
  std::vector<ElementId> out;
  auto it = vnet_.find(tenant);
  if (it == vnet_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [id, agent] : it->second) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElementId> Controller::stack_elements_for(TenantId tenant) const {
  std::vector<ElementId> out;
  auto it = vnet_.find(tenant);
  if (it == vnet_.end()) return out;
  std::unordered_set<Agent*> machines;
  for (const auto& [id, agent] : it->second) machines.insert(agent);
  for (Agent* agent : machines) {
    auto sit = stack_elements_.find(agent);
    if (sit == stack_elements_.end()) continue;
    out.insert(out.end(), sit->second.begin(), sit->second.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Agent* Controller::locate(TenantId tenant, const ElementId& id) const {
  auto tit = vnet_.find(tenant);
  if (tit != vnet_.end()) {
    auto eit = tit->second.find(id);
    if (eit != tit->second.end()) return eit->second;
  }
  // Stack elements are shared infrastructure, not owned by any tenant;
  // resolve them by asking the agents directly.
  for (Agent* a : agents_) {
    if (a->has_element(id)) return a;
  }
  return nullptr;
}

Result<Controller::QualifiedRecord> Controller::get_attr_q(
    TenantId tenant, const ElementId& id,
    const std::vector<std::string>& attrs) const {
  Agent* agent = locate(tenant, id);
  if (agent == nullptr) {
    return Status::not_found("no agent serves element " + id.name);
  }
  Result<QueryResponse> resp = agent->query_attrs(id, attrs, now_());
  if (!resp.ok()) return resp.status();
  queries_issued_.fetch_add(1, std::memory_order_relaxed);
  channel_time_ns_.fetch_add(resp.value().response_time.ns(),
                             std::memory_order_relaxed);
  return QualifiedRecord{resp.value().record, resp.value().quality};
}

Result<StatsRecord> Controller::get_attr(
    TenantId tenant, const ElementId& id,
    const std::vector<std::string>& attrs) const {
  Result<QualifiedRecord> q = get_attr_q(tenant, id, attrs);
  if (!q.ok()) return q.status();
  return std::move(q).take().record;
}

Result<DataRate> Controller::get_throughput(TenantId tenant,
                                            const ElementId& id,
                                            Duration window,
                                            DataQuality* quality) const {
  std::vector<std::string> attrs{attr::kTxBytes};
  Result<QualifiedRecord> s1 = get_attr_q(tenant, id, attrs);
  if (!s1.ok()) return s1.status();
  advance_(window);
  Result<QualifiedRecord> s2 = get_attr_q(tenant, id, attrs);
  if (!s2.ok()) return s2.status();
  if (quality != nullptr) *quality = worse(s1.value().quality,
                                           s2.value().quality);
  double b1 = s1.value().record.get_or(attr::kTxBytes, 0);
  double b2 = s2.value().record.get_or(attr::kTxBytes, 0);
  Duration dt = s2.value().record.timestamp - s1.value().record.timestamp;
  return rate_of(static_cast<uint64_t>(std::max(0.0, b2 - b1)), dt);
}

Result<int64_t> Controller::get_pkt_loss(TenantId tenant, const ElementId& id,
                                         Duration window,
                                         DataQuality* quality) const {
  std::vector<std::string> attrs{attr::kRxPkts, attr::kTxPkts,
                                 attr::kDropPkts};
  Result<QualifiedRecord> s1 = get_attr_q(tenant, id, attrs);
  if (!s1.ok()) return s1.status();
  advance_(window);
  Result<QualifiedRecord> s2 = get_attr_q(tenant, id, attrs);
  if (!s2.ok()) return s2.status();
  if (quality != nullptr) *quality = worse(s1.value().quality,
                                           s2.value().quality);

  const StatsRecord& r1 = s1.value().record;
  const StatsRecord& r2 = s2.value().record;
  if (r1.get(attr::kDropPkts) && r2.get(attr::kDropPkts)) {
    return static_cast<int64_t>(*r2.get(attr::kDropPkts) -
                                *r1.get(attr::kDropPkts));
  }
  double d1 = r1.get_or(attr::kRxPkts, 0) - r1.get_or(attr::kTxPkts, 0);
  double d2 = r2.get_or(attr::kRxPkts, 0) - r2.get_or(attr::kTxPkts, 0);
  return static_cast<int64_t>(d2 - d1);
}

Result<double> Controller::get_avg_pkt_size(TenantId tenant,
                                            const ElementId& id,
                                            Duration window,
                                            DataQuality* quality) const {
  std::vector<std::string> attrs{attr::kTxBytes, attr::kTxPkts};
  Result<QualifiedRecord> s1 = get_attr_q(tenant, id, attrs);
  if (!s1.ok()) return s1.status();
  advance_(window);
  Result<QualifiedRecord> s2 = get_attr_q(tenant, id, attrs);
  if (!s2.ok()) return s2.status();
  if (quality != nullptr) *quality = worse(s1.value().quality,
                                           s2.value().quality);
  double db = s2.value().record.get_or(attr::kTxBytes, 0) -
              s1.value().record.get_or(attr::kTxBytes, 0);
  double dp = s2.value().record.get_or(attr::kTxPkts, 0) -
              s1.value().record.get_or(attr::kTxPkts, 0);
  if (dp <= 0) return 0.0;
  return db / dp;
}

}  // namespace perfsight
