// The PerfSight controller (§4.3) and the basic utility routines of Fig. 6.
//
// The controller sits between diagnostic applications and the per-server
// agents: it resolves (tenant, element) to the owning agent, forwards
// attribute queries, and implements the interval-based utilities
// GetThroughput / GetPktLoss / GetAvgPktSize by taking two counter samples
// separated by a measurement window.  "Sleeping" for the window means
// advancing simulated time, so the controller is handed an AdvanceFn by the
// scenario (in a real deployment it would be wall-clock sleep).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/units.h"
#include "perfsight/agent.h"
#include "perfsight/stats.h"
#include "perfsight/topology.h"

namespace perfsight {

// Advances the world by `d` and returns the new time ("sleep(T)" in Fig. 6).
using AdvanceFn = std::function<SimTime(Duration)>;
// Returns the current time.
using NowFn = std::function<SimTime()>;

class Controller {
 public:
  Controller(AdvanceFn advance, NowFn now)
      : advance_(std::move(advance)), now_(std::move(now)) {}

  // --- registration (performed by the deployment layer) -----------------
  void register_agent(Agent* agent) { agents_.push_back(agent); }

  // Maps a tenant's element to the agent serving it.
  Status register_element(TenantId tenant, const ElementId& id, Agent* agent);

  // Declares `id` part of the virtualization stack on `agent`'s machine
  // (Algorithm 1 scans these).
  void register_stack_element(Agent* agent, const ElementId& id) {
    stack_elements_[agent].push_back(id);
  }

  // Declares `id` a middlebox of `tenant` and records chain edges.
  void register_middlebox(TenantId tenant, const ElementId& id) {
    tenant_mbs_[tenant].push_back(id);
    tenant_chain_[tenant].add_node(id);
  }
  void add_chain_edge(TenantId tenant, const ElementId& from,
                      const ElementId& to) {
    tenant_chain_[tenant].add_edge(from, to);
  }

  // --- lookup -------------------------------------------------------------
  const std::vector<ElementId>& middleboxes(TenantId tenant) const;
  const ChainTopology& chain(TenantId tenant) const;
  std::vector<ElementId> elements_of(TenantId tenant) const;
  // Every virtualization-stack element on every machine hosting a tenant
  // element (the scan set of Algorithm 1).
  std::vector<ElementId> stack_elements_for(TenantId tenant) const;
  const std::vector<Agent*>& agents() const { return agents_; }

  SimTime now() const { return now_(); }
  SimTime advance(Duration d) const { return advance_(d); }

  // --- self-profiling --------------------------------------------------------
  // Cumulative cost of the queries this controller has issued: how many,
  // and how much modelled channel time they spent (the per-query latencies
  // of Fig. 9, summed).  Diagnosis applications read deltas around a run to
  // report what the run itself cost.  Relaxed atomics: the parallel
  // collection runtime issues queries from worker threads, and these are
  // pure tallies with no ordering dependency.
  uint64_t queries_issued() const {
    return queries_issued_.load(std::memory_order_relaxed);
  }
  Duration channel_time() const {
    return Duration::nanos(channel_time_ns_.load(std::memory_order_relaxed));
  }

  // --- Fig. 6 interfaces ----------------------------------------------------
  // A record plus the collection layer's judgement of how trustworthy it is
  // (fault-tolerant collection: stale and torn records still flow, annotated).
  struct QualifiedRecord {
    StatsRecord record;
    DataQuality quality = DataQuality::kFresh;
  };

  // GETATTR(tenantID, elementID, attributes)
  Result<StatsRecord> get_attr(TenantId tenant, const ElementId& id,
                               const std::vector<std::string>& attrs) const;
  // As get_attr, but carries the per-record DataQuality so diagnosis layers
  // can annotate their verdicts with coverage / blind spots.
  Result<QualifiedRecord> get_attr_q(TenantId tenant, const ElementId& id,
                                     const std::vector<std::string>& attrs)
      const;

  // The interval utilities take two samples; when `quality` is non-null it
  // receives the worse of the two samples' qualities (worst-case honesty:
  // a rate computed from one stale endpoint is itself stale).

  // GETTHROUGHPUT: output rate of the element over window T.
  Result<DataRate> get_throughput(TenantId tenant, const ElementId& id,
                                  Duration window,
                                  DataQuality* quality = nullptr) const;

  // GETPKTLOSS: growth of (inPkts - outPkts) over window T.  For elements
  // exposing an explicit drop counter, the drop delta (more precise when
  // queues are draining/filling); otherwise the in-out delta of the paper.
  Result<int64_t> get_pkt_loss(TenantId tenant, const ElementId& id,
                               Duration window,
                               DataQuality* quality = nullptr) const;

  // GETAVGPKTSIZE: bytes per packet observed over window T.
  Result<double> get_avg_pkt_size(TenantId tenant, const ElementId& id,
                                  Duration window,
                                  DataQuality* quality = nullptr) const;

 private:
  Agent* locate(TenantId tenant, const ElementId& id) const;

  AdvanceFn advance_;
  NowFn now_;
  // get_attr is logically const (a read); the cost bookkeeping is not state
  // the read depends on.
  mutable std::atomic<uint64_t> queries_issued_{0};
  mutable std::atomic<int64_t> channel_time_ns_{0};
  std::vector<Agent*> agents_;
  std::unordered_map<TenantId, std::unordered_map<ElementId, Agent*>> vnet_;
  std::unordered_map<Agent*, std::vector<ElementId>> stack_elements_;
  std::unordered_map<TenantId, std::vector<ElementId>> tenant_mbs_;
  std::unordered_map<TenantId, ChainTopology> tenant_chain_;
};

}  // namespace perfsight
