// The PerfSight controller (§4.3) and the basic utility routines of Fig. 6.
//
// The controller sits between diagnostic applications and the per-server
// agents: it resolves (tenant, element) to the owning agent, forwards
// attribute queries, and implements the interval-based utilities
// GetThroughput / GetPktLoss / GetAvgPktSize by taking two counter samples
// separated by a measurement window.  "Sleeping" for the window means
// advancing simulated time, so the controller is handed an AdvanceFn by the
// scenario (in a real deployment it would be wall-clock sleep).
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "perfsight/agent.h"
#include "perfsight/metrics.h"
#include "perfsight/stats.h"
#include "perfsight/topology.h"

namespace perfsight {

// Advances the world by `d` and returns the new time ("sleep(T)" in Fig. 6).
using AdvanceFn = std::function<SimTime(Duration)>;
// Returns the current time.
using NowFn = std::function<SimTime()>;

class Controller {
 public:
  Controller(AdvanceFn advance, NowFn now)
      : advance_(std::move(advance)), now_(std::move(now)) {}

  // --- registration (performed by the deployment layer) -----------------
  // Agents register through the AgentClient surface: the controller never
  // cares whether an agent is in-process (Agent) or on the far end of a
  // socket (RemoteAgent) — the scatter-gather path is identical.
  void register_agent(AgentClient* agent) { agents_.push_back(agent); }

  // Maps a tenant's element to the agent serving it.
  Status register_element(TenantId tenant, const ElementId& id,
                          AgentClient* agent);

  // Declares `agent` a read replica for a tenant's element (quorum reads):
  // when the primary fails — retries exhausted, breaker open, transport
  // lost, element departed — get_attr_q and the scatter-gather merge ask
  // the replica before declaring a blind spot.  A replica answer is
  // annotated DataQuality::kReplica so coverage reports distinguish it from
  // a fresh primary read; a double failure keeps the PRIMARY's failure
  // Status (byte-identical to the unmirrored run).  The replica must serve
  // the element.
  Status register_mirror(TenantId tenant, const ElementId& id,
                         AgentClient* agent);

  // Declares `id` part of the virtualization stack on `agent`'s machine
  // (Algorithm 1 scans these).
  void register_stack_element(AgentClient* agent, const ElementId& id) {
    stack_elements_[agent].push_back(id);
  }

  // Declares `id` a middlebox of `tenant` and records chain edges.
  void register_middlebox(TenantId tenant, const ElementId& id) {
    tenant_mbs_[tenant].push_back(id);
    tenant_chain_[tenant].add_node(id);
  }
  void add_chain_edge(TenantId tenant, const ElementId& from,
                      const ElementId& to) {
    tenant_chain_[tenant].add_edge(from, to);
  }

  // --- lookup -------------------------------------------------------------
  const std::vector<ElementId>& middleboxes(TenantId tenant) const;
  const ChainTopology& chain(TenantId tenant) const;
  std::vector<ElementId> elements_of(TenantId tenant) const;
  // Every virtualization-stack element on every machine hosting a tenant
  // element (the scan set of Algorithm 1).
  std::vector<ElementId> stack_elements_for(TenantId tenant) const;
  const std::vector<AgentClient*>& agents() const { return agents_; }

  SimTime now() const { return now_(); }
  SimTime advance(Duration d) const { return advance_(d); }

  // --- scatter-gather configuration -----------------------------------------
  // Collection pool the scatter-gather fan-out runs over (one task per
  // owning agent).  Not owned; null — the default — visits agents
  // sequentially.  The deployment layer wires its pool in.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  // Metrics sink for the perfsight_controller_batch_* series.  Instruments
  // are created once here (stable addresses) so the hot paths never touch
  // the registry's family vectors; not owned.
  void set_metrics(MetricsRegistry* m);

  // Batching toggle: with batching off, get_attr_many degrades to the
  // sequential per-element loop — the oracle the differential test suite
  // compares the scatter-gather path against.  Defaults to on.
  void set_batching(bool on) { batching_ = on; }
  bool batching() const { return batching_; }

  // Round-trips every per-agent BatchResponse through the length-prefixed
  // wire codec (wire.h) before merging, exactly as a remote controller
  // would receive it.  The codec is lossless, so output is unchanged —
  // which is the point: tests prove the socket-ready framing preserves the
  // byte-identical contract.
  void set_wire_loopback(bool on) { wire_loopback_ = on; }

  // --- self-profiling --------------------------------------------------------
  // Cumulative cost of the queries this controller has issued: how many,
  // and how much modelled channel time they spent (the per-query latencies
  // of Fig. 9, summed — batched queries add one amortised round trip per
  // channel kind, which is the saving).  Diagnosis applications read deltas
  // around a run to report what the run itself cost.  The two tallies are
  // kept under one mutex so a snapshot is never torn: the old pair of
  // independent relaxed atomics let a reader observe the query count of one
  // sweep with the channel time of another.
  struct CostSnapshot {
    uint64_t queries = 0;
    Duration channel_time;
  };
  CostSnapshot cost() const {
    std::lock_guard<std::mutex> lock(cost_mu_);
    return CostSnapshot{queries_issued_, Duration::nanos(channel_time_ns_)};
  }
  uint64_t queries_issued() const { return cost().queries; }
  Duration channel_time() const { return cost().channel_time; }

  // --- Fig. 6 interfaces ----------------------------------------------------
  // A record plus the collection layer's judgement of how trustworthy it is
  // (fault-tolerant collection: stale and torn records still flow, annotated).
  struct QualifiedRecord {
    StatsRecord record;
    DataQuality quality = DataQuality::kFresh;
  };

  // GETATTR(tenantID, elementID, attributes)
  Result<StatsRecord> get_attr(TenantId tenant, const ElementId& id,
                               const std::vector<std::string>& attrs) const;
  // As get_attr, but carries the per-record DataQuality so diagnosis layers
  // can annotate their verdicts with coverage / blind spots.
  Result<QualifiedRecord> get_attr_q(TenantId tenant, const ElementId& id,
                                     const std::vector<std::string>& attrs)
      const;

  // The interval utilities take two samples; when `quality` is non-null it
  // receives the worse of the two samples' qualities (worst-case honesty:
  // a rate computed from one stale endpoint is itself stale).

  // GETTHROUGHPUT: output rate of the element over window T.
  Result<DataRate> get_throughput(TenantId tenant, const ElementId& id,
                                  Duration window,
                                  DataQuality* quality = nullptr) const;

  // GETPKTLOSS: growth of (inPkts - outPkts) over window T.  For elements
  // exposing an explicit drop counter, the drop delta (more precise when
  // queues are draining/filling); otherwise the in-out delta of the paper.
  Result<int64_t> get_pkt_loss(TenantId tenant, const ElementId& id,
                               Duration window,
                               DataQuality* quality = nullptr) const;

  // GETAVGPKTSIZE: bytes per packet observed over window T.
  Result<double> get_avg_pkt_size(TenantId tenant, const ElementId& id,
                                  Duration window,
                                  DataQuality* quality = nullptr) const;

  // --- scatter-gather fan-ins ----------------------------------------------
  // GETATTR over many elements at once: groups the ids by owning agent,
  // issues one Agent::query_batch per agent (amortising channel round trips
  // per kind), fans the agents out over the pool, and merges the responses
  // back into input order.  Output is byte-identical to calling get_attr_q
  // per element: same records, same qualities, same Status text for
  // failures.  `pool_override`, when non-null, wins over set_pool (detectors
  // pass their own pool through).
  std::vector<Result<QualifiedRecord>> get_attr_many(
      TenantId tenant, const std::vector<ElementId>& ids,
      const std::vector<std::string>& attrs,
      ThreadPool* pool_override = nullptr) const;

  // Interval utilities over many elements: two batched sweeps around one
  // shared window advance.  Per-element math and failure text match the
  // single-element versions exactly; `quality`, when non-null, receives one
  // entry per id (worse of the two samples; kMissing for failed elements).
  std::vector<Result<DataRate>> get_throughput_many(
      TenantId tenant, const std::vector<ElementId>& ids, Duration window,
      std::vector<DataQuality>* quality = nullptr,
      ThreadPool* pool_override = nullptr) const;
  std::vector<Result<int64_t>> get_pkt_loss_many(
      TenantId tenant, const std::vector<ElementId>& ids, Duration window,
      std::vector<DataQuality>* quality = nullptr,
      ThreadPool* pool_override = nullptr) const;
  std::vector<Result<double>> get_avg_pkt_size_many(
      TenantId tenant, const std::vector<ElementId>& ids, Duration window,
      std::vector<DataQuality>* quality = nullptr,
      ThreadPool* pool_override = nullptr) const;

 private:
  AgentClient* locate(TenantId tenant, const ElementId& id) const;
  // The registered read replica, or null.
  AgentClient* mirror_of(TenantId tenant, const ElementId& id) const;
  // The scatter-gather core: one Result per id, in input order.
  std::vector<Result<QualifiedRecord>> scatter_gather(
      TenantId tenant, const std::vector<ElementId>& ids,
      const std::vector<std::string>& attrs, ThreadPool* pool) const;
  void account(uint64_t queries, Duration channel_time, bool batch) const;

  AdvanceFn advance_;
  NowFn now_;
  // get_attr is logically const (a read); the cost bookkeeping is not state
  // the read depends on.  One mutex guards both tallies and the metric
  // bumps so snapshots are never torn (see cost()).
  mutable std::mutex cost_mu_;
  mutable uint64_t queries_issued_ = 0;
  mutable int64_t channel_time_ns_ = 0;
  ThreadPool* pool_ = nullptr;
  bool batching_ = true;
  bool wire_loopback_ = false;
  MetricsRegistry* metrics_ = nullptr;
  // Instruments cached at set_metrics time: creation mutates the registry's
  // family vectors (not thread-safe), but the instruments themselves have
  // stable addresses, so the hot paths only ever touch these pointers —
  // under cost_mu_.
  MetricsRegistry::CounterMetric* m_queries_single_ = nullptr;
  MetricsRegistry::CounterMetric* m_queries_batch_ = nullptr;
  MetricsRegistry::CounterMetric* m_scatters_ = nullptr;
  MetricsRegistry::CounterMetric* m_scatter_agents_ = nullptr;
  LatencyHistogram* m_batch_channel_s_ = nullptr;
  std::vector<AgentClient*> agents_;
  std::unordered_map<TenantId, std::unordered_map<ElementId, AgentClient*>>
      vnet_;
  std::unordered_map<TenantId, std::unordered_map<ElementId, AgentClient*>>
      mirror_;
  std::unordered_map<AgentClient*, std::vector<ElementId>> stack_elements_;
  std::unordered_map<TenantId, std::vector<ElementId>> tenant_mbs_;
  std::unordered_map<TenantId, ChainTopology> tenant_chain_;
};

}  // namespace perfsight
