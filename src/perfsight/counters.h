// The three counter kinds PerfSight instruments elements with (§4.1):
// packet counters, byte counters, and I/O time counters.
//
// These are the *real* implementations whose overhead Table 2 and Fig. 15/16
// measure: a simple counter is one 64-bit add (≈ns), a time counter is two
// clock reads plus an add (≈0.1–0.3 µs with a syscall-free clocksource).
// The simulator's elements use the same types, accumulating simulated time
// instead of wall time for the I/O counters.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/units.h"

namespace perfsight {

// Monotone event counter (packets or bytes).  Not atomic: each element is
// only ever updated from the thread (or simulated context) that owns it;
// agents read with relaxed staleness, which the paper's design accepts by
// construction (statistics are sampled, not transactional).
class Counter {
 public:
  void add(uint64_t n) { value_ += n; }
  void increment() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Accumulated I/O time in nanoseconds.  Dual use:
//  * simulator elements call add_sim(duration) with simulated time;
//  * real hotpaths wrap a read/write in a ScopedIoTimer (wall time).
class IoTimeCounter {
 public:
  void add(Duration d) { ns_ += static_cast<uint64_t>(d.ns()); }
  void add_nanos(uint64_t ns) { ns_ += ns; }
  uint64_t nanos() const { return ns_; }
  Duration total() const { return Duration::nanos(static_cast<int64_t>(ns_)); }

 private:
  uint64_t ns_ = 0;
};

// RAII wall-clock timer for real I/O methods; this is the exact object the
// overhead benches instrument hot loops with.
class ScopedIoTimer {
 public:
  explicit ScopedIoTimer(IoTimeCounter& counter)
      : counter_(counter), start_(std::chrono::steady_clock::now()) {}
  ScopedIoTimer(const ScopedIoTimer&) = delete;
  ScopedIoTimer& operator=(const ScopedIoTimer&) = delete;
  ~ScopedIoTimer() {
    auto end = std::chrono::steady_clock::now();
    counter_.add_nanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count()));
  }

 private:
  IoTimeCounter& counter_;
  std::chrono::steady_clock::time_point start_;
};

// The standard per-element counter set.  Every software-dataplane element
// carries one of these; StatsRecord attributes are derived from it.
struct ElementStats {
  Counter pkts_in;
  Counter pkts_out;
  Counter bytes_in;
  Counter bytes_out;
  Counter drop_pkts;
  Counter drop_bytes;
  IoTimeCounter in_time;   // time spent in input methods (block + memcpy)
  IoTimeCounter out_time;  // time spent in output methods
};

}  // namespace perfsight
