#include "perfsight/faults.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/rng.h"

namespace perfsight {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kStale:
      return "stale";
    case FaultKind::kTorn:
      return "torn";
  }
  return "?";
}

const char* to_string(DataQuality q) {
  switch (q) {
    case DataQuality::kFresh:
      return "fresh";
    case DataQuality::kStale:
      return "stale";
    case DataQuality::kTorn:
      return "torn";
    case DataQuality::kMissing:
      return "missing";
  }
  return "?";
}

namespace {

// splitmix64: decorrelates the structured (seed, element, time, attempt)
// tuple into an independent stream per decision.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

size_t FaultPlan::crashes_between(const std::string& agent, SimTime since,
                                  SimTime until) const {
  auto it = crashes_.find(agent);
  if (it == crashes_.end()) return 0;
  size_t n = 0;
  for (SimTime at : it->second) {
    if (since < at && at <= until) ++n;
  }
  return n;
}

bool FaultPlan::enabled() const {
  for (const ChannelFaultSpec& s : channel_) {
    if (s.any()) return true;
  }
  for (const auto& [id, s] : element_) {
    if (s.any()) return true;
  }
  return !crashes_.empty();
}

bool FaultPlan::serves_stale() const {
  for (const ChannelFaultSpec& s : channel_) {
    if (s.stale_p > 0) return true;
  }
  for (const auto& [id, s] : element_) {
    if (s.stale_p > 0) return true;
  }
  return false;
}

FaultDecision FaultPlan::decide(const ElementId& id, ChannelKind kind,
                                SimTime now, uint32_t attempt) const {
  const ChannelFaultSpec* spec = &spec_for(id, kind);

  FaultDecision d;
  if (!spec->any()) return d;

  uint64_t h = mix64(seed_ ^ mix64(fnv1a(id.name)) ^
                     mix64(static_cast<uint64_t>(now.ns())) ^
                     mix64((static_cast<uint64_t>(kind) << 32) | attempt));
  // Pcg32 seeded from the decision hash: one uniform draw for the fault
  // class, one u32 for the torn-read salt.
  Pcg32 rng(h, h >> 1);
  double u = rng.next_double();
  if (u < spec->transient_p) {
    d.kind = FaultKind::kTransient;
  } else if (u < spec->transient_p + spec->timeout_p) {
    d.kind = FaultKind::kTimeout;
  } else if (u < spec->transient_p + spec->timeout_p + spec->stale_p) {
    d.kind = FaultKind::kStale;
  } else if (u <
             spec->transient_p + spec->timeout_p + spec->stale_p + spec->torn_p) {
    d.kind = FaultKind::kTorn;
    d.torn_salt = (static_cast<uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
  }
  return d;
}

namespace {

// Strict double parse: the whole string must be a number.  std::atof turned
// "0.05x" into 0.05 and "x" into 0.0 — a typo'd intensity silently became a
// different experiment.
bool parse_double_strict(const std::string& s, double* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

// Clamps a probability to [0,1], warning when the operator asked for more
// faults than probability allows (torn=1.5 means "always", not UB in the
// cumulative-threshold draw of decide()).
double clamp_probability(const std::string& key, double v) {
  if (v >= 0.0 && v <= 1.0) return v;
  double c = std::clamp(v, 0.0, 1.0);
  PS_LOG_WARN("PERFSIGHT_FAULTS: %s=%g outside [0,1], clamped to %g",
              key.c_str(), v, c);
  return c;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* env = std::getenv("PERFSIGHT_FAULTS");
  if (env == nullptr || *env == '\0') return std::nullopt;

  uint64_t seed = 1;
  ChannelFaultSpec spec;
  std::string kv(env);
  size_t pos = 0;
  while (pos < kv.size()) {
    size_t comma = kv.find(',', pos);
    if (comma == std::string::npos) comma = kv.size();
    std::string item = kv.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      PS_LOG_WARN("PERFSIGHT_FAULTS: item '%s' is not key=value; rejected",
                  item.c_str());
      continue;
    }
    std::string key = item.substr(0, eq);
    std::string raw = item.substr(eq + 1);
    if (key == "seed") {
      uint64_t s = 0;
      auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), s);
      if (ec != std::errc() || ptr != raw.data() + raw.size() || raw.empty()) {
        PS_LOG_WARN("PERFSIGHT_FAULTS: bad seed '%s'; rejected (seed stays "
                    "%llu)",
                    raw.c_str(), static_cast<unsigned long long>(seed));
        continue;
      }
      seed = s;
      continue;
    }
    double value = 0;
    if (!parse_double_strict(raw, &value)) {
      PS_LOG_WARN("PERFSIGHT_FAULTS: bad value '%s' for key '%s'; rejected",
                  raw.c_str(), key.c_str());
      continue;
    }
    if (key == "transient") {
      spec.transient_p = clamp_probability(key, value);
    } else if (key == "timeout") {
      spec.timeout_p = clamp_probability(key, value);
    } else if (key == "stale") {
      spec.stale_p = clamp_probability(key, value);
    } else if (key == "torn") {
      spec.torn_p = clamp_probability(key, value);
    } else {
      // A typo'd key ("transiet=0.05") silently skipped means the operator
      // believes faults are on when they are not.
      PS_LOG_WARN("PERFSIGHT_FAULTS: unknown key '%s'; rejected", key.c_str());
    }
  }

  FaultPlan plan(seed);
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    plan.set_channel_faults(static_cast<ChannelKind>(k), spec);
  }
  return plan;
}

StatsRecord apply_torn_read(const StatsRecord& r, uint64_t salt) {
  if (r.attrs.size() < 2) return r;  // nothing meaningful to tear
  StatsRecord out;
  out.timestamp = r.timestamp;
  out.element = r.element;
  out.attrs.reserve(r.attrs.size());
  for (size_t i = 0; i < r.attrs.size(); ++i) {
    if (mix64(salt ^ (i + 1)) & 1) out.attrs.push_back(r.attrs[i]);
  }
  // A tear that dropped nothing (or everything) still has to be a tear: the
  // quality annotation relies on the record being incomplete but nonempty.
  if (out.attrs.size() == r.attrs.size()) out.attrs.pop_back();
  if (out.attrs.empty()) out.attrs.push_back(r.attrs.front());
  return out;
}

bool is_monotone_counter(const std::string& attr_name) {
  static const char* kCounters[] = {
      attr::kRxPkts,   attr::kTxPkts,   attr::kRxBytes,  attr::kTxBytes,
      attr::kDropPkts, attr::kDropBytes, attr::kInTimeNs, attr::kOutTimeNs,
      attr::kInBytes,  attr::kOutBytes,
  };
  for (const char* c : kCounters) {
    if (attr_name == c) return true;
  }
  return false;
}

}  // namespace perfsight
