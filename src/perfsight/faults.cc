#include "perfsight/faults.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/rng.h"

namespace perfsight {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kStale:
      return "stale";
    case FaultKind::kTorn:
      return "torn";
  }
  return "?";
}

const char* to_string(DataQuality q) {
  switch (q) {
    case DataQuality::kFresh:
      return "fresh";
    case DataQuality::kStale:
      return "stale";
    case DataQuality::kTorn:
      return "torn";
    case DataQuality::kMissing:
      return "missing";
    case DataQuality::kReplica:
      return "replica";
  }
  return "?";
}

namespace {

// splitmix64: decorrelates the structured (seed, element, time, attempt)
// tuple into an independent stream per decision.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

size_t FaultPlan::crashes_between(const std::string& agent, SimTime since,
                                  SimTime until) const {
  auto it = crashes_.find(agent);
  if (it == crashes_.end()) return 0;
  size_t n = 0;
  for (SimTime at : it->second) {
    if (since < at && at <= until) ++n;
  }
  return n;
}

bool FaultPlan::enabled() const {
  for (const ChannelFaultSpec& s : channel_) {
    if (s.any()) return true;
  }
  for (const auto& [id, s] : element_) {
    if (s.any()) return true;
  }
  return !crashes_.empty() || has_campaign();
}

const std::string& FaultPlan::host_of(const std::string& agent) const {
  static const std::string kEmpty;
  auto it = host_of_.find(agent);
  return it == host_of_.end() ? kEmpty : it->second;
}

void FaultPlan::schedule_rolling_upgrade(
    const std::vector<std::string>& agents, SimTime start, Duration window) {
  SimTime t = start;
  for (const std::string& agent : agents) {
    SimTime end = t + window;
    schedule_outage(agent, t, end);
    t = end;
  }
}

bool FaultPlan::agent_down(const std::string& agent, SimTime now) const {
  auto it = outages_.find(agent);
  if (it != outages_.end()) {
    for (const OutageWindow& w : it->second) {
      if (w.contains(now)) return true;
    }
  }
  if (!host_outages_.empty()) {
    auto host = host_of_.find(agent);
    if (host != host_of_.end()) {
      auto hw = host_outages_.find(host->second);
      if (hw != host_outages_.end()) {
        for (const OutageWindow& w : hw->second) {
          if (w.contains(now)) return true;
        }
      }
    }
  }
  return false;
}

bool FaultPlan::campaign_active(SimTime now) const {
  for (const auto& [agent, windows] : outages_) {
    for (const OutageWindow& w : windows) {
      if (w.contains(now)) return true;
    }
  }
  for (const auto& [tag, windows] : host_outages_) {
    for (const OutageWindow& w : windows) {
      if (w.contains(now)) return true;
    }
  }
  return false;
}

bool FaultPlan::stream_drop(const std::string& agent, uint64_t seq) const {
  if (stream_drop_p_ <= 0) return false;
  // Same decorrelation shape as decide(), salted so stream fates never
  // alias channel fates: one independent draw per (agent, seq).
  uint64_t h = mix64(seed_ ^ mix64(fnv1a(agent)) ^
                     mix64(seq ^ 0x5354524d53ULL));  // "STRMS"
  Pcg32 rng(h, h >> 1);
  return rng.next_double() < stream_drop_p_;
}

bool FaultPlan::serves_stale() const {
  for (const ChannelFaultSpec& s : channel_) {
    if (s.stale_p > 0) return true;
  }
  for (const auto& [id, s] : element_) {
    if (s.stale_p > 0) return true;
  }
  return false;
}

FaultDecision FaultPlan::decide(const ElementId& id, ChannelKind kind,
                                SimTime now, uint32_t attempt) const {
  const ChannelFaultSpec* spec = &spec_for(id, kind);

  FaultDecision d;
  if (!spec->any()) return d;

  uint64_t h = mix64(seed_ ^ mix64(fnv1a(id.name)) ^
                     mix64(static_cast<uint64_t>(now.ns())) ^
                     mix64((static_cast<uint64_t>(kind) << 32) | attempt));
  // Pcg32 seeded from the decision hash: one uniform draw for the fault
  // class, one u32 for the torn-read salt.
  Pcg32 rng(h, h >> 1);
  double u = rng.next_double();
  if (u < spec->transient_p) {
    d.kind = FaultKind::kTransient;
  } else if (u < spec->transient_p + spec->timeout_p) {
    d.kind = FaultKind::kTimeout;
  } else if (u < spec->transient_p + spec->timeout_p + spec->stale_p) {
    d.kind = FaultKind::kStale;
  } else if (u <
             spec->transient_p + spec->timeout_p + spec->stale_p + spec->torn_p) {
    d.kind = FaultKind::kTorn;
    d.torn_salt = (static_cast<uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
  }
  return d;
}

namespace {

// Strict double parse: the whole string must be a number.  std::atof turned
// "0.05x" into 0.05 and "x" into 0.0 — a typo'd intensity silently became a
// different experiment.
bool parse_double_strict(const std::string& s, double* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

// Clamps a probability to [0,1], warning when the operator asked for more
// faults than probability allows (torn=1.5 means "always", not UB in the
// cumulative-threshold draw of decide()).
double clamp_probability(const std::string& key, double v) {
  if (v >= 0.0 && v <= 1.0) return v;
  double c = std::clamp(v, 0.0, 1.0);
  PS_LOG_WARN("PERFSIGHT_FAULTS: %s=%g outside [0,1], clamped to %g",
              key.c_str(), v, c);
  return c;
}

// Strict unsigned parse with the same whole-string discipline as
// parse_double_strict: "500x" and "" are rejections, not zeros.
bool parse_u64_strict(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

// Parses "T0-T1" (integer simulated milliseconds) into a half-open window.
// Requires T0 < T1: an empty or inverted window is an operator typo, not a
// no-op campaign.
bool parse_window_ms(const std::string& s, SimTime* start, SimTime* end) {
  size_t dash = s.find('-');
  if (dash == std::string::npos) return false;
  uint64_t t0 = 0, t1 = 0;
  if (!parse_u64_strict(s.substr(0, dash), &t0)) return false;
  if (!parse_u64_strict(s.substr(dash + 1), &t1)) return false;
  if (t0 >= t1) return false;
  *start = SimTime::millis(static_cast<int64_t>(t0));
  *end = SimTime::millis(static_cast<int64_t>(t1));
  return true;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* env = std::getenv("PERFSIGHT_FAULTS");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return parse(env);
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec_string) {
  if (spec_string.empty()) return std::nullopt;

  uint64_t seed = 1;
  double stream_drop = 0;
  ChannelFaultSpec spec;
  // Campaign items are collected first and applied once the seed is known
  // (the seed key may appear anywhere in the list).
  struct PendingOutage {
    std::string name;  // agent name, or host tag for host_outage items
    SimTime start;
    SimTime end;
  };
  std::vector<PendingOutage> outages;
  std::vector<PendingOutage> host_outages;
  std::vector<std::pair<std::string, std::string>> hosts;  // agent -> tag
  struct PendingRolling {
    std::string prefix;
    uint64_t count;
    SimTime start;
    Duration window;
  };
  std::vector<PendingRolling> rollings;
  const std::string& kv = spec_string;
  size_t pos = 0;
  while (pos < kv.size()) {
    size_t comma = kv.find(',', pos);
    if (comma == std::string::npos) comma = kv.size();
    std::string item = kv.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      PS_LOG_WARN("PERFSIGHT_FAULTS: item '%s' is not key=value; rejected",
                  item.c_str());
      continue;
    }
    std::string key = item.substr(0, eq);
    std::string raw = item.substr(eq + 1);
    if (key == "seed") {
      uint64_t s = 0;
      auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), s);
      if (ec != std::errc() || ptr != raw.data() + raw.size() || raw.empty()) {
        PS_LOG_WARN("PERFSIGHT_FAULTS: bad seed '%s'; rejected (seed stays "
                    "%llu)",
                    raw.c_str(), static_cast<unsigned long long>(seed));
        continue;
      }
      seed = s;
      continue;
    }
    if (key == "outage" || key == "host_outage") {
      // outage=NAME@T0-T1 / host_outage=TAG@T0-T1
      size_t at = raw.rfind('@');
      SimTime t0, t1;
      if (at == std::string::npos || at == 0 ||
          !parse_window_ms(raw.substr(at + 1), &t0, &t1)) {
        PS_LOG_WARN(
            "PERFSIGHT_FAULTS: bad %s '%s' (want NAME@T0-T1, ms, T0<T1); "
            "rejected",
            key.c_str(), raw.c_str());
        continue;
      }
      PendingOutage o{raw.substr(0, at), t0, t1};
      (key == "outage" ? outages : host_outages).push_back(std::move(o));
      continue;
    }
    if (key == "host") {
      // host=NAME:TAG
      size_t colon = raw.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == raw.size()) {
        PS_LOG_WARN("PERFSIGHT_FAULTS: bad host '%s' (want NAME:TAG); rejected",
                    raw.c_str());
        continue;
      }
      hosts.emplace_back(raw.substr(0, colon), raw.substr(colon + 1));
      continue;
    }
    if (key == "rolling") {
      // rolling=PREFIX*N@T0+W — agents PREFIX0..PREFIX(N-1), each down W ms
      // in sequence starting at T0.
      size_t at = raw.rfind('@');
      size_t star = raw.rfind('*', at == std::string::npos ? raw.size() : at);
      size_t plus = at == std::string::npos ? std::string::npos
                                            : raw.find('+', at + 1);
      uint64_t n = 0, t0 = 0, w = 0;
      if (at == std::string::npos || star == std::string::npos || star == 0 ||
          plus == std::string::npos ||
          !parse_u64_strict(raw.substr(star + 1, at - star - 1), &n) ||
          n == 0 ||
          !parse_u64_strict(raw.substr(at + 1, plus - at - 1), &t0) ||
          !parse_u64_strict(raw.substr(plus + 1), &w) || w == 0) {
        PS_LOG_WARN(
            "PERFSIGHT_FAULTS: bad rolling '%s' (want PREFIX*N@T0+W, ms, "
            "N>0, W>0); rejected",
            raw.c_str());
        continue;
      }
      rollings.push_back(PendingRolling{
          raw.substr(0, star), n, SimTime::millis(static_cast<int64_t>(t0)),
          Duration::millis(static_cast<int64_t>(w))});
      continue;
    }
    double value = 0;
    if (!parse_double_strict(raw, &value)) {
      PS_LOG_WARN("PERFSIGHT_FAULTS: bad value '%s' for key '%s'; rejected",
                  raw.c_str(), key.c_str());
      continue;
    }
    if (key == "transient") {
      spec.transient_p = clamp_probability(key, value);
    } else if (key == "timeout") {
      spec.timeout_p = clamp_probability(key, value);
    } else if (key == "stale") {
      spec.stale_p = clamp_probability(key, value);
    } else if (key == "torn") {
      spec.torn_p = clamp_probability(key, value);
    } else if (key == "stream_drop") {
      stream_drop = clamp_probability(key, value);
    } else {
      // A typo'd key ("transiet=0.05") silently skipped means the operator
      // believes faults are on when they are not.
      PS_LOG_WARN("PERFSIGHT_FAULTS: unknown key '%s'; rejected", key.c_str());
    }
  }

  FaultPlan plan(seed);
  plan.set_stream_drop(stream_drop);
  for (size_t k = 0; k < kNumChannelKinds; ++k) {
    plan.set_channel_faults(static_cast<ChannelKind>(k), spec);
  }
  for (const auto& o : outages) plan.schedule_outage(o.name, o.start, o.end);
  for (const auto& o : host_outages) {
    plan.schedule_host_outage(o.name, o.start, o.end);
  }
  for (const auto& [agent, tag] : hosts) plan.set_host(agent, tag);
  for (const auto& r : rollings) {
    std::vector<std::string> agents;
    agents.reserve(r.count);
    for (uint64_t i = 0; i < r.count; ++i) {
      agents.push_back(r.prefix + std::to_string(i));
    }
    plan.schedule_rolling_upgrade(agents, r.start, r.window);
  }
  return plan;
}

std::string FaultPlan::to_env_string() const {
  // Shortest-round-trip number formatting: parse_double_strict reads the
  // emitted string back to the exact same double, so the string form is a
  // fixed point of parse ∘ to_env_string.
  auto num = [](double v) {
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    PS_CHECK(ec == std::errc());
    return std::string(buf, ptr);
  };
  // Window times project to the grammar's integer milliseconds.
  auto window = [](const OutageWindow& w) {
    return std::to_string(w.start.ns() / 1000000) + "-" +
           std::to_string(w.end.ns() / 1000000);
  };
  std::string out = "seed=" + std::to_string(seed_);
  // parse() applies one uniform spec to every kind; emit kind 0's.
  const ChannelFaultSpec& s = channel_[0];
  if (s.transient_p > 0) out += ",transient=" + num(s.transient_p);
  if (s.timeout_p > 0) out += ",timeout=" + num(s.timeout_p);
  if (s.stale_p > 0) out += ",stale=" + num(s.stale_p);
  if (s.torn_p > 0) out += ",torn=" + num(s.torn_p);
  if (stream_drop_p_ > 0) out += ",stream_drop=" + num(stream_drop_p_);

  std::vector<std::pair<std::string, OutageWindow>> outages;
  for (const auto& [agent, windows] : outages_) {
    for (const OutageWindow& w : windows) outages.emplace_back(agent, w);
  }
  auto by_name_window = [](const std::pair<std::string, OutageWindow>& a,
                           const std::pair<std::string, OutageWindow>& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second.start != b.second.start) {
      return a.second.start < b.second.start;
    }
    return a.second.end < b.second.end;
  };
  std::sort(outages.begin(), outages.end(), by_name_window);
  for (const auto& [agent, w] : outages) {
    out += ",outage=" + agent + "@" + window(w);
  }

  std::vector<std::pair<std::string, std::string>> hosts(host_of_.begin(),
                                                         host_of_.end());
  std::sort(hosts.begin(), hosts.end());
  for (const auto& [agent, tag] : hosts) out += ",host=" + agent + ":" + tag;

  std::vector<std::pair<std::string, OutageWindow>> host_outages;
  for (const auto& [tag, windows] : host_outages_) {
    for (const OutageWindow& w : windows) host_outages.emplace_back(tag, w);
  }
  std::sort(host_outages.begin(), host_outages.end(), by_name_window);
  for (const auto& [tag, w] : host_outages) {
    out += ",host_outage=" + tag + "@" + window(w);
  }
  return out;
}

StatsRecord apply_torn_read(const StatsRecord& r, uint64_t salt) {
  if (r.attrs.size() < 2) return r;  // nothing meaningful to tear
  StatsRecord out;
  out.timestamp = r.timestamp;
  out.element = r.element;
  out.attrs.reserve(r.attrs.size());
  for (size_t i = 0; i < r.attrs.size(); ++i) {
    if (mix64(salt ^ (i + 1)) & 1) out.attrs.push_back(r.attrs[i]);
  }
  // A tear that dropped nothing (or everything) still has to be a tear: the
  // quality annotation relies on the record being incomplete but nonempty.
  if (out.attrs.size() == r.attrs.size()) out.attrs.pop_back();
  if (out.attrs.empty()) out.attrs.push_back(r.attrs.front());
  return out;
}

bool is_monotone_counter(const std::string& attr_name) {
  static const char* kCounters[] = {
      attr::kRxPkts,   attr::kTxPkts,   attr::kRxBytes,  attr::kTxBytes,
      attr::kDropPkts, attr::kDropBytes, attr::kInTimeNs, attr::kOutTimeNs,
      attr::kInBytes,  attr::kOutBytes,
  };
  for (const char* c : kCounters) {
    if (attr_name == c) return true;
  }
  return false;
}

}  // namespace perfsight
