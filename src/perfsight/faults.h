// Deterministic fault injection for the collection fabric (§4.2 channels).
//
// PerfSight's agents pull counters over flaky real-world channels —
// net_device files, /proc, the OVS control channel, QEMU logs, middlebox
// sockets.  A production collection layer must keep diagnosing when some of
// those channels misbehave, and the only way to *test* that is to make the
// channels misbehave on demand, reproducibly.  A FaultPlan is a seeded
// description of how channels fail:
//
//   * transient errors   the query fails outright (Status::unavailable);
//   * timeouts           the channel latency spikes past the per-attempt
//                        deadline (Status::deadline_exceeded);
//   * stale reads        the channel serves the last good record with its
//                        true (old) timestamp;
//   * torn reads         the record arrives with a subset of attrs missing
//                        (a partially parsed /proc page);
//   * agent crashes      the whole agent restarts at a scheduled time:
//                        caches are lost and counters restart from zero
//                        (the Monitor's counter-reset detection absorbs the
//                        discontinuity).
//
// Determinism contract: decide() is a pure function of (seed, element, time,
// attempt) — no internal RNG stream is consumed — so the same plan yields
// the same failure schedule regardless of call order, pool size, or how many
// other elements are being polled.  Agents still evaluate decisions in
// element-id order before fanning out, matching the collection runtime's
// byte-identical parallel-vs-sequential contract.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"

namespace perfsight {

// What one channel query is allowed to do to the caller.
enum class FaultKind {
  kNone = 0,
  kTransient,  // fails with Status::unavailable
  kTimeout,    // latency spikes past the deadline; Status::deadline_exceeded
  kStale,      // serves the last good record at its true timestamp
  kTorn,       // record arrives with a subset of attrs missing
};

const char* to_string(FaultKind k);

// Trustworthiness of one returned record, reported per element by the
// collection layer and propagated through every diagnosis verdict.
// Enumerator values are pinned on the wire (PSB1 response quality byte), so
// kReplica is appended after kMissing even though it is *less* severe;
// worse() ranks by severity, not enumerator value.
enum class DataQuality {
  kFresh = 0,    // collected this query, complete, from the primary
  kStale,        // served from an earlier collection; timestamp is honest
  kTorn,         // collected this query but attrs are missing
  kMissing,      // no record: channel dead, retries exhausted, or budget hit
  kReplica,      // complete record, but served by a mirror (primary failed)
};

const char* to_string(DataQuality q);

// Severity rank: fresh < replica < stale < torn < missing.  A replica answer
// is a complete, current record — trustworthy for diagnosis — but coverage
// reports must still distinguish it from a fresh primary read.
inline int quality_rank(DataQuality q) {
  switch (q) {
    case DataQuality::kFresh:
      return 0;
    case DataQuality::kReplica:
      return 1;
    case DataQuality::kStale:
      return 2;
    case DataQuality::kTorn:
      return 3;
    case DataQuality::kMissing:
      return 4;
  }
  return 4;
}

inline bool is_fresh(DataQuality q) { return q == DataQuality::kFresh; }
// True when the record is complete and current enough for Algorithm 1/2 to
// rank on: a fresh primary read or a quorum replica answer.
inline bool is_measured(DataQuality q) {
  return q == DataQuality::kFresh || q == DataQuality::kReplica;
}
inline DataQuality worse(DataQuality a, DataQuality b) {
  return quality_rank(a) >= quality_rank(b) ? a : b;
}

// Per-query fault probabilities for one channel (or one element).
struct ChannelFaultSpec {
  double transient_p = 0;
  double timeout_p = 0;
  double stale_p = 0;
  double torn_p = 0;

  bool any() const {
    return transient_p > 0 || timeout_p > 0 || stale_p > 0 || torn_p > 0;
  }
};

// One channel query's fate, as decided by the plan.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  uint64_t torn_salt = 0;  // selects which attrs a torn read loses
};

// A half-open window [start, end) during which an agent (or every agent on a
// host) is down: every channel attempt fails with Status::unavailable, no
// Bernoulli draw consulted.  Campaigns are pure schedule — the same plan
// yields the same outage at the same simulated time from any thread.
struct OutageWindow {
  SimTime start;
  SimTime end;

  bool contains(SimTime t) const { return start <= t && t < end; }
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 1) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  // Fault probabilities for every element reached over `kind`.
  void set_channel_faults(ChannelKind kind, ChannelFaultSpec spec) {
    channel_[static_cast<size_t>(kind)] = spec;
  }
  // Per-element override; wins over the channel-kind spec.
  void set_element_faults(const ElementId& id, ChannelFaultSpec spec) {
    element_[id] = spec;
  }

  // Modelled latency of a timed-out attempt (the spike, before any
  // per-attempt deadline clamps it).
  void set_timeout_spike(Duration d) { timeout_spike_ = d; }
  Duration timeout_spike() const { return timeout_spike_; }

  // Schedules a whole-agent crash/restart at simulated time `at`.
  void schedule_crash(const std::string& agent, SimTime at) {
    crashes_[agent].push_back(at);
  }
  // Crashes of `agent` scheduled in (since, until]; the agent consumes each
  // crash exactly once by advancing its own watermark.
  size_t crashes_between(const std::string& agent, SimTime since,
                         SimTime until) const;

  // --- Scheduled campaigns (windowed outages, not Bernoulli) ---------------

  // Agent `agent` is down for [start, end): every channel attempt in the
  // window fails like a transient error, retries and breakers included.
  void schedule_outage(const std::string& agent, SimTime start, SimTime end) {
    outages_[agent].push_back(OutageWindow{start, end});
  }

  // Tags `agent` as living on host `tag` so host-level windows reach it.
  void set_host(const std::string& agent, const std::string& tag) {
    host_of_[agent] = tag;
  }
  // The host tag of `agent`, or "" when untagged.
  const std::string& host_of(const std::string& agent) const;

  // Correlated failure: every agent tagged with `tag` is down for
  // [start, end) together.
  void schedule_host_outage(const std::string& tag, SimTime start,
                            SimTime end) {
    host_outages_[tag].push_back(OutageWindow{start, end});
  }

  // Rolling upgrade: agents[i] is down for
  // [start + i*window, start + (i+1)*window) — one agent at a time, in fleet
  // order.  Desugars to per-agent windows at schedule time, so agent_down()
  // stays a plain window-containment check.
  void schedule_rolling_upgrade(const std::vector<std::string>& agents,
                                SimTime start, Duration window);

  // True when `agent` is inside any scheduled outage window at `now`
  // (its own windows or its host's).
  bool agent_down(const std::string& agent, SimTime now) const;

  // True when any outage window (agent- or host-level) contains `now`.
  bool campaign_active(SimTime now) const;

  // True when any campaign windows are scheduled at all; gates the
  // perfsight_fault_campaign_active exposition and the per-query
  // agent_down() check (no campaign → no per-sweep map lookups).
  bool has_campaign() const {
    return !outages_.empty() || !host_outages_.empty();
  }

  // True when any fault source is configured (agents skip the fault path
  // entirely otherwise, preserving the exact pre-fault behaviour).
  bool enabled() const;

  // The spec decide() would consult for this query (element override wins).
  // Agents use it to skip the decision hash entirely for elements the plan
  // cannot touch — the installed-but-inert plan must stay near-free.
  const ChannelFaultSpec& spec_for(const ElementId& id,
                                   ChannelKind kind) const {
    if (!element_.empty()) {
      auto it = element_.find(id);
      if (it != element_.end()) return it->second;
    }
    return channel_[static_cast<size_t>(kind)];
  }

  // True when any spec can produce a stale read; agents only maintain the
  // last-good records stale serving needs while this holds.
  bool serves_stale() const;

  // --- push-mode stream faults ----------------------------------------------
  // Probability that one published stream frame is lost in transit.  This is
  // a transport-layer fault consumed by the streaming pipeline (streaming.h),
  // not by agents: a dropped frame becomes a sequence gap the subscriber
  // must detect and repair with a targeted pull, while the channel queries
  // behind the capture are untouched.  Deliberately NOT part of enabled():
  // agents never consult it.
  void set_stream_drop(double p) { stream_drop_p_ = p; }
  double stream_drop_p() const { return stream_drop_p_; }

  // The fate of stream frame `seq` published by `agent`.  Pure function of
  // (seed, agent, seq) — campaigns and channel decisions draw nothing from
  // it, and it draws nothing from them — so a repair pull replaying the
  // dropped window reproduces the capture exactly.
  bool stream_drop(const std::string& agent, uint64_t seq) const;

  // The fate of attempt `attempt` (1-based) of a query to `id` over `kind`
  // at simulated time `now`.  Pure function of the plan's seed and the
  // arguments: same plan, same query, same fate — in any order, from any
  // thread.
  FaultDecision decide(const ElementId& id, ChannelKind kind, SimTime now,
                       uint32_t attempt) const;

  // Builds a plan from the PERFSIGHT_FAULTS environment variable, e.g.
  //   PERFSIGHT_FAULTS="seed=7,transient=0.05,timeout=0.01,stale=0.02,torn=0.02"
  // (probabilities apply to every channel kind).  Campaign grammar, all
  // times in integer simulated milliseconds:
  //   outage=NAME@T0-T1       agent NAME down for [T0ms, T1ms)
  //   host=NAME:TAG           tag agent NAME as living on host TAG
  //   host_outage=TAG@T0-T1   every agent tagged TAG down for [T0ms, T1ms)
  //   rolling=PREFIX*N@T0+W   rolling upgrade of agents PREFIX0..PREFIX(N-1):
  //                           agent i down for [T0+i*W, T0+(i+1)*W) ms
  // nullopt when the variable is unset or empty.  Parsing is strict: an
  // unknown key, a value with trailing garbage, or an empty value is
  // rejected with a warning (never silently treated as 0), and
  // probabilities are clamped to [0,1].
  static std::optional<FaultPlan> from_env();

  // The parser behind from_env(), usable on any spec string (tests feed it
  // generated plans without touching the process environment).  Rejected
  // items never poison valid keys around them and never half-apply.
  static std::optional<FaultPlan> parse(const std::string& spec);

  // The plan re-serialized in the PERFSIGHT_FAULTS grammar, canonically
  // ordered (probabilities, then outage=/host=/host_outage= sorted by name
  // and window) with shortest-round-trip number formatting, so
  // parse(p.to_env_string()) reconstructs the same schedule and the string
  // form is a fixed point.  Grammar-expressible state only: per-element and
  // per-kind spec overrides, scheduled crashes, and rolling upgrades (which
  // desugar to plain outage windows at schedule time) project onto the
  // grammar — a plan built programmatically beyond it loses those extras.
  std::string to_env_string() const;

 private:
  uint64_t seed_;
  double stream_drop_p_ = 0;
  Duration timeout_spike_ = Duration::millis(10);
  std::array<ChannelFaultSpec, kNumChannelKinds> channel_ = {};
  std::unordered_map<ElementId, ChannelFaultSpec> element_;
  std::unordered_map<std::string, std::vector<SimTime>> crashes_;
  std::unordered_map<std::string, std::vector<OutageWindow>> outages_;
  std::unordered_map<std::string, std::string> host_of_;
  std::unordered_map<std::string, std::vector<OutageWindow>> host_outages_;
};

// Deterministically drops a subset of `r`'s attrs (at least one survives,
// at least one is lost when the record has two or more).  `salt` comes from
// FaultDecision::torn_salt, so the same torn read always loses the same
// attrs.
StatsRecord apply_torn_read(const StatsRecord& r, uint64_t salt);

// True for the canonical attributes that are monotone counters — the ones a
// crash/restart resets to zero.  Gauges (capacity, queue depth) and
// structural attrs (type, vm) keep their values across a restart.
bool is_monotone_counter(const std::string& attr_name);

}  // namespace perfsight
