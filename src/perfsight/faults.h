// Deterministic fault injection for the collection fabric (§4.2 channels).
//
// PerfSight's agents pull counters over flaky real-world channels —
// net_device files, /proc, the OVS control channel, QEMU logs, middlebox
// sockets.  A production collection layer must keep diagnosing when some of
// those channels misbehave, and the only way to *test* that is to make the
// channels misbehave on demand, reproducibly.  A FaultPlan is a seeded
// description of how channels fail:
//
//   * transient errors   the query fails outright (Status::unavailable);
//   * timeouts           the channel latency spikes past the per-attempt
//                        deadline (Status::deadline_exceeded);
//   * stale reads        the channel serves the last good record with its
//                        true (old) timestamp;
//   * torn reads         the record arrives with a subset of attrs missing
//                        (a partially parsed /proc page);
//   * agent crashes      the whole agent restarts at a scheduled time:
//                        caches are lost and counters restart from zero
//                        (the Monitor's counter-reset detection absorbs the
//                        discontinuity).
//
// Determinism contract: decide() is a pure function of (seed, element, time,
// attempt) — no internal RNG stream is consumed — so the same plan yields
// the same failure schedule regardless of call order, pool size, or how many
// other elements are being polled.  Agents still evaluate decisions in
// element-id order before fanning out, matching the collection runtime's
// byte-identical parallel-vs-sequential contract.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "perfsight/stats.h"
#include "perfsight/stats_source.h"

namespace perfsight {

// What one channel query is allowed to do to the caller.
enum class FaultKind {
  kNone = 0,
  kTransient,  // fails with Status::unavailable
  kTimeout,    // latency spikes past the deadline; Status::deadline_exceeded
  kStale,      // serves the last good record at its true timestamp
  kTorn,       // record arrives with a subset of attrs missing
};

const char* to_string(FaultKind k);

// Trustworthiness of one returned record, reported per element by the
// collection layer and propagated through every diagnosis verdict.
// Severity-ordered: worse() below takes the max.
enum class DataQuality {
  kFresh = 0,  // collected this query, complete
  kStale,      // served from an earlier collection; timestamp is honest
  kTorn,       // collected this query but attrs are missing
  kMissing,    // no record: channel dead, retries exhausted, or budget hit
};

const char* to_string(DataQuality q);

inline bool is_fresh(DataQuality q) { return q == DataQuality::kFresh; }
inline DataQuality worse(DataQuality a, DataQuality b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// Per-query fault probabilities for one channel (or one element).
struct ChannelFaultSpec {
  double transient_p = 0;
  double timeout_p = 0;
  double stale_p = 0;
  double torn_p = 0;

  bool any() const {
    return transient_p > 0 || timeout_p > 0 || stale_p > 0 || torn_p > 0;
  }
};

// One channel query's fate, as decided by the plan.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  uint64_t torn_salt = 0;  // selects which attrs a torn read loses
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 1) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  // Fault probabilities for every element reached over `kind`.
  void set_channel_faults(ChannelKind kind, ChannelFaultSpec spec) {
    channel_[static_cast<size_t>(kind)] = spec;
  }
  // Per-element override; wins over the channel-kind spec.
  void set_element_faults(const ElementId& id, ChannelFaultSpec spec) {
    element_[id] = spec;
  }

  // Modelled latency of a timed-out attempt (the spike, before any
  // per-attempt deadline clamps it).
  void set_timeout_spike(Duration d) { timeout_spike_ = d; }
  Duration timeout_spike() const { return timeout_spike_; }

  // Schedules a whole-agent crash/restart at simulated time `at`.
  void schedule_crash(const std::string& agent, SimTime at) {
    crashes_[agent].push_back(at);
  }
  // Crashes of `agent` scheduled in (since, until]; the agent consumes each
  // crash exactly once by advancing its own watermark.
  size_t crashes_between(const std::string& agent, SimTime since,
                         SimTime until) const;

  // True when any fault source is configured (agents skip the fault path
  // entirely otherwise, preserving the exact pre-fault behaviour).
  bool enabled() const;

  // The spec decide() would consult for this query (element override wins).
  // Agents use it to skip the decision hash entirely for elements the plan
  // cannot touch — the installed-but-inert plan must stay near-free.
  const ChannelFaultSpec& spec_for(const ElementId& id,
                                   ChannelKind kind) const {
    if (!element_.empty()) {
      auto it = element_.find(id);
      if (it != element_.end()) return it->second;
    }
    return channel_[static_cast<size_t>(kind)];
  }

  // True when any spec can produce a stale read; agents only maintain the
  // last-good records stale serving needs while this holds.
  bool serves_stale() const;

  // The fate of attempt `attempt` (1-based) of a query to `id` over `kind`
  // at simulated time `now`.  Pure function of the plan's seed and the
  // arguments: same plan, same query, same fate — in any order, from any
  // thread.
  FaultDecision decide(const ElementId& id, ChannelKind kind, SimTime now,
                       uint32_t attempt) const;

  // Builds a plan from the PERFSIGHT_FAULTS environment variable, e.g.
  //   PERFSIGHT_FAULTS="seed=7,transient=0.05,timeout=0.01,stale=0.02,torn=0.02"
  // (probabilities apply to every channel kind).  nullopt when the variable
  // is unset or empty.  Parsing is strict: an unknown key, a value with
  // trailing garbage, or an empty value is rejected with a warning (never
  // silently treated as 0), and probabilities are clamped to [0,1].
  static std::optional<FaultPlan> from_env();

 private:
  uint64_t seed_;
  Duration timeout_spike_ = Duration::millis(10);
  std::array<ChannelFaultSpec, kNumChannelKinds> channel_ = {};
  std::unordered_map<ElementId, ChannelFaultSpec> element_;
  std::unordered_map<std::string, std::vector<SimTime>> crashes_;
};

// Deterministically drops a subset of `r`'s attrs (at least one survives,
// at least one is lost when the record has two or more).  `salt` comes from
// FaultDecision::torn_salt, so the same torn read always loses the same
// attrs.
StatsRecord apply_torn_read(const StatsRecord& r, uint64_t salt);

// True for the canonical attributes that are monotone counters — the ones a
// crash/restart resets to zero.  Gauges (capacity, queue depth) and
// structural attrs (type, vm) keep their values across a restart.
bool is_monotone_counter(const std::string& attr_name);

}  // namespace perfsight
