// Packet-size distribution tracking — the paper's example of a richer,
// operator-added statistic (§4.1: "Operators can implement more complicated
// statistics at an element such as packet size distribution tracking if
// they can accept the resulting performance impact").
//
// A fixed set of power-of-two-ish buckets spanning 64..9000+ bytes; each
// update is one increment (branch-free bucket lookup), so the fast-path
// cost stays in simple-counter territory.  Exported as attributes
// "sizeHist.<lo>-<hi>" on the owning element's record.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "perfsight/stats.h"

namespace perfsight {

class PacketSizeHistogram {
 public:
  // Bucket upper bounds (inclusive); the last bucket is open-ended
  // (jumbo frames).
  static constexpr std::array<uint32_t, 8> kBounds = {64,   128,  256,  512,
                                                      1024, 1514, 4096, 9000};
  static constexpr size_t kBuckets = kBounds.size() + 1;

  void record(uint32_t size_bytes, uint64_t count = 1) {
    counts_[bucket_for(size_bytes)] += count;
  }

  static size_t bucket_for(uint32_t size_bytes) {
    for (size_t i = 0; i < kBounds.size(); ++i) {
      if (size_bytes <= kBounds[i]) return i;
    }
    return kBounds.size();
  }

  uint64_t count(size_t bucket) const { return counts_[bucket]; }
  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t c : counts_) t += c;
    return t;
  }

  // Bucket label, e.g. "65-128" or "9001+".
  static std::string label(size_t bucket) {
    uint32_t lo = bucket == 0 ? 0 : kBounds[bucket - 1] + 1;
    if (bucket == kBounds.size()) return std::to_string(lo) + "+";
    return std::to_string(lo) + "-" + std::to_string(kBounds[bucket]);
  }

  // Appends the distribution to an element's record.
  void export_attrs(StatsRecord& r) const {
    for (size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;  // keep records compact
      r.set("sizeHist." + label(i), static_cast<double>(counts_[i]));
    }
  }

  // Representative size reported when a quantile lands in the open-ended
  // jumbo bucket: its lower edge (9001), deliberately distinct from
  // kBounds.back() so jumbo-heavy traffic is not folded into the 9000-byte
  // bucket.
  static constexpr uint32_t kOpenBucketSize = kBounds.back() + 1;

  // Approximate quantile (by bucket upper bound; the open bucket reports
  // kOpenBucketSize); returns 0 when empty.
  uint32_t approx_quantile(double q) const {
    uint64_t t = total();
    if (t == 0) return 0;
    // 1-based rank of the quantile sample: the smallest cumulative count
    // covering fraction q, clamped so q<=0 picks the first non-empty
    // bucket and q>=1 the last one instead of falling off the histogram.
    uint64_t target =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(t)));
    target = std::min(std::max<uint64_t>(target, 1), t);
    uint64_t seen = 0;
    for (size_t i = 0; i < kBounds.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) return kBounds[i];
    }
    return kOpenBucketSize;
  }

 private:
  std::array<uint64_t, kBuckets> counts_ = {};
};

}  // namespace perfsight
