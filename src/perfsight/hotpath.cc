#include "perfsight/hotpath.h"

#include <chrono>
#include <cstring>

#include "perfsight/trace.h"

namespace perfsight {

const char* to_string(MbWorkKind k) {
  switch (k) {
    case MbWorkKind::kProxy:
      return "Proxy";
    case MbWorkKind::kLoadBalancer:
      return "LB";
    case MbWorkKind::kCache:
      return "Cache";
    case MbWorkKind::kRedundancyElim:
      return "RE";
    case MbWorkKind::kIps:
      return "IPS";
  }
  return "?";
}

namespace {

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// FNV-1a over a span; the inner loop of several work models.
inline uint64_t fnv1a(const uint8_t* data, size_t n, uint64_t h) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// Emulates the kernel interaction of one I/O method — syscall entry, TCP
// processing, skb handling — as ~1-2 us of real compute.  Without this a
// user-space memcpy alone (tens of ns) would make the time counters look
// relatively enormous; real middleboxes pay microseconds per packet in the
// kernel, which is the regime the paper's <2% overhead claim lives in.
inline uint64_t kernel_io_emulation(uint8_t* scratch, uint64_t seed) {
  uint64_t h = seed | 1;
  for (int pass = 0; pass < 3; ++pass) {
    h = fnv1a(scratch, 512, h);
    scratch[h & 511] = static_cast<uint8_t>(h);
  }
  return h;
}

// Per-kind packet processing.  `in` and `out` are packet-sized buffers;
// returns a value data-dependent on the payload so nothing is elided.
uint64_t process_packet(MbWorkKind kind, const uint8_t* in, uint8_t* out,
                        uint32_t n, uint64_t seq,
                        std::vector<uint64_t>& table) {
  switch (kind) {
    case MbWorkKind::kProxy: {
      // Pure forwarding: payload copy is the whole job.
      std::memcpy(out, in, n);
      return out[0] + out[n - 1];
    }
    case MbWorkKind::kLoadBalancer: {
      // Hash the "5-tuple" (first 13 bytes), pick a backend, forward.
      uint64_t h = fnv1a(in, n < 13 ? n : 13, 1469598103934665603ULL);
      std::memcpy(out, in, n);
      return h % 8;
    }
    case MbWorkKind::kCache: {
      // Digest the payload, probe a small object table.
      uint64_t h = fnv1a(in, n, 1469598103934665603ULL);
      uint64_t& slot = table[h % table.size()];
      uint64_t hit = slot == h ? 1 : 0;
      slot = h;
      std::memcpy(out, in, n);
      return h + hit;
    }
    case MbWorkKind::kRedundancyElim: {
      // Rolling fingerprints every 32 bytes (SmartRE-style chunking).
      uint64_t acc = seq;
      for (uint32_t i = 0; i + 32 <= n; i += 32) {
        acc ^= fnv1a(in + i, 32, acc | 1);
        table[acc % table.size()] = acc;
      }
      std::memcpy(out, in, n);
      return acc;
    }
    case MbWorkKind::kIps: {
      // Byte scan against a tiny signature set (first bytes of patterns).
      static constexpr uint8_t kSigs[4] = {0x90, 0xCC, 0x7F, 0x41};
      uint64_t matches = 0;
      for (uint32_t i = 0; i < n; ++i) {
        uint8_t b = in[i];
        matches += (b == kSigs[0]) + (b == kSigs[1]) + (b == kSigs[2]) +
                   (b == kSigs[3]);
      }
      std::memcpy(out, in, n);
      return matches;
    }
  }
  return 0;
}

}  // namespace

HotpathResult run_hotpath(const HotpathConfig& cfg, uint64_t packets) {
  HotpathResult res;
  std::vector<uint8_t> in(cfg.packet_bytes);
  std::vector<uint8_t> out(cfg.packet_bytes);
  std::vector<uint8_t> wire(cfg.packet_bytes);
  std::vector<uint8_t> kernel_scratch(512, 0xA5);
  std::vector<uint64_t> table(4096, 0);
  for (uint32_t i = 0; i < cfg.packet_bytes; ++i) {
    wire[i] = static_cast<uint8_t>(i * 131 + 7);
  }

  // Worst-case tracing load: one flight-recorder event per packet.  The
  // ring pointer is cached outside the loop (the recommended hot-path
  // pattern), so the per-packet cost is the ring push itself.
  TraceRing* trace_ring = nullptr;
  if (cfg.trace_events && TraceRecorder::global().enabled()) {
    trace_ring = TraceRecorder::global().ring(
        ElementId{std::string("hotpath/") + to_string(cfg.kind)});
  }

  uint64_t checksum = 0;
  uint64_t start = now_ns();
  for (uint64_t p = 0; p < packets; ++p) {
    // Input method: fetch the packet from the "kernel" (a memcpy), possibly
    // under a time counter — exactly what PerfSight instruments in real
    // middlebox software.
    {
      auto recv = [&] {
        checksum += kernel_io_emulation(kernel_scratch.data(), p);
        std::memcpy(in.data(), wire.data(), cfg.packet_bytes);
      };
      if (cfg.time_counters) {
        ScopedIoTimer t(res.stats.in_time);
        recv();
      } else {
        recv();
      }
      if (cfg.simple_counters) {
        res.stats.pkts_in.increment();
        res.stats.bytes_in.add(cfg.packet_bytes);
      }
    }
    in[0] = static_cast<uint8_t>(p);  // vary payloads slightly

    checksum += process_packet(cfg.kind, in.data(), out.data(),
                               cfg.packet_bytes, p, table);

    // Output method: push to the "kernel".
    {
      auto send = [&] {
        checksum += kernel_io_emulation(kernel_scratch.data(), ~p);
        std::memcpy(wire.data(), out.data(), cfg.packet_bytes);
      };
      if (cfg.time_counters) {
        ScopedIoTimer t(res.stats.out_time);
        send();
      } else {
        send();
      }
      if (cfg.simple_counters) {
        res.stats.pkts_out.increment();
        res.stats.bytes_out.add(cfg.packet_bytes);
      }
    }

    if (trace_ring != nullptr) {
      // Synthetic per-packet timestamp: no clock read on the fast path.
      trace_ring->push(SimTime::nanos(static_cast<int64_t>(p)),
                       TraceEventKind::kDrop, 1, "hotpath packet");
    }
  }
  res.wall_ns = now_ns() - start;
  res.packets = packets;
  res.checksum = checksum;
  return res;
}

double measure_simple_counter_ns(uint64_t iters) {
  Counter c;
  uint64_t start = now_ns();
  for (uint64_t i = 0; i < iters; ++i) {
    c.add(i & 1 ? 1500 : 64);
  }
  uint64_t elapsed = now_ns() - start;
  // Keep the counter alive across optimization.
  volatile uint64_t sink = c.value();
  (void)sink;
  return static_cast<double>(elapsed) / static_cast<double>(iters);
}

double measure_time_counter_ns(uint64_t iters) {
  IoTimeCounter c;
  uint64_t start = now_ns();
  for (uint64_t i = 0; i < iters; ++i) {
    ScopedIoTimer t(c);
  }
  uint64_t elapsed = now_ns() - start;
  volatile uint64_t sink = c.nanos();
  (void)sink;
  return static_cast<double>(elapsed) / static_cast<double>(iters);
}

StatsRecord HotpathStatsSource::collect(SimTime now) const {
  StatsRecord r;
  r.timestamp = now;
  r.element = id_;
  r.attrs = {
      {attr::kRxPkts, static_cast<double>(stats_->pkts_in.value())},
      {attr::kTxPkts, static_cast<double>(stats_->pkts_out.value())},
      {attr::kRxBytes, static_cast<double>(stats_->bytes_in.value())},
      {attr::kTxBytes, static_cast<double>(stats_->bytes_out.value())},
      {attr::kInTimeNs, static_cast<double>(stats_->in_time.nanos())},
      {attr::kOutTimeNs, static_cast<double>(stats_->out_time.nanos())},
  };
  return r;
}

}  // namespace perfsight
