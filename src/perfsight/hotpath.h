// Real (wall-clock) packet-processing harness for overhead measurements.
//
// The paper's Table 2 / Fig. 15 / Fig. 16 quantify what the instrumentation
// itself costs a busy element.  Simulated time cannot answer that, so this
// harness runs an honest per-packet work loop on the host CPU — one work
// model per middlebox kind the paper tested (proxy, load balancer, cache,
// redundancy eliminator, IPS) — with the production counter types compiled
// in or out, and reports achieved packets/second.  The same harness backs
// the per-update cost measurements (≈ns for simple counters, ≈0.1–0.3 µs
// for time counters).
#pragma once

#include <cstdint>
#include <vector>

#include "perfsight/counters.h"
#include "perfsight/stats_source.h"

namespace perfsight {

enum class MbWorkKind {
  kProxy = 0,       // read + write memcpy, no inspection
  kLoadBalancer,    // header hash + forward
  kCache,           // payload digest + table lookup
  kRedundancyElim,  // rolling fingerprints over payload
  kIps,             // byte-wise multi-pattern scan
};

const char* to_string(MbWorkKind k);

struct HotpathConfig {
  MbWorkKind kind = MbWorkKind::kProxy;
  uint32_t packet_bytes = 1500;
  bool simple_counters = false;  // pkts/bytes counters on the fast path
  bool time_counters = false;    // ScopedIoTimer around read/write
  // Flight-recorder event per packet into the global TraceRecorder's ring
  // (the worst case for tracing overhead: every packet is an event).  The
  // global recorder must also be enabled, else the per-packet cost is the
  // single branch production code pays.
  bool trace_events = false;
};

struct HotpathResult {
  uint64_t packets = 0;
  uint64_t wall_ns = 0;
  uint64_t checksum = 0;  // anti-DCE sink; also a determinism probe
  ElementStats stats;     // counters as maintained during the run

  double pkts_per_sec() const {
    return wall_ns == 0 ? 0
                        : static_cast<double>(packets) * 1e9 /
                              static_cast<double>(wall_ns);
  }
  double gbps(uint32_t packet_bytes) const {
    return pkts_per_sec() * packet_bytes * 8.0 / 1e9;
  }
};

// Processes `packets` packets through the configured element and returns
// timing + counters.
HotpathResult run_hotpath(const HotpathConfig& cfg, uint64_t packets);

// Cost of one counter update in isolation, averaged over `iters` updates.
double measure_simple_counter_ns(uint64_t iters);
double measure_time_counter_ns(uint64_t iters);

// A StatsSource wrapping hotpath counters, so real agents can poll real
// elements (Fig. 16's polling-overhead experiment).
class HotpathStatsSource : public StatsSource {
 public:
  HotpathStatsSource(ElementId id, const ElementStats* stats)
      : id_(std::move(id)), stats_(stats) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return ChannelKind::kMbSocket; }
  StatsRecord collect(SimTime now) const override;

 private:
  ElementId id_;
  const ElementStats* stats_;
};

}  // namespace perfsight
