#include "perfsight/inband.h"

#include <algorithm>
#include <utility>

#include "packet/batch.h"
#include "perfsight/agent.h"
#include "perfsight/stats.h"
#include "perfsight/streaming.h"
#include "perfsight/wire.h"

namespace perfsight::inband {

// --- IntStamper --------------------------------------------------------------

int IntStamper::register_element(const ElementId& id, ElementKind kind,
                                 int vm) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(Slot{id, kind, vm, false, false});
  return static_cast<int>(slots_.size()) - 1;
}

void IntStamper::enable(int slot, bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  if (valid_slot(slot)) slots_[static_cast<size_t>(slot)].enabled = on;
}

void IntStamper::enable_all(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) s.enabled = on;
}

bool IntStamper::enabled(int slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return valid_slot(slot) && slots_[static_cast<size_t>(slot)].enabled;
}

void IntStamper::set_harvest(int slot, bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  if (valid_slot(slot)) slots_[static_cast<size_t>(slot)].harvest = on;
}

bool IntStamper::harvesting(int slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return valid_slot(slot) && slots_[static_cast<size_t>(slot)].harvest;
}

void IntStamper::set_now(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = now;
}

void IntStamper::set_sample_every(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_.sample_every = n == 0 ? 1 : n;
}

void IntStamper::append_hop_locked(Flight& f, int slot, uint64_t queue_pkts) {
  if (f.hops.size() >= cfg_.max_hops) {
    ++stats_.hops_truncated;
    return;
  }
  const Slot& s = slots_[static_cast<size_t>(slot)];
  f.hops.push_back(Hop{s.id, s.kind, s.vm, queue_pkts, Duration{}, false});
  ++stats_.hops_stamped;
}

void IntStamper::finalize_locked(uint64_t tag, bool dropped) {
  auto it = inflight_.find(tag);
  if (it == inflight_.end()) return;
  it->second.dropped = dropped;
  it->second.end = now_;
  finished_.push_back(std::move(it->second));
  inflight_.erase(it);
  if (dropped) {
    ++stats_.flights_dropped;
  } else {
    ++stats_.flights_harvested;
  }
}

uint64_t IntStamper::maybe_tag(int slot, const PacketBatch& b,
                               uint64_t queue_pkts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid_slot(slot) || !slots_[static_cast<size_t>(slot)].enabled ||
      b.packets == 0) {
    return 0;
  }
  const uint64_t n = cfg_.sample_every == 0 ? 1 : cfg_.sample_every;
  const uint64_t before = stats_.pkts_seen;
  stats_.pkts_seen += b.packets;
  // One flight per crossed sample boundary, at most one per batch: exact
  // 1-in-N over the admitted packet count, deterministic in arrival order.
  if (before / n == stats_.pkts_seen / n) return 0;
  if (inflight_.size() >= cfg_.max_inflight) return 0;
  const uint64_t tag = next_tag_++;
  Flight f;
  f.tag = tag;
  f.start = now_;
  f.end = now_;
  append_hop_locked(f, slot, queue_pkts);
  ++stats_.flights_started;
  inflight_.emplace(tag, std::move(f));
  return tag;
}

void IntStamper::stamp(int slot, uint64_t tag, uint64_t queue_pkts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid_slot(slot) || !slots_[static_cast<size_t>(slot)].enabled ||
      tag == 0) {
    return;
  }
  auto it = inflight_.find(tag);
  if (it == inflight_.end()) return;  // expired orphan: the tag outlived us
  append_hop_locked(it->second, slot, queue_pkts);
  it->second.end = now_;
}

void IntStamper::add_io_time(uint64_t tag, Duration d) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(tag);
  if (it == inflight_.end() || it->second.hops.empty()) return;
  it->second.hops.back().io_time += d;
}

void IntStamper::mark_dropped(int slot, uint64_t tag, uint64_t queue_pkts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid_slot(slot) || tag == 0) return;
  auto it = inflight_.find(tag);
  if (it == inflight_.end()) return;
  Flight& f = it->second;
  const Slot& s = slots_[static_cast<size_t>(slot)];
  if (!f.hops.empty() && f.hops.back().element == s.id) {
    // The arrival hop was already stamped; just mark it.
    f.hops.back().drop_tail = true;
  } else {
    append_hop_locked(f, slot, queue_pkts);
    if (!f.hops.empty()) f.hops.back().drop_tail = true;
  }
  finalize_locked(tag, true);
}

void IntStamper::harvest(int slot, uint64_t tag, uint64_t queue_pkts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid_slot(slot) || !slots_[static_cast<size_t>(slot)].enabled ||
      tag == 0) {
    return;
  }
  auto it = inflight_.find(tag);
  if (it == inflight_.end()) return;
  append_hop_locked(it->second, slot, queue_pkts);
  finalize_locked(tag, false);
}

std::vector<Flight> IntStamper::take_finished() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Flight> out;
  out.swap(finished_);
  return out;
}

void IntStamper::expire(Duration max_age) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (now_ - it->second.start > max_age) {
      it = inflight_.erase(it);
      ++stats_.flights_expired;
    } else {
      ++it;
    }
  }
}

IntStamper::Stats IntStamper::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- IntHarvester ------------------------------------------------------------

IntHarvester::IntHarvester(IntStamper* stamper, StreamCache* cache, Config cfg)
    : stamper_(stamper), cache_(cache), cfg_(std::move(cfg)) {}

size_t IntHarvester::close_window(SimTime window_start) {
  stamper_->expire(cfg_.expire_after);
  std::vector<Flight> flights = stamper_->take_finished();
  ++stats_.windows_closed;
  stats_.flights_absorbed += flights.size();

  struct PerElement {
    ElementKind kind = ElementKind::kOther;
    int vm = -1;
    uint64_t samples = 0;
    uint64_t peak_pkts = 0;
    uint64_t drop_tail = 0;
    int64_t io_ns = 0;
  };
  std::map<ElementId, PerElement> agg;

  for (const Flight& f : flights) {
    // Wire-cost accounting: what this flight's report costs as a kIntReport
    // body — the overhead figure the bench gates against BASELINE.json.
    wire::IntReportMsg m;
    m.agent = cfg_.agent;
    m.tag = f.tag;
    m.start = f.start;
    m.end = f.end;
    m.dropped = f.dropped;
    m.hops.reserve(f.hops.size());
    for (const Hop& h : f.hops) {
      m.hops.push_back(wire::IntHopWire{
          h.element, h.queue_pkts, h.io_time.ns(),
          static_cast<uint8_t>(h.drop_tail ? 1 : 0)});
    }
    Result<std::string> enc = wire::encode_int_report(m);
    if (enc.ok()) stats_.report_bytes += enc.value().size();

    for (const Hop& h : f.hops) {
      PerElement& pe = agg[h.element];
      pe.kind = h.kind;
      pe.vm = h.vm;
      ++pe.samples;
      if (h.queue_pkts > pe.peak_pkts) pe.peak_pkts = h.queue_pkts;
      pe.io_ns += h.io_time.ns();
      if (h.drop_tail) ++pe.drop_tail;
    }
  }

  const uint64_t every = stamper_->config().sample_every;
  Microburst burst;
  burst.window_start = window_start;

  std::vector<QueryResponse> responses;
  responses.reserve(agg.size());
  for (const auto& [id, pe] : agg) {
    QueryResponse qr;
    qr.record.timestamp = window_start;
    qr.record.element = id;
    // Standard names first, so rule books / alert rules written against the
    // agent channels read INT windows unchanged; int* raw aggregates after.
    // kDropPkts is the 1-in-N scaled estimate of packets lost where a
    // sampled flight tail-dropped.
    qr.record.attrs = {
        {attr::kQueuePkts, static_cast<double>(pe.peak_pkts)},
        {attr::kDropPkts, static_cast<double>(pe.drop_tail * every)},
        {attr::kInTimeNs, static_cast<double>(pe.io_ns)},
        {attr::kType, static_cast<double>(static_cast<int>(pe.kind))},
        {attr::kVm, static_cast<double>(pe.vm)},
        {kIntSamples, static_cast<double>(pe.samples)},
        {kIntQueuePeakPkts, static_cast<double>(pe.peak_pkts)},
        {kIntIoTimeNs, static_cast<double>(pe.io_ns)},
        {kIntDropTailFlights, static_cast<double>(pe.drop_tail)},
    };
    qr.quality = DataQuality::kFresh;
    qr.attempts = 1;
    responses.push_back(std::move(qr));

    if (cfg_.microburst_depth_pkts > 0 &&
        pe.peak_pkts >= cfg_.microburst_depth_pkts) {
      burst.elements.push_back(id);
      if (pe.peak_pkts > burst.peak_depth_pkts) {
        burst.peak_depth_pkts = pe.peak_pkts;
      }
    }
  }

  if (cache_ != nullptr && !responses.empty()) {
    cache_->ingest(cfg_.agent, window_start, StreamCache::Provenance::kInband,
                   std::move(responses));
  }
  if (!burst.elements.empty()) {
    ++stats_.microbursts;
    if (on_microburst_) on_microburst_(burst);
  }
  return flights.size();
}

}  // namespace perfsight::inband
