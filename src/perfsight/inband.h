// In-band telemetry (INT): the third collection backend, after pull sweeps
// and push-mode streaming.
//
// Polling and streaming both sample element counters at window boundaries,
// so anything that builds and drains *inside* a window — a microburst that
// fills a queue for 20 ms and is gone before the next sweep — leaves no
// boundary-visible trace.  INT closes that blind spot the way "Millions of
// Little Minions" does: the packets themselves carry the evidence.  A
// sampled packet (1-in-N at the ingress element) is tagged with a flight id;
// every participating element it traverses stamps a hop onto the flight's
// metadata stack — element id, queue depth at arrival, io-time spent,
// drop-tail marker — and the last element harvests the completed stack.
//
// Two classes split the work across the dataplane/collection boundary:
//
//  * IntStamper — the dataplane side.  Elements register for a slot and
//    keep a raw pointer + slot index (dp::Element::set_int_stamper); every
//    hook in the packet path is gated on a per-slot enable bit, so a
//    disabled (or never-attached) stamper leaves the packet path and every
//    counter bit-identical to a build without INT.  Flights live in a
//    bounded in-flight table; completed (harvested or drop-tailed) flights
//    move to a finished list the harvester drains.
//
//  * IntHarvester — the collection side.  close_window(t) drains finished
//    flights, aggregates them per element into the same StatsRecord attr
//    format the agent channels produce (so Algorithms 1/2, the rule book
//    and the AlertWatcher consume INT records unchanged), and ingests one
//    window into a StreamCache under Provenance::kInband.  A queue-depth
//    excursion beyond the configured threshold fires the microburst
//    callback — the hybrid mode wires that callback to a targeted pull
//    sweep (Controller::get_attr_many) over just the implicated elements,
//    so steady traffic costs zero extra queries and a burst pays for
//    exactly one focused sweep.
//
// Overhead is bounded by construction: sampling is 1-in-N, the hop stack is
// capped, the in-flight table is capped, and a flight whose tag is lost in
// the fluid simulation (batch merges/trims) is expired, never leaked.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "perfsight/rulebook.h"

namespace perfsight {

class StreamCache;
struct PacketBatch;

namespace inband {

// Canonical INT attr names (exported alongside the standard counter names,
// which is what lets the existing diagnosis stack consume INT windows).
inline constexpr const char* kIntSamples = "intSamples";
inline constexpr const char* kIntQueuePeakPkts = "intQueuePeakPkts";
inline constexpr const char* kIntIoTimeNs = "intIoTimeNs";
inline constexpr const char* kIntDropTailFlights = "intDropTailFlights";

// One stamped hop of a flight's metadata stack.
struct Hop {
  ElementId element;
  ElementKind kind = ElementKind::kOther;
  int vm = -1;
  uint64_t queue_pkts = 0;  // occupancy of the element's queue at arrival
  Duration io_time;         // io-time attributed while held at this hop
  bool drop_tail = false;   // the tagged packet died in a tail drop here
};

// A sampled packet's journey, ingress tag to harvest (or drop).
struct Flight {
  uint64_t tag = 0;
  SimTime start;
  SimTime end;
  bool dropped = false;
  std::vector<Hop> hops;
};

class IntStamper {
 public:
  struct Config {
    uint64_t sample_every = 64;  // 1-in-N ingress packets starts a flight
    size_t max_hops = 16;        // per-flight hop-stack cap
    size_t max_inflight = 4096;  // in-flight table cap (orphan guard)
  };
  IntStamper() = default;
  explicit IntStamper(Config cfg) : cfg_(cfg) {}

  // --- registration ----------------------------------------------------------
  // Each participating element takes a slot.  Slots start disabled; a
  // disabled slot's hooks reduce to one guarded bool read.
  int register_element(const ElementId& id, ElementKind kind, int vm);
  // Convenience: register `e` (any dp::Element-shaped type) and hand it the
  // back-pointer.  Templated so ps_perfsight never depends on ps_dataplane.
  template <typename E>
  int attach(E& e) {
    int slot = register_element(e.id(), e.kind(), e.vm());
    e.set_int_stamper(this, slot);
    return slot;
  }
  void enable(int slot, bool on);
  void enable_all(bool on);
  bool enabled(int slot) const;
  // Flights finalize (and the element strips the tag) at a harvest slot —
  // normally the last element of the chain.
  void set_harvest(int slot, bool on);
  bool harvesting(int slot) const;

  // --- clock -----------------------------------------------------------------
  // The stamper is not a Steppable; the driver advances its notion of "now"
  // once per tick so hooks (which have no SimTime parameter) stay cheap.
  void set_now(SimTime now);

  // --- packet-path hooks (called by the dataplane) ---------------------------
  // Ingress sampling: counts `b`'s packets against the 1-in-N knob and, on
  // crossing a sample boundary, opens a flight whose first hop is this slot
  // at `queue_pkts` depth.  Returns the new tag, or 0 (not sampled, slot
  // disabled, or in-flight table full).
  uint64_t maybe_tag(int slot, const PacketBatch& b, uint64_t queue_pkts);
  // Appends a hop to `tag`'s stack (no-op for unknown/expired tags).
  void stamp(int slot, uint64_t tag, uint64_t queue_pkts);
  // Adds io-time to the flight's most recent hop.
  void add_io_time(uint64_t tag, Duration d);
  // The tagged packet tail-dropped at this slot: marks the stack and
  // finalizes the flight as dropped.
  void mark_dropped(int slot, uint64_t tag, uint64_t queue_pkts);
  // The flight reached a harvest slot: appends the final hop and finalizes.
  void harvest(int slot, uint64_t tag, uint64_t queue_pkts);

  // --- harvest side ----------------------------------------------------------
  // Drains the finished-flight list (harvested and dropped flights, in
  // completion order).
  std::vector<Flight> take_finished();
  // Finalizes nothing, forgets everything: in-flight entries older than
  // `max_age` are orphans (their tag died in a merge or a fluid trim) and
  // are dropped from the table.
  void expire(Duration max_age);

  struct Stats {
    uint64_t pkts_seen = 0;          // ingress packets counted for sampling
    uint64_t flights_started = 0;
    uint64_t hops_stamped = 0;       // hops appended across all flights
    uint64_t flights_harvested = 0;
    uint64_t flights_dropped = 0;    // finalized by a drop-tail
    uint64_t flights_expired = 0;    // orphaned tags aged out
    uint64_t hops_truncated = 0;     // hops refused by the max_hops cap
  };
  Stats stats() const;
  Config config() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cfg_;
  }
  void set_sample_every(uint64_t n);

 private:
  struct Slot {
    ElementId id;
    ElementKind kind = ElementKind::kOther;
    int vm = -1;
    bool enabled = false;
    bool harvest = false;
  };

  bool valid_slot(int slot) const {
    return slot >= 0 && static_cast<size_t>(slot) < slots_.size();
  }
  void append_hop_locked(Flight& f, int slot, uint64_t queue_pkts);
  void finalize_locked(uint64_t tag, bool dropped);

  Config cfg_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  SimTime now_;
  uint64_t next_tag_ = 1;
  std::unordered_map<uint64_t, Flight> inflight_;
  std::vector<Flight> finished_;
  Stats stats_;
};

// Aggregates finished flights into per-window StatsRecords and feeds them
// to a StreamCache as Provenance::kInband windows.
class IntHarvester {
 public:
  struct Config {
    // StreamCache key for INT windows.  Callers use a dedicated key (e.g.
    // "a0/int") so INT windows never collide with the agent's streamed or
    // repaired windows.
    std::string agent = "int";
    // Queue-depth excursion (packets, per flight hop) that fires the
    // microburst trigger.  0 disables detection.
    uint64_t microburst_depth_pkts = 0;
    // Orphaned in-flight tags older than this are expired at each close.
    Duration expire_after = Duration::millis(500);
  };

  // `stamper` and `cache` are borrowed, not owned; `cache` may be null
  // (harvest aggregates and fires triggers but caches nothing).
  IntHarvester(IntStamper* stamper, StreamCache* cache, Config cfg);

  // An INT-observed queue-depth excursion inside one window.
  struct Microburst {
    SimTime window_start;
    std::vector<ElementId> elements;  // implicated elements, ascending
    uint64_t peak_depth_pkts = 0;
  };
  // Hybrid mode: the trigger typically issues a targeted pull sweep over
  // burst.elements via Controller::get_attr_many.  Called synchronously
  // from close_window, after the window is in the cache.
  using MicroburstFn = std::function<void(const Microburst&)>;
  void set_on_microburst(MicroburstFn fn) { on_microburst_ = std::move(fn); }

  // Closes the window that ends at `window_start` + one cadence: drains the
  // stamper, aggregates per element, ingests one kInband window keyed at
  // `window_start`, and fires the microburst trigger if any element's peak
  // depth crossed the threshold.  Returns the number of flights absorbed.
  size_t close_window(SimTime window_start);

  struct Stats {
    uint64_t windows_closed = 0;
    uint64_t flights_absorbed = 0;
    uint64_t microbursts = 0;
    // Wire cost of the harvested reports (each flight encoded as a
    // kIntReport body) — the "stamping overhead" the bench gates.
    uint64_t report_bytes = 0;
  };
  Stats stats() const { return stats_; }

 private:
  IntStamper* stamper_;
  StreamCache* cache_;
  Config cfg_;
  MicroburstFn on_microburst_;
  Stats stats_;
};

}  // namespace inband
}  // namespace perfsight
