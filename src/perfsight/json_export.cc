#include "perfsight/json_export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace perfsight::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<std::string> unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) {
      return Status::invalid_argument("json unescape: dangling backslash");
    }
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= s.size()) {
          return Status::invalid_argument("json unescape: truncated \\u");
        }
        int v = 0;
        for (int k = 1; k <= 4; ++k) {
          int h = hex_val(s[i + static_cast<size_t>(k)]);
          if (h < 0) {
            return Status::invalid_argument("json unescape: bad \\u digit");
          }
          v = v * 16 + h;
        }
        i += 4;
        if (v > 0xff) {
          return Status::invalid_argument(
              "json unescape: \\u beyond one byte at offset " +
              std::to_string(i - 5));
        }
        out += static_cast<char>(v);
        break;
      }
      default:
        return Status::invalid_argument(
            std::string("json unescape: unknown escape \\") + s[i]);
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    // %.17g is the shortest width that round-trips every double; %.10g lost
    // precision above ~1e10 — a few seconds of byte counters at 10 Gbps.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::vector<double> find_numbers(const std::string& text,
                                 const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\"";
  size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    size_t p = at + needle.size();
    at = p;
    while (p < text.size() && (text[p] == ' ' || text[p] == '\t' ||
                               text[p] == '\n' || text[p] == '\r')) {
      ++p;
    }
    if (p >= text.size() || text[p] != ':') continue;
    ++p;
    while (p < text.size() && (text[p] == ' ' || text[p] == '\t' ||
                               text[p] == '\n' || text[p] == '\r')) {
      ++p;
    }
    const char* start = text.c_str() + p;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end != start) out.push_back(v);
  }
  return out;
}

double find_number(const std::string& text, const std::string& key,
                   double fallback) {
  std::vector<double> v = find_numbers(text, key);
  return v.empty() ? fallback : v.front();
}

namespace {

std::string str(const std::string& s) { return "\"" + escape(s) + "\""; }

// Recursive-descent structural validator; consumes one JSON value starting
// at `i` (whitespace-tolerant) and leaves `i` just past it.
class Linter {
 public:
  explicit Linter(const std::string& t) : t_(t) {}

  Status run() {
    Status st = value();
    if (!st.is_ok()) return st;
    skip_ws();
    if (i_ != t_.size()) return fail("trailing characters");
    return Status::ok();
  }

 private:
  Status fail(const std::string& what) const {
    return Status::invalid_argument("json lint: " + what + " at offset " +
                                    std::to_string(i_));
  }
  void skip_ws() {
    while (i_ < t_.size() && (t_[i_] == ' ' || t_[i_] == '\t' ||
                              t_[i_] == '\n' || t_[i_] == '\r')) {
      ++i_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i_ < t_.size() && t_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  Status string() {
    if (!eat('"')) return fail("expected string");
    while (i_ < t_.size()) {
      char c = t_[i_];
      if (c == '"') {
        ++i_;
        return Status::ok();
      }
      if (c == '\\') {
        ++i_;
        if (i_ >= t_.size()) break;
        char e = t_[i_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= t_.size() || !std::isxdigit(
                                       static_cast<unsigned char>(t_[i_]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character");
      }
      ++i_;
    }
    return fail("unterminated string");
  }

  Status number_token() {
    size_t start = i_;
    if (i_ < t_.size() && t_[i_] == '-') ++i_;
    while (i_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[i_])))
      ++i_;
    if (i_ < t_.size() && t_[i_] == '.') {
      ++i_;
      while (i_ < t_.size() &&
             std::isdigit(static_cast<unsigned char>(t_[i_])))
        ++i_;
    }
    if (i_ < t_.size() && (t_[i_] == 'e' || t_[i_] == 'E')) {
      ++i_;
      if (i_ < t_.size() && (t_[i_] == '+' || t_[i_] == '-')) ++i_;
      while (i_ < t_.size() &&
             std::isdigit(static_cast<unsigned char>(t_[i_])))
        ++i_;
    }
    if (i_ == start) return fail("expected number");
    return Status::ok();
  }

  Status literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++i_) {
      if (i_ >= t_.size() || t_[i_] != *p) return fail("bad literal");
    }
    return Status::ok();
  }

  Status value() {
    skip_ws();
    if (i_ >= t_.size()) return fail("expected value");
    char c = t_[i_];
    if (c == '{') {
      ++i_;
      if (eat('}')) return Status::ok();
      while (true) {
        skip_ws();
        Status st = string();
        if (!st.is_ok()) return st;
        if (!eat(':')) return fail("expected ':'");
        st = value();
        if (!st.is_ok()) return st;
        if (eat(',')) continue;
        if (eat('}')) return Status::ok();
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++i_;
      if (eat(']')) return Status::ok();
      while (true) {
        Status st = value();
        if (!st.is_ok()) return st;
        if (eat(',')) continue;
        if (eat(']')) return Status::ok();
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number_token();
  }

  const std::string& t_;
  size_t i_ = 0;
};

}  // namespace

Status lint(const std::string& text) { return Linter(text).run(); }

std::string to_json(const StatsRecord& r) {
  std::string out = "{\"timestampNs\":";
  out += number(static_cast<double>(r.timestamp.ns()));
  out += ",\"element\":" + str(r.element.name);
  out += ",\"attrs\":{";
  for (size_t i = 0; i < r.attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += str(r.attrs[i].name) + ":" + number(r.attrs[i].value);
  }
  out += "}}";
  return out;
}

std::string to_json(const ContentionReport& r) {
  std::string out = "{\"problemFound\":";
  out += r.problem_found ? "true" : "false";
  out += ",\"primaryLocation\":" + str(to_string(r.primary_location));
  out += ",\"spread\":" + str(to_string(r.spread));
  out += ",\"classification\":" +
         str(r.problem_found
                 ? (r.is_contention ? "contention" : "bottleneck")
                 : "healthy");
  out += ",\"candidateResources\":[";
  for (size_t i = 0; i < r.candidate_resources.size(); ++i) {
    if (i > 0) out += ",";
    out += str(to_string(r.candidate_resources[i]));
  }
  out += "],\"affectedVms\":[";
  for (size_t i = 0; i < r.affected_vms.size(); ++i) {
    if (i > 0) out += ",";
    out += number(r.affected_vms[i]);
  }
  out += "],\"rankedLosses\":[";
  bool first = true;
  for (const ElementLossEntry& e : r.ranked) {
    if (e.loss_pkts <= 0) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"element\":" + str(e.id.name);
    out += ",\"kind\":" + str(to_string(e.kind));
    out += ",\"vm\":" + number(e.vm);
    out += ",\"lossPkts\":" + number(static_cast<double>(e.loss_pkts)) + "}";
  }
  out += "],\"narrative\":" + str(r.narrative) + "}";
  return out;
}

std::string to_json(const RootCauseReport& r) {
  std::string out = "{\"observations\":[";
  for (size_t i = 0; i < r.observations.size(); ++i) {
    const MbObservation& o = r.observations[i];
    if (i > 0) out += ",";
    out += "{\"element\":" + str(o.id.name);
    out += ",\"state\":" + str(to_string(o.state));
    out += ",\"inRateMbps\":" + number(o.in_rate_mbps);
    out += ",\"outRateMbps\":" + number(o.out_rate_mbps);
    out += ",\"capacityMbps\":" + number(o.capacity_mbps) + "}";
  }
  out += "],\"rootCauses\":[";
  for (size_t i = 0; i < r.root_causes.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"element\":" + str(r.root_causes[i].name);
    out += ",\"role\":" + str(to_string(r.root_cause_roles[i])) + "}";
  }
  out += "],\"narrative\":" + str(r.narrative) + "}";
  return out;
}

}  // namespace perfsight::json
