#include "perfsight/json_export.h"

#include <cmath>
#include <cstdio>

namespace perfsight::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

namespace {

std::string str(const std::string& s) { return "\"" + escape(s) + "\""; }

}  // namespace

std::string to_json(const StatsRecord& r) {
  std::string out = "{\"timestampNs\":";
  out += number(static_cast<double>(r.timestamp.ns()));
  out += ",\"element\":" + str(r.element.name);
  out += ",\"attrs\":{";
  for (size_t i = 0; i < r.attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += str(r.attrs[i].name) + ":" + number(r.attrs[i].value);
  }
  out += "}}";
  return out;
}

std::string to_json(const ContentionReport& r) {
  std::string out = "{\"problemFound\":";
  out += r.problem_found ? "true" : "false";
  out += ",\"primaryLocation\":" + str(to_string(r.primary_location));
  out += ",\"spread\":" + str(to_string(r.spread));
  out += ",\"classification\":" +
         str(r.problem_found
                 ? (r.is_contention ? "contention" : "bottleneck")
                 : "healthy");
  out += ",\"candidateResources\":[";
  for (size_t i = 0; i < r.candidate_resources.size(); ++i) {
    if (i > 0) out += ",";
    out += str(to_string(r.candidate_resources[i]));
  }
  out += "],\"affectedVms\":[";
  for (size_t i = 0; i < r.affected_vms.size(); ++i) {
    if (i > 0) out += ",";
    out += number(r.affected_vms[i]);
  }
  out += "],\"rankedLosses\":[";
  bool first = true;
  for (const ElementLossEntry& e : r.ranked) {
    if (e.loss_pkts <= 0) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"element\":" + str(e.id.name);
    out += ",\"kind\":" + str(to_string(e.kind));
    out += ",\"vm\":" + number(e.vm);
    out += ",\"lossPkts\":" + number(static_cast<double>(e.loss_pkts)) + "}";
  }
  out += "],\"narrative\":" + str(r.narrative) + "}";
  return out;
}

std::string to_json(const RootCauseReport& r) {
  std::string out = "{\"observations\":[";
  for (size_t i = 0; i < r.observations.size(); ++i) {
    const MbObservation& o = r.observations[i];
    if (i > 0) out += ",";
    out += "{\"element\":" + str(o.id.name);
    out += ",\"state\":" + str(to_string(o.state));
    out += ",\"inRateMbps\":" + number(o.in_rate_mbps);
    out += ",\"outRateMbps\":" + number(o.out_rate_mbps);
    out += ",\"capacityMbps\":" + number(o.capacity_mbps) + "}";
  }
  out += "],\"rootCauses\":[";
  for (size_t i = 0; i < r.root_causes.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"element\":" + str(r.root_causes[i].name);
    out += ",\"role\":" + str(to_string(r.root_cause_roles[i])) + "}";
  }
  out += "],\"narrative\":" + str(r.narrative) + "}";
  return out;
}

}  // namespace perfsight::json
