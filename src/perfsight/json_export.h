// JSON export of records and diagnosis reports, for operator dashboards
// and log pipelines.  Self-contained writer (no external dependency):
// emits compact, valid JSON with proper string escaping.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "perfsight/contention.h"
#include "perfsight/rootcause.h"
#include "perfsight/stats.h"

namespace perfsight::json {

// Low-level helpers (exposed for operator extensions).
std::string escape(const std::string& s);
// Inverse of escape(): decodes JSON string-body escapes back to raw bytes.
// Accepts every escape the grammar allows (\" \\ \/ \b \f \n \r \t \uXXXX);
// \u above 0x00ff is refused — escape() only ever emits byte values, and a
// silent multi-byte transcode here would break round-trip identity.
Result<std::string> unescape(const std::string& s);
std::string number(double v);

// Every numeric value appearing as `"key": <number>` in `text`, in document
// order.  A deliberately shallow scanner (no path awareness) for the bench
// regression gate and trace-shape tests, which own both ends of the format;
// it is not a general JSON query.
std::vector<double> find_numbers(const std::string& text,
                                 const std::string& key);
// First such value, or `fallback` when the key never carries a number.
double find_number(const std::string& text, const std::string& key,
                   double fallback = 0);

// Structural well-formedness check of a complete JSON document: balanced
// objects/arrays, valid strings/numbers/literals, commas and colons where
// the grammar requires them.  Returns the byte offset of the first error in
// the status message.  Exists so exporters (and their tests) can assert
// "this is JSON" without an external parser dependency.
Status lint(const std::string& text);

std::string to_json(const StatsRecord& r);
std::string to_json(const ContentionReport& r);
std::string to_json(const RootCauseReport& r);

}  // namespace perfsight::json
