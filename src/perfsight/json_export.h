// JSON export of records and diagnosis reports, for operator dashboards
// and log pipelines.  Self-contained writer (no external dependency):
// emits compact, valid JSON with proper string escaping.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "perfsight/contention.h"
#include "perfsight/rootcause.h"
#include "perfsight/stats.h"

namespace perfsight::json {

// Low-level helpers (exposed for operator extensions).
std::string escape(const std::string& s);
std::string number(double v);

// Structural well-formedness check of a complete JSON document: balanced
// objects/arrays, valid strings/numbers/literals, commas and colons where
// the grammar requires them.  Returns the byte offset of the first error in
// the status message.  Exists so exporters (and their tests) can assert
// "this is JSON" without an external parser dependency.
Status lint(const std::string& text);

std::string to_json(const StatsRecord& r);
std::string to_json(const ContentionReport& r);
std::string to_json(const RootCauseReport& r);

}  // namespace perfsight::json
