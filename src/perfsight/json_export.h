// JSON export of records and diagnosis reports, for operator dashboards
// and log pipelines.  Self-contained writer (no external dependency):
// emits compact, valid JSON with proper string escaping.
#pragma once

#include <string>
#include <vector>

#include "perfsight/contention.h"
#include "perfsight/rootcause.h"
#include "perfsight/stats.h"

namespace perfsight::json {

// Low-level helpers (exposed for operator extensions).
std::string escape(const std::string& s);
std::string number(double v);

std::string to_json(const StatsRecord& r);
std::string to_json(const ContentionReport& r);
std::string to_json(const RootCauseReport& r);

}  // namespace perfsight::json
