#include "perfsight/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/threadpool.h"
#include "perfsight/agent.h"
#include "perfsight/faults.h"
#include "perfsight/json_export.h"
#include "perfsight/trace.h"

namespace perfsight {

double LatencyHistogram::approx_quantile(double q) const {
  if (count_ == 0) return 0;
  // 1-based rank, clamped so q<=0 picks the first non-empty bucket and
  // q>=1 the last one (the naive floor/strictly-greater walk fell off the
  // histogram at q=1.0).  The +Inf bucket has no finite representative;
  // report the largest finite bound.
  uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  target = std::min(std::max<uint64_t>(target, 1), count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBoundsSec.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return kBoundsSec[i];
  }
  return kBoundsSec.back();
}

std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

template <typename T>
T& MetricsRegistry::find_or_add(std::vector<Family<T>>& families,
                                const std::string& name,
                                const std::string& help,
                                const std::string& labels) {
  for (Family<T>& f : families) {
    if (f.name == name && f.labels == labels) return *f.metric;
  }
  families.push_back(Family<T>{name, help, labels, std::make_unique<T>()});
  return *families.back().metric;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(const std::string& name,
                                               const std::string& help,
                                               const std::string& labels) {
  return find_or_add(gauges_, name, help, labels);
}

MetricsRegistry::CounterMetric& MetricsRegistry::counter(
    const std::string& name, const std::string& help,
    const std::string& labels) {
  return find_or_add(counters_, name, help, labels);
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             const std::string& help,
                                             const std::string& labels) {
  return find_or_add(histograms_, name, help, labels);
}

namespace {

std::string le_label(size_t bucket) {
  if (bucket >= LatencyHistogram::kBoundsSec.size()) return "+Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", LatencyHistogram::kBoundsSec[bucket]);
  return buf;
}

void emit_histogram(std::string& out, const std::string& name,
                    const std::string& labels, const LatencyHistogram& h) {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += h.bucket_count(i);
    out += name + "_bucket{" + labels + (labels.empty() ? "" : ",") +
           "le=\"" + le_label(i) + "\"} " + std::to_string(cumulative) + "\n";
  }
  out += name + "_sum" + (labels.empty() ? "" : "{" + labels + "}") + " " +
         json::number(h.sum()) + "\n";
  out += name + "_count" + (labels.empty() ? "" : "{" + labels + "}") + " " +
         std::to_string(h.count()) + "\n";
}

void emit_header(std::string& out, std::string& last_family,
                 const std::string& name, const std::string& help,
                 const char* type) {
  if (name == last_family) return;  // one HELP/TYPE per family
  last_family = name;
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string MetricsRegistry::expose(SimTime now) const {
  std::string out;

  // --- element counters, scraped through the agents ------------------------
  if (!agents_.empty() || !agent_clients_.empty()) {
    out += "# HELP perfsight_element_stat Element attribute scraped via the "
           "owning agent's channel\n";
    out += "# TYPE perfsight_element_stat gauge\n";
    // One scrape task per agent: each agent polls its own elements (own
    // RNG, own histograms) into a private buffer; buffers concatenate in
    // registration order, so the exposition is byte-identical whether the
    // agents were scraped serially or across the pool.
    std::vector<std::string> blocks(agents_.size());
    parallel_for_or_inline(pool_, agents_.size(), [&](size_t i) {
      Agent* a = agents_[i];
      std::string& blk = blocks[i];
      for (const QueryResponse& resp : a->poll_all(now)) {
        const StatsRecord& r = resp.record;
        for (const Attr& at : r.attrs) {
          blk += "perfsight_element_stat{agent=\"" + prom_escape(a->name()) +
                 "\",element=\"" + prom_escape(r.element.name) +
                 "\",attr=\"" + prom_escape(at.name) + "\"} " +
                 json::number(at.value) + "\n";
        }
      }
    });
    for (const std::string& blk : blocks) out += blk;

    // Client-wrapped agents scrape through query_batch — over a socket this
    // is the full wire round trip, so the scrape proves the remote path,
    // and a transport loss degrades to kMissing records (no attrs, so the
    // element simply emits no gauges this scrape).
    for (AgentClient* c : agent_clients_) {
      const BatchResponse b = c->query_batch(c->element_ids(), now);
      for (const QueryResponse& resp : b.responses) {
        const StatsRecord& r = resp.record;
        for (const Attr& at : r.attrs) {
          out += "perfsight_element_stat{agent=\"" + prom_escape(c->name()) +
                 "\",element=\"" + prom_escape(r.element.name) +
                 "\",attr=\"" + prom_escape(at.name) + "\"} " +
                 json::number(at.value) + "\n";
        }
      }
    }
  }

  if (!agents_.empty()) {
    // --- agent self-profiling: channel latency distributions ---------------
    out += "# HELP perfsight_agent_channel_latency_seconds Modelled "
           "agent-to-element fetch latency per channel kind\n";
    out += "# TYPE perfsight_agent_channel_latency_seconds histogram\n";
    for (Agent* a : agents_) {
      for (size_t k = 0; k < kNumChannelKinds; ++k) {
        const LatencyHistogram& h =
            a->channel_latency(static_cast<ChannelKind>(k));
        if (h.count() == 0) continue;
        std::string labels = "agent=\"" + prom_escape(a->name()) +
                             "\",channel=\"" +
                             to_string(static_cast<ChannelKind>(k)) + "\"";
        emit_histogram(out, "perfsight_agent_channel_latency_seconds", labels,
                       h);
      }
    }

    // --- agent fault machinery -----------------------------------------------
    // Emitted only for agents whose fault counters have moved: with no fault
    // plan installed the exposition stays byte-identical to the pre-fault
    // format.
    bool any_faults = false;
    for (Agent* a : agents_) {
      if (a->fault_stats().any()) {
        any_faults = true;
        break;
      }
    }
    if (any_faults) {
      out += "# HELP perfsight_agent_fault_events_total Channel faults "
             "injected and absorbed by the agent's retry/breaker machinery\n";
      out += "# TYPE perfsight_agent_fault_events_total counter\n";
      for (Agent* a : agents_) {
        const AgentFaultStats fs = a->fault_stats();
        if (!fs.any()) continue;
        const std::string prefix = "perfsight_agent_fault_events_total{agent="
                                   "\"" + prom_escape(a->name()) + "\",kind=\"";
        auto emit = [&](const char* kind, uint64_t v) {
          out += prefix + kind + "\"} " + std::to_string(v) + "\n";
        };
        emit("faults_injected", fs.faults_injected);
        emit("retries", fs.retries);
        emit("exhausted", fs.exhausted);
        emit("deadline_hits", fs.deadline_hits);
        emit("stale_served", fs.stale_served);
        emit("torn_reads", fs.torn_reads);
        emit("breaker_opened", fs.breaker_opened);
        emit("breaker_closed", fs.breaker_closed);
        emit("breaker_fast_fails", fs.breaker_fast_fails);
        emit("crashes", fs.crashes);
      }

      // Live breaker position per agent x channel kind, so a dashboard can
      // tell "open right now" from "opened at some point" (the counters
      // above).  Same any_faults gate: fault-free exposition is unchanged.
      out += "# HELP perfsight_agent_breaker_state Circuit breaker position "
             "per channel kind (0 closed, 1 open, 2 half-open)\n";
      out += "# TYPE perfsight_agent_breaker_state gauge\n";
      for (Agent* a : agents_) {
        if (!a->fault_stats().any()) continue;
        for (size_t k = 0; k < kNumChannelKinds; ++k) {
          const BreakerState bs = a->breaker_state(static_cast<ChannelKind>(k));
          out += "perfsight_agent_breaker_state{agent=\"" +
                 prom_escape(a->name()) + "\",channel=\"" +
                 to_string(static_cast<ChannelKind>(k)) + "\"} " +
                 std::to_string(static_cast<int>(bs)) + "\n";
        }
      }
    }
  }

  // --- scheduled fault campaigns ---------------------------------------------
  // Emitted only when the armed plan carries a campaign (windowed outages /
  // host outages / rolling upgrades), so plans of pure Bernoulli faults —
  // and fault-free runs — keep their exact exposition.
  if (fault_plan_ != nullptr && fault_plan_->has_campaign()) {
    out += "# HELP perfsight_fault_campaign_active Whether any scheduled "
           "outage window covers the current time\n";
    out += "# TYPE perfsight_fault_campaign_active gauge\n";
    out += std::string("perfsight_fault_campaign_active ") +
           (fault_plan_->campaign_active(now) ? "1" : "0") + "\n";
  }

  // --- registered instruments ----------------------------------------------
  std::string last_family;
  for (const Family<Gauge>& f : gauges_) {
    emit_header(out, last_family, f.name, f.help, "gauge");
    out += f.name + (f.labels.empty() ? "" : "{" + f.labels + "}") + " " +
           json::number(f.metric->value) + "\n";
  }
  last_family.clear();
  for (const Family<CounterMetric>& f : counters_) {
    emit_header(out, last_family, f.name, f.help, "counter");
    out += f.name + (f.labels.empty() ? "" : "{" + f.labels + "}") + " " +
           std::to_string(f.metric->value) + "\n";
  }
  last_family.clear();
  for (const Family<LatencyHistogram>& f : histograms_) {
    emit_header(out, last_family, f.name, f.help, "histogram");
    emit_histogram(out, f.name, f.labels, *f.metric);
  }

  // --- flight-recorder health ------------------------------------------------
  const TraceRecorder& tr = TraceRecorder::global();
  out += "# HELP perfsight_trace_events_total Events recorded by the flight "
         "recorder\n";
  out += "# TYPE perfsight_trace_events_total counter\n";
  out += "perfsight_trace_events_total " + std::to_string(tr.total_events()) +
         "\n";
  out += "# HELP perfsight_trace_dropped_events_total Events overwritten in "
         "full rings\n";
  out += "# TYPE perfsight_trace_dropped_events_total counter\n";
  out += "perfsight_trace_dropped_events_total " +
         std::to_string(tr.dropped_events()) + "\n";

  // --- per-ring occupancy ----------------------------------------------------
  // Emitted only when rings exist, so a binary that never traced keeps the
  // exact exposition it had before rings were surfaced.
  const std::vector<TraceRecorder::RingStats> rings = tr.ring_stats();
  if (!rings.empty()) {
    out += "# HELP perfsight_trace_ring_events Live events in the element's "
           "trace ring\n";
    out += "# TYPE perfsight_trace_ring_events gauge\n";
    for (const TraceRecorder::RingStats& r : rings) {
      out += "perfsight_trace_ring_events{element=\"" +
             prom_escape(r.element) + "\"} " + std::to_string(r.size) + "\n";
    }
    out += "# HELP perfsight_trace_ring_capacity Ring capacity for the "
           "element\n";
    out += "# TYPE perfsight_trace_ring_capacity gauge\n";
    for (const TraceRecorder::RingStats& r : rings) {
      out += "perfsight_trace_ring_capacity{element=\"" +
             prom_escape(r.element) + "\"} " + std::to_string(r.capacity) +
             "\n";
    }
    out += "# HELP perfsight_trace_ring_dropped_events_total Events the "
           "ring overwrote before they were exported\n";
    out += "# TYPE perfsight_trace_ring_dropped_events_total counter\n";
    for (const TraceRecorder::RingStats& r : rings) {
      out += "perfsight_trace_ring_dropped_events_total{element=\"" +
             prom_escape(r.element) + "\"} " +
             std::to_string(r.dropped_events) + "\n";
    }
  }
  return out;
}

}  // namespace perfsight
