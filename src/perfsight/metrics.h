// Uniform metrics exposition for operators (§4.3's "diagnostic applications"
// made scrapeable).
//
// A MetricsRegistry pulls every registered agent's elements through the
// normal query path and renders the counters as Prometheus text-format
// gauges, alongside *self-profiling* instruments that answer "what does
// diagnosis itself cost":
//
//   * per-agent, per-channel-kind latency histograms (every Agent::query
//     observes its modelled channel delay — the Fig. 9 distribution, live);
//   * end-to-end Algorithm 1/2 diagnosis-latency histograms (the detectors
//     observe measurement window + channel time per run);
//   * flight-recorder health (events recorded / overwritten).
//
// The exposition is plain text over scrape(): embed it behind any HTTP
// handler or dump it to a file — no dependency on a metrics client library.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace perfsight {

class Agent;
class AgentClient;
class FaultPlan;
class ThreadPool;

// Histogram of latencies in seconds over fixed exponential buckets
// (1 us .. 4 s, x4 steps, plus +Inf).  Cheap enough to leave always on:
// one observe is a comparison walk over 12 bounds and two adds.
class LatencyHistogram {
 public:
  static constexpr std::array<double, 12> kBoundsSec = {
      1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3,
      4e-3, 16e-3, 64e-3, 256e-3, 1.0,  4.0};
  static constexpr size_t kBuckets = kBoundsSec.size() + 1;

  void observe(double seconds) {
    ++counts_[bucket_for(seconds)];
    ++count_;
    sum_ += seconds;
  }

  static size_t bucket_for(double seconds) {
    for (size_t i = 0; i < kBoundsSec.size(); ++i) {
      if (seconds <= kBoundsSec[i]) return i;
    }
    return kBoundsSec.size();
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }

  // Approximate quantile by bucket upper bound; 0 when empty.
  double approx_quantile(double q) const;

 private:
  std::array<uint64_t, kBuckets> counts_ = {};
  uint64_t count_ = 0;
  double sum_ = 0;
};

// Prometheus-style metrics registry: named self-profiling instruments plus
// element scraping via agents.
class MetricsRegistry {
 public:
  struct Gauge {
    double value = 0;
    void set(double v) { value = v; }
    void add(double v) { value += v; }
  };
  struct CounterMetric {
    uint64_t value = 0;
    void add(uint64_t n) { value += n; }
    void increment() { ++value; }
  };

  // Instruments are created on first use and keep stable addresses for the
  // registry's lifetime.  `labels` is raw Prometheus label syntax without
  // braces (e.g. "algorithm=\"contention\"") — metrics differing only in
  // labels are distinct series of one family.
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = {});
  CounterMetric& counter(const std::string& name, const std::string& help,
                         const std::string& labels = {});
  LatencyHistogram& histogram(const std::string& name,
                              const std::string& help,
                              const std::string& labels = {});

  // Agents scraped on every expose(); not owned.
  void add_agent(Agent* agent) { agents_.push_back(agent); }
  size_t num_agents() const { return agents_.size(); }

  // Socket-backed (or otherwise adapter-wrapped) agents, scraped through
  // AgentClient::query_batch — the exact path the controller uses, so a
  // remote agent's element gauges match its in-process twin's attribute for
  // attribute.  Scraped after the in-process agents, in registration order.
  void add_agent_client(AgentClient* client) {
    agent_clients_.push_back(client);
  }
  size_t num_agent_clients() const { return agent_clients_.size(); }

  // Collection pool used by expose() to scrape agents concurrently (one
  // task per agent; each agent's RNG is its own, so output is byte-identical
  // to the sequential scrape).  Null, the default, scrapes sequentially.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  // Fault plan driving the agents, if any; not owned.  With a plan armed
  // and fault counters moving, expose() adds per-agent-per-kind breaker
  // gauges (perfsight_agent_breaker_state: 0 closed, 1 open, 2 half-open)
  // and, when the plan carries a scheduled campaign, a
  // perfsight_fault_campaign_active gauge.  Fault-free exposition is
  // byte-identical to the pre-fault format.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }

  // Renders the full exposition: every element attribute of every agent
  // (in-process and client-wrapped) as perfsight_element_stat gauges (the
  // scrape itself travels the modelled channels, feeding the agents'
  // latency histograms), each agent's per-channel latency histograms, the
  // registered instruments, and the global flight-recorder health counters
  // — including, when any trace rings exist, per-ring occupancy/capacity/
  // overwrite gauges so a ring quietly discarding events shows up on a
  // dashboard instead of only in a shorter trace.
  std::string expose(SimTime now) const;

 private:
  template <typename T>
  struct Family {
    std::string name;
    std::string help;
    std::string labels;
    std::unique_ptr<T> metric;
  };

  template <typename T>
  T& find_or_add(std::vector<Family<T>>& families, const std::string& name,
                 const std::string& help, const std::string& labels);

  std::vector<Agent*> agents_;
  std::vector<AgentClient*> agent_clients_;
  ThreadPool* pool_ = nullptr;
  const FaultPlan* fault_plan_ = nullptr;
  std::vector<Family<Gauge>> gauges_;
  std::vector<Family<CounterMetric>> counters_;
  std::vector<Family<LatencyHistogram>> histograms_;
};

// Escapes a Prometheus label value (backslash, quote, newline).
std::string prom_escape(const std::string& s);

}  // namespace perfsight
