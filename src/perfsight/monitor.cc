#include "perfsight/monitor.h"

#include <algorithm>

namespace perfsight {

double Monitor::Series::min() const {
  double m = points.empty() ? 0 : points[0].value;
  for (const Point& p : points) m = std::min(m, p.value);
  return m;
}

double Monitor::Series::max() const {
  double m = points.empty() ? 0 : points[0].value;
  for (const Point& p : points) m = std::max(m, p.value);
  return m;
}

double Monitor::Series::mean() const {
  if (points.empty()) return 0;
  double sum = 0;
  for (const Point& p : points) sum += p.value;
  return sum / static_cast<double>(points.size());
}

void Monitor::sample(ThreadPool* pool) {
  // Snapshot the watch list once; each task owns a distinct series, so the
  // parallel fan-out shares nothing but the (read-only) controller maps.
  std::vector<std::pair<const Key*, Series*>> watches;
  watches.reserve(series_.size());
  for (auto& [key, series] : series_) watches.emplace_back(&key, &series);

  parallel_for_or_inline(pool, watches.size(), [&](size_t i) {
    const Key& key = *watches[i].first;
    Result<StatsRecord> r = controller_->get_attr(tenant_, key.id, {key.attr});
    if (!r.ok()) return;
    auto v = r.value().get(key.attr);
    if (!v) return;
    watches[i].second->points.push_back(Point{r.value().timestamp, *v});
  });
}

const Monitor::Series& Monitor::values(const ElementId& id,
                                       const std::string& attr) const {
  static const Series kEmpty;
  auto it = series_.find(Key{id, attr});
  return it == series_.end() ? kEmpty : it->second;
}

Monitor::Series Monitor::rates(const ElementId& id,
                               const std::string& attr) const {
  const Series& v = values(id, attr);
  Series out;
  for (size_t i = 1; i < v.points.size(); ++i) {
    double dt = (v.points[i].t - v.points[i - 1].t).sec();
    if (dt <= 0) continue;
    double dv = v.points[i].value - v.points[i - 1].value;
    // Monotone counters never decrease; a negative delta is a counter
    // reset (element removed and re-registered starting from zero).  Emit
    // no rate for the reset interval instead of a huge negative spike —
    // the series restarts from the post-reset sample.
    if (dv < 0) continue;
    out.points.push_back(Point{v.points[i].t, dv / dt});
  }
  return out;
}

}  // namespace perfsight
