#include "perfsight/monitor.h"

#include <algorithm>

namespace perfsight {

double Monitor::Series::min() const {
  double m = points.empty() ? 0 : points[0].value;
  for (const Point& p : points) m = std::min(m, p.value);
  return m;
}

double Monitor::Series::max() const {
  double m = points.empty() ? 0 : points[0].value;
  for (const Point& p : points) m = std::max(m, p.value);
  return m;
}

double Monitor::Series::mean() const {
  if (points.empty()) return 0;
  double sum = 0;
  for (const Point& p : points) sum += p.value;
  return sum / static_cast<double>(points.size());
}

void Monitor::sample() {
  for (auto& [key, series] : series_) {
    Result<StatsRecord> r =
        controller_->get_attr(tenant_, key.id, {key.attr});
    if (!r.ok()) continue;
    auto v = r.value().get(key.attr);
    if (!v) continue;
    series.points.push_back(Point{r.value().timestamp, *v});
  }
}

const Monitor::Series& Monitor::values(const ElementId& id,
                                       const std::string& attr) const {
  static const Series kEmpty;
  auto it = series_.find(Key{id, attr});
  return it == series_.end() ? kEmpty : it->second;
}

Monitor::Series Monitor::rates(const ElementId& id,
                               const std::string& attr) const {
  const Series& v = values(id, attr);
  Series out;
  for (size_t i = 1; i < v.points.size(); ++i) {
    double dt = (v.points[i].t - v.points[i - 1].t).sec();
    if (dt <= 0) continue;
    out.points.push_back(Point{
        v.points[i].t, (v.points[i].value - v.points[i - 1].value) / dt});
  }
  return out;
}

}  // namespace perfsight
