// Monitor: periodic sampling of element attributes into time series.
//
// The operator-facing layer above GetAttr: register the (element,
// attribute) pairs to watch, call sample() on each polling tick (the
// deployment layer wires this to the simulator or a wall clock), and read
// back value/rate series — what the paper's timeline figures (8, 10, 11,
// 13) plot.  Rates are computed from counter deltas, making the series
// robust to when monitoring started and to counters restarting from zero
// (element teardown + re-registration).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "perfsight/controller.h"

namespace perfsight {

class Monitor {
 public:
  Monitor(const Controller* controller, TenantId tenant)
      : controller_(controller), tenant_(tenant) {}

  // Watches attribute `attr_name` of `id`.
  void watch(const ElementId& id, const std::string& attr_name) {
    series_.try_emplace(Key{id, attr_name});
  }

  struct Point {
    SimTime t;
    double value = 0;
  };
  struct Series {
    std::vector<Point> points;

    bool empty() const { return points.empty(); }
    double last() const { return points.empty() ? 0 : points.back().value; }
    double min() const;
    double max() const;
    double mean() const;
  };

  // Takes one sample of every watched attribute (tolerates missing
  // elements: gaps simply don't produce points).  With a parallel `pool`
  // the per-watch fetches fan out across workers; each task appends to its
  // own series, so the resulting points are identical to a sequential
  // sample at the same instant.
  void sample(ThreadPool* pool = nullptr);

  // Raw counter values over time.
  const Series& values(const ElementId& id, const std::string& attr) const;
  // Per-second rates derived from consecutive samples (up to n-1 points).
  // A negative delta means the counter restarted from zero (the element was
  // removed and re-registered): no rate point is produced for that interval
  // and the series restarts at the post-reset sample.
  Series rates(const ElementId& id, const std::string& attr) const;

  size_t num_watches() const { return series_.size(); }
  TenantId tenant() const { return tenant_; }
  const Controller* controller() const { return controller_; }

 private:
  struct Key {
    ElementId id;
    std::string attr;
    bool operator<(const Key& o) const {
      if (id != o.id) return id < o.id;
      return attr < o.attr;
    }
  };

  const Controller* controller_;
  TenantId tenant_;
  std::map<Key, Series> series_;
};

}  // namespace perfsight
