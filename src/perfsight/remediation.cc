#include "perfsight/remediation.h"

#include <algorithm>

namespace perfsight {

const char* to_string(ActionKind a) {
  switch (a) {
    case ActionKind::kNoAction:
      return "no-action";
    case ActionKind::kScaleUpVm:
      return "scale-up-vm";
    case ActionKind::kScaleOutMiddlebox:
      return "scale-out-middlebox";
    case ActionKind::kMigrateVictims:
      return "migrate-victim-vms";
    case ActionKind::kMigrateAggressor:
      return "migrate-aggressor-workload";
    case ActionKind::kAddNicCapacity:
      return "add-nic-capacity";
    case ActionKind::kRelieveBufferMemory:
      return "relieve-buffer-memory";
    case ActionKind::kInspectSoftware:
      return "inspect-middlebox-software";
  }
  return "?";
}

const char* to_string(Audience a) {
  return a == Audience::kTenant ? "tenant" : "operator";
}

namespace {

bool has(const std::vector<ResourceKind>& v, ResourceKind r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

}  // namespace

std::vector<Recommendation> RemediationAdvisor::advise(
    const ContentionReport& report) const {
  std::vector<Recommendation> recs;
  if (!report.problem_found) {
    recs.push_back({ActionKind::kNoAction, Audience::kOperator, "",
                    "no significant loss in the software dataplane"});
    return recs;
  }
  const std::string where =
      report.ranked.empty() ? "" : report.ranked.front().id.name;

  if (!report.is_contention) {
    // A single VM's datapath is the limit: the tenant's sizing problem.
    recs.push_back(
        {ActionKind::kScaleUpVm, Audience::kTenant, where,
         "loss confined to one VM's datapath: the VM is under-provisioned "
         "(CPU or vNIC), not a victim of neighbours"});
    recs.push_back({ActionKind::kScaleOutMiddlebox, Audience::kTenant, where,
                    "alternatively add an instance and split the traffic"});
    return recs;
  }

  // Contention: the responsible resource drives the operator action.
  if (has(report.candidate_resources, ResourceKind::kIncomingBandwidth) ||
      has(report.candidate_resources, ResourceKind::kOutgoingBandwidth)) {
    recs.push_back({ActionKind::kAddNicCapacity, Audience::kOperator, where,
                    "aggregate traffic exceeds the machine's NIC capacity: "
                    "rebalance placements or add bandwidth"});
  }
  if (has(report.candidate_resources, ResourceKind::kMemoryBandwidth) ||
      has(report.candidate_resources, ResourceKind::kCpu) ||
      has(report.candidate_resources, ResourceKind::kBacklogQueue)) {
    recs.push_back(
        {ActionKind::kMigrateAggressor, Audience::kOperator, where,
         "shared-resource contention in the virtualization stack: move the "
         "interfering workload (or the victims) to another machine"});
    recs.push_back({ActionKind::kMigrateVictims, Audience::kOperator, where,
                    "if the aggressor cannot move, migrate impacted VMs to "
                    "machines with spare capacity"});
  }
  if (has(report.candidate_resources, ResourceKind::kMemorySpace)) {
    recs.push_back({ActionKind::kRelieveBufferMemory, Audience::kOperator,
                    where,
                    "kernel buffer memory is under pressure: reclaim memory "
                    "or reduce per-VM buffer reservations"});
  }
  if (recs.empty()) {
    recs.push_back({ActionKind::kMigrateVictims, Audience::kOperator, where,
                    "contention with no single resource identified: migrate "
                    "impacted VMs and re-evaluate"});
  }
  return recs;
}

std::vector<Recommendation> RemediationAdvisor::advise(
    const RootCauseReport& report) const {
  std::vector<Recommendation> recs;
  if (report.root_causes.empty()) {
    recs.push_back({ActionKind::kNoAction, Audience::kOperator, "",
                    "chain states are consistent; nothing to fix"});
    return recs;
  }
  for (size_t i = 0; i < report.root_causes.size(); ++i) {
    const std::string& target = report.root_causes[i].name;
    switch (report.root_cause_roles[i]) {
      case MbRole::kOverloaded:
        recs.push_back(
            {ActionKind::kScaleOutMiddlebox, Audience::kTenant, target,
             "this middlebox is the chain's bottleneck (neighbours blocked "
             "on it): scale it out or give it a larger VM"});
        recs.push_back(
            {ActionKind::kInspectSoftware, Audience::kTenant, target,
             "if its offered load did not grow, suspect a performance bug "
             "(e.g. a leak) and roll back its software"});
        break;
      case MbRole::kUnderloaded:
        recs.push_back(
            {ActionKind::kNoAction, Audience::kOperator, target,
             "the traffic source is simply sending slowly; the dataplane "
             "is healthy"});
        break;
      case MbRole::kUnknown:
        recs.push_back(
            {ActionKind::kInspectSoftware, Audience::kTenant, target,
             "survived state filtering without a clear role: inspect this "
             "middlebox first"});
        break;
    }
  }
  return recs;
}

std::string to_text(const std::vector<Recommendation>& recs) {
  std::string out = "=== recommended actions ===\n";
  for (const Recommendation& r : recs) {
    out += "  [";
    out += to_string(r.audience);
    out += "] ";
    out += to_string(r.action);
    if (!r.target.empty()) out += " @ " + r.target;
    out += "\n      " + r.rationale + "\n";
  }
  return out;
}

}  // namespace perfsight
