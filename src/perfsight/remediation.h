// Remediation advisor: turns diagnoses into the operator/tenant actions the
// paper prescribes per problem class (§2.2, §7.3):
//
//   * bottleneck middlebox (tenant's own resources)  -> tenant: redeploy in
//     a larger VM, or scale out and split traffic (Fig. 14c);
//   * contention in the virtualization stack (shared) -> operator: migrate
//     impacted or aggressor VMs / workloads (Fig. 14b);
//   * buggy middlebox propagating through a chain     -> tenant: reload the
//     middlebox with a good software version;
//   * underloaded source                              -> nothing is wrong
//     with the provider's infrastructure.
//
// Recommendations are advisory output for the operator console; nothing is
// executed automatically.
#pragma once

#include <string>
#include <vector>

#include "perfsight/contention.h"
#include "perfsight/rootcause.h"

namespace perfsight {

enum class ActionKind {
  kNoAction,            // healthy / not the provider's problem
  kScaleUpVm,           // tenant: redeploy the VM with more resources
  kScaleOutMiddlebox,   // tenant: add an instance and split traffic
  kMigrateVictims,      // operator: move impacted VMs off the machine
  kMigrateAggressor,    // operator: move the interfering workload away
  kAddNicCapacity,      // operator: capacity problem at the NIC
  kRelieveBufferMemory, // operator: reclaim kernel buffer memory
  kInspectSoftware,     // tenant: suspect a performance bug; roll back
};

const char* to_string(ActionKind a);

// Who has to act — the paper stresses that bottlenecks are the tenant's to
// fix while stack contention needs the cloud operator.
enum class Audience { kTenant, kOperator };
const char* to_string(Audience a);

struct Recommendation {
  ActionKind action = ActionKind::kNoAction;
  Audience audience = Audience::kOperator;
  std::string target;     // element/VM the action applies to
  std::string rationale;  // one-line explanation tied to the evidence
};

class RemediationAdvisor {
 public:
  // From an Algorithm 1 contention/bottleneck report.
  std::vector<Recommendation> advise(const ContentionReport& report) const;
  // From an Algorithm 2 chain root-cause report.
  std::vector<Recommendation> advise(const RootCauseReport& report) const;
};

std::string to_text(const std::vector<Recommendation>& recs);

}  // namespace perfsight
