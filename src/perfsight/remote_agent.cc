#include "perfsight/remote_agent.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "perfsight/trace.h"
#include "perfsight/wire.h"

namespace perfsight {

namespace {

// Transport lifecycle trace events hang off a synthetic element, like the
// controller's scatter events.
const ElementId& transport_trace_id() {
  static const ElementId kId{"transport"};
  return kId;
}

// The serve loop wakes this often to notice stop().
constexpr transport::WallDuration kServePoll{200};

std::chrono::nanoseconds to_wall(Duration d) {
  return std::chrono::nanoseconds(d.ns());
}

}  // namespace

// --- RemoteAgentServer -------------------------------------------------------

Status RemoteAgentServer::start() {
  PS_CHECK(!thread_.joinable());
  Result<transport::Listener> l = transport::Listener::listen(ep_);
  if (!l.ok()) return l.status();
  listener_ = std::move(l).take();
  ep_ = listener_.bound_endpoint();  // ephemeral tcp port resolved
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { serve(); });
  return Status::ok();
}

void RemoteAgentServer::stop() {
  stop_ = true;
  if (thread_.joinable()) thread_.join();
  listener_.close();
  running_ = false;
}

void RemoteAgentServer::inject_truncate_next_batch(size_t bytes) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  truncate_next_ = bytes;
}

void RemoteAgentServer::inject_corrupt_next_batch(size_t index) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  corrupt_next_ = index;
}

void RemoteAgentServer::inject_drop_next_reply() {
  std::lock_guard<std::mutex> lock(inject_mu_);
  drop_next_ = true;
}

int64_t RemoteAgentServer::clock_ns() const {
  return transport::span_clock_ns() +
         clock_skew_ns_.load(std::memory_order_relaxed);
}

std::string RemoteAgentServer::trace_data_bytes() {
  wire::TraceDataMsg td;
  td.process = agent_->name();
  td.events = trace_recorder_.drain();
  return wire::encode_message(wire::MessageKind::kTraceData,
                              wire::encode_trace_data(td));
}

std::string RemoteAgentServer::hello_bytes() const {
  wire::HelloMsg hello;
  hello.agent_name = agent_->name();
  hello.elements = agent_->element_ids();  // already ascending
  hello.clock_ns = clock_ns();
  return wire::encode_message(wire::MessageKind::kHello,
                              wire::encode_hello(hello));
}

void RemoteAgentServer::serve() {
  while (!stop_) {
    Result<transport::Socket> conn = listener_.accept(kServePoll);
    if (!conn.ok()) continue;  // deadline tick or transient accept error
    handle_connection(std::move(conn).take());
  }
}

void RemoteAgentServer::handle_connection(transport::Socket conn) {
  if (!conn.send_all(hello_bytes()).is_ok()) return;

  while (!stop_) {
    // Idle on readability first: a short-deadline read could consume and
    // discard half a message prefix; this never touches the stream.
    if (!transport::wait_readable(conn, kServePoll)) continue;
    Result<std::string> raw = transport::read_message_bytes(conn, kServePoll);
    if (!raw.ok()) return;  // peer closed, or the stream is not PSM1
    Result<wire::Message> msg = wire::decode_message(raw.value());
    if (!msg.ok()) return;  // checksum failure: framing is untrustworthy

    switch (msg.value().kind) {
      case wire::MessageKind::kBatchRequest: {
        Result<wire::BatchRequestMsg> req =
            wire::decode_batch_request(msg.value().body);
        if (!req.ok()) return;
        // A traced request (trace_id != 0) gets a serve span — span-clock
        // timestamps, parented to the span id off the wire — and installs
        // that span as the context the agent's own spans hang from.
        const uint64_t trace_id = req.value().trace_id;
        const int64_t serve_t0 = clock_ns();
        const uint64_t serve_span =
            trace_id != 0 ? next_span_id(span_domain_for(agent_->name())) : 0;
        BatchResponse b;
        {
          ScopedTraceContext span_ctx(TraceContext{trace_id, serve_span});
          b = agent_->query_batch(req.value().ids, req.value().now);
        }
        if (trace_id != 0) {
          trace_recorder_.record_span(
              ElementId{agent_->name() + "/serve"}, SimTime::nanos(serve_t0),
              TraceEventKind::kSpanServerBatch,
              Duration::nanos(clock_ns() - serve_t0), serve_span,
              req.value().parent_span,
              static_cast<double>(req.value().ids.size()), "batch");
        }
        Result<std::string> bytes = wire::encode_batch(b);
        // The agent produced this response; if it cannot travel, that is a
        // programming error (oversize names never enter via add_element).
        PS_CHECK(bytes.ok());
        std::string payload = std::move(bytes).take();

        // Consume any armed damage.
        std::optional<size_t> truncate;
        std::optional<size_t> corrupt;
        bool drop = false;
        {
          std::lock_guard<std::mutex> lock(inject_mu_);
          truncate = truncate_next_;
          corrupt = corrupt_next_;
          drop = drop_next_;
          truncate_next_.reset();
          corrupt_next_.reset();
          drop_next_ = false;
        }
        batches_served_.fetch_add(1, std::memory_order_relaxed);
        if (drop) return;  // close without a reply
        if (corrupt && !payload.empty()) {
          payload[*corrupt % payload.size()] ^= 0x20;
        }
        if (truncate) {
          conn.send_all(
              std::string_view(payload).substr(0, std::min(*truncate,
                                                           payload.size())));
          return;  // kill the connection mid-frame: a torn stream
        }
        if (!conn.send_all(payload).is_ok()) return;
        // Piggyback fast path: a traced request earns the drained rings
        // right behind the batch.  Untraced requests get not one extra
        // byte — the disabled-mode reply stays byte-identical.
        if (trace_id != 0) {
          if (!conn.send_all(trace_data_bytes()).is_ok()) return;
        }
        break;
      }
      case wire::MessageKind::kSingleRequest: {
        Result<wire::SingleRequestMsg> req =
            wire::decode_single_request(msg.value().body);
        if (!req.ok()) return;
        const uint64_t trace_id = req.value().trace_id;
        const int64_t serve_t0 = clock_ns();
        const uint64_t serve_span =
            trace_id != 0 ? next_span_id(span_domain_for(agent_->name())) : 0;
        Result<QueryResponse> r = agent_->query_attrs(
            req.value().id, req.value().attrs, req.value().now);
        if (trace_id != 0) {
          // Recorded but not piggybacked: the single-response path stays
          // lean, and the next harvest (or traced batch) ships it.
          trace_recorder_.record_span(
              ElementId{agent_->name() + "/serve"}, SimTime::nanos(serve_t0),
              TraceEventKind::kSpanServerSingle,
              Duration::nanos(clock_ns() - serve_t0), serve_span,
              req.value().parent_span, 1.0, req.value().id.name);
        }
        std::string reply;
        if (r.ok()) {
          Result<std::string> frame = wire::encode_frame(r.value());
          PS_CHECK(frame.ok());
          reply = wire::encode_message(wire::MessageKind::kSingleResponse,
                                       frame.value());
        } else {
          // The Status travels verbatim: the adapter re-raises the exact
          // text the in-process path produced.
          reply = wire::encode_message(
              wire::MessageKind::kError,
              wire::encode_error(
                  {r.status().code(), r.status().message()}));
        }
        if (!conn.send_all(reply).is_ok()) return;
        break;
      }
      case wire::MessageKind::kListElements: {
        if (!conn.send_all(hello_bytes()).is_ok()) return;
        break;
      }
      case wire::MessageKind::kTraceHarvest: {
        if (!conn.send_all(trace_data_bytes()).is_ok()) return;
        break;
      }
      default:
        return;  // a client speaking server->client kinds is confused
    }
  }
}

// --- RemoteAgent -------------------------------------------------------------

const std::string& RemoteAgent::name() const {
  // Set once by the first successful connect(), before the adapter is
  // handed to a controller; immutable afterwards.
  return name_;
}

bool RemoteAgent::has_element(const ElementId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return element_set_.count(id) > 0;
}

std::vector<ElementId> RemoteAgent::element_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return elements_;
}

void RemoteAgent::set_retry_policy(RetryPolicy p) {
  std::lock_guard<std::mutex> lock(mu_);
  retry_ = p;
}

void RemoteAgent::set_breaker_config(CircuitBreakerConfig c) {
  std::lock_guard<std::mutex> lock(mu_);
  breaker_cfg_ = c;
}

void RemoteAgent::set_deadline(transport::WallDuration d) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_ = d;
}

void RemoteAgent::set_metrics(MetricsRegistry* m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m == nullptr) {
    m_connects_ = m_reconnects_ = m_batches_ = m_damaged_ = nullptr;
    return;
  }
  const std::string label = "agent=\"" + prom_escape(name_) + "\"";
  m_connects_ = &m->counter("perfsight_transport_connects_total",
                            "Successful dial+hello handshakes", label);
  m_reconnects_ = &m->counter("perfsight_transport_reconnects_total",
                              "Connections re-established after loss", label);
  m_batches_ = &m->counter("perfsight_transport_batches_total",
                           "Batch round trips attempted over the socket",
                           label);
  m_damaged_ = &m->counter("perfsight_transport_damaged_batches_total",
                           "Batches that arrived short or corrupt", label);
}

BreakerState RemoteAgent::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_state_;
}

RemoteAgent::TransportStats RemoteAgent::transport_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status RemoteAgent::connect() {
  std::lock_guard<std::mutex> lock(mu_);
  return connect_locked(SimTime());
}

int64_t RemoteAgent::clock_offset_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_offset_ns_;
}

Status RemoteAgent::read_trace_data_locked() {
  Result<std::string> raw = transport::read_message_bytes(sock_, deadline_);
  if (!raw.ok()) {
    drop_connection_locked();
    return raw.status();
  }
  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok() || msg.value().kind != wire::MessageKind::kTraceData) {
    drop_connection_locked();  // stream framing is no longer trustworthy
    return Status::unavailable("transport: expected trace data from " +
                               ep_.to_string());
  }
  Result<wire::TraceDataMsg> td = wire::decode_trace_data(msg.value().body);
  if (!td.ok()) {
    drop_connection_locked();
    return td.status();
  }
  TraceRecorder& g = TraceRecorder::global();
  if (g.enabled() && !td.value().events.empty()) {
    g.add_remote_lane(td.value().process, clock_offset_ns_,
                      std::move(td.value().events));
  }
  return Status::ok();
}

Status RemoteAgent::harvest_trace() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = ensure_connected_locked(SimTime());
  if (!st.is_ok()) return st;
  Status sent = sock_.send_all(
      wire::encode_message(wire::MessageKind::kTraceHarvest, ""));
  if (!sent.is_ok()) {
    drop_connection_locked();
    return sent;
  }
  return read_trace_data_locked();
}

void RemoteAgent::drop_connection_locked() { sock_.close(); }

void RemoteAgent::note_connect_failure_locked() {
  ++consecutive_failures_;
  if (breaker_state_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= breaker_cfg_.failure_threshold) {
    breaker_state_ = BreakerState::kOpen;
    breaker_opened_at_ = transport::Clock::now();
  }
}

Status RemoteAgent::connect_locked(SimTime now) {
  // Bracket the dial + hello with local span-clock samples: the server's
  // clock_ns rode in the hello, so `remote - midpoint(c0, c1)` estimates
  // the remote-minus-local clock offset (NTP's classic symmetric-delay
  // assumption), good to about half the handshake round trip.
  const int64_t c0 = transport::span_clock_ns();
  Result<transport::Socket> s = transport::connect(ep_, deadline_);
  if (!s.ok()) return s.status();
  transport::Socket sock = std::move(s).take();

  Result<std::string> raw = transport::read_message_bytes(sock, deadline_);
  if (!raw.ok()) return raw.status();
  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok() || msg.value().kind != wire::MessageKind::kHello) {
    return Status::unavailable("transport: peer did not send a hello");
  }
  Result<wire::HelloMsg> hello = wire::decode_hello(msg.value().body);
  if (!hello.ok()) return hello.status();
  if (!name_.empty() && hello.value().agent_name != name_) {
    return Status::failed_precondition(
        "transport: endpoint " + ep_.to_string() + " now serves agent '" +
        hello.value().agent_name + "', expected '" + name_ + "'");
  }

  const int64_t c1 = transport::span_clock_ns();
  clock_offset_ns_ = hello.value().clock_ns - (c0 + (c1 - c0) / 2);

  const bool first = name_.empty();
  name_ = hello.value().agent_name;
  elements_ = std::move(hello.value().elements);
  element_set_.clear();
  element_set_.insert(elements_.begin(), elements_.end());
  sock_ = std::move(sock);

  ++stats_.connects;
  if (!first) ++stats_.reconnects;
  consecutive_failures_ = 0;
  breaker_state_ = BreakerState::kClosed;
  if (m_connects_ != nullptr) m_connects_->increment();
  if (!first && m_reconnects_ != nullptr) m_reconnects_->increment();
  trace_event(transport_trace_id(), now,
              first ? TraceEventKind::kTransportConnect
                    : TraceEventKind::kTransportReconnect,
              static_cast<double>(stats_.connects), name_);
  return Status::ok();
}

Status RemoteAgent::ensure_connected_locked(SimTime now) {
  if (sock_.valid()) return Status::ok();

  // Breaker gate: while open, skip the dial timeout entirely until the
  // cooldown (wall clock) expires; the next query then probes half-open.
  if (breaker_state_ == BreakerState::kOpen) {
    auto since = transport::Clock::now() - breaker_opened_at_;
    if (since < to_wall(breaker_cfg_.cooldown)) {
      ++stats_.fast_fails;
      return Status::unavailable("transport: breaker open for " +
                                 ep_.to_string());
    }
    breaker_state_ = BreakerState::kHalfOpen;
  }

  const uint32_t attempts = std::max<uint32_t>(1, retry_.max_attempts);
  Duration backoff = retry_.initial_backoff;
  Status last = Status::unavailable("transport: never attempted");
  for (uint32_t a = 1; a <= attempts; ++a) {
    Status st = connect_locked(now);
    if (st.is_ok()) return st;
    last = st;
    if (a < attempts) {
      std::this_thread::sleep_for(to_wall(backoff));
      backoff = Duration::nanos(std::min<int64_t>(
          static_cast<int64_t>(static_cast<double>(backoff.ns()) *
                               retry_.backoff_multiplier),
          retry_.max_backoff.ns()));
    }
  }
  note_connect_failure_locked();
  return last;
}

BatchResponse RemoteAgent::total_loss_locked(
    const std::vector<ElementId>& sorted_known, size_t unknown) const {
  BatchResponse decoded;  // empty: every known id reconciles to kMissing
  BatchResponse out = wire::reconcile(sorted_known, decoded);
  out.unknown_ids = unknown;
  return out;
}

BatchResponse RemoteAgent::query_batch(const std::vector<ElementId>& ids,
                                       SimTime now, ThreadPool* /*pool*/) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches;
  if (m_batches_ != nullptr) m_batches_->increment();

  // Sort + dedupe like the in-process agent, and split known/unknown from
  // the hello cache — on a total transport loss, ids the agent never served
  // must stay *absent* (the controller's not_found path), not turn into
  // kMissing blind spots.
  std::vector<ElementId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<ElementId> known;
  known.reserve(sorted.size());
  for (const ElementId& id : sorted) {
    if (element_set_.count(id) > 0) known.push_back(id);
  }
  const size_t unknown = sorted.size() - known.size();

  Status st = ensure_connected_locked(now);
  if (!st.is_ok()) return total_loss_locked(known, unknown);

  // The caller's trace context rides the envelope; {0, 0} (untraced) keeps
  // the request — and the server's reply — byte-identical to a build
  // without tracing.
  const TraceContext ctx = current_trace_context();
  const std::string request = wire::encode_message(
      wire::MessageKind::kBatchRequest,
      wire::encode_batch_request({now, sorted, ctx.trace_id, ctx.span_id}));
  const int64_t trip_t0 = transport::span_clock_ns();

  // Queries are idempotent reads, so a connection that died *before any
  // reply byte arrived* earns exactly one reconnect + resend.  Once reply
  // bytes exist, no resend: the surviving prefix is reconciled instead
  // (resending could double modelled channel time and tear determinism).
  transport::BatchReadResult read;
  for (int attempt = 0;; ++attempt) {
    Status sent = sock_.send_all(request);
    if (sent.is_ok()) {
      read = transport::read_batch(sock_, deadline_);
      if (read.clean()) break;
      if (!read.bytes.empty()) break;  // partial reply: reconcile below
    }
    drop_connection_locked();
    if (attempt >= 1) return total_loss_locked(known, unknown);
    Status re = ensure_connected_locked(now);
    if (!re.is_ok()) return total_loss_locked(known, unknown);
    trace_event(transport_trace_id(), now, TraceEventKind::kTransportReconnect,
                1.0, "resend");
  }

  wire::DecodeStats dstats;
  Result<BatchResponse> decoded = wire::decode_batch(read.bytes, &dstats);
  if (!decoded.ok()) {
    // Header never made it whole (or is garbage): nothing usable arrived.
    drop_connection_locked();
    ++stats_.damaged;
    if (m_damaged_ != nullptr) m_damaged_->increment();
    return total_loss_locked(known, unknown);
  }

  if (read.clean() && dstats.complete()) {
    // The common path: the batch crossed byte-identical; hand it through
    // untouched (responses, channel time, unknown count, degraded tally all
    // came off the wire).
    if (ctx.active()) {
      trace_span(transport_trace_id(), now, TraceEventKind::kSpanTransportTrip,
                 Duration::nanos(transport::span_clock_ns() - trip_t0),
                 next_span_id(), ctx.span_id,
                 static_cast<double>(sorted.size()), name_);
      // A traced request always has trace data piggybacked right behind the
      // batch; pull it off the stream so the connection stays framed.  A
      // loss here costs the lane (recoverable by harvest), not the batch.
      read_trace_data_locked();
    }
    return std::move(decoded).take();
  }

  // Torn or corrupt stream: the connection's framing is gone, so drop it,
  // and reconcile what survived.  Expected set = known request ids plus
  // anything the server actually answered (covers elements added remotely
  // since the hello).
  drop_connection_locked();
  ++stats_.damaged;
  if (m_damaged_ != nullptr) m_damaged_->increment();

  std::vector<ElementId> expected = known;
  for (const QueryResponse& r : decoded.value().responses) {
    expected.push_back(r.record.element);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  BatchResponse out = wire::reconcile(expected, decoded.value());
  const double lost =
      static_cast<double>(expected.size() - decoded.value().responses.size());
  trace_event(transport_trace_id(), now, TraceEventKind::kTransportDamaged,
              lost, name_);
  return out;
}

Result<QueryResponse> RemoteAgent::query_attrs(
    const ElementId& id, const std::vector<std::string>& attrs, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);

  Status st = ensure_connected_locked(now);
  if (!st.is_ok()) {
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }

  const TraceContext ctx = current_trace_context();
  const std::string request = wire::encode_message(
      wire::MessageKind::kSingleRequest,
      wire::encode_single_request(
          {now, id, attrs, ctx.trace_id, ctx.span_id}));

  Result<std::string> raw = Status::unavailable("unsent");
  for (int attempt = 0;; ++attempt) {
    Status sent = sock_.send_all(request);
    if (sent.is_ok()) {
      raw = transport::read_message_bytes(sock_, deadline_);
      if (raw.ok()) break;
    }
    drop_connection_locked();
    if (attempt >= 1) {
      return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
    }
    Status re = ensure_connected_locked(now);
    if (!re.is_ok()) {
      return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
    }
  }

  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok()) {
    drop_connection_locked();
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }
  if (msg.value().kind == wire::MessageKind::kError) {
    Result<wire::ErrorMsg> err = wire::decode_error(msg.value().body);
    if (!err.ok()) {
      drop_connection_locked();
      return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
    }
    // The exact Status the in-process path produced, re-raised verbatim.
    return Status(err.value().code, err.value().message);
  }
  if (msg.value().kind != wire::MessageKind::kSingleResponse) {
    drop_connection_locked();
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }
  size_t consumed = 0;
  Result<QueryResponse> r = wire::decode_frame(msg.value().body, &consumed);
  if (!r.ok()) {
    drop_connection_locked();
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }
  return r;
}

}  // namespace perfsight
