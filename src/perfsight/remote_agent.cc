#include "perfsight/remote_agent.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "perfsight/trace.h"
#include "perfsight/wire.h"

namespace perfsight {

namespace {

// Transport lifecycle trace events hang off a synthetic element, like the
// controller's scatter events.
const ElementId& transport_trace_id() {
  static const ElementId kId{"transport"};
  return kId;
}

// The event loop's poll() timeout: how promptly stop(), accept backoff
// expiry and per-connection I/O deadlines are noticed.
constexpr int kServePollMs = 200;

// Accept-error backoff bounds: a persistent accept failure (EMFILE, ...)
// must not hot-spin the serve thread, but recovery after the condition
// clears should be prompt.
constexpr int kAcceptBackoffMinMs = 10;
constexpr int kAcceptBackoffMaxMs = 1000;

// Compact a partially-drained write queue once the sent prefix crosses
// this, so a long-lived pipelining connection cannot grow it unboundedly.
constexpr size_t kWriteCompactBytes = 64 * 1024;

std::chrono::nanoseconds to_wall(Duration d) {
  return std::chrono::nanoseconds(d.ns());
}

}  // namespace

// --- RemoteAgentServer -------------------------------------------------------

RemoteAgentServer::RemoteAgentServer(std::vector<Agent*> agents,
                                     transport::Endpoint ep)
    : agents_(std::move(agents)), ep_(std::move(ep)) {
  PS_CHECK(!agents_.empty());
  for (Agent* a : agents_) PS_CHECK(a != nullptr);
  trace_recorder_.set_enabled(true);
}

void RemoteAgentServer::set_metrics(MetricsRegistry* m) {
  PS_CHECK(!running_);  // the serve thread reads the pointer unlocked
  if (m == nullptr) {
    m_accept_errors_ = nullptr;
    return;
  }
  m_accept_errors_ = &m->counter(
      "perfsight_transport_accept_errors_total",
      "Listener accept failures that were real errors (EMFILE, ...), each "
      "backing the accept path off instead of hot-spinning",
      "endpoint=\"" + prom_escape(ep_.to_string()) + "\"");
}

Status RemoteAgentServer::start() {
  PS_CHECK(!thread_.joinable());
  Result<transport::Listener> l = transport::Listener::listen(ep_);
  if (!l.ok()) return l.status();
  listener_ = std::move(l).take();
  ep_ = listener_.bound_endpoint();  // ephemeral tcp port resolved
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { serve(); });
  return Status::ok();
}

void RemoteAgentServer::stop() {
  stop_ = true;
  if (thread_.joinable()) thread_.join();
  listener_.close();
  running_ = false;
}

void RemoteAgentServer::inject_truncate_next_batch(size_t bytes) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  truncate_next_ = bytes;
}

void RemoteAgentServer::inject_corrupt_next_batch(size_t index) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  corrupt_next_ = index;
}

void RemoteAgentServer::inject_drop_next_reply() {
  std::lock_guard<std::mutex> lock(inject_mu_);
  drop_next_ = true;
}

void RemoteAgentServer::inject_skip_next_publish() {
  std::lock_guard<std::mutex> lock(inject_mu_);
  skip_next_publish_ = true;
}

void RemoteAgentServer::request_publish(SimTime at) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  pending_publishes_.push_back(at);
}

void RemoteAgentServer::publish_tick(
    SimTime at, std::vector<std::unique_ptr<Conn>>& conns) {
  bool skip = false;
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    skip = skip_next_publish_;
    skip_next_publish_ = false;
  }
  for (Agent* agent : agents_) {
    bool subscribed = false;
    for (const auto& c : conns) {
      if (!c->dead && c->sub_agent == agent->name()) {
        subscribed = true;
        break;
      }
    }
    // No subscribers: no capture, no seq advance, zero stream bytes.
    if (!subscribed) continue;

    // One capture and one seq per agent per boundary, shared by every
    // subscriber — gap detection works across connections.
    const uint64_t seq = ++stream_seq_[agent->name()];
    BatchResponse b = agent->query_batch(agent->element_ids(), at);
    wire::StreamDataMsg msg;
    msg.agent = agent->name();
    msg.seq = seq;
    msg.window_start = at;
    msg.channel_time = b.channel_time;
    msg.responses = std::move(b.responses);

    for (auto& c : conns) {
      if (c->dead || c->sub_agent != agent->name()) continue;
      if (skip) {
        // Injected transport loss: the capture was paid and the delta chain
        // must stay coherent, so a connection that already has a base
        // advances it (the client repairs the missed window with a pull
        // whose bytes, by fault-plan purity, equal this capture).  A fresh
        // connection keeps waiting for its snapshot — its first *sent*
        // frame must stand alone.
        if (c->stream_prev != nullptr) *c->stream_prev = msg;
        continue;
      }
      // Delta against THIS connection's last frame; a fresh subscriber has
      // no base yet, so its first frame is automatically a snapshot.
      Result<std::string> body =
          wire::encode_stream_data(msg, c->stream_prev.get());
      if (!body.ok()) {
        c->dead = true;
        continue;
      }
      c->wbuf += wire::encode_message(wire::MessageKind::kStreamData,
                                      body.value());
      if (c->stream_prev == nullptr) {
        c->stream_prev = std::make_unique<wire::StreamDataMsg>();
      }
      *c->stream_prev = msg;
      stream_frames_.fetch_add(1, std::memory_order_relaxed);
      if (!flush_writes(*c)) c->dead = true;
    }
  }
}

int64_t RemoteAgentServer::clock_ns() const {
  return transport::span_clock_ns() +
         clock_skew_ns_.load(std::memory_order_relaxed);
}

std::string RemoteAgentServer::trace_data_bytes(const std::string& process) {
  wire::TraceDataMsg td;
  td.process = process;
  td.events = trace_recorder_.drain();
  return wire::encode_message(wire::MessageKind::kTraceData,
                              wire::encode_trace_data(td));
}

std::string RemoteAgentServer::hello_bytes() const {
  wire::HelloMsg hello;
  hello.agent_name = agents_.front()->name();
  hello.elements = agents_.front()->element_ids();  // already ascending
  hello.clock_ns = clock_ns();
  if (agents_.size() > 1) {
    hello.roster.reserve(agents_.size());
    for (Agent* a : agents_) {
      hello.roster.push_back({a->name(), a->element_ids()});
    }
  }
  // Element-set epoch: a fingerprint over every hosted agent's name and
  // element ids.  A reconnecting client compares it against the epoch it
  // cached — equal means the element set is unchanged and the reconnect
  // diff can be skipped entirely.
  std::string fp;
  for (Agent* a : agents_) {
    fp += a->name();
    fp += '\0';
    for (const ElementId& id : a->element_ids()) {
      fp += id.name;
      fp += '\n';
    }
  }
  hello.epoch = wire::fnv1a64(fp);
  if (hello.epoch == 0) hello.epoch = 1;  // 0 is "not advertised" on the wire
  return wire::encode_message(wire::MessageKind::kHello,
                              wire::encode_hello(hello));
}

Agent* RemoteAgentServer::route(const std::string& agent) {
  if (agent.empty()) return agents_.front();  // old request format: primary
  for (Agent* a : agents_) {
    if (a->name() == agent) return a;
  }
  return nullptr;
}

// One pollfd set over listener + every live connection; everything below
// runs on the single serve thread, so connection state needs no locks.
void RemoteAgentServer::serve() {
  std::vector<std::unique_ptr<Conn>> conns;
  // Accept-error backoff: while a real accept failure is fresh, the
  // listener fd sits out of the poll set until `accept_resume`.
  transport::Clock::time_point accept_resume{};
  int accept_backoff_ms = 0;

  std::vector<struct pollfd> fds;
  while (!stop_) {
    const bool accepting = transport::Clock::now() >= accept_resume;
    fds.clear();
    // fd -1 is legal and ignored by poll(): keeps index i+1 <-> conns[i].
    fds.push_back({accepting ? listener_.fd() : -1, POLLIN, 0});
    for (const auto& c : conns) {
      short events = POLLIN;
      if (c->woff < c->wbuf.size()) events |= POLLOUT;
      fds.push_back({c->sock.fd(), events, 0});
    }
    ::poll(fds.data(), fds.size(), kServePollMs);
    if (stop_) break;

    // Service the existing connections first (indices still line up with
    // the pollfd set built above), then reap, then accept.
    const size_t served = conns.size();
    const auto now = transport::Clock::now();
    for (size_t i = 0; i < served; ++i) {
      Conn& c = *conns[i];
      const short re = fds[i + 1].revents;
      if (re & POLLNVAL) {
        c.dead = true;
        continue;
      }
      // POLLHUP/POLLERR still go through the read path first: a half-closed
      // peer may have final requests buffered; a vanished peer just gets
      // reaped when the read reports EOF.
      if (!c.dead && (re & (POLLIN | POLLHUP | POLLERR))) {
        for (;;) {
          Result<size_t> got = c.sock.read_some(&c.rbuf);
          if (!got.ok()) {
            c.dead = true;  // peer closed or hard socket error
            break;
          }
          if (got.value() == 0) break;  // drained to EAGAIN
        }
        if (!c.dead && !drain_messages(c)) c.dead = true;
        // Anchor the partial-read deadline at the first buffered byte: a
        // peer trickling a message one byte per poll tick cannot hold the
        // buffer open forever.
        if (c.rbuf.empty()) {
          c.read_since = transport::Clock::time_point{};
        } else if (c.read_since == transport::Clock::time_point{}) {
          c.read_since = now;
        }
      }
      if (!c.dead && c.woff < c.wbuf.size() && !flush_writes(c)) c.dead = true;
      if (!c.dead && c.close_after_flush && c.woff >= c.wbuf.size()) {
        c.dead = true;  // injected torn stream fully flushed: cut it
      }
      if (!c.dead) {
        // Per-connection I/O deadline: a stalled partial read or a write
        // queue making no progress costs the connection, not the loop.
        const auto zero = transport::Clock::time_point{};
        if ((c.read_since != zero && now - c.read_since > io_deadline_) ||
            (c.write_since != zero && now - c.write_since > io_deadline_)) {
          c.dead = true;
        }
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return c->dead;
                               }),
                conns.end());

    // Push-mode boundaries requested since the last tick: capture once per
    // subscribed agent per boundary and queue the frames.
    std::vector<SimTime> publishes;
    {
      std::lock_guard<std::mutex> lock(publish_mu_);
      publishes.swap(pending_publishes_);
    }
    for (SimTime at : publishes) publish_tick(at, conns);
    if (!publishes.empty()) {
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const std::unique_ptr<Conn>& c) {
                                   return c->dead;
                                 }),
                  conns.end());
    }

    if (accepting && (fds[0].revents & POLLIN)) {
      // Drain every pending connection; a zero deadline makes accept()
      // report "nothing pending" as kDeadlineExceeded.
      for (;;) {
        Result<transport::Socket> a =
            listener_.accept(transport::WallDuration(0));
        if (!a.ok()) {
          if (a.status().code() == StatusCode::kDeadlineExceeded) break;
          // A real accept error (EMFILE, ...): count it and take the
          // listener out of the poll set for a bounded backoff so the loop
          // keeps serving live connections instead of hot-spinning.
          accept_errors_.fetch_add(1, std::memory_order_relaxed);
          if (m_accept_errors_ != nullptr) m_accept_errors_->increment();
          accept_backoff_ms =
              accept_backoff_ms == 0
                  ? kAcceptBackoffMinMs
                  : std::min(accept_backoff_ms * 2, kAcceptBackoffMaxMs);
          accept_resume = transport::Clock::now() +
                          std::chrono::milliseconds(accept_backoff_ms);
          break;
        }
        accept_backoff_ms = 0;
        auto c = std::make_unique<Conn>();
        c->sock = std::move(a).take();
        c->sock.set_nonblocking(true);
        c->wbuf = hello_bytes();
        if (flush_writes(*c)) conns.push_back(std::move(c));
      }
    }
    live_connections_.store(conns.size(), std::memory_order_relaxed);
  }
  conns.clear();  // closes every socket
  live_connections_.store(0, std::memory_order_relaxed);
}

// Parses and dispatches every complete PSM1 message buffered in c.rbuf,
// leaving any trailing partial message in place for the next read.
// Returns false when the connection must close (framing damage, protocol
// confusion, or an injected fault).
bool RemoteAgentServer::drain_messages(Conn& c) {
  while (c.rbuf.size() >= wire::kMessagePrefixSize) {
    // Validate the prefix before waiting on the body: bad magic or an
    // oversize length means the stream is not (or no longer) PSM1, and
    // waiting for more bytes could never repair it.
    size_t at = 0;
    uint32_t magic = 0;
    uint8_t kind = 0;
    uint32_t body_len = 0;
    if (!wire::get_u32(c.rbuf, at, &magic) || magic != wire::kMessageMagic ||
        !wire::get_u8(c.rbuf, at, &kind) ||
        !wire::get_u32(c.rbuf, at, &body_len) ||
        body_len > wire::kMaxPayload) {
      return false;
    }
    const size_t total = wire::kMessagePrefixSize + body_len;
    if (c.rbuf.size() < total) break;  // partial: wait for more bytes
    Result<wire::Message> msg =
        wire::decode_message(std::string_view(c.rbuf).substr(0, total));
    if (!msg.ok()) return false;  // checksum failure: framing untrustworthy
    const bool keep = handle_message(c, msg.value());
    c.rbuf.erase(0, total);
    if (!keep) return false;
  }
  return true;
}

// Dispatches one decoded control message, queueing any reply on c.wbuf.
// Returns false to close the connection.  Dispatch is synchronous on the
// serve thread — agent queries are in-memory reads, so one slow peer's
// *socket* can stall nobody (writes queue), and query cost itself is the
// same for every transport.
bool RemoteAgentServer::handle_message(Conn& c, const wire::Message& msg) {
  switch (msg.kind) {
    case wire::MessageKind::kBatchRequest: {
      Result<wire::BatchRequestMsg> req = wire::decode_batch_request(msg.body);
      if (!req.ok()) return false;
      // Fleet routing: an explicitly named agent must exist; the empty
      // (pre-roster) form routes to the primary.  An unknown name closes
      // the connection — bindings are validated at connect time, so this
      // only happens when the server's agent set changed under the client,
      // and a reconnect re-runs that validation.
      Agent* agent = route(req.value().agent);
      if (agent == nullptr) return false;
      // A traced request (trace_id != 0) gets a serve span — span-clock
      // timestamps, parented to the span id off the wire — and installs
      // that span as the context the agent's own spans hang from.
      const uint64_t trace_id = req.value().trace_id;
      const int64_t serve_t0 = clock_ns();
      const uint64_t serve_span =
          trace_id != 0 ? next_span_id(span_domain_for(agent->name())) : 0;
      BatchResponse b;
      {
        ScopedTraceContext span_ctx(TraceContext{trace_id, serve_span});
        b = agent->query_batch(req.value().ids, req.value().now);
      }
      if (trace_id != 0) {
        trace_recorder_.record_span(
            ElementId{agent->name() + "/serve"}, SimTime::nanos(serve_t0),
            TraceEventKind::kSpanServerBatch,
            Duration::nanos(clock_ns() - serve_t0), serve_span,
            req.value().parent_span,
            static_cast<double>(req.value().ids.size()), "batch");
      }
      Result<std::string> bytes = wire::encode_batch(b);
      // The agent produced this response; if it cannot travel, that is a
      // programming error (oversize names never enter via add_element).
      PS_CHECK(bytes.ok());
      std::string payload = std::move(bytes).take();

      // Consume any armed damage.
      std::optional<size_t> truncate;
      std::optional<size_t> corrupt;
      bool drop = false;
      {
        std::lock_guard<std::mutex> lock(inject_mu_);
        truncate = truncate_next_;
        corrupt = corrupt_next_;
        drop = drop_next_;
        truncate_next_.reset();
        corrupt_next_.reset();
        drop_next_ = false;
      }
      batches_served_.fetch_add(1, std::memory_order_relaxed);
      if (drop) return false;  // close without a reply
      if (corrupt && !payload.empty()) {
        payload[*corrupt % payload.size()] ^= 0x20;
      }
      if (truncate) {
        // Queue the torn prefix, then cut the connection once it flushes:
        // the peer observes a stream that dies mid-frame.
        c.wbuf.append(payload, 0, std::min(*truncate, payload.size()));
        c.close_after_flush = true;
        return true;
      }
      c.wbuf += payload;
      // Piggyback fast path: a traced request earns the drained rings
      // right behind the batch.  Untraced requests get not one extra
      // byte — the disabled-mode reply stays byte-identical.
      if (trace_id != 0) c.wbuf += trace_data_bytes(agent->name());
      return true;
    }
    case wire::MessageKind::kSingleRequest: {
      Result<wire::SingleRequestMsg> req =
          wire::decode_single_request(msg.body);
      if (!req.ok()) return false;
      Agent* agent = route(req.value().agent);
      if (agent == nullptr) return false;
      const uint64_t trace_id = req.value().trace_id;
      const int64_t serve_t0 = clock_ns();
      const uint64_t serve_span =
          trace_id != 0 ? next_span_id(span_domain_for(agent->name())) : 0;
      Result<QueryResponse> r = agent->query_attrs(
          req.value().id, req.value().attrs, req.value().now);
      if (trace_id != 0) {
        // Recorded but not piggybacked: the single-response path stays
        // lean, and the next harvest (or traced batch) ships it.
        trace_recorder_.record_span(
            ElementId{agent->name() + "/serve"}, SimTime::nanos(serve_t0),
            TraceEventKind::kSpanServerSingle,
            Duration::nanos(clock_ns() - serve_t0), serve_span,
            req.value().parent_span, 1.0, req.value().id.name);
      }
      if (r.ok()) {
        Result<std::string> frame = wire::encode_frame(r.value());
        PS_CHECK(frame.ok());
        c.wbuf += wire::encode_message(wire::MessageKind::kSingleResponse,
                                       frame.value());
      } else {
        // The Status travels verbatim: the adapter re-raises the exact
        // text the in-process path produced.
        c.wbuf += wire::encode_message(
            wire::MessageKind::kError,
            wire::encode_error({r.status().code(), r.status().message()}));
      }
      return true;
    }
    case wire::MessageKind::kListElements:
      c.wbuf += hello_bytes();
      return true;
    case wire::MessageKind::kTraceHarvest:
      c.wbuf += trace_data_bytes(agents_.front()->name());
      return true;
    case wire::MessageKind::kSubscribe: {
      Result<wire::SubscribeMsg> req = wire::decode_subscribe(msg.body);
      if (!req.ok()) return false;
      // Same routing contract as batch requests: "" = primary, an unknown
      // name closes the connection (bindings are validated at connect).
      Agent* agent = route(req.value().agent);
      if (agent == nullptr) return false;
      c.sub_agent = agent->name();
      c.stream_prev.reset();  // first frame to this connection: snapshot
      return true;
    }
    default:
      return false;  // a client speaking server->client kinds is confused
  }
}

// Pushes queued bytes with nonblocking writes.  Returns false on a hard
// socket error; EAGAIN leaves the remainder queued (poll will report
// POLLOUT) and starts the write-stall clock.
bool RemoteAgentServer::flush_writes(Conn& c) {
  const size_t before = c.woff;
  while (c.woff < c.wbuf.size()) {
    Result<size_t> n =
        c.sock.write_some(std::string_view(c.wbuf).substr(c.woff));
    if (!n.ok()) return false;
    if (n.value() == 0) break;  // socket buffer full
    c.woff += n.value();
  }
  if (c.woff >= c.wbuf.size()) {
    c.wbuf.clear();
    c.woff = 0;
    c.write_since = transport::Clock::time_point{};
  } else {
    // Still queued: the stall clock measures time since the last forward
    // progress, so it re-arms on progress and on first arming — never on a
    // tick that moved nothing (that would defeat the deadline).
    if (c.woff != before || c.write_since == transport::Clock::time_point{}) {
      c.write_since = transport::Clock::now();
    }
    if (c.woff >= kWriteCompactBytes) {
      c.wbuf.erase(0, c.woff);
      c.woff = 0;
    }
  }
  return true;
}

// --- RemoteAgent -------------------------------------------------------------

const std::string& RemoteAgent::name() const {
  // Set once by the first successful connect(), before the adapter is
  // handed to a controller; immutable afterwards.
  return name_;
}

bool RemoteAgent::has_element(const ElementId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return element_set_.count(id) > 0;
}

std::vector<ElementId> RemoteAgent::element_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return elements_;
}

std::vector<std::string> RemoteAgent::roster_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roster_names_;
}

void RemoteAgent::set_retry_policy(RetryPolicy p) {
  std::lock_guard<std::mutex> lock(mu_);
  retry_ = p;
}

void RemoteAgent::set_breaker_config(CircuitBreakerConfig c) {
  std::lock_guard<std::mutex> lock(mu_);
  breaker_cfg_ = c;
}

void RemoteAgent::set_deadline(transport::WallDuration d) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_ = d;
}

void RemoteAgent::set_metrics(MetricsRegistry* m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m == nullptr) {
    m_connects_ = m_reconnects_ = m_batches_ = m_damaged_ = nullptr;
    return;
  }
  const std::string label = "agent=\"" + prom_escape(name_) + "\"";
  m_connects_ = &m->counter("perfsight_transport_connects_total",
                            "Successful dial+hello handshakes", label);
  m_reconnects_ = &m->counter("perfsight_transport_reconnects_total",
                              "Connections re-established after loss", label);
  m_batches_ = &m->counter("perfsight_transport_batches_total",
                           "Batch round trips attempted over the socket",
                           label);
  m_damaged_ = &m->counter("perfsight_transport_damaged_batches_total",
                           "Batches that arrived short or corrupt", label);
}

BreakerState RemoteAgent::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_state_;
}

RemoteAgent::TransportStats RemoteAgent::transport_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<RemoteAgent::RosterDiff> RemoteAgent::drain_roster_diffs() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RosterDiff> out = std::move(roster_diffs_);
  roster_diffs_.clear();
  return out;
}

std::vector<ElementId> RemoteAgent::departed_elements() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ElementId> out(departed_.begin(), departed_.end());
  std::sort(out.begin(), out.end());
  return out;
}

Status RemoteAgent::connect() {
  std::lock_guard<std::mutex> lock(mu_);
  return connect_locked(SimTime());
}

int64_t RemoteAgent::clock_offset_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_offset_ns_;
}

Status RemoteAgent::read_trace_data_locked() {
  Result<std::string> raw = transport::read_message_bytes(sock_, deadline_);
  if (!raw.ok()) {
    drop_connection_locked();
    return raw.status();
  }
  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok() || msg.value().kind != wire::MessageKind::kTraceData) {
    drop_connection_locked();  // stream framing is no longer trustworthy
    return Status::unavailable("transport: expected trace data from " +
                               ep_.to_string());
  }
  Result<wire::TraceDataMsg> td = wire::decode_trace_data(msg.value().body);
  if (!td.ok()) {
    drop_connection_locked();
    return td.status();
  }
  TraceRecorder& g = TraceRecorder::global();
  if (g.enabled() && !td.value().events.empty()) {
    g.add_remote_lane(td.value().process, clock_offset_ns_,
                      std::move(td.value().events));
  }
  return Status::ok();
}

Status RemoteAgent::harvest_trace() {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = ensure_connected_locked(SimTime());
  if (!st.is_ok()) return st;
  Status sent = sock_.send_all(
      wire::encode_message(wire::MessageKind::kTraceHarvest, ""), deadline_);
  if (!sent.is_ok()) {
    drop_connection_locked();
    return sent;
  }
  return read_trace_data_locked();
}

void RemoteAgent::drop_connection_locked() { sock_.close(); }

void RemoteAgent::note_connect_failure_locked() {
  ++consecutive_failures_;
  if (breaker_state_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= breaker_cfg_.failure_threshold) {
    breaker_state_ = BreakerState::kOpen;
    breaker_opened_at_ = transport::Clock::now();
  }
}

Status RemoteAgent::connect_locked(SimTime now) {
  // Bracket the dial + hello with local span-clock samples: the server's
  // clock_ns rode in the hello, so `remote - midpoint(c0, c1)` estimates
  // the remote-minus-local clock offset (NTP's classic symmetric-delay
  // assumption), good to about half the handshake round trip.
  const int64_t c0 = transport::span_clock_ns();
  Result<transport::Socket> s = transport::connect(ep_, deadline_);
  if (!s.ok()) return s.status();
  transport::Socket sock = std::move(s).take();

  Result<std::string> raw = transport::read_message_bytes(sock, deadline_);
  if (!raw.ok()) return raw.status();
  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok() || msg.value().kind != wire::MessageKind::kHello) {
    return Status::unavailable("transport: peer did not send a hello");
  }
  Result<wire::HelloMsg> hello = wire::decode_hello(msg.value().body);
  if (!hello.ok()) return hello.status();
  wire::HelloMsg h = std::move(hello).take();

  // Resolve which roster entry this adapter is bound to.  Unbound (empty
  // bind_) means the primary — the hello's base fields, exactly what a
  // pre-roster client reads.  A named binding must exist on the far end;
  // a miss is a config error, not a transient, so no retry is owed.
  std::string selected_name = h.agent_name;
  std::vector<ElementId> selected_elements = std::move(h.elements);
  std::vector<std::string> roster;
  if (h.roster.empty()) {
    roster.push_back(h.agent_name);
  } else {
    roster.reserve(h.roster.size());
    for (const wire::HelloMsg::AgentInfo& a : h.roster) {
      roster.push_back(a.name);
    }
  }
  if (!bind_.empty() && bind_ != selected_name) {
    bool found = false;
    for (wire::HelloMsg::AgentInfo& a : h.roster) {
      if (a.name == bind_) {
        selected_name = a.name;
        selected_elements = std::move(a.elements);
        found = true;
        break;
      }
    }
    if (!found) {
      std::string names;
      for (const std::string& n : roster) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      return Status::failed_precondition(
          "transport: endpoint " + ep_.to_string() + " does not host agent '" +
          bind_ + "' (roster: " + names + ")");
    }
  }
  if (!name_.empty() && selected_name != name_) {
    return Status::failed_precondition(
        "transport: endpoint " + ep_.to_string() + " now serves agent '" +
        selected_name + "', expected '" + name_ + "'");
  }

  const int64_t c1 = transport::span_clock_ns();
  clock_offset_ns_ = h.clock_ns - (c0 + (c1 - c0) / 2);

  const bool first = name_.empty();

  // Reconnect-aware hello diff: compare the fresh advertisement against the
  // cached element set.  An unchanged epoch proves the set identical and
  // skips the walk; otherwise removed ids become departed (answered locally
  // as "departed at reconnect" blind spots until they re-appear) and added
  // ids are servable immediately — no full redial.  The delta is queued for
  // the deployment layer.
  if (!first && h.epoch != 0 && h.epoch == epoch_) {
    ++stats_.epoch_skips;
  } else if (!first) {
    RosterDiff diff;
    diff.old_epoch = epoch_;
    diff.new_epoch = h.epoch;
    // Both sets are ascending (hellos advertise sorted ids); a two-pointer
    // walk yields both deltas.
    size_t oi = 0, ni = 0;
    while (oi < elements_.size() || ni < selected_elements.size()) {
      if (ni >= selected_elements.size() ||
          (oi < elements_.size() && elements_[oi] < selected_elements[ni])) {
        diff.removed.push_back(elements_[oi++]);
      } else if (oi >= elements_.size() ||
                 selected_elements[ni] < elements_[oi]) {
        diff.added.push_back(selected_elements[ni++]);
      } else {
        ++oi;
        ++ni;
      }
    }
    for (const ElementId& id : diff.removed) departed_.insert(id);
    for (const ElementId& id : diff.added) departed_.erase(id);
    if (!diff.added.empty() || !diff.removed.empty()) {
      trace_event(transport_trace_id(), now, TraceEventKind::kTransportDamaged,
                  static_cast<double>(diff.removed.size()),
                  "elements departed at reconnect");
      roster_diffs_.push_back(std::move(diff));
    }
  }
  epoch_ = h.epoch;

  name_ = selected_name;
  roster_names_ = std::move(roster);
  elements_ = std::move(selected_elements);
  element_set_.clear();
  element_set_.insert(elements_.begin(), elements_.end());
  sock_ = std::move(sock);

  ++stats_.connects;
  if (!first) ++stats_.reconnects;
  // The breaker is re-armed per the diff, not globally: the connection-level
  // breaker closes (the dial just succeeded), while departed elements stay
  // individually fast-failed above until a later hello re-adds them.
  consecutive_failures_ = 0;
  breaker_state_ = BreakerState::kClosed;
  if (m_connects_ != nullptr) m_connects_->increment();
  if (!first && m_reconnects_ != nullptr) m_reconnects_->increment();
  trace_event(transport_trace_id(), now,
              first ? TraceEventKind::kTransportConnect
                    : TraceEventKind::kTransportReconnect,
              static_cast<double>(stats_.connects), name_);
  return Status::ok();
}

Status RemoteAgent::ensure_connected_locked(SimTime now) {
  if (sock_.valid()) return Status::ok();

  // Breaker gate: while open, skip the dial timeout entirely until the
  // cooldown (wall clock) expires; the next query then probes half-open.
  if (breaker_state_ == BreakerState::kOpen) {
    auto since = transport::Clock::now() - breaker_opened_at_;
    if (since < to_wall(breaker_cfg_.cooldown)) {
      ++stats_.fast_fails;
      return Status::unavailable("transport: breaker open for " +
                                 ep_.to_string());
    }
    breaker_state_ = BreakerState::kHalfOpen;
  }

  const uint32_t attempts = std::max<uint32_t>(1, retry_.max_attempts);
  Duration backoff = retry_.initial_backoff;
  Status last = Status::unavailable("transport: never attempted");
  for (uint32_t a = 1; a <= attempts; ++a) {
    Status st = connect_locked(now);
    if (st.is_ok()) return st;
    last = st;
    if (a < attempts) {
      std::this_thread::sleep_for(to_wall(backoff));
      backoff = Duration::nanos(std::min<int64_t>(
          static_cast<int64_t>(static_cast<double>(backoff.ns()) *
                               retry_.backoff_multiplier),
          retry_.max_backoff.ns()));
    }
  }
  note_connect_failure_locked();
  return last;
}

BatchResponse RemoteAgent::total_loss_locked(
    const std::vector<ElementId>& sorted_known, size_t unknown) const {
  BatchResponse decoded;  // empty: every known id reconciles to kMissing
  BatchResponse out = wire::reconcile(sorted_known, decoded);
  out.unknown_ids = unknown;
  return out;
}

BatchResponse RemoteAgent::finish_batch_locked(
    BatchResponse out, const std::vector<ElementId>& departed_hit,
    SimTime now) const {
  if (departed_hit.empty()) return out;
  // Two-pointer merge of two ascending sequences: the wire responses and
  // the locally synthesized departures.  kFailedPrecondition is the marker
  // the controller turns into the "departed at reconnect" Status — no
  // channel attempt was spent, the roster is the authority.
  std::vector<QueryResponse> merged;
  merged.reserve(out.responses.size() + departed_hit.size());
  size_t ri = 0;
  for (const ElementId& id : departed_hit) {
    while (ri < out.responses.size() && out.responses[ri].record.element < id) {
      merged.push_back(std::move(out.responses[ri++]));
    }
    QueryResponse gone;
    gone.record.element = id;
    gone.record.timestamp = now;
    gone.quality = DataQuality::kMissing;
    gone.attempts = 1;
    gone.fail_code = StatusCode::kFailedPrecondition;
    merged.push_back(std::move(gone));
    ++out.degraded;
  }
  while (ri < out.responses.size()) {
    merged.push_back(std::move(out.responses[ri++]));
  }
  out.responses = std::move(merged);
  return out;
}

BatchResponse RemoteAgent::query_batch(const std::vector<ElementId>& ids,
                                       SimTime now, ThreadPool* /*pool*/) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches;
  if (m_batches_ != nullptr) m_batches_->increment();

  // Sort + dedupe like the in-process agent, and split known/unknown from
  // the hello cache — on a total transport loss, ids the agent never served
  // must stay *absent* (the controller's not_found path), not turn into
  // kMissing blind spots.
  std::vector<ElementId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Departed ids never travel the wire: the reconnect hello already proved
  // the far end dropped them, so they are answered locally as blind spots
  // (finish_batch_locked) and stripped from the request.
  std::vector<ElementId> departed_hit;
  if (!departed_.empty()) {
    auto keep = std::remove_if(sorted.begin(), sorted.end(),
                               [&](const ElementId& id) {
                                 if (departed_.count(id) == 0) return false;
                                 departed_hit.push_back(id);
                                 return true;
                               });
    sorted.erase(keep, sorted.end());
  }

  std::vector<ElementId> known;
  known.reserve(sorted.size());
  for (const ElementId& id : sorted) {
    if (element_set_.count(id) > 0) known.push_back(id);
  }
  const size_t unknown = sorted.size() - known.size();

  Status st = ensure_connected_locked(now);
  if (!st.is_ok()) {
    return finish_batch_locked(total_loss_locked(known, unknown), departed_hit,
                               now);
  }

  // The caller's trace context rides the envelope; {0, 0} (untraced) keeps
  // the request — and the server's reply — byte-identical to a build
  // without tracing.
  const TraceContext ctx = current_trace_context();
  const std::string request = wire::encode_message(
      wire::MessageKind::kBatchRequest,
      wire::encode_batch_request(
          {now, sorted, ctx.trace_id, ctx.span_id, bind_}));
  const int64_t trip_t0 = transport::span_clock_ns();

  // Queries are idempotent reads, so a connection that died *before any
  // reply byte arrived* earns exactly one reconnect + resend.  Once reply
  // bytes exist, no resend: the surviving prefix is reconciled instead
  // (resending could double modelled channel time and tear determinism).
  transport::BatchReadResult read;
  for (int attempt = 0;; ++attempt) {
    Status sent = sock_.send_all(request, deadline_);
    if (sent.is_ok()) {
      read = transport::read_batch(sock_, deadline_);
      if (read.clean()) break;
      if (!read.bytes.empty()) break;  // partial reply: reconcile below
    }
    drop_connection_locked();
    if (attempt >= 1) {
      return finish_batch_locked(total_loss_locked(known, unknown),
                                 departed_hit, now);
    }
    Status re = ensure_connected_locked(now);
    if (!re.is_ok()) {
      return finish_batch_locked(total_loss_locked(known, unknown),
                                 departed_hit, now);
    }
    trace_event(transport_trace_id(), now, TraceEventKind::kTransportReconnect,
                1.0, "resend");
  }

  wire::DecodeStats dstats;
  Result<BatchResponse> decoded = wire::decode_batch(read.bytes, &dstats);
  if (!decoded.ok()) {
    // Header never made it whole (or is garbage): nothing usable arrived.
    drop_connection_locked();
    ++stats_.damaged;
    if (m_damaged_ != nullptr) m_damaged_->increment();
    return finish_batch_locked(total_loss_locked(known, unknown), departed_hit,
                               now);
  }

  if (read.clean() && dstats.complete()) {
    // The common path: the batch crossed byte-identical; hand it through
    // untouched (responses, channel time, unknown count, degraded tally all
    // came off the wire).
    if (ctx.active()) {
      trace_span(transport_trace_id(), now, TraceEventKind::kSpanTransportTrip,
                 Duration::nanos(transport::span_clock_ns() - trip_t0),
                 next_span_id(), ctx.span_id,
                 static_cast<double>(sorted.size()), name_);
      // A traced request always has trace data piggybacked right behind the
      // batch; pull it off the stream so the connection stays framed.  A
      // loss here costs the lane (recoverable by harvest), not the batch.
      read_trace_data_locked();
    }
    return finish_batch_locked(std::move(decoded).take(), departed_hit, now);
  }

  // Torn or corrupt stream: the connection's framing is gone, so drop it,
  // and reconcile what survived.  Expected set = known request ids plus
  // anything the server actually answered (covers elements added remotely
  // since the hello).
  drop_connection_locked();
  ++stats_.damaged;
  if (m_damaged_ != nullptr) m_damaged_->increment();

  std::vector<ElementId> expected = known;
  for (const QueryResponse& r : decoded.value().responses) {
    expected.push_back(r.record.element);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  BatchResponse out = wire::reconcile(expected, decoded.value());
  const double lost =
      static_cast<double>(expected.size() - decoded.value().responses.size());
  trace_event(transport_trace_id(), now, TraceEventKind::kTransportDamaged,
              lost, name_);
  return finish_batch_locked(std::move(out), departed_hit, now);
}

Result<QueryResponse> RemoteAgent::query_attrs(
    const ElementId& id, const std::vector<std::string>& attrs, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);

  // Departed at a reconnect: fail fast with the departure status — the
  // roster is the authority, no dial or channel attempt is owed.
  if (departed_.count(id) > 0) {
    return query_failure_status(name_, id, 1, StatusCode::kFailedPrecondition);
  }

  Status st = ensure_connected_locked(now);
  if (!st.is_ok()) {
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }

  const TraceContext ctx = current_trace_context();
  const std::string request = wire::encode_message(
      wire::MessageKind::kSingleRequest,
      wire::encode_single_request(
          {now, id, attrs, ctx.trace_id, ctx.span_id, bind_}));

  Result<std::string> raw = Status::unavailable("unsent");
  for (int attempt = 0;; ++attempt) {
    Status sent = sock_.send_all(request, deadline_);
    if (sent.is_ok()) {
      raw = transport::read_message_bytes(sock_, deadline_);
      if (raw.ok()) break;
    }
    drop_connection_locked();
    if (attempt >= 1) {
      return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
    }
    Status re = ensure_connected_locked(now);
    if (!re.is_ok()) {
      return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
    }
  }

  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok()) {
    drop_connection_locked();
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }
  if (msg.value().kind == wire::MessageKind::kError) {
    Result<wire::ErrorMsg> err = wire::decode_error(msg.value().body);
    if (!err.ok()) {
      drop_connection_locked();
      return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
    }
    // The exact Status the in-process path produced, re-raised verbatim.
    return Status(err.value().code, err.value().message);
  }
  if (msg.value().kind != wire::MessageKind::kSingleResponse) {
    drop_connection_locked();
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }
  size_t consumed = 0;
  Result<QueryResponse> r = wire::decode_frame(msg.value().body, &consumed);
  if (!r.ok()) {
    drop_connection_locked();
    return query_failure_status(name_, id, 1, StatusCode::kUnavailable);
  }
  return r;
}

}  // namespace perfsight
