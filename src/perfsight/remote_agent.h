// Remote agents: PerfSight's per-server agent behind a real socket (§3,
// §4.2–4.3 — the architecture is distributed; this is where the repo's
// bytes first cross a process boundary).
//
// Two halves:
//
//   RemoteAgentServer — the fleet server that runs on the agents' machine.
//   One poll()-driven event-loop thread owns the listener plus every live
//   connection, so many controllers can dial one host concurrently — no
//   connection ever waits in the backlog behind another being served.  Each
//   connection is a small state machine: hello queued on accept, request
//   bytes accumulated nonblocking into a partial-read buffer until a whole
//   PSM1 message lands, dispatch, replies drained through a per-connection
//   write queue with deadline-bounded backpressure.  The server hosts MANY
//   served agents: the hello advertises the roster, batch/single requests
//   route by the agent name on their envelope, and requests without one
//   (old clients) fall back to the primary (first-registered) agent.
//
//   RemoteAgent — the controller-side adapter.  It implements AgentClient
//   over one connection to a server, so the controller's scatter-gather path
//   (controller.cc) treats socket-backed and in-process agents identically.
//   Constructed with an agent name it binds to that roster entry and stamps
//   the name on every request; constructed bare it speaks the old
//   single-agent protocol and gets the primary.
//
// The contract the differential suite (transport_test) holds this pair to:
// on a clean stream, every byte of a BatchResponse — records, qualities,
// attempts, fail codes, channel time, unknown-id count — crosses unchanged,
// so controller output over sockets is byte-identical to in-process.  On a
// damaged stream (torn connection, corrupt frame), the surviving prefix is
// decoded and wire::reconcile turns the lost frames into kMissing blind
// spots with StatusCode::kUnavailable — the controller merge then produces
// the same "unavailable after N attempt(s)" text a local channel failure
// would, while ids the agent never had keep their not_found text (they are
// absent from the reconcile set, not missing from it).
//
// Failure handling reuses PR 3's RetryPolicy/CircuitBreakerConfig machinery
// with a wall-clock interpretation: reconnects back off exponentially
// (initial_backoff × backoff_multiplier^k, capped at max_backoff, slept on
// the OS clock), and after `failure_threshold` consecutive connect failures
// the breaker opens — queries fast-fail to all-kMissing without paying a
// dial timeout until `cooldown` (wall clock) expires and a half-open probe
// reconnects.
//
// Tracing across the socket (trace.h): when the calling thread carries an
// active TraceContext, the adapter stamps its trace id + parent span onto
// the request envelope, records a client-side kSpanTransportTrip span, and
// reads the server's piggybacked trace data after a clean batch reply.  The
// server records a kSpanServerBatch/kSpanServerSingle span (span-clock
// timestamps) into its own TraceRecorder for every traced request, parented
// to the span id off the wire.  With no active context the request carries
// trace_id 0 and the server's reply bytes are identical to an untraced
// build — tracing never perturbs the differential contract.  The hello
// handshake carries the server's span clock; the adapter brackets the
// handshake with its own clock samples and keeps the midpoint offset
// estimate that to_chrome_trace() uses to align harvested lanes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "perfsight/agent.h"
#include "perfsight/metrics.h"
#include "perfsight/trace.h"
#include "perfsight/transport.h"

namespace perfsight {

namespace wire {
struct Message;        // wire.h; only referenced, never stored, in this header
struct StreamDataMsg;  // wire.h; held by pointer (per-connection delta base)
}

// --- server stub -------------------------------------------------------------

class RemoteAgentServer {
 public:
  // Serves `agent` (not owned; must outlive the server) on `ep`.
  RemoteAgentServer(Agent* agent, transport::Endpoint ep)
      : RemoteAgentServer(std::vector<Agent*>{agent}, std::move(ep)) {}

  // Fleet form: one event-loop thread serves every agent in `agents`
  // (none owned; all must outlive the server; at least one required).
  // agents[0] is the primary — the one old-format requests route to and
  // the one the hello's base fields describe.
  RemoteAgentServer(std::vector<Agent*> agents, transport::Endpoint ep);
  ~RemoteAgentServer() { stop(); }
  RemoteAgentServer(const RemoteAgentServer&) = delete;
  RemoteAgentServer& operator=(const RemoteAgentServer&) = delete;

  // Binds + starts the serve thread.  After success, endpoint() carries the
  // resolved address (ephemeral tcp ports are filled in).
  Status start();
  // Stops the serve thread, closes every live connection and the listener.
  // Idempotent.
  void stop();
  bool running() const { return running_; }
  const transport::Endpoint& endpoint() const { return ep_; }

  uint64_t batches_served() const {
    return batches_served_.load(std::memory_order_relaxed);
  }
  // Accept failures that were real errors (EMFILE, ENFILE, ...), not idle
  // timeouts.  Each one also backs the accept path off exponentially so a
  // persistent error cannot hot-spin the serve thread at 100% CPU.
  uint64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }
  // Live multiplexed connections (tests; racy by nature).
  size_t live_connections() const {
    return live_connections_.load(std::memory_order_relaxed);
  }

  // Per-connection I/O budget: a connection holding a partial request for
  // longer than this, or failing to drain its reply queue for longer than
  // this (backpressure), is closed.  Call before start().
  void set_io_deadline(transport::WallDuration d) { io_deadline_ = d; }

  // Creates perfsight_transport_accept_errors_total (labeled by endpoint)
  // in `m`.  Call before start(); the serve thread reads the pointer.
  void set_metrics(MetricsRegistry* m);

  // The server-side flight recorder: serve spans for traced requests land
  // here and leave via harvest / piggyback.  Always enabled; it only fills
  // when clients send traced requests.
  TraceRecorder& trace_recorder() { return trace_recorder_; }

  // Shifts this server's view of the span clock (tests: prove the client's
  // hello-derived offset estimate really corrects skewed remote lanes).
  void set_clock_skew_ns(int64_t skew_ns) {
    clock_skew_ns_.store(skew_ns, std::memory_order_relaxed);
  }

  // --- push-mode streaming (kSubscribe / kStreamData) ----------------------
  // Captures one window at `at` for every agent with at least one subscribed
  // connection and queues the kStreamData frames on those connections' write
  // buffers.  Callable from any thread: the serve loop (which owns the
  // connections) performs the capture + enqueue on its next tick, so a
  // subscriber sees the frame within one poll interval.  With no subscribers
  // the request is free — nothing is captured and not one stream byte is
  // queued, keeping unsubscribed deployments byte-identical.  Per-agent
  // sequence numbers advance once per published window (shared by every
  // subscriber of that agent), giving clients cross-connection gap
  // detection; each connection's first frame is a full snapshot.
  void request_publish(SimTime at);
  // Stream frames enqueued to subscribers (all connections, all agents).
  uint64_t stream_frames_published() const {
    return stream_frames_.load(std::memory_order_relaxed);
  }

  // --- damage injection (tests) --------------------------------------------
  // Each arms the *next* batch reply, once.  Truncate sends only the first
  // `bytes` of the encoded batch and then kills the connection (a torn
  // stream); corrupt XORs the byte at `index` (a checksum failure); drop
  // closes the connection without replying at all.
  void inject_truncate_next_batch(size_t bytes);
  void inject_corrupt_next_batch(size_t index);
  void inject_drop_next_reply();
  // Arms the next publish tick, once: sequence numbers advance but no frame
  // is sent — every subscriber observes a gap it must repair.
  void inject_skip_next_publish();

 private:
  // One multiplexed connection's state machine.  Owned exclusively by the
  // serve thread; no locks.
  struct Conn {
    transport::Socket sock;
    std::string rbuf;        // partial-read buffer: bytes toward a message
    std::string wbuf;        // reply bytes awaiting the socket buffer
    size_t woff = 0;         // bytes of wbuf already sent
    bool close_after_flush = false;  // injected truncate: torn stream
    bool dead = false;               // marked for reaping this tick
    // Deadline anchors: when the current partial read / undrained write
    // started.  time_point{} (epoch) = nothing pending.
    transport::Clock::time_point read_since{};
    transport::Clock::time_point write_since{};
    // Push-mode subscription: non-empty = resolved agent name this
    // connection subscribed to.  `stream_prev` is the delta base — the last
    // frame queued on THIS connection (null until the snapshot goes out).
    std::string sub_agent;
    std::unique_ptr<wire::StreamDataMsg> stream_prev;
  };

  void serve();
  // Drains request_publish() boundaries: one capture per subscribed agent
  // per boundary, frames delta-coded per connection.  Serve thread only.
  void publish_tick(SimTime at, std::vector<std::unique_ptr<Conn>>& conns);
  // Parses + dispatches every complete message in c.rbuf.  False when the
  // connection must close (protocol damage, injected drop, dead peer).
  bool drain_messages(Conn& c);
  // Dispatches one decoded message; replies append to c.wbuf.  False = close.
  bool handle_message(Conn& c, const wire::Message& msg);
  // Flushes c.wbuf as far as the socket buffer allows.  False = dead peer
  // or write deadline exceeded (backpressure bound).
  bool flush_writes(Conn& c);
  // Roster lookup: "" = primary, unknown name = nullptr.
  Agent* route(const std::string& agent_name);
  std::string hello_bytes() const;
  // This server's span clock: transport::span_clock_ns() plus the test skew.
  int64_t clock_ns() const;
  // PSM1 kTraceData message draining trace_recorder_, attributed to
  // `process` (the routed agent's name).
  std::string trace_data_bytes(const std::string& process);

  std::vector<Agent*> agents_;  // agents_[0] is the primary
  transport::Endpoint ep_;
  transport::Listener listener_;
  transport::WallDuration io_deadline_{5000};
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> batches_served_{0};
  std::atomic<uint64_t> accept_errors_{0};
  std::atomic<size_t> live_connections_{0};
  MetricsRegistry::CounterMetric* m_accept_errors_ = nullptr;
  TraceRecorder trace_recorder_;
  std::atomic<int64_t> clock_skew_ns_{0};

  // Push-mode state.  stream_seq_ is serve-thread-only; the pending queue
  // is the one cross-thread handoff (request_publish may be called from
  // anywhere).
  std::unordered_map<std::string, uint64_t> stream_seq_;
  std::mutex publish_mu_;
  std::vector<SimTime> pending_publishes_;
  std::atomic<uint64_t> stream_frames_{0};

  std::mutex inject_mu_;
  std::optional<size_t> truncate_next_;
  std::optional<size_t> corrupt_next_;
  bool drop_next_ = false;
  bool skip_next_publish_ = false;
};

// --- controller-side adapter -------------------------------------------------

class RemoteAgent : public AgentClient {
 public:
  // Bare: binds to whatever single agent (or fleet primary) the endpoint's
  // hello advertises — the pre-roster protocol, byte-identical on the wire.
  // With `agent`: binds to that roster entry of a fleet server and stamps
  // the name on every request so the event loop routes it.
  explicit RemoteAgent(transport::Endpoint ep, std::string agent = {})
      : ep_(std::move(ep)), bind_(std::move(agent)) {}

  // Dials the server and completes the hello handshake, caching the bound
  // agent's name and element set.  Must succeed before the adapter is
  // registered with a controller (name()/has_element() answer from the
  // cache).  Reconnects after that are automatic.  Fails with
  // kFailedPrecondition when a bound name is missing from the roster.
  Status connect();

  // Every agent the last hello advertised (primary first).  Lets a caller
  // discover a fleet server's roster through one dialed adapter and bind
  // further adapters by name (Deployment::add_remote_agents).
  std::vector<std::string> roster_names() const;

  const std::string& name() const override;
  bool has_element(const ElementId& id) const override;
  std::vector<ElementId> element_ids() const override;

  Result<QueryResponse> query_attrs(const ElementId& id,
                                    const std::vector<std::string>& attrs,
                                    SimTime now) override;

  // One wire round trip per call.  `pool` is ignored — concurrency across
  // remote agents comes from the controller's fan-out; the connection itself
  // is serialized.  Never fails outright: transport loss degrades to
  // kMissing responses (see header comment).
  BatchResponse query_batch(const std::vector<ElementId>& ids, SimTime now,
                            ThreadPool* pool = nullptr) override;

  // Reconnect/backoff knobs (wall-clock interpretation; see header comment).
  void set_retry_policy(RetryPolicy p);
  void set_breaker_config(CircuitBreakerConfig c);
  // Per-read/connect wall-clock deadline.
  void set_deadline(transport::WallDuration d);
  // Creates the perfsight_transport_* counters (labeled by agent) in `m`.
  void set_metrics(MetricsRegistry* m);

  // Pulls the server's drained trace rings into the *global* TraceRecorder
  // as a remote lane (clock-offset attached).  The piggyback fast path makes
  // this unnecessary after clean traced batches; harvest catches spans from
  // single requests and from sweeps whose piggyback was lost.
  Status harvest_trace();

  // Remote span clock minus local, estimated at the last hello handshake.
  int64_t clock_offset_ns() const;

  BreakerState breaker_state() const;

  struct TransportStats {
    uint64_t connects = 0;    // successful dial+hello handshakes
    uint64_t reconnects = 0;  // connects after the first
    uint64_t batches = 0;     // batch round trips attempted
    uint64_t damaged = 0;     // batches that came back short/corrupt
    uint64_t fast_fails = 0;  // queries skipped while the breaker was open
    uint64_t epoch_skips = 0;  // reconnects whose unchanged epoch skipped
                               // the element-set diff
  };
  TransportStats transport_stats() const;

  // One reconnect's element-set delta: what the fresh hello advertises for
  // the bound agent versus what this adapter cached at the previous
  // connection.  Removed ids become immediate "departed at reconnect"
  // blind spots; added ids are servable right away — no full redial, the
  // reconnect's hello already registered them.
  struct RosterDiff {
    uint64_t old_epoch = 0;  // 0: the previous hello predates epochs
    uint64_t new_epoch = 0;
    std::vector<ElementId> added;    // ascending
    std::vector<ElementId> removed;  // ascending
  };
  // Drains the diffs observed at reconnects, oldest first (empty when every
  // reconnect found the element set unchanged).  The Deployment layer reads
  // these to keep its registrations honest.
  std::vector<RosterDiff> drain_roster_diffs();
  // Elements that departed at some reconnect and have not re-appeared
  // (ascending).  Queries to them fail immediately with the
  // "departed at reconnect" status instead of travelling the wire.
  std::vector<ElementId> departed_elements() const;

 private:
  // All _locked members require mu_.
  Status connect_locked(SimTime now);
  // Breaker gate + RetryPolicy reconnect loop.  Ok when a live connection
  // is available.
  Status ensure_connected_locked(SimTime now);
  void drop_connection_locked();
  void note_connect_failure_locked();
  // All-blind-spots batch for a total transport loss (every known requested
  // id kMissing/kUnavailable, unknowns counted like the in-process agent).
  BatchResponse total_loss_locked(const std::vector<ElementId>& sorted_known,
                                  size_t unknown) const;
  // Merges synthesized "departed at reconnect" blind spots (ascending
  // `departed_hit`) into an ascending batch.  No-op for an empty hit list,
  // keeping the fault-free path byte-identical.
  BatchResponse finish_batch_locked(BatchResponse out,
                                    const std::vector<ElementId>& departed_hit,
                                    SimTime now) const;

  // Reads a piggybacked/harvested kTraceData message off the live socket
  // and merges it into the global recorder as a remote lane.
  Status read_trace_data_locked();

  transport::Endpoint ep_;
  std::string bind_;  // roster name to bind; empty = primary/single agent
  transport::WallDuration deadline_{2000};

  mutable std::mutex mu_;
  transport::Socket sock_;
  int64_t clock_offset_ns_ = 0;  // remote span clock minus local, per hello
  std::string name_;
  std::vector<std::string> roster_names_;    // from the last hello
  std::vector<ElementId> elements_;          // ascending, from the hello
  std::unordered_set<ElementId> element_set_;
  uint64_t epoch_ = 0;  // element-set epoch of the last hello (0: none)
  // Elements lost at a reconnect and not re-added since; queries to them
  // are answered locally with kFailedPrecondition (departed at reconnect).
  std::unordered_set<ElementId> departed_;
  std::vector<RosterDiff> roster_diffs_;  // pending drain_roster_diffs()
  RetryPolicy retry_;
  CircuitBreakerConfig breaker_cfg_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  uint32_t consecutive_failures_ = 0;
  transport::Clock::time_point breaker_opened_at_{};
  TransportStats stats_;
  MetricsRegistry::CounterMetric* m_connects_ = nullptr;
  MetricsRegistry::CounterMetric* m_reconnects_ = nullptr;
  MetricsRegistry::CounterMetric* m_batches_ = nullptr;
  MetricsRegistry::CounterMetric* m_damaged_ = nullptr;
};

}  // namespace perfsight
