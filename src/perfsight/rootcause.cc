#include "perfsight/rootcause.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "perfsight/trace.h"

namespace perfsight {

const char* to_string(MbState s) {
  switch (s) {
    case MbState::kNormal:
      return "normal";
    case MbState::kReadBlocked:
      return "ReadBlocked";
    case MbState::kWriteBlocked:
      return "WriteBlocked";
  }
  return "?";
}

const char* to_string(MbRole r) {
  switch (r) {
    case MbRole::kUnknown:
      return "root-cause";
    case MbRole::kOverloaded:
      return "Overloaded";
    case MbRole::kUnderloaded:
      return "Underloaded";
  }
  return "?";
}

namespace {

struct MbSample {
  double in_bytes = 0;
  double in_time_ns = 0;
  double out_bytes = 0;
  double out_time_ns = 0;
  double capacity_mbps = 0;
  bool valid = false;
  DataQuality quality = DataQuality::kMissing;  // kFresh once sampled cleanly
};

// The attribute set one chain-walk sample needs; both sweeps request it in
// one scatter-gather fan-in over the whole chain.
std::vector<std::string> sample_attrs() {
  return {attr::kInBytes, attr::kInTimeNs, attr::kOutBytes, attr::kOutTimeNs,
          attr::kCapacityMbps};
}

MbSample to_sample(const Result<Controller::QualifiedRecord>& r) {
  MbSample s;
  if (!r.ok()) return s;
  s.quality = r.value().quality;
  const StatsRecord& rec = r.value().record;
  s.in_bytes = rec.get_or(attr::kInBytes, 0);
  s.in_time_ns = rec.get_or(attr::kInTimeNs, 0);
  s.out_bytes = rec.get_or(attr::kOutBytes, 0);
  s.out_time_ns = rec.get_or(attr::kOutTimeNs, 0);
  s.capacity_mbps = rec.get_or(attr::kCapacityMbps, 0);
  s.valid = true;
  return s;
}

// b/t in Mbps; -1 when the side saw no activity worth judging.
double side_rate_mbps(double bytes, double time_ns, double min_bytes) {
  if (time_ns <= 0) return -1;
  if (bytes < min_bytes && time_ns < 1e5) return -1;
  return bytes * 8.0 / (time_ns / 1e9) / 1e6;
}

}  // namespace

RootCauseReport RootCauseAnalyzer::analyze(TenantId tenant,
                                           Duration window) const {
  static const ElementId kAlgo2Id{"diagnosis/rootcause"};
  const SimTime t0 = controller_->now();
  const Duration ch0 = controller_->channel_time();
  trace_event(kAlgo2Id, t0, TraceEventKind::kDiagnosisStarted,
              static_cast<double>(tenant.value()), "Algorithm 2 chain walk");

  RootCauseReport report;
  const std::vector<ElementId>& mbs = controller_->middleboxes(tenant);
  const ChainTopology& chain = controller_->chain(tenant);

  // Both chain sweeps ride the controller's scatter-gather path: one batch
  // per owning agent, merged back in `mbs` order.
  const std::vector<std::string> attrs = sample_attrs();
  std::vector<Result<Controller::QualifiedRecord>> sweep1 =
      controller_->get_attr_many(tenant, mbs, attrs);
  controller_->advance(window);
  std::vector<Result<Controller::QualifiedRecord>> sweep2 =
      controller_->get_attr_many(tenant, mbs, attrs);

  std::unordered_map<ElementId, MbState> states;
  for (size_t mi = 0; mi < mbs.size(); ++mi) {
    const ElementId& mb = mbs[mi];
    MbSample s1 = to_sample(sweep1[mi]);
    MbSample s2 = to_sample(sweep2[mi]);
    MbObservation obs;
    obs.id = mb;
    obs.quality = worse(s1.quality, s2.quality);
    // Refusal to exonerate on degraded data: only a measured sample pair
    // (fresh primary or quorum replica) may classify a middlebox as blocked
    // (and thereby remove candidates).  A stale/torn/missing middlebox stays
    // kNormal — still a suspect.
    if (s1.valid && s2.valid && is_measured(obs.quality)) {
      double db_in = s2.in_bytes - s1.in_bytes;
      double dt_in = s2.in_time_ns - s1.in_time_ns;
      double db_out = s2.out_bytes - s1.out_bytes;
      double dt_out = s2.out_time_ns - s1.out_time_ns;
      obs.capacity_mbps = s2.capacity_mbps;
      obs.in_rate_mbps = side_rate_mbps(db_in, dt_in, min_bytes_);
      obs.out_rate_mbps = side_rate_mbps(db_out, dt_out, min_bytes_);
      obs.has_input = obs.in_rate_mbps >= 0;
      obs.has_output = obs.out_rate_mbps >= 0;
      // Algorithm 2, lines 12-17: blocked iff the side moved data slower
      // than the vNIC could have carried it.
      if (obs.has_input && obs.capacity_mbps > 0 &&
          obs.in_rate_mbps < obs.capacity_mbps) {
        obs.state = MbState::kReadBlocked;
      } else if (obs.has_output && obs.capacity_mbps > 0 &&
                 obs.out_rate_mbps < obs.capacity_mbps) {
        obs.state = MbState::kWriteBlocked;
      }
    }
    states[mb] = obs.state;
    if (!is_measured(obs.quality)) report.blind_spots.push_back(obs);
    report.observations.push_back(obs);
  }
  if (!mbs.empty()) {
    report.coverage =
        static_cast<double>(mbs.size() - report.blind_spots.size()) /
        static_cast<double>(mbs.size());
  }

  // Candidate filtering (Algorithm 2, lines 14/17) with one refinement for
  // branched topologies: a ReadBlocked middlebox exonerates its successors
  // *because they are also ReadBlocked* (the paper's own justification) —
  // so the removal walks only through successors that are themselves
  // ReadBlocked.  Unconditional removal over a DAG with a shared element
  // (two content filters logging to one NFS) would let an idle branch
  // exonerate the true root cause.
  std::unordered_set<ElementId> cand(mbs.begin(), mbs.end());
  auto walk_remove = [&](const ElementId& start, MbState state,
                         bool forward) {
    cand.erase(start);
    std::vector<ElementId> stack{start};
    std::unordered_set<ElementId> seen{start};
    while (!stack.empty()) {
      ElementId n = stack.back();
      stack.pop_back();
      const std::vector<ElementId>& next =
          forward ? chain.direct_successors(n) : chain.direct_predecessors(n);
      for (const ElementId& m : next) {
        if (!seen.insert(m).second) continue;
        if (states[m] == state) {
          cand.erase(m);
          stack.push_back(m);
        }
      }
    }
  };
  for (const ElementId& mb : mbs) {
    if (states[mb] == MbState::kReadBlocked) {
      walk_remove(mb, MbState::kReadBlocked, /*forward=*/true);
    } else if (states[mb] == MbState::kWriteBlocked) {
      walk_remove(mb, MbState::kWriteBlocked, /*forward=*/false);
    }
  }
  for (const ElementId& mb : mbs) {
    if (cand.count(mb)) report.root_causes.push_back(mb);
  }

  // Annotate surviving candidates with the Overloaded/Underloaded role.
  for (const ElementId& mb : report.root_causes) {
    MbRole role = MbRole::kUnknown;
    bool preds_write_blocked = false;
    bool succs_read_blocked = false;
    for (const ElementId& p : chain.predecessors(mb)) {
      if (states[p] == MbState::kWriteBlocked) preds_write_blocked = true;
    }
    for (const ElementId& s : chain.successors(mb)) {
      if (states[s] == MbState::kReadBlocked) succs_read_blocked = true;
    }
    if (preds_write_blocked) {
      role = MbRole::kOverloaded;
    } else if (succs_read_blocked) {
      role = MbRole::kUnderloaded;
    }
    report.root_cause_roles.push_back(role);
  }

  std::unordered_map<ElementId, DataQuality> quality_of;
  for (const MbObservation& o : report.observations) quality_of[o.id] = o.quality;
  if (report.root_causes.empty()) {
    report.narrative =
        "no middlebox survives filtering: chain states are consistent with "
        "healthy end-to-end flow";
  } else {
    report.narrative = "root cause candidate(s):";
    for (size_t i = 0; i < report.root_causes.size(); ++i) {
      report.narrative += " " + report.root_causes[i].name + " (" +
                          to_string(report.root_cause_roles[i]) + ")";
      const DataQuality q = quality_of[report.root_causes[i]];
      if (!is_measured(q)) {
        // A candidate that survived because it *could not* be measured is a
        // different claim than one measured and not exonerated.
        report.narrative += std::string(" [unverified: ") + to_string(q) +
                            " counters]";
      }
    }
  }
  if (!report.blind_spots.empty()) {
    report.narrative += "; " + std::to_string(report.blind_spots.size()) +
                        " middlebox(es) with degraded counters (coverage " +
                        std::to_string(
                            static_cast<int>(report.coverage * 100 + 0.5)) +
                        "%)";
  }

  const SimTime t1 = controller_->now();
  const Duration cost = (t1 - t0) + (controller_->channel_time() - ch0);
  if (metrics_ != nullptr) {
    metrics_
        ->histogram("perfsight_rootcause_diagnosis_seconds",
                    "End-to-end Algorithm 2 cost: measurement window plus "
                    "modelled channel time")
        .observe(cost.sec());
  }
  trace_event(kAlgo2Id, t1, TraceEventKind::kDiagnosisCompleted, cost.ms(),
              report.root_causes.empty() ? "no root cause"
                                         : "root cause found");
  return report;
}

std::string to_text(const RootCauseReport& r) {
  std::string out;
  out += "=== Algorithm 2: root-cause report ===\n";
  for (const MbObservation& o : r.observations) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-24s b/t_in=%8.1f Mbps  b/t_out=%8.1f Mbps  C=%6.1f  "
                  "state=%s",
                  o.id.name.c_str(), o.in_rate_mbps, o.out_rate_mbps,
                  o.capacity_mbps, to_string(o.state));
    out += line;
    // Quality markers only for degraded rows: fresh output stays
    // byte-identical to the pre-fault format.
    if (!is_fresh(o.quality)) {
      out += std::string("  [") + to_string(o.quality) + "]";
    }
    out += "\n";
  }
  out += "  " + r.narrative + "\n";
  return out;
}

}  // namespace perfsight
