// Algorithm 2 (§5.2): locate the root-cause middlebox in a chain.
//
// Performance problems propagate through TCP backpressure: an Overloaded
// middlebox makes its predecessors WriteBlocked and successors ReadBlocked;
// an Underloaded source makes its successors ReadBlocked (Fig. 7).  The
// analyzer samples each middlebox's (inBytes, inTime, outBytes, outTime)
// over one window, computes its state against the vNIC capacity C —
//
//   ReadBlocked   iff  b_in  / t_in  <  C   (reads slower than the wire can
//                                            deliver: it was waiting)
//   WriteBlocked  iff  b_out / t_out <  C   (writes slower than the wire can
//                                            accept: the kernel buffer was
//                                            full)
//
// — then filters the candidate set: a ReadBlocked middlebox exonerates
// itself and its (transitive) successors; a WriteBlocked one exonerates
// itself and its predecessors.  What remains are the plausible root causes.
#pragma once

#include <string>
#include <vector>

#include "perfsight/controller.h"
#include "perfsight/metrics.h"

namespace perfsight {

enum class MbState { kNormal, kReadBlocked, kWriteBlocked };
const char* to_string(MbState s);

// How a surviving candidate relates to its neighbours — the paper's
// Overloaded / Underloaded vocabulary, reported for the operator.
enum class MbRole { kUnknown, kOverloaded, kUnderloaded };
const char* to_string(MbRole r);

struct MbObservation {
  ElementId id;
  MbState state = MbState::kNormal;
  double in_rate_mbps = -1;   // b_in / t_in; <0 when the side is unused
  double out_rate_mbps = -1;  // b_out / t_out
  double capacity_mbps = 0;
  bool has_input = false;
  bool has_output = false;
  // Collection quality of the two samples behind this observation (the
  // worse of the pair).  Non-fresh middleboxes are never classified
  // ReadBlocked/WriteBlocked: exoneration from stale or torn counters could
  // silently remove the true root cause, so they stay kNormal and remain
  // candidates.
  DataQuality quality = DataQuality::kFresh;
};

struct RootCauseReport {
  std::vector<MbObservation> observations;  // every middlebox, chain order
  std::vector<ElementId> root_causes;       // surviving candidates
  std::vector<MbRole> root_cause_roles;     // parallel to root_causes
  // Middleboxes whose counters were degraded (stale/torn/missing), and the
  // fraction observed fresh.  A verdict with coverage < 1 is conservative:
  // degraded middleboxes cannot be exonerated.
  std::vector<MbObservation> blind_spots;
  double coverage = 1.0;
  std::string narrative;
};

class RootCauseAnalyzer {
 public:
  explicit RootCauseAnalyzer(const Controller* controller)
      : controller_(controller) {}

  // Bytes a side must move within the window before its rate is trusted;
  // guards against classifying an idle side from a handful of bytes.
  void set_min_bytes(double b) { min_bytes_ = b; }

  // Self-profiling sink: each analyze() observes its end-to-end cost into
  // perfsight_rootcause_diagnosis_seconds.  Optional; not owned.
  void set_metrics(MetricsRegistry* m) { metrics_ = m; }

  RootCauseReport analyze(TenantId tenant, Duration window) const;

 private:
  const Controller* controller_;
  double min_bytes_ = 1.0;
  MetricsRegistry* metrics_ = nullptr;
};

std::string to_text(const RootCauseReport& report);

}  // namespace perfsight
