#include "perfsight/rulebook.h"

#include <algorithm>

namespace perfsight {

const char* to_string(ElementKind k) {
  switch (k) {
    case ElementKind::kPNic:
      return "pNIC";
    case ElementKind::kPCpuBacklog:
      return "pCPU-backlog";
    case ElementKind::kNapi:
      return "NAPI";
    case ElementKind::kVSwitch:
      return "vswitch";
    case ElementKind::kTun:
      return "TUN";
    case ElementKind::kHypervisorIo:
      return "hypervisor-io";
    case ElementKind::kVNic:
      return "vNIC";
    case ElementKind::kGuestBacklog:
      return "guest-backlog";
    case ElementKind::kGuestSocket:
      return "guest-socket";
    case ElementKind::kMiddleboxApp:
      return "middlebox";
    case ElementKind::kOther:
      return "other";
  }
  return "?";
}

const char* to_string(ResourceKind r) {
  switch (r) {
    case ResourceKind::kCpu:
      return "CPU";
    case ResourceKind::kMemorySpace:
      return "memory-space";
    case ResourceKind::kMemoryBandwidth:
      return "memory-bandwidth";
    case ResourceKind::kIncomingBandwidth:
      return "incoming-bandwidth";
    case ResourceKind::kOutgoingBandwidth:
      return "outgoing-bandwidth";
    case ResourceKind::kBacklogQueue:
      return "pCPU-backlog-queue";
    case ResourceKind::kVmLocal:
      return "VM-local-resources";
  }
  return "?";
}

const char* to_string(LossSpread s) {
  switch (s) {
    case LossSpread::kNone:
      return "none";
    case LossSpread::kSingleVm:
      return "single-VM";
    case LossSpread::kMultiVm:
      return "multi-VM";
    case LossSpread::kSharedElement:
      return "shared-element";
  }
  return "?";
}

RuleBook RuleBook::standard() {
  RuleBook rb;
  // Incoming traffic exceeds pNIC capacity -> drops at the pNIC itself.
  rb.add_rule({ElementKind::kPNic, LossSpread::kNone,
               ResourceKind::kIncomingBandwidth,
               "rx offered load exceeds pNIC capacity or DMA ring drains too "
               "slowly"});
  // Egress beyond line rate backs up in the tx ring and is lost there.
  rb.add_rule({ElementKind::kPNic, LossSpread::kNone,
               ResourceKind::kOutgoingBandwidth,
               "tx offered load exceeds pNIC capacity (tx-ring overflow)"});
  // Outgoing overload / small-packet floods exhaust per-core backlog slots.
  rb.add_rule({ElementKind::kPCpuBacklog, LossSpread::kNone,
               ResourceKind::kBacklogQueue,
               "per-core backlog limited to N packets; small-packet floods "
               "exhaust slots"});
  rb.add_rule({ElementKind::kPCpuBacklog, LossSpread::kNone,
               ResourceKind::kOutgoingBandwidth,
               "egress exceeding pNIC tx drain rate backs up into backlog"});
  // Aggregated TUN drops: every VM's hypervisor-io is starved of a shared
  // resource -- CPU, memory bandwidth, or outgoing bandwidth (ambiguous
  // without aux signals).
  rb.add_rule({ElementKind::kTun, LossSpread::kMultiVm, ResourceKind::kCpu,
               "host CPU contention starves all hypervisor I/O handlers"});
  rb.add_rule({ElementKind::kTun, LossSpread::kMultiVm,
               ResourceKind::kMemoryBandwidth,
               "memory-bus contention slows all VM copies"});
  rb.add_rule({ElementKind::kTun, LossSpread::kMultiVm,
               ResourceKind::kOutgoingBandwidth,
               "machine-wide egress shortage backs up into all TUNs"});
  rb.add_rule({ElementKind::kTun, LossSpread::kMultiVm,
               ResourceKind::kMemorySpace,
               "buffer-memory pressure shrinks every socket queue"});
  // Individual TUN drops: that one VM is the bottleneck.
  rb.add_rule({ElementKind::kTun, LossSpread::kSingleVm,
               ResourceKind::kVmLocal,
               "only this VM's datapath drops: VM under-provisioned (its "
               "vCPUs or vNIC)"});
  // Guest-side socket overflow: the application inside the VM is too slow.
  rb.add_rule({ElementKind::kGuestSocket, LossSpread::kSingleVm,
               ResourceKind::kVmLocal,
               "middlebox software cannot keep up with its vNIC"});
  return rb;
}

std::vector<ResourceKind> RuleBook::candidates(ElementKind location,
                                               LossSpread spread) const {
  std::vector<ResourceKind> out;
  for (const Rule& r : rules_) {
    if (r.drop_location != location) continue;
    if (r.spread != LossSpread::kNone && spread != LossSpread::kNone &&
        r.spread != spread) {
      continue;
    }
    if (std::find(out.begin(), out.end(), r.resource) == out.end()) {
      out.push_back(r.resource);
    }
  }
  return out;
}

std::vector<ElementKind> RuleBook::symptom_locations(ResourceKind res) const {
  std::vector<ElementKind> out;
  for (const Rule& r : rules_) {
    if (r.resource != res) continue;
    if (std::find(out.begin(), out.end(), r.drop_location) == out.end()) {
      out.push_back(r.drop_location);
    }
  }
  return out;
}

std::vector<ResourceKind> RuleBook::disambiguate(
    std::vector<ResourceKind> candidates, const AuxSignals& aux) {
  auto drop = [&](ResourceKind r) {
    candidates.erase(std::remove(candidates.begin(), candidates.end(), r),
                     candidates.end());
  };
  // NIC directions far from saturation rule out the matching bandwidth
  // shortage.
  if (aux.nic_capacity > DataRate::zero() &&
      aux.nic_tx_throughput.bits_per_sec() <
          0.85 * aux.nic_capacity.bits_per_sec()) {
    drop(ResourceKind::kOutgoingBandwidth);
  }
  if (aux.nic_capacity > DataRate::zero() &&
      aux.nic_rx_throughput > DataRate::zero() &&
      aux.nic_rx_throughput.bits_per_sec() <
          0.85 * aux.nic_capacity.bits_per_sec()) {
    drop(ResourceKind::kIncomingBandwidth);
  }
  // Low host CPU utilization rules out CPU contention.
  if (aux.host_cpu_utilization >= 0 && aux.host_cpu_utilization < 0.85) {
    drop(ResourceKind::kCpu);
  }
  // No known memory pressure rules out memory-space shortage.
  if (!aux.memory_pressure) drop(ResourceKind::kMemorySpace);
  return candidates;
}

}  // namespace perfsight
