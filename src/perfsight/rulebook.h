// The resource-shortage / drop-location rule book (§5.1, Table 1).
//
// Algorithm 1 finds *where* packets are being lost; the rule book maps that
// location (plus whether the loss is spread across VMs or confined to one)
// back to the resources that can cause loss there.  Built exactly the way
// the paper builds it — by exhaustively exercising each shortage in
// controlled experiments (bench/table1_rulebook regenerates the table) —
// and kept as data, so operators can extend it.
//
// Some symptoms are ambiguous by nature (host CPU contention and memory-
// bandwidth contention both surface as aggregated TUN drops); the rule book
// returns the full candidate set and `disambiguate()` narrows it with the
// auxiliary signals the paper suggests (CPU utilization, NIC throughput).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace perfsight {

// Where in the software dataplane an element sits.  Every instrumented
// element reports its kind as the `type` attribute of its StatsRecord.
enum class ElementKind {
  kPNic = 0,
  kPCpuBacklog,     // per-core backlog; drops here = "backlog enqueue" drops
  kNapi,
  kVSwitch,
  kTun,             // TUN/TAP socket queue (last buffer before the VM)
  kHypervisorIo,    // QEMU I/O handler
  kVNic,
  kGuestBacklog,
  kGuestSocket,
  kMiddleboxApp,
  kOther,
};

const char* to_string(ElementKind k);

enum class ResourceKind {
  kCpu = 0,            // host CPU, contended across VMs
  kMemorySpace,        // kernel buffer memory
  kMemoryBandwidth,    // shared memory bus
  kIncomingBandwidth,  // pNIC rx capacity
  kOutgoingBandwidth,  // pNIC tx capacity
  kBacklogQueue,       // pCPU backlog slots (small-packet floods)
  kVmLocal,            // resources of one VM (its vCPUs / vNIC)
};

const char* to_string(ResourceKind r);

// Is the observed loss confined to one VM's datapath or spread over many?
// This is the paper's contention-vs-bottleneck discriminator (§5.1).
enum class LossSpread { kNone, kSingleVm, kMultiVm, kSharedElement };

const char* to_string(LossSpread s);

// Optional signals used to narrow ambiguous symptom sets (§5.1: "the
// operator can combine this with other symptoms such as CPU utilization
// and NIC throughput").  Negative / zero values mean "not provided".
struct AuxSignals {
  double host_cpu_utilization = -1;  // 0..1
  DataRate nic_rx_throughput = DataRate::zero();
  DataRate nic_tx_throughput = DataRate::zero();
  DataRate nic_capacity = DataRate::zero();
  bool memory_pressure = false;  // buffer-memory shortage known
};

class RuleBook {
 public:
  // The default rule book derived from the Table 1 experiments.
  static RuleBook standard();

  struct Rule {
    ElementKind drop_location;
    LossSpread spread;  // kNone matches any spread
    ResourceKind resource;
    std::string note;
  };

  void add_rule(Rule r) { rules_.push_back(std::move(r)); }
  const std::vector<Rule>& rules() const { return rules_; }

  // Candidate resources for a drop observed at `location` with `spread`.
  std::vector<ResourceKind> candidates(ElementKind location,
                                       LossSpread spread) const;

  // Forward direction (Table 1 rows): where does a shortage of `r`
  // manifest?  Used by the validation bench.
  std::vector<ElementKind> symptom_locations(ResourceKind r) const;

  // Narrows `candidates` using auxiliary signals; returns the (possibly
  // still plural) refined set.
  static std::vector<ResourceKind> disambiguate(
      std::vector<ResourceKind> candidates, const AuxSignals& aux);

 private:
  std::vector<Rule> rules_;
};

}  // namespace perfsight
