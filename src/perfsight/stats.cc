#include "perfsight/stats.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace perfsight {

namespace {

// Formats a double losslessly-enough for counters (integers print exactly).
std::string fmt_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

void skip_ws(const std::string& s, size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool expect(const std::string& s, size_t& i, char c) {
  skip_ws(s, i);
  if (i < s.size() && s[i] == c) {
    ++i;
    return true;
  }
  return false;
}

// Reads up to (not including) any of `stops`; trims trailing whitespace.
std::string read_token(const std::string& s, size_t& i, const char* stops) {
  skip_ws(s, i);
  size_t start = i;
  auto is_stop = [&](char c) {
    for (const char* p = stops; *p; ++p) {
      if (*p == c) return true;
    }
    return false;
  };
  while (i < s.size() && !is_stop(s[i])) ++i;
  size_t end = i;
  while (end > start && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(start, end - start);
}

}  // namespace

std::string to_wire(const StatsRecord& r) {
  std::string out = "<";
  out += fmt_value(static_cast<double>(r.timestamp.ns()));
  out += ", ";
  out += r.element.name;
  for (const Attr& a : r.attrs) {
    out += ", (";
    out += a.name;
    out += ", ";
    out += fmt_value(a.value);
    out += ")";
  }
  out += ">";
  return out;
}

Result<StatsRecord> from_wire(const std::string& line) {
  size_t i = 0;
  if (!expect(line, i, '<')) {
    return Status::invalid_argument("wire record must start with '<'");
  }
  std::string ts = read_token(line, i, ",>");
  if (!expect(line, i, ',')) {
    return Status::invalid_argument("missing element id");
  }
  std::string elem = read_token(line, i, ",>");
  if (elem.empty()) return Status::invalid_argument("empty element id");

  StatsRecord r;
  char* endp = nullptr;
  r.timestamp = SimTime::nanos(std::strtoll(ts.c_str(), &endp, 10));
  if (endp == ts.c_str()) return Status::invalid_argument("bad timestamp");
  r.element = ElementId{elem};

  while (expect(line, i, ',')) {
    if (!expect(line, i, '(')) {
      return Status::invalid_argument("expected '(' in attribute list");
    }
    std::string name = read_token(line, i, ",)");
    if (!expect(line, i, ',')) {
      return Status::invalid_argument("attribute missing value");
    }
    std::string val = read_token(line, i, ")");
    if (!expect(line, i, ')')) {
      return Status::invalid_argument("unterminated attribute");
    }
    char* vend = nullptr;
    double v = std::strtod(val.c_str(), &vend);
    if (vend == val.c_str()) {
      return Status::invalid_argument("bad attribute value: " + val);
    }
    r.attrs.push_back(Attr{std::move(name), v});
  }
  if (!expect(line, i, '>')) {
    return Status::invalid_argument("wire record must end with '>'");
  }
  return r;
}

std::string to_wire_batch(const std::vector<StatsRecord>& records) {
  std::string out;
  for (const StatsRecord& r : records) {
    out += to_wire(r);
    out += '\n';
  }
  return out;
}

Result<std::vector<StatsRecord>> from_wire_batch(const std::string& message) {
  std::vector<StatsRecord> out;
  size_t pos = 0;
  while (pos <= message.size()) {
    size_t nl = message.find('\n', pos);
    std::string line = nl == std::string::npos
                           ? message.substr(pos)
                           : message.substr(pos, nl - pos);
    pos = nl == std::string::npos ? message.size() + 1 : nl + 1;
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    Result<StatsRecord> r = from_wire(line);
    if (!r.ok()) return r.status();
    out.push_back(std::move(r).take());
  }
  return out;
}

StatsRecord project(const StatsRecord& r,
                    const std::vector<std::string>& names) {
  StatsRecord out;
  out.timestamp = r.timestamp;
  out.element = r.element;
  for (const std::string& n : names) {
    if (auto v = r.get(n)) out.attrs.push_back(Attr{n, *v});
  }
  return out;
}

}  // namespace perfsight
