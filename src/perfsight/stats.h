// The unified statistics record (§4.2):
//
//   <TimeStamp, Element, (attr1, value1), (attr2, value2), ...>
//
// Agents return element statistics in this one format regardless of the
// element kind; the controller and every diagnostic application consume
// only records, never element internals — that decoupling is the point of
// the framework.  A text wire format (parse/serialize round-trip) is
// provided for the agent↔controller channel.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/units.h"

namespace perfsight {

struct Attr {
  std::string name;
  double value = 0;
};

// Canonical attribute names.  Operators may extend records with custom
// attributes; these are the ones the built-in diagnostics rely on.
namespace attr {
inline constexpr const char* kRxPkts = "rxPkts";
inline constexpr const char* kTxPkts = "txPkts";
inline constexpr const char* kRxBytes = "rxBytes";
inline constexpr const char* kTxBytes = "txBytes";
inline constexpr const char* kDropPkts = "dropPkts";
inline constexpr const char* kDropBytes = "dropBytes";
inline constexpr const char* kInTimeNs = "inTimeNs";
inline constexpr const char* kOutTimeNs = "outTimeNs";
inline constexpr const char* kCapacityMbps = "capacityMbps";
inline constexpr const char* kQueuePkts = "queuePkts";
inline constexpr const char* kQueueBytes = "queueBytes";
inline constexpr const char* kType = "type";  // element-kind ordinal
inline constexpr const char* kVm = "vm";      // owning VM id; -1 if shared
// Middlebox-software byte counters (Algorithm 2 inputs; paired with
// kInTimeNs / kOutTimeNs above).
inline constexpr const char* kInBytes = "inBytes";
inline constexpr const char* kOutBytes = "outBytes";
}  // namespace attr

struct StatsRecord {
  SimTime timestamp;
  ElementId element;
  std::vector<Attr> attrs;

  // Value lookup; nullopt if the element does not expose `name`.
  std::optional<double> get(const std::string& name) const {
    for (const Attr& a : attrs) {
      if (a.name == name) return a.value;
    }
    return std::nullopt;
  }
  double get_or(const std::string& name, double fallback) const {
    auto v = get(name);
    return v ? *v : fallback;
  }
  void set(std::string name, double value) {
    for (Attr& a : attrs) {
      if (a.name == name) {
        a.value = value;
        return;
      }
    }
    attrs.push_back(Attr{std::move(name), value});
  }
};

// Text wire format, e.g.:
//   <1234000, m0/vm1/tun, (rxPkts, 42), (rxBytes, 63000)>
// Timestamps travel as integer nanoseconds.
std::string to_wire(const StatsRecord& r);
Result<StatsRecord> from_wire(const std::string& line);

// Agent->controller message framing: one record per line.  Blank lines are
// tolerated; a malformed line fails the whole batch (a corrupted message
// must not be half-consumed).
std::string to_wire_batch(const std::vector<StatsRecord>& records);
Result<std::vector<StatsRecord>> from_wire_batch(const std::string& message);

// Projects `names` out of `r` in order; missing attributes are skipped
// (the paper's GetAttr returns only attributes the element has).
StatsRecord project(const StatsRecord& r, const std::vector<std::string>& names);

}  // namespace perfsight
