// StatsSource: the element side of the element↔agent interface (§4.2).
//
// Every instrumented element — kernel devices, the virtual switch, QEMU's
// I/O handler, middlebox software — implements collect(), returning its
// counters as a StatsRecord.  The agent reaches each source over a channel
// whose kind reflects the real access mechanism (net_device file, /proc,
// OVS control channel, QEMU log, middlebox socket); channel kind determines
// the modelled query latency reported in Fig. 9.
#pragma once

#include <string>

#include "common/ids.h"
#include "common/units.h"
#include "perfsight/stats.h"

namespace perfsight {

// How the agent reaches an element's counters.
enum class ChannelKind {
  kNetDeviceFile,  // pNIC / TUN: net_device via sysfs-style file reads
  kProcFs,         // pCPU backlog: softnet_data via /proc
  kOvsChannel,     // virtual switch: per-rule stats via control channel
  kQemuLog,        // hypervisor I/O handler: instrumented QEMU log
  kGuestProc,      // guest-kernel elements, via guest agent
  kMbSocket,       // middlebox software: agent socket  (keep last: sizes
                   // kNumChannelKinds below)
};

// Number of channel kinds; per-kind tables (latency models, histograms)
// are sized from this so adding a kind can never silently overflow them.
inline constexpr size_t kNumChannelKinds =
    static_cast<size_t>(ChannelKind::kMbSocket) + 1;

const char* to_string(ChannelKind k);

class StatsSource {
 public:
  virtual ~StatsSource() = default;

  virtual ElementId id() const = 0;
  virtual ChannelKind channel_kind() const = 0;

  // Snapshot of the element's counters at simulated time `now`.
  virtual StatsRecord collect(SimTime now) const = 0;
};

}  // namespace perfsight
