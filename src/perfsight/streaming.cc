#include "perfsight/streaming.h"

#include <algorithm>
#include <utility>

#include "perfsight/stats.h"

namespace perfsight {

const char* to_string(StreamCache::Provenance p) {
  switch (p) {
    case StreamCache::Provenance::kStreamed:
      return "streamed";
    case StreamCache::Provenance::kRepaired:
      return "repaired";
    case StreamCache::Provenance::kInband:
      return "inband";
  }
  return "?";
}

// --- StreamPublisher ---------------------------------------------------------

StreamPublisher::StreamPublisher(AgentClient* agent, const FaultPlan* plan)
    : agent_(agent), plan_(plan), ids_(agent->element_ids()) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

Result<StreamPublisher::Published> StreamPublisher::publish(SimTime at,
                                                            ThreadPool* pool) {
  BatchResponse batch = agent_->query_batch(ids_, at, pool);

  wire::StreamDataMsg msg;
  msg.agent = agent_->name();
  msg.seq = seq_ + 1;
  msg.window_start = at;
  msg.channel_time = batch.channel_time;
  msg.responses = std::move(batch.responses);

  Result<std::string> body =
      wire::encode_stream_data(msg, has_prev_ ? &prev_ : nullptr);
  if (!body.ok()) return body.status();

  seq_ = msg.seq;
  prev_ = std::move(msg);
  has_prev_ = true;

  Published p;
  p.seq = seq_;
  p.body = std::move(body.value());
  p.dropped = plan_ != nullptr && plan_->stream_drop(agent_->name(), seq_);
  if (p.dropped) ++dropped_;
  return p;
}

// --- StreamCache -------------------------------------------------------------

void StreamCache::store_locked(Stream& s, SimTime window_start,
                               Provenance provenance,
                               std::vector<QueryResponse> responses) {
  Window& w = s.windows[window_start.ns()];
  w.provenance = provenance;
  w.responses = std::move(responses);
  if (retention_ > 0) {
    while (s.windows.size() > retention_) {
      s.windows.erase(s.windows.begin());
      ++stats_.windows_pruned;
    }
  }
}

bool StreamCache::beyond_horizon_locked(const Stream& s,
                                        int64_t window_ns) const {
  // A window older than everything retained would be inserted only to be
  // pruned back out — or worse, evict a live window to make room.  Only a
  // full cache has a horizon; a filling one accepts any boundary.
  return retention_ > 0 && s.windows.size() >= retention_ &&
         !s.windows.empty() && window_ns < s.windows.begin()->first;
}

Result<StreamCache::ApplyResult> StreamCache::apply(std::string_view body) {
  Result<wire::StreamFrameInfo> info = wire::peek_stream_data(body);
  if (!info.ok()) return info.status();

  std::lock_guard<std::mutex> lock(mu_);
  Stream& s = streams_[info.value().agent];

  ApplyResult r;
  r.seq = info.value().seq;
  r.expected = s.expected;
  r.window_start = info.value().window_start;

  // A fresh (or reset) stream accepts any seq — the first frame after a
  // subscribe is a snapshot, which may join a publisher mid-stream.
  const bool fresh = !s.has_prev;
  if (!fresh && r.seq > s.expected) {
    ++stats_.gaps;
    if (m_gaps_ != nullptr) m_gaps_->increment();
    r.missed = r.seq - s.expected;
    return r;  // applied == false: caller repairs, then re-applies
  }
  const bool regressed = !fresh && r.seq < s.expected;

  // A regressed stream lost its base (the publisher restarted): the frame
  // must stand alone, so decode it snapshot-style.  Delta attrs then fail
  // with "delta without base" instead of applying against the wrong world.
  const wire::StreamDataMsg* base = (fresh || regressed) ? nullptr : &s.prev;
  bool no_base = false;
  Result<wire::StreamDataMsg> decoded =
      wire::decode_stream_data(body, base, &no_base);
  if (!decoded.ok()) {
    if (no_base && base == nullptr) {
      // Not damage: a well-formed delta frame met a stream with no base to
      // decode it against — a fresh/reset cache joining mid-stream, or a
      // restarted publisher's epoch entered at a delta frame.  Answer
      // needs_snapshot (stream state untouched) so the caller resyncs via
      // StreamPublisher::force_snapshot or a resubscribe, instead of the
      // permanent decode-error loop a hard Status would cause here.
      ++stats_.snapshot_requests;
      r.regressed = regressed;
      r.needs_snapshot = true;
      return r;
    }
    return decoded.status();
  }
  wire::StreamDataMsg msg = std::move(decoded.value());

  if (regressed) {
    ++stats_.resets;
    r.regressed = true;
  }
  s.expected = r.seq + 1;
  store_locked(s, msg.window_start, Provenance::kStreamed, msg.responses);
  s.prev = std::move(msg);
  s.has_prev = true;

  ++stats_.frames_applied;
  stats_.bytes_applied += body.size();
  if (m_frames_ != nullptr) m_frames_->increment();
  if (m_bytes_ != nullptr) m_bytes_->add(body.size());
  r.applied = true;
  return r;
}

void StreamCache::repair(const std::string& agent, SimTime window_start,
                         const BatchResponse& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream& s = streams_[agent];

  if (beyond_horizon_locked(s, window_start.ns())) {
    // Resurrecting a window past the retention horizon would transiently
    // push windows.size() over retention_ and skew windows_pruned; worse,
    // rebasing the delta cursor onto ancient data would corrupt every later
    // in-order decode.  Drop the stale backfill whole.
    ++stats_.repairs_clamped;
    return;
  }

  store_locked(s, window_start, Provenance::kRepaired, batch.responses);

  // The repaired window becomes the delta base: the next in-order frame was
  // encoded against the publisher's capture of this same boundary, and the
  // fault plan's purity makes the pull's attr bits identical to it.
  wire::StreamDataMsg base;
  base.agent = agent;
  base.seq = s.expected;
  base.window_start = window_start;
  base.channel_time = batch.channel_time;
  base.responses = batch.responses;
  s.prev = std::move(base);
  s.has_prev = true;
  ++s.expected;

  ++stats_.repairs;
  if (m_repairs_ != nullptr) m_repairs_->increment();
}

void StreamCache::ingest(const std::string& agent, SimTime window_start,
                         Provenance p, std::vector<QueryResponse> responses) {
  std::sort(responses.begin(), responses.end(),
            [](const QueryResponse& a, const QueryResponse& b) {
              return a.record.element < b.record.element;
            });
  std::lock_guard<std::mutex> lock(mu_);
  Stream& s = streams_[agent];
  if (beyond_horizon_locked(s, window_start.ns())) {
    ++stats_.repairs_clamped;
    return;
  }
  // Side-door windows (in-band telemetry) never touch the seq/delta cursor:
  // they live on their own agent key and carry no wire base to rebase onto.
  store_locked(s, window_start, p, std::move(responses));
}

void StreamCache::reset_stream(const std::string& agent) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(agent);
  if (it == streams_.end()) return;
  it->second.has_prev = false;
  it->second.expected = 1;
  ++stats_.resets;
}

std::optional<QueryResponse> StreamCache::find(const std::string& agent,
                                               const ElementId& id,
                                               SimTime window_start) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = streams_.find(agent);
  if (sit == streams_.end()) return std::nullopt;
  auto wit = sit->second.windows.find(window_start.ns());
  if (wit == sit->second.windows.end()) return std::nullopt;
  const std::vector<QueryResponse>& rs = wit->second.responses;
  auto rit = std::lower_bound(
      rs.begin(), rs.end(), id,
      [](const QueryResponse& r, const ElementId& want) {
        return r.record.element < want;
      });
  if (rit == rs.end() || !(rit->record.element == id)) return std::nullopt;
  return *rit;
}

bool StreamCache::window_present(const std::string& agent,
                                 SimTime window_start) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = streams_.find(agent);
  return sit != streams_.end() &&
         sit->second.windows.count(window_start.ns()) > 0;
}

std::optional<StreamCache::Provenance> StreamCache::window_provenance(
    const std::string& agent, SimTime window_start) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = streams_.find(agent);
  if (sit == streams_.end()) return std::nullopt;
  auto wit = sit->second.windows.find(window_start.ns());
  if (wit == sit->second.windows.end()) return std::nullopt;
  return wit->second.provenance;
}

uint64_t StreamCache::next_seq(const std::string& agent) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = streams_.find(agent);
  return sit == streams_.end() ? 1 : sit->second.expected;
}

void StreamCache::set_retention(size_t windows) {
  std::lock_guard<std::mutex> lock(mu_);
  retention_ = windows;
}

StreamCache::Stats StreamCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void StreamCache::set_metrics(MetricsRegistry* m) {
  std::lock_guard<std::mutex> lock(mu_);
  m_frames_ = &m->counter("perfsight_stream_frames_applied_total",
                          "Stream frames absorbed into the window cache");
  m_gaps_ = &m->counter("perfsight_stream_gaps_total",
                        "Stream frames refused for a sequence gap");
  m_repairs_ = &m->counter("perfsight_stream_repairs_total",
                           "Windows backfilled by targeted repair pulls");
  m_bytes_ = &m->counter("perfsight_stream_bytes_applied_total",
                         "Encoded stream bytes accepted into the cache");
}

// --- StreamCacheAgent --------------------------------------------------------

StreamCacheAgent::StreamCacheAgent(const StreamCache* cache,
                                   std::string agent_name,
                                   std::vector<ElementId> elements)
    : cache_(cache), name_(std::move(agent_name)), ids_(std::move(elements)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  for (const ElementId& id : ids_) known_[id] = true;
}

StreamCacheAgent::StreamCacheAgent(const StreamCache* cache,
                                   const AgentClient& like)
    : StreamCacheAgent(cache, like.name(), like.element_ids()) {}

bool StreamCacheAgent::has_element(const ElementId& id) const {
  return known_.count(id) > 0;
}

Result<QueryResponse> StreamCacheAgent::lookup(const ElementId& id,
                                               SimTime now) const {
  std::optional<QueryResponse> r = cache_->find(name_, id, now);
  if (!r.has_value()) {
    // The window was never streamed or repaired — loud, distinct from any
    // pull-path text so it reads as a cache bug, not a channel fault.
    return Status::unavailable("stream cache: no window at t=" +
                               std::to_string(now.ns()) + "ns for agent " +
                               name_ + " element " + id.name);
  }
  return *r;
}

Result<QueryResponse> StreamCacheAgent::query_attrs(
    const ElementId& id, const std::vector<std::string>& attrs, SimTime now) {
  if (!has_element(id)) {
    return Status::not_found("agent " + name_ + ": no element " + id.name);
  }
  Result<QueryResponse> r = lookup(id, now);
  if (!r.ok()) return r.status();
  QueryResponse resp = r.value();
  if (resp.quality == DataQuality::kMissing) {
    // Reproduce the exact Status the live agent's single-query path
    // returned when the capture failed.
    return query_failure_status(name_, id, resp.attempts, resp.fail_code);
  }
  resp.record = project(resp.record, attrs);
  return resp;
}

BatchResponse StreamCacheAgent::query_batch(const std::vector<ElementId>& ids,
                                            SimTime now, ThreadPool*) {
  std::vector<ElementId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  BatchResponse out;
  for (const ElementId& id : sorted) {
    if (known_.count(id) == 0) {
      ++out.unknown_ids;
      continue;
    }
    std::optional<QueryResponse> r = cache_->find(name_, id, now);
    if (!r.has_value()) {
      // Degrade like a lost wire frame: a visible kMissing blind spot.
      QueryResponse miss;
      miss.record.timestamp = now;
      miss.record.element = id;
      miss.quality = DataQuality::kMissing;
      miss.attempts = 1;
      miss.fail_code = StatusCode::kUnavailable;
      out.responses.push_back(std::move(miss));
      ++out.degraded;
      continue;
    }
    if (r->quality != DataQuality::kFresh) ++out.degraded;
    out.responses.push_back(std::move(*r));
  }
  return out;  // channel_time stays zero: paid once, at capture
}

// --- StreamPipeline ----------------------------------------------------------

void StreamPipeline::add_agent(AgentClient* agent) {
  entries_.push_back(Entry{agent, StreamPublisher(agent, plan_)});
}

Status StreamPipeline::pump(SimTime at, ThreadPool* pool) {
  for (Entry& e : entries_) {
    Result<StreamPublisher::Published> pub = e.pub.publish(at, pool);
    if (!pub.ok()) return pub.status();
    if (pub.value().dropped) {
      // The watchdog path: this boundary produced no frame, so repair now —
      // a pull at the same instant — before the world moves on.  Purity of
      // the fault plan makes the pull reproduce the dropped capture.
      BatchResponse b = e.agent->query_batch(e.pub.elements(), at, pool);
      cache_->repair(e.agent->name(), at, b);
      continue;
    }
    bytes_published_ += pub.value().body.size();
    Result<StreamCache::ApplyResult> applied = cache_->apply(pub.value().body);
    if (!applied.ok()) return applied.status();
    if (!applied.value().applied && applied.value().needs_snapshot) {
      // The cache lost its delta base (reset, or a restarted publisher's
      // epoch): republish this boundary as a snapshot.  The fault plan's
      // purity makes the re-capture bit-identical, and a fresh/regressed
      // stream accepts the bumped seq.
      e.pub.force_snapshot();
      Result<StreamPublisher::Published> again = e.pub.publish(at, pool);
      if (!again.ok()) return again.status();
      bytes_published_ += again.value().body.size();
      applied = cache_->apply(again.value().body);
      if (!applied.ok()) return applied.status();
    }
    if (!applied.value().applied) {
      return Status::failed_precondition(
          "stream pipeline: unexpected gap for agent " + e.agent->name());
    }
  }
  return Status::ok();
}

uint64_t StreamPipeline::frames_dropped() const {
  uint64_t n = 0;
  for (const Entry& e : entries_) n += e.pub.frames_dropped();
  return n;
}

// --- StreamSubscriber --------------------------------------------------------

Status StreamSubscriber::connect(transport::WallDuration deadline,
                                 uint64_t from_seq, Duration window) {
  close();
  Result<transport::Socket> s = transport::connect(ep_, deadline);
  if (!s.ok()) return s.status();
  sock_ = std::move(s.value());

  Result<std::string> raw = transport::read_message_bytes(sock_, deadline);
  if (!raw.ok()) {
    close();
    return raw.status();
  }
  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok()) {
    close();
    return msg.status();
  }
  if (msg.value().kind != wire::MessageKind::kHello) {
    close();
    return Status::unavailable(
        std::string("stream subscribe: expected hello, got ") +
        wire::to_string(msg.value().kind));
  }
  Result<wire::HelloMsg> hello = wire::decode_hello(msg.value().body);
  if (!hello.ok()) {
    close();
    return hello.status();
  }
  hello_ = std::move(hello.value());

  wire::SubscribeMsg sub;
  sub.agent = bind_;
  sub.from_seq = from_seq;
  sub.window_ns = window.ns();
  Status sent = sock_.send_all(
      wire::encode_message(wire::MessageKind::kSubscribe,
                           wire::encode_subscribe(sub)),
      deadline);
  if (!sent.is_ok()) close();
  return sent;
}

Result<std::string> StreamSubscriber::next_body(
    transport::WallDuration deadline) {
  if (!sock_.valid()) {
    return Status::unavailable("stream subscriber: not connected");
  }
  Result<std::string> raw = transport::read_message_bytes(sock_, deadline);
  if (!raw.ok()) return raw.status();
  Result<wire::Message> msg = wire::decode_message(raw.value());
  if (!msg.ok()) return msg.status();
  if (msg.value().kind == wire::MessageKind::kError) {
    Result<wire::ErrorMsg> err = wire::decode_error(msg.value().body);
    if (err.ok()) return Status(err.value().code, err.value().message);
    return Status::unavailable("stream subscriber: undecodable server error");
  }
  if (msg.value().kind != wire::MessageKind::kStreamData) {
    return Status::unavailable(
        std::string("stream subscriber: unexpected ") +
        wire::to_string(msg.value().kind));
  }
  return std::move(msg.value().body);
}

void StreamSubscriber::close() { sock_.close(); }

}  // namespace perfsight
