// Push-mode streaming telemetry: the collection direction inverted.
//
// PerfSight's loop is pull-based (controller → agent → channel), so
// steady-state monitoring pays a full sweep per diagnosis window.  This
// subsystem makes agents *publish* each window instead: a StreamPublisher
// captures the agent's whole element set once per window boundary (one
// query_batch — the same records a pull sweep at that boundary would get)
// and ships it as a kStreamData frame; a StreamCache on the controller side
// materializes the frames into last-known state keyed by (element, window);
// a StreamCacheAgent serves that state through the AgentClient seam, so
// Algorithm 1/2, the Monitor and the AlertWatcher run continuously off the
// cache at per-window granularity — unchanged, and byte-identical to the
// sweep path.
//
// Why byte-identical is achievable at all: FaultPlan::decide() is pure in
// (seed, element, time, attempt), so a capture at window boundary t yields
// exactly the records/qualities/attempts/fail-codes a pull at t would, and
// a *repair* pull replaying boundary t reproduces a dropped capture
// exactly.  The only non-pure quantity is modelled channel jitter, which
// touches response_time alone — and response_time feeds no ranking, blind
// spot, coverage number or alert.
//
// Gap handling is a small state machine per stream (DESIGN.md §15):
//
//     in order  (seq == expected)  → delta-decode, apply, expected++
//     gap       (seq >  expected)  → frame NOT applied (its deltas have no
//                                    sound base); caller repairs the missed
//                                    windows with targeted pulls — each
//                                    repair advances expected and restores
//                                    the delta base — then re-applies
//     regressed (seq <  expected)  → publisher restarted; the frame must be
//                                    a snapshot (all-absolute) and rebases
//                                    the stream
//
// Repaired windows carry Provenance::kRepaired so operators can see where
// push-mode went through the pull repair path, but the records themselves
// are exactly what the pull returned — provenance never leaks into
// diagnosis output, which is what keeps the fidelity contract intact.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "perfsight/agent.h"
#include "perfsight/faults.h"
#include "perfsight/metrics.h"
#include "perfsight/transport.h"
#include "perfsight/wire.h"

namespace perfsight {

// --- agent side --------------------------------------------------------------

// Captures one agent's full element set once per window and encodes the
// capture as a kStreamData frame, delta-coded against the previous frame.
// Frame 1 is always a full snapshot (no previous frame to delta against).
class StreamPublisher {
 public:
  // `agent` is not owned and must outlive the publisher; `plan` (optional,
  // not owned) supplies stream-drop fates for the encoded frames.
  explicit StreamPublisher(AgentClient* agent, const FaultPlan* plan = nullptr);

  struct Published {
    uint64_t seq = 0;
    bool dropped = false;  // the plan lost this frame in transit: the
                           // capture was paid, the bytes never arrive
    std::string body;      // encoded kStreamData body (PSM1 payload)
  };

  // Captures the window at `at` and encodes the next frame.  Sequence
  // numbers advance even for dropped frames — that is exactly what makes
  // the drop visible downstream as a gap.
  Result<Published> publish(SimTime at, ThreadPool* pool = nullptr);

  // Forgets the delta base: the next publish() is a full snapshot.  This is
  // the resync handle for a receiver that answered needs_snapshot — its
  // cache lost (or never had) the delta base, so only an all-absolute frame
  // can re-anchor the stream.
  void force_snapshot() { has_prev_ = false; }

  uint64_t seq() const { return seq_; }
  uint64_t frames_dropped() const { return dropped_; }
  const std::vector<ElementId>& elements() const { return ids_; }
  AgentClient* agent() const { return agent_; }

 private:
  AgentClient* agent_;
  const FaultPlan* plan_;
  std::vector<ElementId> ids_;  // ascending
  uint64_t seq_ = 0;
  uint64_t dropped_ = 0;
  wire::StreamDataMsg prev_;
  bool has_prev_ = false;
};

// --- controller side ---------------------------------------------------------

// Materialized last-known state: every delivered (or repaired) window of
// every subscribed agent, keyed by (element, window-start).  Thread-safe:
// subscribers apply frames while diagnosis reads through StreamCacheAgent.
class StreamCache {
 public:
  enum class Provenance {
    kStreamed,  // arrived in order on the stream
    kRepaired,  // backfilled by a targeted pull after a gap
    kInband,    // aggregated from in-band telemetry flights (inband.h)
  };

  struct ApplyResult {
    bool applied = false;
    uint64_t seq = 0;        // the frame's sequence number
    uint64_t expected = 0;   // what the stream state expected next
    uint64_t missed = 0;     // windows missing before this frame (gap size)
    bool regressed = false;  // seq went backward: publisher restarted
    // The frame is delta-coded but this stream has no delta base (fresh
    // after a reset, or a regressed epoch joined mid-stream): not damage
    // and not a repairable gap — the publisher must resend as a snapshot
    // (StreamPublisher::force_snapshot, or a remote resubscribe).  Stream
    // state is untouched, so retrying with a snapshot always succeeds.
    bool needs_snapshot = false;
    SimTime window_start;
  };

  // Applies one encoded kStreamData body (see the gap state machine in the
  // header comment).  Structural damage and delta-without-base are Status
  // errors; a gap is a successful Result with applied == false.
  Result<ApplyResult> apply(std::string_view body);

  // Backfills one window of `agent` from a targeted pull taken at the same
  // boundary, advancing the stream cursor by one and restoring the delta
  // base for the next in-order frame.  A stale backfill — a boundary older
  // than the retention horizon (the oldest kept window, with the cache at
  // capacity) — is clamped whole: storing it would resurrect a pruned
  // window, and rebasing the live stream's delta cursor onto ancient data
  // would corrupt every frame after it.  Clamps count in
  // Stats::repairs_clamped and leave cache and cursor untouched.
  void repair(const std::string& agent, SimTime window_start,
              const BatchResponse& batch);

  // Absorbs a window produced outside the frame stream — the in-band
  // telemetry harvester's per-window aggregation (Provenance::kInband).
  // Callers key INT windows under a dedicated agent name (e.g. "a0/int")
  // so they never collide with the same agent's streamed windows; the
  // stream's sequence/delta state is not consulted or advanced.  Subject to
  // the same retention-horizon clamp as repair().
  void ingest(const std::string& agent, SimTime window_start, Provenance p,
              std::vector<QueryResponse> responses);

  // Forgets `agent`'s delta/sequence state (a reconnecting subscriber calls
  // this: the next frame must be a snapshot and may carry any seq).  Cached
  // windows are kept — history is still valid data.
  void reset_stream(const std::string& agent);

  // The cached response for (agent, element) at exactly `window_start`, or
  // nullopt.  This is the cache-fed query path StreamCacheAgent serves.
  std::optional<QueryResponse> find(const std::string& agent,
                                    const ElementId& id,
                                    SimTime window_start) const;
  bool window_present(const std::string& agent, SimTime window_start) const;
  std::optional<Provenance> window_provenance(const std::string& agent,
                                              SimTime window_start) const;
  // The seq the stream expects next (1 for a fresh/reset stream).
  uint64_t next_seq(const std::string& agent) const;

  // Bounds memory: keep at most this many windows per agent (oldest pruned
  // first).  0 (default) = unbounded.
  void set_retention(size_t windows);

  struct Stats {
    uint64_t frames_applied = 0;
    uint64_t gaps = 0;            // apply() calls that found a gap
    uint64_t repairs = 0;         // windows backfilled by pulls
    uint64_t resets = 0;          // stream rebases (reconnect/restart)
    uint64_t windows_pruned = 0;  // retention evictions
    uint64_t bytes_applied = 0;   // encoded stream bytes accepted
    uint64_t repairs_clamped = 0;      // stale backfills refused at the
                                       // retention horizon (repair/ingest)
    uint64_t snapshot_requests = 0;    // applies answered needs_snapshot
  };
  Stats stats() const;

  // Creates the perfsight_stream_* counters in `m` (not owned; call before
  // concurrent use).
  void set_metrics(MetricsRegistry* m);

 private:
  struct Window {
    Provenance provenance = Provenance::kStreamed;
    std::vector<QueryResponse> responses;  // ascending element-id order
  };
  struct Stream {
    uint64_t expected = 1;
    bool has_prev = false;
    wire::StreamDataMsg prev;            // delta base: last absorbed window
    std::map<int64_t, Window> windows;   // window-start ns → data
  };

  void store_locked(Stream& s, SimTime window_start, Provenance provenance,
                    std::vector<QueryResponse> responses);
  // True when storing `window_ns` would resurrect a window beyond the
  // retention horizon (cache at capacity and the boundary older than the
  // oldest kept window).
  bool beyond_horizon_locked(const Stream& s, int64_t window_ns) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Stream> streams_;
  size_t retention_ = 0;
  Stats stats_;
  MetricsRegistry::CounterMetric* m_frames_ = nullptr;
  MetricsRegistry::CounterMetric* m_gaps_ = nullptr;
  MetricsRegistry::CounterMetric* m_repairs_ = nullptr;
  MetricsRegistry::CounterMetric* m_bytes_ = nullptr;
};

// Serves a StreamCache through the AgentClient seam: the controller (and
// everything above it — Algorithm 1/2, Monitor, AlertWatcher) queries the
// cache exactly as it would query the live agent.  name() is the *real*
// agent's name, so failure Status texts match the pull path byte for byte.
class StreamCacheAgent : public AgentClient {
 public:
  StreamCacheAgent(const StreamCache* cache, std::string agent_name,
                   std::vector<ElementId> elements);
  // Convenience: mirror `like`'s name and element set.
  StreamCacheAgent(const StreamCache* cache, const AgentClient& like);

  const std::string& name() const override { return name_; }
  bool has_element(const ElementId& id) const override;
  std::vector<ElementId> element_ids() const override { return ids_; }

  Result<QueryResponse> query_attrs(const ElementId& id,
                                    const std::vector<std::string>& attrs,
                                    SimTime now) override;

  // Served entirely from the cache: no channel time is paid at query time
  // (it was paid once, at capture).  `pool` is ignored.
  BatchResponse query_batch(const std::vector<ElementId>& ids, SimTime now,
                            ThreadPool* pool = nullptr) override;

 private:
  // The cached response, or the Status a pull-path caller would have seen.
  Result<QueryResponse> lookup(const ElementId& id, SimTime now) const;

  const StreamCache* cache_;
  std::string name_;
  std::vector<ElementId> ids_;  // ascending
  std::unordered_map<ElementId, bool> known_;
};

// Drives in-process push mode: one publisher per agent, one shared cache.
// pump(at) captures + delivers every agent's frame for the boundary `at`;
// a frame the plan drops is repaired immediately by a targeted pull at the
// same boundary (the pipeline is the watchdog — it knows the cadence, so a
// missing window never waits for the next frame to betray it).
class StreamPipeline {
 public:
  explicit StreamPipeline(StreamCache* cache, const FaultPlan* plan = nullptr)
      : cache_(cache), plan_(plan) {}

  void add_agent(AgentClient* agent);

  // One window boundary for every agent: publish, deliver or repair.
  Status pump(SimTime at, ThreadPool* pool = nullptr);

  uint64_t frames_dropped() const;
  uint64_t bytes_published() const { return bytes_published_; }

 private:
  struct Entry {
    AgentClient* agent;
    StreamPublisher pub;
  };

  StreamCache* cache_;
  const FaultPlan* plan_;
  std::vector<Entry> entries_;
  uint64_t bytes_published_ = 0;
};

// --- remote subscriber -------------------------------------------------------

// The client half of kSubscribe/kStreamData: dials a RemoteAgentServer,
// reads the hello, opens a subscription for one agent, and reads frames.
// The connection is dedicated — after the subscribe, only kStreamData (or
// kError) arrives, so frames never interleave with request/reply traffic.
// Feed the returned bodies to StreamCache::apply; after a reconnect, call
// StreamCache::reset_stream first (the server's first frame to a fresh
// connection is always a snapshot).
class StreamSubscriber {
 public:
  explicit StreamSubscriber(transport::Endpoint ep, std::string agent = {})
      : ep_(std::move(ep)), bind_(std::move(agent)) {}
  ~StreamSubscriber() { close(); }
  StreamSubscriber(const StreamSubscriber&) = delete;
  StreamSubscriber& operator=(const StreamSubscriber&) = delete;

  // Dial + hello + kSubscribe.  `from_seq`/`window` ride the subscribe as
  // hints.  Reconnect by calling connect() again on the same object.
  Status connect(transport::WallDuration deadline, uint64_t from_seq = 0,
                 Duration window = {});

  // Blocks up to `deadline` for the next kStreamData frame and returns its
  // body.  A kError message from the server is surfaced as its Status.
  Result<std::string> next_body(transport::WallDuration deadline);

  const wire::HelloMsg& hello() const { return hello_; }
  bool connected() const { return sock_.valid(); }
  void close();

 private:
  transport::Endpoint ep_;
  std::string bind_;
  transport::Socket sock_;
  wire::HelloMsg hello_;
};

const char* to_string(StreamCache::Provenance p);

}  // namespace perfsight
