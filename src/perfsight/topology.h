// Virtual-network topology metadata the controller keeps per tenant (§4.3).
//
// The control plane knows where each tenant's elements live (which agent
// serves them) and how the tenant's middleboxes are chained.  Diagnosis
// needs exactly two structural queries: the set of elements to scan
// (Algorithm 1) and transitive successors/predecessors of a middlebox in
// the chain DAG (Algorithm 2's candidate filtering).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace perfsight {

// Directed acyclic graph over middlebox element ids (data flows along
// edges).  Branching is allowed — e.g. a load balancer fanning out to two
// proxies, a content filter also writing to an NFS server (Fig. 12).
class ChainTopology {
 public:
  void add_node(const ElementId& id) { adj_.try_emplace(id); radj_.try_emplace(id); }

  void add_edge(const ElementId& from, const ElementId& to) {
    add_node(from);
    add_node(to);
    adj_[from].push_back(to);
    radj_[to].push_back(from);
  }

  bool has_node(const ElementId& id) const { return adj_.count(id) > 0; }

  std::vector<ElementId> nodes() const {
    std::vector<ElementId> out;
    out.reserve(adj_.size());
    for (const auto& [id, _] : adj_) out.push_back(id);
    return out;
  }

  // All nodes reachable from `id` (excluding `id` itself).
  std::unordered_set<ElementId> successors(const ElementId& id) const {
    return reach(id, adj_);
  }
  // All nodes that reach `id` (excluding `id` itself).
  std::unordered_set<ElementId> predecessors(const ElementId& id) const {
    return reach(id, radj_);
  }

  const std::vector<ElementId>& direct_successors(const ElementId& id) const {
    static const std::vector<ElementId> kEmpty;
    auto it = adj_.find(id);
    return it == adj_.end() ? kEmpty : it->second;
  }
  const std::vector<ElementId>& direct_predecessors(const ElementId& id) const {
    static const std::vector<ElementId> kEmpty;
    auto it = radj_.find(id);
    return it == radj_.end() ? kEmpty : it->second;
  }

 private:
  using AdjMap = std::unordered_map<ElementId, std::vector<ElementId>>;

  static std::unordered_set<ElementId> reach(const ElementId& from,
                                             const AdjMap& adj) {
    std::unordered_set<ElementId> seen;
    std::vector<ElementId> stack;
    auto push_next = [&](const ElementId& n) {
      auto it = adj.find(n);
      if (it == adj.end()) return;
      for (const ElementId& m : it->second) {
        if (seen.insert(m).second) stack.push_back(m);
      }
    };
    push_next(from);
    while (!stack.empty()) {
      ElementId n = stack.back();
      stack.pop_back();
      push_next(n);
    }
    seen.erase(from);
    return seen;
  }

  AdjMap adj_;
  AdjMap radj_;
};

}  // namespace perfsight
