#include "perfsight/trace.h"

#include <algorithm>
#include <array>
#include <map>

#include "common/status.h"
#include "perfsight/json_export.h"

namespace perfsight {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kQueueHighWater:
      return "queue_high_water";
    case TraceEventKind::kQueueLowWater:
      return "queue_low_water";
    case TraceEventKind::kArbiterShortfall:
      return "arbiter_shortfall";
    case TraceEventKind::kArbiterRecovered:
      return "arbiter_recovered";
    case TraceEventKind::kStreamState:
      return "stream_state";
    case TraceEventKind::kAgentQueryIssued:
      return "agent_query_issued";
    case TraceEventKind::kAgentQueryCompleted:
      return "agent_query_completed";
    case TraceEventKind::kDiagnosisStarted:
      return "diagnosis_started";
    case TraceEventKind::kDiagnosisCompleted:
      return "diagnosis_completed";
    case TraceEventKind::kAlertFired:
      return "alert_fired";
    case TraceEventKind::kAgentCacheHit:
      return "agent_cache_hit";
    case TraceEventKind::kAgentRetry:
      return "agent_retry";
    case TraceEventKind::kAgentQueryFailed:
      return "agent_query_failed";
    case TraceEventKind::kAgentBatchDegraded:
      return "agent_batch_degraded";
    case TraceEventKind::kBreakerStateChange:
      return "breaker_state_change";
    case TraceEventKind::kAgentCrashRestart:
      return "agent_crash_restart";
    case TraceEventKind::kControllerScatter:
      return "controller_scatter";
    case TraceEventKind::kControllerGather:
      return "controller_gather";
    case TraceEventKind::kTransportConnect:
      return "transport_connect";
    case TraceEventKind::kTransportReconnect:
      return "transport_reconnect";
    case TraceEventKind::kTransportDamaged:
      return "transport_damaged";
    case TraceEventKind::kSpanScatter:
      return "span_scatter";
    case TraceEventKind::kSpanAgentBatch:
      return "span_agent_batch";
    case TraceEventKind::kSpanChannelTrip:
      return "span_channel_trip";
    case TraceEventKind::kSpanTransportTrip:
      return "span_transport_trip";
    case TraceEventKind::kSpanServerBatch:
      return "span_server_batch";
    case TraceEventKind::kSpanServerSingle:
      return "span_server_single";
  }
  return "?";
}

// --- trace context ----------------------------------------------------------

namespace {
thread_local TraceContext t_trace_ctx;
// One process-wide counter; the domain in the top 16 bits separates ids
// minted by different processes (see next_span_id in the header).
std::atomic<uint64_t> g_span_counter{0};
}  // namespace

TraceContext current_trace_context() { return t_trace_ctx; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : prev_(t_trace_ctx) {
  t_trace_ctx = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_ctx = prev_; }

uint64_t next_span_id(uint16_t domain) {
  const uint64_t n =
      g_span_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return (static_cast<uint64_t>(domain) << 48) | (n & 0xffffffffffffULL);
}

uint16_t span_domain_for(std::string_view process_name) {
  // FNV-1a folded to 16 bits; never 0 (the controller's domain).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : process_name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  uint16_t d = static_cast<uint16_t>(h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48));
  return d == 0 ? 1 : d;
}

TraceRing::TraceRing(std::string element, size_t capacity)
    : element_(std::move(element)), buf_(capacity == 0 ? 1 : capacity) {
  // Pre-fill the element name so steady-state pushes only touch the fields
  // that change (the name of a ring's events never does).
  for (TraceEvent& e : buf_) e.element = element_;
}

void TraceRing::push(SimTime t, TraceEventKind kind, double value,
                     std::string_view detail, uint64_t span_id,
                     uint64_t parent_span, Duration dur) {
#ifndef NDEBUG
  // Single-writer contract (see header): a second thread entering while a
  // push is in flight would tear the slot's strings.  The exchange is the
  // whole check — release builds pay nothing.
  const bool reentered = in_push_.exchange(true, std::memory_order_acquire);
  PS_CHECK(!reentered);
#endif
  TraceEvent& e = buf_[next_];
  e.t = t;
  e.kind = kind;
  e.value = value;
  e.detail.assign(detail.data(), detail.size());
  e.span_id = span_id;
  e.parent_span = parent_span;
  e.dur = dur;
  next_ = next_ + 1 == buf_.size() ? 0 : next_ + 1;
  if (count_ < buf_.size()) ++count_;
  ++total_;
#ifndef NDEBUG
  in_push_.store(false, std::memory_order_release);
#endif
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  size_t start = count_ < buf_.size() ? 0 : next_;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

TraceRing* TraceRecorder::ring_locked(const ElementId& id) {
  auto it = rings_.find(id);
  if (it != rings_.end()) return it->second.get();
  auto r = std::make_unique<TraceRing>(id.name, ring_capacity_);
  TraceRing* raw = r.get();
  rings_.emplace(id, std::move(r));
  return raw;
}

TraceRing* TraceRecorder::ring(const ElementId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_locked(id);
}

void TraceRecorder::record(const ElementId& id, SimTime t,
                           TraceEventKind kind, double value,
                           std::string_view detail) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_locked(id)->push(t, kind, value, detail);
}

void TraceRecorder::record_span(const ElementId& id, SimTime t,
                                TraceEventKind kind, Duration dur,
                                uint64_t span_id, uint64_t parent_span,
                                double value, std::string_view detail) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_locked(id)->push(t, kind, value, detail, span_id, parent_span, dur);
}

uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [id, r] : rings_) n += r->dropped_events();
  return n;
}

uint64_t TraceRecorder::total_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [id, r] : rings_) n += r->total_events();
  return n;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, r] : rings_) {
      std::vector<TraceEvent> s = r->snapshot();
      out.insert(out.end(), s.begin(), s.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.element < b.element;
                   });
  return out;
}

std::vector<TraceEvent> TraceRecorder::events_for(const ElementId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(id);
  if (it == rings_.end()) return {};
  return it->second->snapshot();
}

std::vector<TraceEvent> TraceRecorder::drain() {
  std::vector<TraceEvent> out = events();
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  return out;
}

std::vector<TraceRecorder::RingStats> TraceRecorder::ring_stats() const {
  std::vector<RingStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(rings_.size());
    for (const auto& [id, r] : rings_) {
      out.push_back(RingStats{r->element(), r->size(), r->capacity(),
                              r->total_events(), r->dropped_events()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RingStats& a, const RingStats& b) {
              return a.element < b.element;
            });
  return out;
}

void TraceRecorder::add_remote_lane(const std::string& process,
                                    int64_t clock_offset_ns,
                                    std::vector<TraceEvent> events) {
  std::lock_guard<std::mutex> lock(mu_);
  for (RemoteLane& lane : remote_lanes_) {
    if (lane.process == process) {
      lane.clock_offset_ns = clock_offset_ns;
      lane.events.insert(lane.events.end(),
                         std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
      return;
    }
  }
  remote_lanes_.push_back(
      RemoteLane{process, clock_offset_ns, std::move(events)});
}

std::vector<TraceRecorder::RemoteLane> TraceRecorder::remote_lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_lanes_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  remote_lanes_.clear();
}

namespace {
TraceRecorder g_default_recorder;
TraceRecorder* g_recorder = &g_default_recorder;
}  // namespace

TraceRecorder& TraceRecorder::global() { return *g_recorder; }

TraceRecorder* TraceRecorder::install(TraceRecorder* r) {
  TraceRecorder* prev = g_recorder;
  g_recorder = r != nullptr ? r : &g_default_recorder;
  return prev == &g_default_recorder ? nullptr : prev;
}

namespace {

// Joined candidate-resource list per drop location, derived once from the
// standard rule book so the flight recorder and the diagnosis layer can
// never disagree about causes.
const std::string& drop_cause(ElementKind kind) {
  static const std::map<int, std::string> kCauses = [] {
    std::map<int, std::string> m;
    const RuleBook book = RuleBook::standard();
    for (const RuleBook::Rule& r : book.rules()) {
      std::string& s = m[static_cast<int>(r.drop_location)];
      std::string name = to_string(r.resource);
      if (s.find(name) != std::string::npos) continue;
      if (!s.empty()) s += "|";
      s += name;
    }
    return m;
  }();
  static const std::string kUnknown = "unmapped location";
  auto it = kCauses.find(static_cast<int>(kind));
  return it == kCauses.end() ? kUnknown : it->second;
}

}  // namespace

void trace_drop(const ElementId& id, ElementKind kind, uint64_t pkts) {
  TraceRecorder& g = TraceRecorder::global();
  if (!g.enabled()) return;
  g.record(id, g.now(), TraceEventKind::kDrop, static_cast<double>(pkts),
           drop_cause(kind));
}

namespace {

// One event object.  Point events render as instants ("i"), span events as
// complete events ("X") with their duration and resolvable span/parent ids
// (rendered as decimal strings: span ids use all 64 bits, which a JSON
// double cannot carry).
void append_event(std::string& out, const TraceEvent& e, int pid, int tid,
                  int64_t clock_offset_ns) {
  out += "{\"name\":\"" + json::escape(to_string(e.kind)) + "\"";
  if (e.is_span()) {
    out += ",\"ph\":\"X\"";
    out += ",\"dur\":" + json::number(e.dur.us());
  } else {
    out += ",\"ph\":\"i\",\"s\":\"t\"";
  }
  out += ",\"ts\":" +
         json::number(static_cast<double>(e.t.ns() - clock_offset_ns) / 1e3);
  out += ",\"pid\":" + json::number(pid);
  out += ",\"tid\":" + json::number(tid);
  out += ",\"cat\":\"perfsight\"";
  out += ",\"args\":{\"element\":\"" + json::escape(e.element) + "\"";
  out += ",\"value\":" + json::number(e.value);
  out += ",\"detail\":\"" + json::escape(e.detail) + "\"";
  if (e.is_span()) {
    out += ",\"span_id\":\"" + std::to_string(e.span_id) + "\"";
    out += ",\"parent_span\":\"" + std::to_string(e.parent_span) + "\"";
  }
  out += "}}";
}

void append_meta(std::string& out, bool& first, const char* what, int pid,
                 int tid, const std::string& name) {
  if (!first) out += ",";
  first = false;
  out += "{\"name\":\"" + std::string(what) + "\",\"ph\":\"M\",\"ts\":0";
  out += ",\"pid\":" + json::number(pid);
  if (tid >= 0) out += ",\"tid\":" + json::number(tid);
  out += ",\"args\":{\"name\":\"" + json::escape(name) + "\"}}";
}

}  // namespace

std::string to_chrome_trace(const TraceRecorder& recorder) {
  std::vector<TraceEvent> evs = recorder.events();
  std::vector<TraceRecorder::RemoteLane> lanes = recorder.remote_lanes();
  std::sort(lanes.begin(), lanes.end(),
            [](const TraceRecorder::RemoteLane& a,
               const TraceRecorder::RemoteLane& b) {
              return a.process < b.process;
            });

  // Stable virtual-thread ids per element, in name order.
  std::map<std::string, int> tids;
  for (const TraceEvent& e : evs) tids.emplace(e.element, 0);
  int next_tid = 1;
  for (auto& [name, tid] : tids) tid = next_tid++;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Metadata first (ts 0 keeps the single-lane stream sorted: simulated
  // time never goes negative).  Process names are only worth emitting when
  // more than one process is present.
  if (!lanes.empty()) {
    append_meta(out, first, "process_name", 1, -1, "controller");
  }
  for (const auto& [name, tid] : tids) {
    append_meta(out, first, "thread_name", 1, tid, name);
  }
  for (size_t li = 0; li < lanes.size(); ++li) {
    const int pid = static_cast<int>(li) + 2;
    append_meta(out, first, "process_name", pid, -1, lanes[li].process);
    std::map<std::string, int> lane_tids;
    for (const TraceEvent& e : lanes[li].events) lane_tids.emplace(e.element, 0);
    int lt = 1;
    for (auto& [name, tid] : lane_tids) {
      tid = lt++;
      append_meta(out, first, "thread_name", pid, tid, name);
    }
  }

  for (const TraceEvent& e : evs) {
    if (!first) out += ",";
    first = false;
    append_event(out, e, /*pid=*/1, tids[e.element], /*clock_offset_ns=*/0);
  }

  // Remote lanes: clock-corrected onto the local span clock, sorted within
  // the lane (each lane is monotone; lanes are separate Perfetto processes,
  // so cross-lane array order is irrelevant to viewers).
  for (size_t li = 0; li < lanes.size(); ++li) {
    const int pid = static_cast<int>(li) + 2;
    std::vector<TraceEvent> lane_evs = lanes[li].events;
    std::stable_sort(lane_evs.begin(), lane_evs.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.t != b.t) return a.t < b.t;
                       return a.element < b.element;
                     });
    std::map<std::string, int> lane_tids;
    for (const TraceEvent& e : lane_evs) lane_tids.emplace(e.element, 0);
    int lt = 1;
    for (auto& [name, tid] : lane_tids) tid = lt++;
    for (const TraceEvent& e : lane_evs) {
      if (!first) out += ",";
      first = false;
      append_event(out, e, pid, lane_tids[e.element],
                   lanes[li].clock_offset_ns);
    }
  }

  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":";
  out += json::number(static_cast<double>(recorder.dropped_events()));
  out += "}}";
  return out;
}

}  // namespace perfsight
