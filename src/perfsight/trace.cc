#include "perfsight/trace.h"

#include <algorithm>
#include <array>
#include <map>

#include "perfsight/json_export.h"

namespace perfsight {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kQueueHighWater:
      return "queue_high_water";
    case TraceEventKind::kQueueLowWater:
      return "queue_low_water";
    case TraceEventKind::kArbiterShortfall:
      return "arbiter_shortfall";
    case TraceEventKind::kArbiterRecovered:
      return "arbiter_recovered";
    case TraceEventKind::kStreamState:
      return "stream_state";
    case TraceEventKind::kAgentQueryIssued:
      return "agent_query_issued";
    case TraceEventKind::kAgentQueryCompleted:
      return "agent_query_completed";
    case TraceEventKind::kDiagnosisStarted:
      return "diagnosis_started";
    case TraceEventKind::kDiagnosisCompleted:
      return "diagnosis_completed";
    case TraceEventKind::kAlertFired:
      return "alert_fired";
    case TraceEventKind::kAgentCacheHit:
      return "agent_cache_hit";
    case TraceEventKind::kAgentRetry:
      return "agent_retry";
    case TraceEventKind::kAgentQueryFailed:
      return "agent_query_failed";
    case TraceEventKind::kAgentBatchDegraded:
      return "agent_batch_degraded";
    case TraceEventKind::kBreakerStateChange:
      return "breaker_state_change";
    case TraceEventKind::kAgentCrashRestart:
      return "agent_crash_restart";
    case TraceEventKind::kControllerScatter:
      return "controller_scatter";
    case TraceEventKind::kControllerGather:
      return "controller_gather";
    case TraceEventKind::kTransportConnect:
      return "transport_connect";
    case TraceEventKind::kTransportReconnect:
      return "transport_reconnect";
    case TraceEventKind::kTransportDamaged:
      return "transport_damaged";
  }
  return "?";
}

TraceRing::TraceRing(std::string element, size_t capacity)
    : element_(std::move(element)), buf_(capacity == 0 ? 1 : capacity) {
  // Pre-fill the element name so steady-state pushes only touch the fields
  // that change (the name of a ring's events never does).
  for (TraceEvent& e : buf_) e.element = element_;
}

void TraceRing::push(SimTime t, TraceEventKind kind, double value,
                     std::string_view detail) {
  TraceEvent& e = buf_[next_];
  e.t = t;
  e.kind = kind;
  e.value = value;
  e.detail.assign(detail.data(), detail.size());
  next_ = next_ + 1 == buf_.size() ? 0 : next_ + 1;
  if (count_ < buf_.size()) ++count_;
  ++total_;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  size_t start = count_ < buf_.size() ? 0 : next_;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

TraceRing* TraceRecorder::ring_locked(const ElementId& id) {
  auto it = rings_.find(id);
  if (it != rings_.end()) return it->second.get();
  auto r = std::make_unique<TraceRing>(id.name, ring_capacity_);
  TraceRing* raw = r.get();
  rings_.emplace(id, std::move(r));
  return raw;
}

TraceRing* TraceRecorder::ring(const ElementId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_locked(id);
}

void TraceRecorder::record(const ElementId& id, SimTime t,
                           TraceEventKind kind, double value,
                           std::string_view detail) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_locked(id)->push(t, kind, value, detail);
}

uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [id, r] : rings_) n += r->dropped_events();
  return n;
}

uint64_t TraceRecorder::total_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [id, r] : rings_) n += r->total_events();
  return n;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, r] : rings_) {
      std::vector<TraceEvent> s = r->snapshot();
      out.insert(out.end(), s.begin(), s.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.element < b.element;
                   });
  return out;
}

std::vector<TraceEvent> TraceRecorder::events_for(const ElementId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(id);
  if (it == rings_.end()) return {};
  return it->second->snapshot();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
}

namespace {
TraceRecorder g_default_recorder;
TraceRecorder* g_recorder = &g_default_recorder;
}  // namespace

TraceRecorder& TraceRecorder::global() { return *g_recorder; }

TraceRecorder* TraceRecorder::install(TraceRecorder* r) {
  TraceRecorder* prev = g_recorder;
  g_recorder = r != nullptr ? r : &g_default_recorder;
  return prev == &g_default_recorder ? nullptr : prev;
}

namespace {

// Joined candidate-resource list per drop location, derived once from the
// standard rule book so the flight recorder and the diagnosis layer can
// never disagree about causes.
const std::string& drop_cause(ElementKind kind) {
  static const std::map<int, std::string> kCauses = [] {
    std::map<int, std::string> m;
    const RuleBook book = RuleBook::standard();
    for (const RuleBook::Rule& r : book.rules()) {
      std::string& s = m[static_cast<int>(r.drop_location)];
      std::string name = to_string(r.resource);
      if (s.find(name) != std::string::npos) continue;
      if (!s.empty()) s += "|";
      s += name;
    }
    return m;
  }();
  static const std::string kUnknown = "unmapped location";
  auto it = kCauses.find(static_cast<int>(kind));
  return it == kCauses.end() ? kUnknown : it->second;
}

}  // namespace

void trace_drop(const ElementId& id, ElementKind kind, uint64_t pkts) {
  TraceRecorder& g = TraceRecorder::global();
  if (!g.enabled()) return;
  g.record(id, g.now(), TraceEventKind::kDrop, static_cast<double>(pkts),
           drop_cause(kind));
}

std::string to_chrome_trace(const TraceRecorder& recorder) {
  std::vector<TraceEvent> evs = recorder.events();

  // Stable virtual-thread ids per element, in name order.
  std::map<std::string, int> tids;
  for (const TraceEvent& e : evs) tids.emplace(e.element, 0);
  int next_tid = 1;
  for (auto& [name, tid] : tids) tid = next_tid++;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // thread_name metadata first (ts 0 keeps the stream sorted: simulated
  // time never goes negative).
  for (const auto& [name, tid] : tids) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":";
    out += json::number(tid);
    out += ",\"args\":{\"name\":\"" + json::escape(name) + "\"}}";
  }
  for (const TraceEvent& e : evs) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json::escape(to_string(e.kind)) + "\"";
    out += ",\"ph\":\"i\",\"s\":\"t\"";
    out += ",\"ts\":" + json::number(e.t.us());
    out += ",\"pid\":1,\"tid\":" + json::number(tids[e.element]);
    out += ",\"cat\":\"perfsight\"";
    out += ",\"args\":{\"element\":\"" + json::escape(e.element) + "\"";
    out += ",\"value\":" + json::number(e.value);
    out += ",\"detail\":\"" + json::escape(e.detail) + "\"}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":";
  out += json::number(static_cast<double>(recorder.dropped_events()));
  out += "}}";
  return out;
}

}  // namespace perfsight
