// Flight-recorder event tracing for the software dataplane (§4 direction:
// always-on, low-level instrumentation instead of coarse utilization
// monitoring).
//
// Aggregate counters answer "how many packets were lost"; they cannot answer
// "what *sequence* of drops, queue build-ups, grant shortfalls and state
// transitions led to this diagnosis".  The TraceRecorder closes that gap:
// every instrumented element owns a bounded ring of TraceEvents —
//
//   * kDrop                 packet loss, annotated with the rule book's
//                           candidate causes for that drop location
//   * kQueueHighWater/
//     kQueueLowWater        queue occupancy crossing 3/4, draining to 1/4
//   * kArbiterShortfall/
//     kArbiterRecovered     a resource-pool consumer granted less than its
//                           demand (the onset / end of contention)
//   * kStreamState          middlebox ReadBlocked / WriteBlocked /
//                           Overloaded / Underloaded transitions (Fig. 7)
//   * kAgentQueryIssued/
//     kAgentQueryCompleted  agent↔element channel activity (Fig. 9 cost)
//   * kAgentCacheHit        a cached query served locally (zero channel
//                           latency) — timelines keep every diagnosis query
//   * kDiagnosisStarted/
//     kDiagnosisCompleted   Algorithm 1/2 runs (self-profiling)
//   * kAlertFired           an AlertWatcher threshold breach
//
// Rings overwrite the oldest event when full and count what they discard
// (`dropped_events`), so the hot path never blocks and never allocates
// unboundedly: recording is a handful of stores (strings stay within SSO
// for the short static details used on fast paths).  With tracing disabled
// the cost is a single branch on a global flag.
//
// The recorder carries a simulated-time clock stamped by the Simulator each
// tick, so instrumentation points without a `now` parameter (queue accept,
// drop charging) still timestamp correctly.  Wall-clock users (the hotpath
// overhead bench) push into rings directly with their own timestamps.
//
// Export: to_chrome_trace() renders the merged, time-ordered event stream
// as Chrome-trace/Perfetto JSON, so any scenario run can be opened in a
// trace viewer (chrome://tracing, ui.perfetto.dev).
//
// Cross-process spans: on top of the point events, the collection path
// records *span* events (span_id != 0, a duration, and a parent link):
// a controller scatter span, one agent-batch span per fanned-out agent,
// one channel-trip span per channel kind inside the batch, and — for
// socket-backed agents — a transport round-trip span client-side plus a
// serve span recorded in the remote process.  The trace context (trace id +
// parent span id) crosses threads via ScopedTraceContext and crosses
// processes on the PSM1 request envelope (wire.h); harvested remote rings
// come back as RemoteLanes, exported as separate Perfetto processes with a
// clock-offset correction negotiated in the hello handshake.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "perfsight/rulebook.h"

namespace perfsight {

enum class TraceEventKind {
  kDrop = 0,
  kQueueHighWater,
  kQueueLowWater,
  kArbiterShortfall,
  kArbiterRecovered,
  kStreamState,
  kAgentQueryIssued,
  kAgentQueryCompleted,
  kDiagnosisStarted,
  kDiagnosisCompleted,
  kAlertFired,
  kAgentCacheHit,  // cached diagnosis query served without a channel trip
  // Fault-tolerant collection (faults.h): channel failures, the retry/budget
  // machinery absorbing them, and circuit-breaker state — timelines show the
  // collection layer degrading, not just succeeding.
  kAgentRetry,          // one retry after a failed attempt (value = attempt#)
  kAgentQueryFailed,    // retries exhausted / budget hit / breaker open
  kAgentBatchDegraded,  // a batch returned with blind spots (value = count)
  kBreakerStateChange,  // circuit breaker closed/open/half-open transition
  kAgentCrashRestart,   // whole-agent crash: caches lost, counters reset
  // Controller scatter-gather (controller.h): a multi-element query fanned
  // out as per-agent batches over the collection pool, then merged back in
  // element-id order.
  kControllerScatter,  // fan-out issued (value = elements requested)
  kControllerGather,   // merge completed (value = elements served)
  // Socket transport (transport.h / remote_agent.h): connection lifecycle of
  // socket-backed agents, so timelines show when measurement crossed a real
  // process boundary and when that boundary failed.
  kTransportConnect,    // RemoteAgent dialed + completed the hello handshake
  kTransportReconnect,  // a dead connection was re-dialed (value = attempt#)
  kTransportDamaged,    // a batch arrived torn/short (value = frames lost)
  // Cross-process span events (span_id != 0, dur set): the scatter →
  // agent-batch → channel-trip hierarchy, plus the transport/server pair a
  // socket boundary adds.  Rendered as "X" (complete) Chrome-trace events.
  kSpanScatter,        // controller fan-out (value = elements requested)
  kSpanAgentBatch,     // one agent's batch (value = elements in the batch)
  kSpanChannelTrip,    // one channel kind's shared round trip
  kSpanTransportTrip,  // client-side socket round trip (dur = wall time)
  kSpanServerBatch,    // server-side batch serve (span-clock timestamps)
  kSpanServerSingle,   // server-side single-attr serve
};

const char* to_string(TraceEventKind k);

struct TraceEvent {
  SimTime t;
  TraceEventKind kind = TraceEventKind::kDrop;
  double value = 0;     // kind-specific magnitude (pkts, fraction, us, ...)
  std::string element;  // owning element name
  std::string detail;   // short human-readable annotation
  // Span extension (zero for point events): a span covers [t, t + dur] and
  // links to the span that caused it.  Parent links resolve across process
  // boundaries — a harvested server span's parent is the controller scatter
  // span whose id travelled on the request envelope.
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  Duration dur;

  bool is_span() const { return span_id != 0; }
};

// --- trace context ----------------------------------------------------------
// The causal context a span-recording site inherits: which trace it belongs
// to and which span caused it.  Propagated across pool threads with
// ScopedTraceContext (thread-local, so each fan-out worker carries its own)
// and across processes on the PSM1 request envelope.

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no active trace: record no spans
  uint64_t span_id = 0;   // the parent for spans recorded under this context
  bool active() const { return trace_id != 0; }
};

// The calling thread's current context ({0, 0} when none is installed).
TraceContext current_trace_context();

// RAII install of a context on the current thread; restores the previous
// one on destruction.  Set inside pool-worker lambdas: thread-locals do not
// cross the fan-out boundary by themselves.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext();

 private:
  TraceContext prev_;
};

// Allocates a process-unique span id: (domain << 48) | counter.  The domain
// disambiguates ids minted by different processes (a remote agent server
// derives its domain from its agent name) so harvested spans never collide
// with controller-side ones.
uint64_t next_span_id(uint16_t domain = 0);
// Domain for an agent process, derived from its name (never 0 — domain 0 is
// the controller's).
uint16_t span_domain_for(std::string_view process_name);

// Fixed-capacity event ring for one element.  Overwrites the oldest event
// when full; `dropped_events` counts the overwritten ones.
//
// push() is single-writer: callers that cache the ring pointer (the hotpath
// bench) must push from one thread at a time; concurrent recording goes
// through TraceRecorder::record(), which serializes under the recorder
// lock.  Debug builds enforce the contract with an entry guard that aborts
// on a concurrent push instead of silently tearing a slot.
class TraceRing {
 public:
  TraceRing(std::string element, size_t capacity);

  void push(SimTime t, TraceEventKind kind, double value,
            std::string_view detail, uint64_t span_id = 0,
            uint64_t parent_span = 0, Duration dur = Duration());

  size_t size() const { return count_; }
  size_t capacity() const { return buf_.size(); }
  uint64_t total_events() const { return total_; }
  uint64_t dropped_events() const { return total_ - count_; }
  const std::string& element() const { return element_; }

  // Events oldest-first.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::string element_;
  std::vector<TraceEvent> buf_;
  size_t next_ = 0;   // slot the next push writes
  size_t count_ = 0;  // live events (<= capacity)
  uint64_t total_ = 0;
#ifndef NDEBUG
  // Debug-only single-writer guard: slots hold std::strings, so a lock-free
  // concurrent push cannot be made safe — catch the misuse instead.
  std::atomic<bool> in_push_{false};
#endif
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 1024;

  explicit TraceRecorder(size_t ring_capacity = kDefaultRingCapacity)
      : ring_capacity_(ring_capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // The recorder's clock; the Simulator stamps this at every tick so that
  // instrumentation points without a time parameter timestamp correctly.
  SimTime now() const { return now_; }
  void set_now(SimTime t) { now_ = t; }

  // Per-element ring, created on first use.  Hot paths that record per
  // packet should cache this pointer; rings live as long as the recorder.
  // Direct TraceRing::push bypasses the recorder lock and is only safe
  // single-threaded; concurrent recording must go through record().
  TraceRing* ring(const ElementId& id);

  // Records one event (no-op while disabled).
  void record(const ElementId& id, SimTime t, TraceEventKind kind,
              double value = 0, std::string_view detail = {});

  // Records one span event covering [t, t + dur] (no-op while disabled).
  void record_span(const ElementId& id, SimTime t, TraceEventKind kind,
                   Duration dur, uint64_t span_id, uint64_t parent_span,
                   double value = 0, std::string_view detail = {});

  size_t ring_capacity() const { return ring_capacity_; }
  size_t num_rings() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rings_.size();
  }
  // Total events discarded by overwrite across all rings.
  uint64_t dropped_events() const;
  uint64_t total_events() const;

  // Per-ring health, sorted by element name (the metrics exposition renders
  // these so ring overwrites stop being silent).
  struct RingStats {
    std::string element;
    size_t size = 0;
    size_t capacity = 0;
    uint64_t total_events = 0;
    uint64_t dropped_events = 0;
  };
  std::vector<RingStats> ring_stats() const;

  // Merged event stream, ordered by timestamp (ties broken by element).
  std::vector<TraceEvent> events() const;
  std::vector<TraceEvent> events_for(const ElementId& id) const;

  // Merged event stream, then clears the rings: what a trace harvest ships.
  // Each event leaves the recorder exactly once, so repeated harvests (or
  // the piggyback-on-reply fast path) never duplicate remote spans.
  std::vector<TraceEvent> drain();

  void clear();

  // --- harvested remote rings ----------------------------------------------
  // Events shipped back from another process's recorder.  They keep that
  // process's span clock; `clock_offset_ns` (remote minus local, estimated
  // from the hello handshake) is subtracted at export so all lanes share
  // the local clock.  Lanes merge by process name across repeated harvests.
  struct RemoteLane {
    std::string process;
    int64_t clock_offset_ns = 0;
    std::vector<TraceEvent> events;
  };
  void add_remote_lane(const std::string& process, int64_t clock_offset_ns,
                       std::vector<TraceEvent> events);
  std::vector<RemoteLane> remote_lanes() const;
  size_t num_remote_lanes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return remote_lanes_.size();
  }

  // The process-wide recorder the instrumentation hooks talk to.  Disabled
  // by default; install() swaps in a caller-owned recorder (tests, tools)
  // and returns the previous one; install(nullptr) restores the default.
  static TraceRecorder& global();
  static TraceRecorder* install(TraceRecorder* r);

 private:
  TraceRing* ring_locked(const ElementId& id);

  bool enabled_ = false;
  SimTime now_;
  size_t ring_capacity_;
  // Guards rings_ and pushes through record(): the parallel collection
  // runtime emits events from worker threads.  Reads (events, counts) take
  // the same lock, so snapshots are consistent.
  mutable std::mutex mu_;
  std::unordered_map<ElementId, std::unique_ptr<TraceRing>> rings_;
  std::vector<RemoteLane> remote_lanes_;
};

// RAII install+enable of a recorder (tests and tools).
class ScopedTraceRecorder {
 public:
  explicit ScopedTraceRecorder(size_t ring_capacity =
                                   TraceRecorder::kDefaultRingCapacity)
      : recorder_(ring_capacity) {
    recorder_.set_enabled(true);
    prev_ = TraceRecorder::install(&recorder_);
  }
  ScopedTraceRecorder(const ScopedTraceRecorder&) = delete;
  ScopedTraceRecorder& operator=(const ScopedTraceRecorder&) = delete;
  ~ScopedTraceRecorder() { TraceRecorder::install(prev_); }

  TraceRecorder& recorder() { return recorder_; }

 private:
  TraceRecorder recorder_;
  TraceRecorder* prev_;
};

// --- hot-path hooks ---------------------------------------------------------
// One branch when tracing is off; callers need not know about the recorder.

inline bool trace_enabled() { return TraceRecorder::global().enabled(); }

// Records at an explicit time (instrumentation points that know `now`).
inline void trace_event(const ElementId& id, SimTime t, TraceEventKind kind,
                        double value = 0, std::string_view detail = {}) {
  TraceRecorder& g = TraceRecorder::global();
  if (!g.enabled()) return;
  g.record(id, t, kind, value, detail);
}

// Records at the recorder's clock (points without a time parameter).
inline void trace_event_now(const ElementId& id, TraceEventKind kind,
                            double value = 0, std::string_view detail = {}) {
  TraceRecorder& g = TraceRecorder::global();
  if (!g.enabled()) return;
  g.record(id, g.now(), kind, value, detail);
}

// Records a span event covering [t, t + dur].
inline void trace_span(const ElementId& id, SimTime t, TraceEventKind kind,
                       Duration dur, uint64_t span_id, uint64_t parent_span,
                       double value = 0, std::string_view detail = {}) {
  TraceRecorder& g = TraceRecorder::global();
  if (!g.enabled()) return;
  g.record_span(id, t, kind, dur, span_id, parent_span, value, detail);
}

// Drop with the rule book's cause taxonomy attached: the detail names the
// candidate resources whose shortage manifests at this element kind
// (Table 1), so the flight recorder explains drops, not just counts them.
void trace_drop(const ElementId& id, ElementKind kind, uint64_t pkts);

// --- export -----------------------------------------------------------------

// Chrome-trace / Perfetto JSON ("object format"): instant events with
// microsecond timestamps, one virtual thread per element, thread_name
// metadata so viewers show element names.  Timestamps are sorted.
//
// Span events render as complete ("X") events with their duration and carry
// span_id / parent_span in args, so a viewer (or the fleet-tracing tests)
// can resolve the scatter → batch → serve causality chain.  Harvested
// remote lanes render as additional Perfetto processes (pid 2, 3, ... in
// process-name order, with process_name metadata), timestamps corrected by
// each lane's clock offset and sorted within the lane.
std::string to_chrome_trace(const TraceRecorder& recorder);

}  // namespace perfsight
