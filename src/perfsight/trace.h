// Flight-recorder event tracing for the software dataplane (§4 direction:
// always-on, low-level instrumentation instead of coarse utilization
// monitoring).
//
// Aggregate counters answer "how many packets were lost"; they cannot answer
// "what *sequence* of drops, queue build-ups, grant shortfalls and state
// transitions led to this diagnosis".  The TraceRecorder closes that gap:
// every instrumented element owns a bounded ring of TraceEvents —
//
//   * kDrop                 packet loss, annotated with the rule book's
//                           candidate causes for that drop location
//   * kQueueHighWater/
//     kQueueLowWater        queue occupancy crossing 3/4, draining to 1/4
//   * kArbiterShortfall/
//     kArbiterRecovered     a resource-pool consumer granted less than its
//                           demand (the onset / end of contention)
//   * kStreamState          middlebox ReadBlocked / WriteBlocked /
//                           Overloaded / Underloaded transitions (Fig. 7)
//   * kAgentQueryIssued/
//     kAgentQueryCompleted  agent↔element channel activity (Fig. 9 cost)
//   * kAgentCacheHit        a cached query served locally (zero channel
//                           latency) — timelines keep every diagnosis query
//   * kDiagnosisStarted/
//     kDiagnosisCompleted   Algorithm 1/2 runs (self-profiling)
//   * kAlertFired           an AlertWatcher threshold breach
//
// Rings overwrite the oldest event when full and count what they discard
// (`dropped_events`), so the hot path never blocks and never allocates
// unboundedly: recording is a handful of stores (strings stay within SSO
// for the short static details used on fast paths).  With tracing disabled
// the cost is a single branch on a global flag.
//
// The recorder carries a simulated-time clock stamped by the Simulator each
// tick, so instrumentation points without a `now` parameter (queue accept,
// drop charging) still timestamp correctly.  Wall-clock users (the hotpath
// overhead bench) push into rings directly with their own timestamps.
//
// Export: to_chrome_trace() renders the merged, time-ordered event stream
// as Chrome-trace/Perfetto JSON, so any scenario run can be opened in a
// trace viewer (chrome://tracing, ui.perfetto.dev).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "perfsight/rulebook.h"

namespace perfsight {

enum class TraceEventKind {
  kDrop = 0,
  kQueueHighWater,
  kQueueLowWater,
  kArbiterShortfall,
  kArbiterRecovered,
  kStreamState,
  kAgentQueryIssued,
  kAgentQueryCompleted,
  kDiagnosisStarted,
  kDiagnosisCompleted,
  kAlertFired,
  kAgentCacheHit,  // cached diagnosis query served without a channel trip
  // Fault-tolerant collection (faults.h): channel failures, the retry/budget
  // machinery absorbing them, and circuit-breaker state — timelines show the
  // collection layer degrading, not just succeeding.
  kAgentRetry,          // one retry after a failed attempt (value = attempt#)
  kAgentQueryFailed,    // retries exhausted / budget hit / breaker open
  kAgentBatchDegraded,  // a batch returned with blind spots (value = count)
  kBreakerStateChange,  // circuit breaker closed/open/half-open transition
  kAgentCrashRestart,   // whole-agent crash: caches lost, counters reset
  // Controller scatter-gather (controller.h): a multi-element query fanned
  // out as per-agent batches over the collection pool, then merged back in
  // element-id order.
  kControllerScatter,  // fan-out issued (value = elements requested)
  kControllerGather,   // merge completed (value = elements served)
  // Socket transport (transport.h / remote_agent.h): connection lifecycle of
  // socket-backed agents, so timelines show when measurement crossed a real
  // process boundary and when that boundary failed.
  kTransportConnect,    // RemoteAgent dialed + completed the hello handshake
  kTransportReconnect,  // a dead connection was re-dialed (value = attempt#)
  kTransportDamaged,    // a batch arrived torn/short (value = frames lost)
};

const char* to_string(TraceEventKind k);

struct TraceEvent {
  SimTime t;
  TraceEventKind kind = TraceEventKind::kDrop;
  double value = 0;     // kind-specific magnitude (pkts, fraction, us, ...)
  std::string element;  // owning element name
  std::string detail;   // short human-readable annotation
};

// Fixed-capacity event ring for one element.  Overwrites the oldest event
// when full; `dropped_events` counts the overwritten ones.
class TraceRing {
 public:
  TraceRing(std::string element, size_t capacity);

  void push(SimTime t, TraceEventKind kind, double value,
            std::string_view detail);

  size_t size() const { return count_; }
  size_t capacity() const { return buf_.size(); }
  uint64_t total_events() const { return total_; }
  uint64_t dropped_events() const { return total_ - count_; }
  const std::string& element() const { return element_; }

  // Events oldest-first.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::string element_;
  std::vector<TraceEvent> buf_;
  size_t next_ = 0;   // slot the next push writes
  size_t count_ = 0;  // live events (<= capacity)
  uint64_t total_ = 0;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 1024;

  explicit TraceRecorder(size_t ring_capacity = kDefaultRingCapacity)
      : ring_capacity_(ring_capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // The recorder's clock; the Simulator stamps this at every tick so that
  // instrumentation points without a time parameter timestamp correctly.
  SimTime now() const { return now_; }
  void set_now(SimTime t) { now_ = t; }

  // Per-element ring, created on first use.  Hot paths that record per
  // packet should cache this pointer; rings live as long as the recorder.
  // Direct TraceRing::push bypasses the recorder lock and is only safe
  // single-threaded; concurrent recording must go through record().
  TraceRing* ring(const ElementId& id);

  // Records one event (no-op while disabled).
  void record(const ElementId& id, SimTime t, TraceEventKind kind,
              double value = 0, std::string_view detail = {});

  size_t ring_capacity() const { return ring_capacity_; }
  size_t num_rings() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rings_.size();
  }
  // Total events discarded by overwrite across all rings.
  uint64_t dropped_events() const;
  uint64_t total_events() const;

  // Merged event stream, ordered by timestamp (ties broken by element).
  std::vector<TraceEvent> events() const;
  std::vector<TraceEvent> events_for(const ElementId& id) const;

  void clear();

  // The process-wide recorder the instrumentation hooks talk to.  Disabled
  // by default; install() swaps in a caller-owned recorder (tests, tools)
  // and returns the previous one; install(nullptr) restores the default.
  static TraceRecorder& global();
  static TraceRecorder* install(TraceRecorder* r);

 private:
  TraceRing* ring_locked(const ElementId& id);

  bool enabled_ = false;
  SimTime now_;
  size_t ring_capacity_;
  // Guards rings_ and pushes through record(): the parallel collection
  // runtime emits events from worker threads.  Reads (events, counts) take
  // the same lock, so snapshots are consistent.
  mutable std::mutex mu_;
  std::unordered_map<ElementId, std::unique_ptr<TraceRing>> rings_;
};

// RAII install+enable of a recorder (tests and tools).
class ScopedTraceRecorder {
 public:
  explicit ScopedTraceRecorder(size_t ring_capacity =
                                   TraceRecorder::kDefaultRingCapacity)
      : recorder_(ring_capacity) {
    recorder_.set_enabled(true);
    prev_ = TraceRecorder::install(&recorder_);
  }
  ScopedTraceRecorder(const ScopedTraceRecorder&) = delete;
  ScopedTraceRecorder& operator=(const ScopedTraceRecorder&) = delete;
  ~ScopedTraceRecorder() { TraceRecorder::install(prev_); }

  TraceRecorder& recorder() { return recorder_; }

 private:
  TraceRecorder recorder_;
  TraceRecorder* prev_;
};

// --- hot-path hooks ---------------------------------------------------------
// One branch when tracing is off; callers need not know about the recorder.

inline bool trace_enabled() { return TraceRecorder::global().enabled(); }

// Records at an explicit time (instrumentation points that know `now`).
inline void trace_event(const ElementId& id, SimTime t, TraceEventKind kind,
                        double value = 0, std::string_view detail = {}) {
  TraceRecorder& g = TraceRecorder::global();
  if (!g.enabled()) return;
  g.record(id, t, kind, value, detail);
}

// Records at the recorder's clock (points without a time parameter).
inline void trace_event_now(const ElementId& id, TraceEventKind kind,
                            double value = 0, std::string_view detail = {}) {
  TraceRecorder& g = TraceRecorder::global();
  if (!g.enabled()) return;
  g.record(id, g.now(), kind, value, detail);
}

// Drop with the rule book's cause taxonomy attached: the detail names the
// candidate resources whose shortage manifests at this element kind
// (Table 1), so the flight recorder explains drops, not just counts them.
void trace_drop(const ElementId& id, ElementKind kind, uint64_t pkts);

// --- export -----------------------------------------------------------------

// Chrome-trace / Perfetto JSON ("object format"): instant events with
// microsecond timestamps, one virtual thread per element, thread_name
// metadata so viewers show element names.  Timestamps are sorted.
std::string to_chrome_trace(const TraceRecorder& recorder);

}  // namespace perfsight
