#include "perfsight/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstddef>
#include <cstring>

#include "perfsight/wire.h"

namespace perfsight::transport {

int64_t span_clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

namespace {

// Remaining milliseconds until `until`, clamped to >= 0 for poll().
// time_point::max() is the "no deadline" sentinel (the subtraction would
// overflow); it polls in hour-long slices.
int remaining_ms(Clock::time_point until) {
  if (until == Clock::time_point::max()) return 1000 * 60 * 60;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      until - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 1000 * 60 * 60) return 1000 * 60 * 60;
  return static_cast<int>(left.count());
}

// Waits until fd is ready for `events`; false on timeout.  EINTR retries
// against the same absolute deadline.
bool poll_until(int fd, short events, Clock::time_point until) {
  for (;;) {
    pollfd p{fd, events, 0};
    int ms = remaining_ms(until);
    int rc = ::poll(&p, 1, ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

void set_fd_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  if (on) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  } else {
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
}

void tune_stream(int fd, const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    // Request/response framing: batch replies must not sit in Nagle's
    // buffer waiting for a payload that is never coming.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

Status errno_status(const std::string& what) {
  return Status::unavailable(what + ": " + std::strerror(errno));
}

struct SockAddr {
  sockaddr_storage storage = {};
  socklen_t len = 0;
  int family = AF_INET;
};

Result<SockAddr> to_sockaddr(const Endpoint& ep) {
  SockAddr sa;
  if (ep.kind == Endpoint::Kind::kTcp) {
    auto* in = reinterpret_cast<sockaddr_in*>(&sa.storage);
    in->sin_family = AF_INET;
    in->sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &in->sin_addr) != 1) {
      return Status::invalid_argument("transport: bad IPv4 address: " +
                                      ep.host);
    }
    sa.len = sizeof(sockaddr_in);
    sa.family = AF_INET;
    return sa;
  }
  auto* un = reinterpret_cast<sockaddr_un*>(&sa.storage);
  un->sun_family = AF_UNIX;
  if (ep.path.size() + 1 > sizeof(un->sun_path)) {
    return Status::invalid_argument("transport: unix path too long: " +
                                    ep.path);
  }
  std::memcpy(un->sun_path, ep.path.c_str(), ep.path.size() + 1);
  sa.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  ep.path.size() + 1);
  sa.family = AF_UNIX;
  return sa;
}

}  // namespace

// --- Endpoint ----------------------------------------------------------------

Endpoint Endpoint::tcp(std::string host, uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::unix_path(std::string path) {
  Endpoint ep;
  ep.kind = Kind::kUnix;
  ep.path = std::move(path);
  return ep;
}

Result<Endpoint> Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    std::string path = spec.substr(5);
    if (path.empty()) {
      return Status::invalid_argument("transport: empty unix path in '" +
                                      spec + "'");
    }
    return unix_path(std::move(path));
  }
  if (spec.rfind("tcp:", 0) == 0) {
    size_t colon = spec.rfind(':');
    if (colon == 3) {
      return Status::invalid_argument("transport: missing port in '" + spec +
                                      "'");
    }
    std::string host = spec.substr(4, colon - 4);
    std::string_view port_sv(spec.data() + colon + 1,
                             spec.size() - colon - 1);
    uint16_t port = 0;
    auto [ptr, ec] = std::from_chars(port_sv.data(),
                                     port_sv.data() + port_sv.size(), port);
    if (ec != std::errc() || ptr != port_sv.data() + port_sv.size() ||
        host.empty()) {
      return Status::invalid_argument("transport: bad tcp endpoint '" + spec +
                                      "' (want tcp:<host>:<port>)");
    }
    return tcp(std::move(host), port);
  }
  return Status::invalid_argument(
      "transport: unknown endpoint scheme in '" + spec +
      "' (want tcp:<host>:<port> or unix:<path>)");
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// --- Socket ------------------------------------------------------------------

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking(bool on) {
  if (fd_ >= 0) set_fd_nonblocking(fd_, on);
}

Status Socket::send_all(std::string_view bytes) {
  return send_all_until(bytes, Clock::time_point::max());
}

Status Socket::send_all(std::string_view bytes, WallDuration deadline) {
  return send_all_until(bytes, Clock::now() + deadline);
}

Status Socket::send_all_until(std::string_view bytes,
                              Clock::time_point until) {
  if (fd_ < 0) return Status::unavailable("transport: send on closed socket");
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_DONTWAIT: a blocking socket must not park us in the kernel past
    // the deadline; EAGAIN routes through the deadline-aware poll below.
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The peer's receive window (or our send buffer) is full.  Wait for
      // space, but only until the deadline: a peer that never drains must
      // cost a bounded wait, not a wedged thread.
      if (!poll_until(fd_, POLLOUT, until)) {
        return Status::deadline_exceeded("transport: send deadline after " +
                                         std::to_string(off) + "/" +
                                         std::to_string(bytes.size()) +
                                         " bytes");
      }
      continue;
    }
    return errno_status("transport: send");
  }
  return Status::ok();
}

Status Socket::recv_exact(size_t n, std::string* out, WallDuration deadline) {
  return recv_exact_until(n, out, Clock::now() + deadline);
}

Status Socket::recv_exact_until(size_t n, std::string* out,
                                Clock::time_point until) {
  if (fd_ < 0) return Status::unavailable("transport: recv on closed socket");
  size_t got = 0;
  char buf[4096];
  while (got < n) {
    if (!poll_until(fd_, POLLIN, until)) {
      return Status::deadline_exceeded("transport: read deadline after " +
                                       std::to_string(got) + "/" +
                                       std::to_string(n) + " bytes");
    }
    size_t want = std::min(n - got, sizeof(buf));
    ssize_t r = ::recv(fd_, buf, want, 0);
    if (r > 0) {
      out->append(buf, static_cast<size_t>(r));
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      return Status::unavailable("transport: peer closed after " +
                                 std::to_string(got) + "/" +
                                 std::to_string(n) + " bytes");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return errno_status("transport: recv");
  }
  return Status::ok();
}

Result<size_t> Socket::read_some(std::string* out) {
  if (fd_ < 0) return Status::unavailable("transport: recv on closed socket");
  char buf[65536];
  for (;;) {
    ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      out->append(buf, static_cast<size_t>(r));
      return static_cast<size_t>(r);
    }
    if (r == 0) return Status::unavailable("transport: peer closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return errno_status("transport: recv");
  }
}

Result<size_t> Socket::write_some(std::string_view bytes) {
  if (fd_ < 0) return Status::unavailable("transport: send on closed socket");
  for (;;) {
    ssize_t n = ::send(fd_, bytes.data(), bytes.size(),
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return errno_status("transport: send");
  }
}

// --- Listener ----------------------------------------------------------------

Listener::~Listener() { close(); }

Listener::Listener(Listener&& o) noexcept : fd_(o.fd_), ep_(std::move(o.ep_)) {
  o.fd_ = -1;
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    ep_ = std::move(o.ep_);
    o.fd_ = -1;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (ep_.kind == Endpoint::Kind::kUnix) ::unlink(ep_.path.c_str());
  }
}

Result<Listener> Listener::listen(const Endpoint& ep) {
  Result<SockAddr> sa = to_sockaddr(ep);
  if (!sa.ok()) return sa.status();

  int fd = ::socket(sa.value().family, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("transport: socket");

  if (ep.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    // A previous run that died without cleanup leaves the socket file
    // behind; bind would fail EADDRINUSE on a path nobody is listening on.
    ::unlink(ep.path.c_str());
  }

  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa.value().storage),
             sa.value().len) < 0) {
    Status st = errno_status("transport: bind " + ep.to_string());
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) < 0) {
    Status st = errno_status("transport: listen");
    ::close(fd);
    return st;
  }

  Listener l;
  l.fd_ = fd;
  l.ep_ = ep;
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    sockaddr_in bound = {};
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
      l.ep_.port = ntohs(bound.sin_port);
    }
  }
  return l;
}

Result<Socket> Listener::accept(WallDuration deadline) {
  if (fd_ < 0) return Status::unavailable("transport: accept on closed listener");
  const Clock::time_point until = Clock::now() + deadline;
  for (;;) {
    if (!poll_until(fd_, POLLIN, until)) {
      return Status::deadline_exceeded("transport: accept deadline on " +
                                       ep_.to_string());
    }
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      tune_stream(cfd, ep_);
      return Socket(cfd);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return errno_status("transport: accept");
  }
}

// --- connect -----------------------------------------------------------------

Result<Socket> connect(const Endpoint& ep, WallDuration deadline) {
  Result<SockAddr> sa = to_sockaddr(ep);
  if (!sa.ok()) return sa.status();

  int fd = ::socket(sa.value().family, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("transport: socket");

  // Non-blocking connect: a black-holed SYN must respect the deadline, not
  // the kernel's multi-minute default.
  set_fd_nonblocking(fd, true);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa.value().storage),
                     sa.value().len);
  if (rc < 0 && errno != EINPROGRESS) {
    Status st = errno_status("transport: connect " + ep.to_string());
    ::close(fd);
    return st;
  }
  if (rc < 0) {
    if (!poll_until(fd, POLLOUT, Clock::now() + deadline)) {
      ::close(fd);
      return Status::deadline_exceeded("transport: connect deadline to " +
                                       ep.to_string());
    }
    int err = 0;
    socklen_t elen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) < 0 || err != 0) {
      ::close(fd);
      return Status::unavailable("transport: connect " + ep.to_string() +
                                 ": " + std::strerror(err != 0 ? err : errno));
    }
  }
  set_fd_nonblocking(fd, false);
  tune_stream(fd, ep);
  return Socket(fd);
}

// --- framed reads ------------------------------------------------------------

BatchReadResult read_batch(Socket& s, WallDuration deadline) {
  BatchReadResult out;
  // ONE absolute deadline for the whole length-chain walk.  Passing the
  // relative `deadline` to every recv would restart the budget per step — a
  // peer trickling a frame at a time could then hold the reader for
  // frames × deadline instead of one.
  const Clock::time_point until = Clock::now() + deadline;

  // Header first: it carries the frame count the length chain hangs off.
  Status st = s.recv_exact_until(wire::kBatchHeaderSize, &out.bytes, until);
  if (!st.is_ok()) {
    out.status = st;
    return out;
  }
  size_t at = 0;
  uint32_t magic = 0, count = 0;
  if (!wire::get_u32(out.bytes, at, &magic) || magic != wire::kMagic ||
      !wire::get_u32(out.bytes, at, &count)) {
    out.status = Status::invalid_argument("transport: stream is not a PSB1 batch");
    return out;
  }

  for (uint32_t i = 0; i < count; ++i) {
    // Frame prefix: payload_len + checksum.
    size_t frame_start = out.bytes.size();
    st = s.recv_exact_until(wire::kFramePrefixSize, &out.bytes, until);
    if (!st.is_ok()) {
      out.status = st;
      return out;
    }
    size_t fat = frame_start;
    uint32_t payload_len = 0;
    wire::get_u32(out.bytes, fat, &payload_len);
    if (payload_len > wire::kMaxPayload) {
      // The chain is lying; anything further would be read at a wrong
      // offset.  Stop and let decode_batch/reconcile mark the loss.
      out.status = Status::invalid_argument(
          "transport: frame length " + std::to_string(payload_len) +
          " exceeds cap; stream corrupt");
      return out;
    }
    st = s.recv_exact_until(payload_len, &out.bytes, until);
    if (!st.is_ok()) {
      out.status = st;
      return out;
    }
  }
  return out;
}

bool wait_readable(const Socket& s, WallDuration deadline) {
  if (s.fd() < 0) return false;
  return poll_until(s.fd(), POLLIN, Clock::now() + deadline);
}

Result<std::string> read_message_bytes(Socket& s, WallDuration deadline) {
  std::string bytes;
  // Prefix and body share one absolute budget (same rationale as
  // read_batch: the deadline bounds the message, not each step).
  const Clock::time_point until = Clock::now() + deadline;
  Status st = s.recv_exact_until(wire::kMessagePrefixSize, &bytes, until);
  if (!st.is_ok()) return st;
  size_t at = 0;
  uint32_t magic = 0, len = 0;
  uint8_t kind = 0;
  if (!wire::get_u32(bytes, at, &magic) || magic != wire::kMessageMagic ||
      !wire::get_u8(bytes, at, &kind) || !wire::get_u32(bytes, at, &len) ||
      len > wire::kMaxPayload) {
    return Status::invalid_argument("transport: stream is not a PSM1 message");
  }
  st = s.recv_exact_until(len, &bytes, until);
  if (!st.is_ok()) return st;
  return bytes;
}

}  // namespace perfsight::transport
