// Socket transport for the PSB1/PSM1 wire codec (ROADMAP: "Real sockets
// under the wire codec").
//
// This is the first layer where PerfSight's bytes cross a process boundary:
// a remote-agent stub (remote_agent.h) listens here, the controller-side
// RemoteAgent adapter dials here, and the frames of wire.h travel between
// them over TCP or a unix-domain socket.
//
// Design constraints, in order:
//   - Deadlines on every blocking call.  The collection runtime owns its
//     sweep budget; a wedged peer must cost a bounded wall-clock wait, not a
//     hung controller.  recv/send/accept/connect all poll() with a deadline
//     and report kDeadlineExceeded on expiry.  Multi-step reads (the PSB1
//     length-chain walk) thread ONE absolute deadline through every step, so
//     a trickling peer costs at most one configured deadline of wall clock —
//     never frames × deadline.
//   - Partial data survives.  recv_exact returns whatever arrived before the
//     stream died, so the batch reader can hand a damaged prefix to
//     wire::decode_batch + wire::reconcile instead of discarding a
//     half-received sweep.
//   - Length-chain-aware reads.  read_batch walks the PSB1 structure (header
//     frame-count, per-frame payload_len) with the bounds-checked wire::get_*
//     primitives, so a corrupted length prefix caps out at kMaxPayload and
//     never makes the reader trust a multi-gigabyte allocation.
//
// Everything here is wall-clock and OS-level; simulated time never enters —
// it travels *inside* the request messages (BatchRequestMsg::now).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace perfsight::transport {

using Clock = std::chrono::steady_clock;
using WallDuration = std::chrono::milliseconds;

// The span clock: monotonic wall nanoseconds since an arbitrary per-process
// epoch.  Server-side trace spans are stamped with it, the hello handshake
// samples it, and the client-side offset estimate maps one process's span
// clock onto another's at trace export.  (Tests skew a *server's* view of
// it via RemoteAgentServer::set_clock_skew_ns to prove the correction.)
int64_t span_clock_ns();

// Where a remote agent listens.  Spec strings:
//   "tcp:<host>:<port>"   e.g. "tcp:127.0.0.1:7070"  (port 0 = ephemeral)
//   "unix:<path>"         e.g. "unix:/tmp/perfsight-agent.sock"
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;  // kTcp: numeric IPv4 address
  uint16_t port = 0; // kTcp; 0 requests an ephemeral port
  std::string path;  // kUnix

  static Endpoint tcp(std::string host, uint16_t port);
  static Endpoint unix_path(std::string path);
  static Result<Endpoint> parse(const std::string& spec);
  std::string to_string() const;
};

// A connected stream socket.  Move-only RAII over the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  // Flips O_NONBLOCK (event-loop servers run every accepted connection
  // nonblocking and multiplex with poll()).
  void set_nonblocking(bool on);

  // Writes all of `bytes` (MSG_NOSIGNAL; a dead peer is a Status, not a
  // SIGPIPE).  kUnavailable on any send error.  Without a deadline the call
  // waits indefinitely for buffer space; with one, a peer that never drains
  // its receive buffer costs kDeadlineExceeded after `deadline` instead of
  // wedging the sending thread forever.
  Status send_all(std::string_view bytes);
  Status send_all(std::string_view bytes, WallDuration deadline);
  Status send_all_until(std::string_view bytes, Clock::time_point until);

  // Reads exactly `n` bytes into `*out` (appended), polling until the
  // deadline.  On failure `*out` still holds every byte that arrived —
  // partial data is the caller's to reconcile:
  //   kDeadlineExceeded — the deadline expired mid-read
  //   kUnavailable      — peer closed (EOF) or socket error
  // The _until form takes an absolute deadline, so a multi-step read can
  // thread one total budget through every step.
  Status recv_exact(size_t n, std::string* out, WallDuration deadline);
  Status recv_exact_until(size_t n, std::string* out, Clock::time_point until);

  // Nonblocking single read: appends whatever is available (at most one
  // 64 KiB chunk) to `*out` and returns the byte count — 0 with ok() means
  // nothing is pending (EAGAIN).  kUnavailable on EOF or socket error.
  // Event-loop reads only; the socket must be nonblocking.
  Result<size_t> read_some(std::string* out);

  // Nonblocking single write: sends what fits in the socket buffer and
  // returns the byte count — 0 with ok() means the buffer is full (EAGAIN).
  // kUnavailable on a dead peer.  Event-loop writes only.
  Result<size_t> write_some(std::string_view bytes);

 private:
  int fd_ = -1;
};

// A bound, listening socket.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds + listens.  For tcp port 0, the resolved ephemeral port is
  // reflected into bound_endpoint().  For unix, a stale socket file at the
  // path is removed first.
  static Result<Listener> listen(const Endpoint& ep);

  // Accepts one connection; kDeadlineExceeded if none arrives in time.
  Result<Socket> accept(WallDuration deadline);

  const Endpoint& bound_endpoint() const { return ep_; }
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }  // for event loops polling the listener
  void close();

 private:
  int fd_ = -1;
  Endpoint ep_;
};

// Dials `ep` (non-blocking connect + poll, so the deadline holds even while
// the peer's backlog is full or the host is black-holing SYNs).
Result<Socket> connect(const Endpoint& ep, WallDuration deadline);

// What a stream read of one PSB1 batch yielded.  `bytes` always holds
// everything that arrived — on a clean read the whole batch, on a torn one
// the surviving prefix (which wire::decode_batch turns into verified frames
// and wire::reconcile turns into kMissing blind spots).
struct BatchReadResult {
  std::string bytes;
  Status status = Status::ok();  // ok / kDeadlineExceeded / kUnavailable
  bool clean() const { return status.is_ok(); }
};

// Reads one PSB1 batch off the stream by walking its length chain: the
// 20-byte header yields the frame count; each frame's 12-byte prefix yields
// its payload length.  `deadline` is the budget for the WHOLE batch — one
// absolute deadline threads through every header/prefix/payload step, so a
// peer trickling one frame at a time costs at most one deadline of wall
// clock, never frames × deadline.  A length prefix exceeding
// wire::kMaxPayload stops the read (corrupt stream); the bytes so far are
// returned for reconciliation.
BatchReadResult read_batch(Socket& s, WallDuration deadline);

// Reads one PSM1 control message (17-byte prefix, then body), returning its
// raw bytes for wire::decode_message.  `deadline` covers prefix + body
// together (one absolute budget, like read_batch).  kDeadlineExceeded /
// kUnavailable on transport failure, kInvalidArgument on a malformed
// envelope.
Result<std::string> read_message_bytes(Socket& s, WallDuration deadline);

// True when at least one byte (or EOF) is readable within `deadline`.  Serve
// loops idle on this instead of a short-deadline read, so a slow-trickling
// message prefix is never read halfway and discarded.
bool wait_readable(const Socket& s, WallDuration deadline);

}  // namespace perfsight::transport
