#include "perfsight/wire.h"

#include <algorithm>
#include <cstring>

namespace perfsight::wire {

namespace {

// Little-endian append helper.  memcpy keeps it alignment- and
// strict-aliasing-safe; on LE hosts the compiler folds it to plain moves.
template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

// Reads a T at `at`.  The `at > size` guard is explicit: `bytes.size() - at`
// is unsigned, and a caller that over-advanced `at` (the streaming transport
// reader walks length chains from untrusted prefixes) must get `false`, not
// a wrapped-around huge remainder.
template <typename T>
bool get(std::string_view bytes, size_t at_in, size_t& at, T* v) {
  if (at_in > bytes.size() || bytes.size() - at_in < sizeof(T)) return false;
  std::memcpy(v, bytes.data() + at_in, sizeof(T));
  at = at_in + sizeof(T);
  return true;
}

template <typename T>
bool get(std::string_view bytes, size_t& at, T* v) {
  return get(bytes, at, at, v);
}

bool get_string(std::string_view bytes, size_t& at, std::string* s) {
  uint16_t len = 0;
  if (!get(bytes, at, &len)) return false;
  if (at > bytes.size() || bytes.size() - at < len) return false;
  s->assign(bytes.data() + at, len);
  at += len;
  return true;
}

// Strings longer than a u16 cannot travel.  The public encoders validate
// before building, so reaching this with an oversize string is a programmer
// error — the old behaviour (clamp to 64 KiB) produced frames that
// checksummed fine but decoded to a record different from what was encoded.
void put_string(std::string& out, const std::string& s) {
  PS_CHECK(s.size() <= 0xffff);
  put(out, static_cast<uint16_t>(s.size()));
  out.append(s.data(), s.size());
}

Status check_encodable(const QueryResponse& r) {
  if (r.record.element.name.size() > 0xffff) {
    return Status::invalid_argument("wire: element name exceeds 64 KiB: " +
                                    r.record.element.name.substr(0, 64));
  }
  if (r.record.attrs.size() > 0xffff) {
    return Status::invalid_argument(
        "wire: element " + r.record.element.name + " has " +
        std::to_string(r.record.attrs.size()) + " attrs (wire limit 65535)");
  }
  for (const Attr& a : r.record.attrs) {
    if (a.name.size() > 0xffff) {
      return Status::invalid_argument("wire: attr name exceeds 64 KiB: " +
                                      a.name.substr(0, 64));
    }
  }
  return Status::ok();
}

// Builds the payload of an already-validated response.
std::string encode_payload(const QueryResponse& r) {
  std::string p;
  put<int64_t>(p, r.record.timestamp.ns());
  put<uint8_t>(p, static_cast<uint8_t>(r.quality));
  put<uint8_t>(p, static_cast<uint8_t>(r.fail_code));
  put<uint32_t>(p, r.attempts);
  put<int64_t>(p, r.response_time.ns());
  put_string(p, r.record.element.name);
  put<uint16_t>(p, static_cast<uint16_t>(r.record.attrs.size()));
  for (const Attr& a : r.record.attrs) {
    put_string(p, a.name);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(a.value));
    std::memcpy(&bits, &a.value, sizeof(bits));
    put(p, bits);
  }
  return p;
}

// Decodes one payload; false on structural damage (a verified checksum
// makes that unreachable in practice, but the decoder must not trust it).
bool decode_payload(std::string_view payload, QueryResponse* r) {
  size_t at = 0;
  int64_t ts = 0, rt = 0;
  uint8_t quality = 0, fail_code = 0;
  uint32_t attempts = 0;
  if (!get(payload, at, &ts)) return false;
  if (!get(payload, at, &quality)) return false;
  if (!get(payload, at, &fail_code)) return false;
  if (!get(payload, at, &attempts)) return false;
  if (!get(payload, at, &rt)) return false;
  if (quality > static_cast<uint8_t>(DataQuality::kReplica)) return false;
  if (fail_code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return false;
  }
  r->record.timestamp = SimTime::nanos(ts);
  r->quality = static_cast<DataQuality>(quality);
  r->fail_code = static_cast<StatusCode>(fail_code);
  r->attempts = attempts;
  r->response_time = Duration::nanos(rt);
  std::string name;
  if (!get_string(payload, at, &name)) return false;
  r->record.element = ElementId{std::move(name)};
  uint16_t n = 0;
  if (!get(payload, at, &n)) return false;
  r->record.attrs.clear();
  r->record.attrs.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Attr a;
    if (!get_string(payload, at, &a.name)) return false;
    uint64_t bits = 0;
    if (!get(payload, at, &bits)) return false;
    std::memcpy(&a.value, &bits, sizeof(bits));
    r->record.attrs.push_back(std::move(a));
  }
  return at == payload.size();  // trailing payload bytes = damage
}

bool decode_id_list(std::string_view body, size_t& at,
                    std::vector<ElementId>* ids) {
  uint32_t count = 0;
  if (!get(body, at, &count)) return false;
  // An id needs at least its 2-byte length prefix: cap what a corrupted
  // count can make us reserve.
  if (count > (body.size() - at) / 2 + 1) return false;
  ids->clear();
  ids->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!get_string(body, at, &name)) return false;
    ids->push_back(ElementId{std::move(name)});
  }
  return true;
}

void put_id_list(std::string& out, const std::vector<ElementId>& ids) {
  put<uint32_t>(out, static_cast<uint32_t>(ids.size()));
  for (const ElementId& id : ids) put_string(out, id.name);
}

}  // namespace

uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool get_u8(std::string_view bytes, size_t& at, uint8_t* v) {
  return get(bytes, at, v);
}
bool get_u16(std::string_view bytes, size_t& at, uint16_t* v) {
  return get(bytes, at, v);
}
bool get_u32(std::string_view bytes, size_t& at, uint32_t* v) {
  return get(bytes, at, v);
}
bool get_u64(std::string_view bytes, size_t& at, uint64_t* v) {
  return get(bytes, at, v);
}

Result<std::string> encode_frame(const QueryResponse& r) {
  Status st = check_encodable(r);
  if (!st.is_ok()) return st;
  std::string payload = encode_payload(r);
  if (payload.size() > kMaxPayload) {
    return Status::invalid_argument(
        "wire: frame payload for element " + r.record.element.name + " is " +
        std::to_string(payload.size()) + " bytes (cap " +
        std::to_string(kMaxPayload) + ")");
  }
  std::string out;
  out.reserve(kFramePrefixSize + payload.size());
  put<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  put<uint64_t>(out, fnv1a64(payload));
  out += payload;
  return out;
}

Result<std::string> encode_batch(const BatchResponse& b) {
  if (b.responses.size() > 0xffffffffULL) {
    return Status::invalid_argument("wire: batch frame count exceeds u32");
  }
  std::string out;
  put<uint32_t>(out, kMagic);
  put<uint32_t>(out, static_cast<uint32_t>(b.responses.size()));
  put<uint64_t>(out, static_cast<uint64_t>(b.channel_time.ns()));
  put<uint32_t>(out, static_cast<uint32_t>(b.unknown_ids));
  for (const QueryResponse& r : b.responses) {
    Result<std::string> frame = encode_frame(r);
    if (!frame.ok()) return frame.status();
    out += frame.value();
  }
  return out;
}

Result<QueryResponse> decode_frame(std::string_view bytes, size_t* consumed) {
  *consumed = 0;
  size_t at = 0;
  uint32_t len = 0;
  uint64_t sum = 0;
  if (!get(bytes, at, &len) || !get(bytes, at, &sum)) {
    return Status::invalid_argument("wire frame truncated in prefix");
  }
  if (len > kMaxPayload || bytes.size() - at < len) {
    return Status::invalid_argument("wire frame truncated in payload");
  }
  std::string_view payload = bytes.substr(at, len);
  if (fnv1a64(payload) != sum) {
    return Status::invalid_argument("wire frame checksum mismatch");
  }
  QueryResponse r;
  if (!decode_payload(payload, &r)) {
    return Status::invalid_argument("wire frame structurally damaged");
  }
  *consumed = kFramePrefixSize + len;
  return r;
}

Result<BatchResponse> decode_batch(std::string_view bytes,
                                   DecodeStats* stats) {
  DecodeStats local;
  DecodeStats& st = stats != nullptr ? *stats : local;
  st = DecodeStats{};

  size_t at = 0;
  uint32_t magic = 0, count = 0, unknown = 0;
  uint64_t channel_ns = 0;
  if (bytes.size() < kBatchHeaderSize) {
    return Status::invalid_argument("wire batch shorter than header");
  }
  get(bytes, at, &magic);
  if (magic != kMagic) {
    return Status::invalid_argument("wire batch bad magic");
  }
  get(bytes, at, &count);
  get(bytes, at, &channel_ns);
  get(bytes, at, &unknown);
  st.frames_expected = count;

  BatchResponse out;
  out.channel_time = Duration::nanos(static_cast<int64_t>(channel_ns));
  out.unknown_ids = unknown;
  for (uint32_t i = 0; i < count; ++i) {
    size_t consumed = 0;
    Result<QueryResponse> r = decode_frame(bytes.substr(at), &consumed);
    if (!r.ok()) {
      // Truncation if the bytes simply ran out; corruption otherwise.  Either
      // way the length chain past this point is untrustworthy: stop.
      if (at >= bytes.size()) {
        st.truncated = true;
      } else {
        st.corrupt = true;
      }
      return out;
    }
    at += consumed;
    ++st.frames_ok;
    if (r.value().quality != DataQuality::kFresh) ++out.degraded;
    out.responses.push_back(std::move(r).take());
  }
  st.trailing_bytes = bytes.size() - at;
  return out;
}

BatchResponse reconcile(const std::vector<ElementId>& sorted_ids,
                        const BatchResponse& decoded) {
  BatchResponse out;
  out.channel_time = decoded.channel_time;
  out.unknown_ids = decoded.unknown_ids;
  size_t ri = 0;
  for (const ElementId& id : sorted_ids) {
    while (ri < decoded.responses.size() &&
           decoded.responses[ri].record.element < id) {
      ++ri;
    }
    if (ri < decoded.responses.size() &&
        decoded.responses[ri].record.element == id) {
      out.responses.push_back(decoded.responses[ri]);
      ++ri;
    } else {
      // Frame lost on the wire: the element stays visible as a blind spot.
      QueryResponse miss;
      miss.record.element = id;
      miss.quality = DataQuality::kMissing;
      miss.attempts = 1;
      miss.fail_code = StatusCode::kUnavailable;
      out.responses.push_back(std::move(miss));
    }
  }
  for (const QueryResponse& r : out.responses) {
    if (r.quality != DataQuality::kFresh) ++out.degraded;
  }
  return out;
}

// --- transport control messages ---------------------------------------------

const char* to_string(MessageKind k) {
  switch (k) {
    case MessageKind::kHello:
      return "hello";
    case MessageKind::kBatchRequest:
      return "batch_request";
    case MessageKind::kSingleRequest:
      return "single_request";
    case MessageKind::kListElements:
      return "list_elements";
    case MessageKind::kSingleResponse:
      return "single_response";
    case MessageKind::kError:
      return "error";
    case MessageKind::kTraceHarvest:
      return "trace_harvest";
    case MessageKind::kTraceData:
      return "trace_data";
    case MessageKind::kSubscribe:
      return "subscribe";
    case MessageKind::kStreamData:
      return "stream_data";
    case MessageKind::kIntReport:
      return "int_report";
  }
  return "?";
}

std::string encode_message(MessageKind kind, std::string_view body) {
  PS_CHECK(body.size() <= kMaxPayload);
  std::string out;
  out.reserve(kMessagePrefixSize + body.size());
  put<uint32_t>(out, kMessageMagic);
  put<uint8_t>(out, static_cast<uint8_t>(kind));
  put<uint32_t>(out, static_cast<uint32_t>(body.size()));
  put<uint64_t>(out, fnv1a64(body));
  out.append(body.data(), body.size());
  return out;
}

Result<Message> decode_message(std::string_view bytes, size_t* consumed) {
  if (consumed != nullptr) *consumed = 0;
  size_t at = 0;
  uint32_t magic = 0, len = 0;
  uint8_t kind = 0;
  uint64_t sum = 0;
  if (!get(bytes, at, &magic) || !get(bytes, at, &kind) ||
      !get(bytes, at, &len) || !get(bytes, at, &sum)) {
    return Status::invalid_argument("wire message truncated in prefix");
  }
  if (magic != kMessageMagic) {
    return Status::invalid_argument("wire message bad magic");
  }
  if (kind < static_cast<uint8_t>(MessageKind::kHello) ||
      kind > static_cast<uint8_t>(MessageKind::kIntReport)) {
    return Status::invalid_argument("wire message unknown kind");
  }
  if (len > kMaxPayload || bytes.size() - at < len) {
    return Status::invalid_argument("wire message truncated in body");
  }
  std::string_view body = bytes.substr(at, len);
  if (fnv1a64(body) != sum) {
    return Status::invalid_argument("wire message checksum mismatch");
  }
  if (consumed != nullptr) *consumed = kMessagePrefixSize + len;
  Message m;
  m.kind = static_cast<MessageKind>(kind);
  m.body.assign(body.data(), body.size());
  return m;
}

std::string encode_hello(const HelloMsg& h) {
  std::string body;
  put_string(body, h.agent_name);
  put_id_list(body, h.elements);
  put<int64_t>(body, h.clock_ns);
  // The roster section only exists when there is genuinely a fleet behind
  // the endpoint: single-agent hellos stay byte-identical to the pre-roster
  // encoding, so a roster-unaware peer decodes them unchanged.
  if (h.roster.size() > 1) {
    put<uint32_t>(body, static_cast<uint32_t>(h.roster.size()));
    for (const HelloMsg::AgentInfo& a : h.roster) {
      put_string(body, a.name);
      put_id_list(body, a.elements);
    }
  }
  // Element-set epoch, appended last and only when advertised: a pre-epoch
  // hello stays byte-identical, and the 8-byte trailer cannot be mistaken
  // for a roster section (which is at least 16 bytes).
  if (h.epoch != 0) put<uint64_t>(body, h.epoch);
  return body;
}

Result<HelloMsg> decode_hello(std::string_view body) {
  HelloMsg h;
  size_t at = 0;
  if (!get_string(body, at, &h.agent_name) ||
      !decode_id_list(body, at, &h.elements) ||
      !get(body, at, &h.clock_ns)) {
    return Status::invalid_argument("wire hello structurally damaged");
  }
  if (at == body.size()) return h;  // single-agent hello: no roster section
  if (body.size() - at == 8) {
    // Exactly one u64 left: the epoch trailer of a single-agent hello (a
    // roster section is at least 16 bytes, so this cannot be one).
    if (!get(body, at, &h.epoch)) {
      return Status::invalid_argument("wire hello structurally damaged");
    }
    return h;
  }
  uint32_t count = 0;
  if (!get(body, at, &count)) {
    return Status::invalid_argument("wire hello structurally damaged");
  }
  // A roster entry costs at least its name length prefix (2) plus an id
  // count (4): cap what a corrupted count can make us reserve.
  if (count > (body.size() - at) / 6 + 1) {
    return Status::invalid_argument("wire hello structurally damaged");
  }
  h.roster.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HelloMsg::AgentInfo a;
    if (!get_string(body, at, &a.name) ||
        !decode_id_list(body, at, &a.elements)) {
      return Status::invalid_argument("wire hello structurally damaged");
    }
    h.roster.push_back(std::move(a));
  }
  if (at != body.size()) {
    // The only valid thing after a roster is the 8-byte epoch trailer.
    if (body.size() - at != 8 || !get(body, at, &h.epoch)) {
      return Status::invalid_argument("wire hello structurally damaged");
    }
  }
  return h;
}

std::string encode_batch_request(const BatchRequestMsg& r) {
  std::string body;
  put<int64_t>(body, r.now.ns());
  put_id_list(body, r.ids);
  put<uint64_t>(body, r.trace_id);
  put<uint64_t>(body, r.parent_span);
  // Routing name only when bound to a named agent: unbound requests stay
  // byte-identical to the pre-fleet format, which is also what routes them
  // to the primary agent on the far end.
  if (!r.agent.empty()) put_string(body, r.agent);
  return body;
}

Result<BatchRequestMsg> decode_batch_request(std::string_view body) {
  BatchRequestMsg r;
  size_t at = 0;
  int64_t now_ns = 0;
  if (!get(body, at, &now_ns) || !decode_id_list(body, at, &r.ids) ||
      !get(body, at, &r.trace_id) || !get(body, at, &r.parent_span)) {
    return Status::invalid_argument("wire batch request structurally damaged");
  }
  if (at != body.size() &&
      (!get_string(body, at, &r.agent) || at != body.size())) {
    return Status::invalid_argument("wire batch request structurally damaged");
  }
  r.now = SimTime::nanos(now_ns);
  return r;
}

std::string encode_single_request(const SingleRequestMsg& r) {
  std::string body;
  put<int64_t>(body, r.now.ns());
  put_string(body, r.id.name);
  put<uint32_t>(body, static_cast<uint32_t>(r.attrs.size()));
  for (const std::string& a : r.attrs) put_string(body, a);
  put<uint64_t>(body, r.trace_id);
  put<uint64_t>(body, r.parent_span);
  if (!r.agent.empty()) put_string(body, r.agent);  // as in batch requests
  return body;
}

Result<SingleRequestMsg> decode_single_request(std::string_view body) {
  SingleRequestMsg r;
  size_t at = 0;
  int64_t now_ns = 0;
  std::string name;
  uint32_t count = 0;
  if (!get(body, at, &now_ns) || !get_string(body, at, &name) ||
      !get(body, at, &count)) {
    return Status::invalid_argument("wire single request structurally damaged");
  }
  if (count > (body.size() - at) / 2 + 1) {
    return Status::invalid_argument("wire single request structurally damaged");
  }
  r.now = SimTime::nanos(now_ns);
  r.id = ElementId{std::move(name)};
  r.attrs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string a;
    if (!get_string(body, at, &a)) {
      return Status::invalid_argument(
          "wire single request structurally damaged");
    }
    r.attrs.push_back(std::move(a));
  }
  if (!get(body, at, &r.trace_id) || !get(body, at, &r.parent_span)) {
    return Status::invalid_argument("wire single request structurally damaged");
  }
  if (at != body.size() &&
      (!get_string(body, at, &r.agent) || at != body.size())) {
    return Status::invalid_argument("wire single request structurally damaged");
  }
  return r;
}

// --- trace data --------------------------------------------------------------
// event := i64 t_ns | u8 kind | u64 value_bits | u64 span_id |
//          u64 parent_span | i64 dur_ns | u16-str element | u16-str detail

namespace {
// Fixed-width portion of an encoded event: its two strings may be empty but
// each still costs a 2-byte length prefix.  Caps what a corrupted count can
// make the decoder reserve.
constexpr size_t kMinEventSize = 8 + 1 + 8 + 8 + 8 + 8 + 2 + 2;
}  // namespace

std::string encode_trace_data(const TraceDataMsg& t) {
  std::string body;
  put_string(body, t.process);
  put<uint32_t>(body, static_cast<uint32_t>(t.events.size()));
  for (const TraceEvent& e : t.events) {
    put<int64_t>(body, e.t.ns());
    put<uint8_t>(body, static_cast<uint8_t>(e.kind));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(e.value));
    std::memcpy(&bits, &e.value, sizeof(bits));
    put(body, bits);
    put<uint64_t>(body, e.span_id);
    put<uint64_t>(body, e.parent_span);
    put<int64_t>(body, e.dur.ns());
    put_string(body, e.element);
    put_string(body, e.detail);
  }
  return body;
}

Result<TraceDataMsg> decode_trace_data(std::string_view body) {
  TraceDataMsg t;
  size_t at = 0;
  uint32_t count = 0;
  if (!get_string(body, at, &t.process) || !get(body, at, &count)) {
    return Status::invalid_argument("wire trace data structurally damaged");
  }
  if (count > (body.size() - at) / kMinEventSize + 1) {
    return Status::invalid_argument("wire trace data structurally damaged");
  }
  t.events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TraceEvent e;
    int64_t t_ns = 0, dur_ns = 0;
    uint8_t kind = 0;
    uint64_t bits = 0;
    if (!get(body, at, &t_ns) || !get(body, at, &kind) ||
        !get(body, at, &bits) || !get(body, at, &e.span_id) ||
        !get(body, at, &e.parent_span) || !get(body, at, &dur_ns) ||
        !get_string(body, at, &e.element) ||
        !get_string(body, at, &e.detail) ||
        kind > static_cast<uint8_t>(TraceEventKind::kSpanServerSingle)) {
      return Status::invalid_argument("wire trace data structurally damaged");
    }
    e.t = SimTime::nanos(t_ns);
    e.kind = static_cast<TraceEventKind>(kind);
    std::memcpy(&e.value, &bits, sizeof(bits));
    e.dur = Duration::nanos(dur_ns);
    t.events.push_back(std::move(e));
  }
  if (at != body.size()) {
    return Status::invalid_argument("wire trace data structurally damaged");
  }
  return t;
}

std::string encode_error(const ErrorMsg& e) {
  std::string body;
  put<uint8_t>(body, static_cast<uint8_t>(e.code));
  body += e.message;
  return body;
}

Result<ErrorMsg> decode_error(std::string_view body) {
  ErrorMsg e;
  size_t at = 0;
  uint8_t code = 0;
  if (!get(body, at, &code) ||
      code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::invalid_argument("wire error message structurally damaged");
  }
  e.code = static_cast<StatusCode>(code);
  e.message.assign(body.data() + at, body.size() - at);
  return e;
}

// --- push-mode streaming -----------------------------------------------------
// body   := u16-str agent | u64 seq | i64 window_start_ns |
//           i64 channel_time_ns | u32 record_count | record*
// record := i64 timestamp_ns | u8 quality | u8 fail_code | u32 attempts |
//           i64 response_time_ns | u16-str element | u16 attr_count |
//           { u8 mode [| u16-str name] [| payload] }*
// attr_count bit 15 is the schema-elision flag: when set, this record's
// attr names (and order) are inherited from the previous frame's same
// element and the per-attr name strings are omitted — steady-state
// telemetry re-ships identical schemas every window, and the names are
// most of the record.  The low 15 bits are the count (stream cap 32767).
// Value payload by mode: 0 = u64 absolute IEEE-754 bits; 1 = u64 IEEE-754
// delta bits vs the previous frame's same (element, attr); 2 = u32
// non-negative integral delta vs the same base; 3 = unchanged (no payload,
// the base value verbatim).  Deltas are emitted only when prev + delta
// reproduces the value bit-exactly, preferring 3, then 2, then 1.

namespace {

// Fixed-width portion of an encoded stream record; caps what a corrupted
// count can make the decoder reserve.
constexpr size_t kMinStreamRecordSize = 8 + 1 + 1 + 4 + 8 + 2 + 2;

// The previous frame's response for `element`, or null.  Frames keep
// ascending element-id order, so this is a binary search.
const QueryResponse* prev_response(const StreamDataMsg* prev,
                                   const ElementId& element) {
  if (prev == nullptr) return nullptr;
  auto it = std::lower_bound(
      prev->responses.begin(), prev->responses.end(), element,
      [](const QueryResponse& r, const ElementId& id) {
        return r.record.element < id;
      });
  if (it == prev->responses.end() || !(it->record.element == element)) {
    return nullptr;
  }
  return &*it;
}

uint64_t double_bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::string encode_subscribe(const SubscribeMsg& s) {
  std::string body;
  put_string(body, s.agent);
  put<uint64_t>(body, s.from_seq);
  put<int64_t>(body, s.window_ns);
  return body;
}

Result<SubscribeMsg> decode_subscribe(std::string_view body) {
  SubscribeMsg s;
  size_t at = 0;
  if (!get_string(body, at, &s.agent) || !get(body, at, &s.from_seq) ||
      !get(body, at, &s.window_ns) || at != body.size()) {
    return Status::invalid_argument("wire subscribe structurally damaged");
  }
  return s;
}

Result<std::string> encode_stream_data(const StreamDataMsg& m,
                                       const StreamDataMsg* prev) {
  if (m.agent.size() > 0xffff) {
    return Status::invalid_argument("wire: agent name exceeds 64 KiB: " +
                                    m.agent.substr(0, 64));
  }
  for (const QueryResponse& r : m.responses) {
    Status st = check_encodable(r);
    if (!st.is_ok()) return st;
  }
  std::string body;
  put_string(body, m.agent);
  put<uint64_t>(body, m.seq);
  put<int64_t>(body, m.window_start.ns());
  put<int64_t>(body, m.channel_time.ns());
  put<uint32_t>(body, static_cast<uint32_t>(m.responses.size()));
  for (const QueryResponse& r : m.responses) {
    put<int64_t>(body, r.record.timestamp.ns());
    put<uint8_t>(body, static_cast<uint8_t>(r.quality));
    put<uint8_t>(body, static_cast<uint8_t>(r.fail_code));
    put<uint32_t>(body, r.attempts);
    put<int64_t>(body, r.response_time.ns());
    put_string(body, r.record.element.name);
    if (r.record.attrs.size() > 0x7fff) {
      return Status::invalid_argument(
          "wire: element " + r.record.element.name + " has " +
          std::to_string(r.record.attrs.size()) +
          " attrs (stream limit 32767)");
    }
    const QueryResponse* base = prev_response(prev, r.record.element);
    // Schema elision: when the base record carries the same attr names in
    // the same order — the steady state — the names are omitted entirely.
    bool same_schema =
        base != nullptr && base->record.attrs.size() == r.record.attrs.size();
    for (size_t i = 0; same_schema && i < r.record.attrs.size(); ++i) {
      same_schema = base->record.attrs[i].name == r.record.attrs[i].name;
    }
    uint16_t count_field = static_cast<uint16_t>(r.record.attrs.size());
    if (same_schema) count_field |= 0x8000;
    put<uint16_t>(body, count_field);
    for (size_t i = 0; i < r.record.attrs.size(); ++i) {
      const Attr& a = r.record.attrs[i];
      // Delta only when the receiver's reconstruction (base + delta, in
      // double arithmetic) is bit-exact; counters between adjacent windows
      // are, NaNs / wildly rescaled gauges are not and travel absolute.
      // Unchanged values (gauges, type/vm tags) ship zero payload bytes
      // (mode 3); small non-negative integral deltas — the overwhelmingly
      // common counter advance — four (mode 2) instead of eight.
      uint8_t mode = 0;
      uint64_t bits = double_bits(a.value);
      std::optional<double> pv;
      if (same_schema) {
        pv = base->record.attrs[i].value;
      } else if (base != nullptr) {
        pv = base->record.get(a.name);
      }
      if (pv.has_value()) {
        if (double_bits(*pv) == double_bits(a.value)) {
          mode = 3;
        } else {
          const double delta = a.value - *pv;
          if (double_bits(*pv + delta) == double_bits(a.value)) {
            const uint32_t small = static_cast<uint32_t>(delta);
            if (delta >= 0 && delta < 4294967296.0 &&
                static_cast<double>(small) == delta) {
              mode = 2;
              bits = small;
            } else {
              mode = 1;
              bits = double_bits(delta);
            }
          }
        }
      }
      put<uint8_t>(body, mode);
      if (!same_schema) put_string(body, a.name);
      if (mode == 3) {
        // no payload
      } else if (mode == 2) {
        put<uint32_t>(body, static_cast<uint32_t>(bits));
      } else {
        put<uint64_t>(body, bits);
      }
    }
  }
  if (body.size() > kMaxPayload) {
    return Status::invalid_argument(
        "wire: stream frame of " + std::to_string(body.size()) +
        " bytes exceeds the structural cap");
  }
  return body;
}

Result<StreamFrameInfo> peek_stream_data(std::string_view body) {
  StreamFrameInfo info;
  size_t at = 0;
  int64_t window_ns = 0, channel_ns = 0;
  if (!get_string(body, at, &info.agent) || !get(body, at, &info.seq) ||
      !get(body, at, &window_ns) || !get(body, at, &channel_ns) ||
      !get(body, at, &info.record_count)) {
    return Status::invalid_argument("wire stream data structurally damaged");
  }
  if (info.record_count > (body.size() - at) / kMinStreamRecordSize + 1) {
    return Status::invalid_argument("wire stream data structurally damaged");
  }
  info.window_start = SimTime::nanos(window_ns);
  return info;
}

Result<StreamDataMsg> decode_stream_data(std::string_view body,
                                         const StreamDataMsg* prev,
                                         bool* delta_without_base) {
  if (delta_without_base != nullptr) *delta_without_base = false;
  StreamDataMsg m;
  size_t at = 0;
  int64_t window_ns = 0, channel_ns = 0;
  uint32_t count = 0;
  if (!get_string(body, at, &m.agent) || !get(body, at, &m.seq) ||
      !get(body, at, &window_ns) || !get(body, at, &channel_ns) ||
      !get(body, at, &count)) {
    return Status::invalid_argument("wire stream data structurally damaged");
  }
  if (count > (body.size() - at) / kMinStreamRecordSize + 1) {
    return Status::invalid_argument("wire stream data structurally damaged");
  }
  m.window_start = SimTime::nanos(window_ns);
  m.channel_time = Duration::nanos(channel_ns);
  m.responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryResponse r;
    int64_t ts = 0, rt = 0;
    uint8_t quality = 0, fail_code = 0;
    std::string name;
    uint16_t attrs = 0;
    if (!get(body, at, &ts) || !get(body, at, &quality) ||
        !get(body, at, &fail_code) || !get(body, at, &r.attempts) ||
        !get(body, at, &rt) || !get_string(body, at, &name) ||
        !get(body, at, &attrs) ||
        quality > static_cast<uint8_t>(DataQuality::kReplica) ||
        fail_code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
      return Status::invalid_argument("wire stream data structurally damaged");
    }
    r.record.timestamp = SimTime::nanos(ts);
    r.record.element = ElementId{std::move(name)};
    r.quality = static_cast<DataQuality>(quality);
    r.fail_code = static_cast<StatusCode>(fail_code);
    r.response_time = Duration::nanos(rt);
    const QueryResponse* base = prev_response(prev, r.record.element);
    const bool same_schema = (attrs & 0x8000) != 0;
    attrs &= 0x7fff;
    // Elided schema without its base record (or with a base of a different
    // shape) is the same class of damage as a delta without its base.
    if (same_schema &&
        (base == nullptr || base->record.attrs.size() != attrs)) {
      if (delta_without_base != nullptr) *delta_without_base = true;
      return Status::invalid_argument("wire stream data delta without base");
    }
    r.record.attrs.reserve(attrs);
    for (uint16_t j = 0; j < attrs; ++j) {
      uint8_t mode = 0;
      Attr a;
      if (!get(body, at, &mode) || mode > 3 ||
          (!same_schema && !get_string(body, at, &a.name))) {
        return Status::invalid_argument(
            "wire stream data structurally damaged");
      }
      if (same_schema) a.name = base->record.attrs[j].name;
      uint64_t bits = 0;
      if (mode == 3) {
        // unchanged: no payload bytes
      } else if (mode == 2) {
        uint32_t small = 0;
        if (!get(body, at, &small)) {
          return Status::invalid_argument(
              "wire stream data structurally damaged");
        }
        bits = small;
      } else if (!get(body, at, &bits)) {
        return Status::invalid_argument(
            "wire stream data structurally damaged");
      }
      if (mode == 0) {
        a.value = bits_double(bits);
      } else {
        // Delta without its base is damage, never a silently wrong value:
        // a receiver that missed a window must repair before applying.
        std::optional<double> pv =
            same_schema ? std::optional<double>(base->record.attrs[j].value)
            : base != nullptr ? base->record.get(a.name)
                              : std::nullopt;
        if (!pv.has_value()) {
          if (delta_without_base != nullptr) *delta_without_base = true;
          return Status::invalid_argument(
              "wire stream data delta without base");
        }
        if (mode == 3) {
          a.value = *pv;
        } else {
          a.value = mode == 2 ? *pv + static_cast<double>(bits)
                              : *pv + bits_double(bits);
        }
      }
      r.record.attrs.push_back(std::move(a));
    }
    m.responses.push_back(std::move(r));
  }
  if (at != body.size()) {
    return Status::invalid_argument("wire stream data structurally damaged");
  }
  return m;
}

// --- in-band telemetry reports -----------------------------------------------
// body := u16-str agent | u64 tag | i64 start_ns | i64 end_ns | u8 flags |
//         u16 hop_count | hop*
// hop  := u16-str element | u64 queue_pkts | i64 io_time_ns | u8 flags

namespace {

// Fixed-width portion of an encoded hop; caps what a corrupted hop count
// can make the decoder reserve.
constexpr size_t kMinIntHopSize = 2 + 8 + 8 + 1;

}  // namespace

Result<std::string> encode_int_report(const IntReportMsg& m) {
  if (m.agent.size() > 0xffff) {
    return Status::invalid_argument("wire: agent name exceeds 64 KiB: " +
                                    m.agent.substr(0, 64));
  }
  if (m.hops.size() > 0xffff) {
    return Status::invalid_argument(
        "wire: int report of " + std::to_string(m.hops.size()) +
        " hops exceeds the structural cap");
  }
  std::string body;
  put_string(body, m.agent);
  put<uint64_t>(body, m.tag);
  put<int64_t>(body, m.start.ns());
  put<int64_t>(body, m.end.ns());
  put<uint8_t>(body, m.dropped ? 1 : 0);
  put<uint16_t>(body, static_cast<uint16_t>(m.hops.size()));
  for (const IntHopWire& h : m.hops) {
    if (h.element.name.size() > 0xffff) {
      return Status::invalid_argument("wire: element name exceeds 64 KiB: " +
                                      h.element.name.substr(0, 64));
    }
    if (h.flags > 1) {
      return Status::invalid_argument(
          "wire: int hop carries reserved flag bits");
    }
    put_string(body, h.element.name);
    put<uint64_t>(body, h.queue_pkts);
    put<int64_t>(body, h.io_time_ns);
    put<uint8_t>(body, h.flags);
  }
  if (body.size() > kMaxPayload) {
    return Status::invalid_argument(
        "wire: int report of " + std::to_string(body.size()) +
        " bytes exceeds the structural cap");
  }
  return body;
}

Result<IntReportMsg> decode_int_report(std::string_view body) {
  IntReportMsg m;
  size_t at = 0;
  int64_t start_ns = 0, end_ns = 0;
  uint8_t flags = 0;
  uint16_t count = 0;
  if (!get_string(body, at, &m.agent) || !get(body, at, &m.tag) ||
      !get(body, at, &start_ns) || !get(body, at, &end_ns) ||
      !get(body, at, &flags) || flags > 1 || !get(body, at, &count)) {
    return Status::invalid_argument("wire int report structurally damaged");
  }
  if (count > (body.size() - at) / kMinIntHopSize + 1) {
    return Status::invalid_argument("wire int report structurally damaged");
  }
  m.start = SimTime::nanos(start_ns);
  m.end = SimTime::nanos(end_ns);
  m.dropped = flags != 0;
  m.hops.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    IntHopWire h;
    std::string name;
    if (!get_string(body, at, &name) || !get(body, at, &h.queue_pkts) ||
        !get(body, at, &h.io_time_ns) || !get(body, at, &h.flags) ||
        h.flags > 1) {
      return Status::invalid_argument("wire int report structurally damaged");
    }
    h.element = ElementId{std::move(name)};
    m.hops.push_back(std::move(h));
  }
  if (at != body.size()) {
    return Status::invalid_argument("wire int report structurally damaged");
  }
  return m;
}

}  // namespace perfsight::wire
