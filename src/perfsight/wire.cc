#include "perfsight/wire.h"

#include <cstring>

namespace perfsight::wire {

namespace {

// Little-endian append/read helpers.  memcpy keeps them alignment- and
// strict-aliasing-safe; on LE hosts the compiler folds them to plain moves.
template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

// Reads a T at `at`; false when fewer than sizeof(T) bytes remain.
template <typename T>
bool get(std::string_view bytes, size_t& at, T* v) {
  if (bytes.size() - at < sizeof(T)) return false;
  std::memcpy(v, bytes.data() + at, sizeof(T));
  at += sizeof(T);
  return true;
}

bool get_string(std::string_view bytes, size_t& at, std::string* s) {
  uint16_t len = 0;
  if (!get(bytes, at, &len)) return false;
  if (bytes.size() - at < len) return false;
  s->assign(bytes.data() + at, len);
  at += len;
  return true;
}

void put_string(std::string& out, const std::string& s) {
  // Names longer than a u16 cannot travel; clamp rather than corrupt the
  // frame (element/attr names are short device-like strings in practice).
  const uint16_t len =
      static_cast<uint16_t>(s.size() > 0xffff ? 0xffff : s.size());
  put(out, len);
  out.append(s.data(), len);
}

constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;
constexpr size_t kFramePrefixSize = 4 + 8;  // payload_len + checksum
// A single frame larger than this is structural damage, not data: it caps
// what a corrupted length prefix can make the decoder trust.
constexpr uint32_t kMaxPayload = 1u << 24;

std::string encode_payload(const QueryResponse& r) {
  std::string p;
  put<int64_t>(p, r.record.timestamp.ns());
  put<uint8_t>(p, static_cast<uint8_t>(r.quality));
  put<uint8_t>(p, static_cast<uint8_t>(r.fail_code));
  put<uint32_t>(p, r.attempts);
  put<int64_t>(p, r.response_time.ns());
  put_string(p, r.record.element.name);
  const uint16_t n =
      static_cast<uint16_t>(r.record.attrs.size() > 0xffff
                                ? 0xffff
                                : r.record.attrs.size());
  put(p, n);
  for (uint16_t i = 0; i < n; ++i) {
    const Attr& a = r.record.attrs[i];
    put_string(p, a.name);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(a.value));
    std::memcpy(&bits, &a.value, sizeof(bits));
    put(p, bits);
  }
  return p;
}

// Decodes one payload; false on structural damage (a verified checksum
// makes that unreachable in practice, but the decoder must not trust it).
bool decode_payload(std::string_view payload, QueryResponse* r) {
  size_t at = 0;
  int64_t ts = 0, rt = 0;
  uint8_t quality = 0, fail_code = 0;
  uint32_t attempts = 0;
  if (!get(payload, at, &ts)) return false;
  if (!get(payload, at, &quality)) return false;
  if (!get(payload, at, &fail_code)) return false;
  if (!get(payload, at, &attempts)) return false;
  if (!get(payload, at, &rt)) return false;
  if (quality > static_cast<uint8_t>(DataQuality::kMissing)) return false;
  if (fail_code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return false;
  }
  r->record.timestamp = SimTime::nanos(ts);
  r->quality = static_cast<DataQuality>(quality);
  r->fail_code = static_cast<StatusCode>(fail_code);
  r->attempts = attempts;
  r->response_time = Duration::nanos(rt);
  std::string name;
  if (!get_string(payload, at, &name)) return false;
  r->record.element = ElementId{std::move(name)};
  uint16_t n = 0;
  if (!get(payload, at, &n)) return false;
  r->record.attrs.clear();
  r->record.attrs.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Attr a;
    if (!get_string(payload, at, &a.name)) return false;
    uint64_t bits = 0;
    if (!get(payload, at, &bits)) return false;
    std::memcpy(&a.value, &bits, sizeof(bits));
    r->record.attrs.push_back(std::move(a));
  }
  return at == payload.size();  // trailing payload bytes = damage
}

}  // namespace

uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string encode_frame(const QueryResponse& r) {
  std::string payload = encode_payload(r);
  std::string out;
  out.reserve(kFramePrefixSize + payload.size());
  put<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  put<uint64_t>(out, fnv1a64(payload));
  out += payload;
  return out;
}

std::string encode_batch(const BatchResponse& b) {
  std::string out;
  put<uint32_t>(out, kMagic);
  put<uint32_t>(out, static_cast<uint32_t>(b.responses.size()));
  put<uint64_t>(out, static_cast<uint64_t>(b.channel_time.ns()));
  put<uint32_t>(out, static_cast<uint32_t>(b.unknown_ids));
  for (const QueryResponse& r : b.responses) out += encode_frame(r);
  return out;
}

Result<QueryResponse> decode_frame(std::string_view bytes, size_t* consumed) {
  *consumed = 0;
  size_t at = 0;
  uint32_t len = 0;
  uint64_t sum = 0;
  if (!get(bytes, at, &len) || !get(bytes, at, &sum)) {
    return Status::invalid_argument("wire frame truncated in prefix");
  }
  if (len > kMaxPayload || bytes.size() - at < len) {
    return Status::invalid_argument("wire frame truncated in payload");
  }
  std::string_view payload = bytes.substr(at, len);
  if (fnv1a64(payload) != sum) {
    return Status::invalid_argument("wire frame checksum mismatch");
  }
  QueryResponse r;
  if (!decode_payload(payload, &r)) {
    return Status::invalid_argument("wire frame structurally damaged");
  }
  *consumed = kFramePrefixSize + len;
  return r;
}

Result<BatchResponse> decode_batch(std::string_view bytes,
                                   DecodeStats* stats) {
  DecodeStats local;
  DecodeStats& st = stats != nullptr ? *stats : local;
  st = DecodeStats{};

  size_t at = 0;
  uint32_t magic = 0, count = 0, unknown = 0;
  uint64_t channel_ns = 0;
  if (bytes.size() < kHeaderSize) {
    return Status::invalid_argument("wire batch shorter than header");
  }
  get(bytes, at, &magic);
  if (magic != kMagic) {
    return Status::invalid_argument("wire batch bad magic");
  }
  get(bytes, at, &count);
  get(bytes, at, &channel_ns);
  get(bytes, at, &unknown);
  st.frames_expected = count;

  BatchResponse out;
  out.channel_time = Duration::nanos(static_cast<int64_t>(channel_ns));
  out.unknown_ids = unknown;
  for (uint32_t i = 0; i < count; ++i) {
    size_t consumed = 0;
    Result<QueryResponse> r = decode_frame(bytes.substr(at), &consumed);
    if (!r.ok()) {
      // Truncation if the bytes simply ran out; corruption otherwise.  Either
      // way the length chain past this point is untrustworthy: stop.
      if (at >= bytes.size()) {
        st.truncated = true;
      } else {
        st.corrupt = true;
      }
      return out;
    }
    at += consumed;
    ++st.frames_ok;
    if (r.value().quality != DataQuality::kFresh) ++out.degraded;
    out.responses.push_back(std::move(r).take());
  }
  st.trailing_bytes = bytes.size() - at;
  return out;
}

BatchResponse reconcile(const std::vector<ElementId>& sorted_ids,
                        const BatchResponse& decoded) {
  BatchResponse out;
  out.channel_time = decoded.channel_time;
  out.unknown_ids = decoded.unknown_ids;
  size_t ri = 0;
  for (const ElementId& id : sorted_ids) {
    while (ri < decoded.responses.size() &&
           decoded.responses[ri].record.element < id) {
      ++ri;
    }
    if (ri < decoded.responses.size() &&
        decoded.responses[ri].record.element == id) {
      out.responses.push_back(decoded.responses[ri]);
      ++ri;
    } else {
      // Frame lost on the wire: the element stays visible as a blind spot.
      QueryResponse miss;
      miss.record.element = id;
      miss.quality = DataQuality::kMissing;
      miss.attempts = 1;
      miss.fail_code = StatusCode::kUnavailable;
      out.responses.push_back(std::move(miss));
    }
  }
  for (const QueryResponse& r : out.responses) {
    if (r.quality != DataQuality::kFresh) ++out.degraded;
  }
  return out;
}

}  // namespace perfsight::wire
