// Length-prefixed binary framing for agent→controller batch responses.
//
// The in-process batch path (Agent::query_batch) amortises channel round
// trips; a *remote* controller needs the same amortisation across a real
// socket.  This codec frames a BatchResponse — each element's StatsRecord
// qualified with DataQuality / attempts / modelled latency — so one write()
// carries a whole batch and the receiving side can stream-decode it.
//
// Stream layout (all integers little-endian):
//
//   batch  := header frame*
//   header := u32 magic ("PSB1") | u32 frame_count | u64 channel_time_ns |
//             u32 unknown_ids
//   frame  := u32 payload_len | u64 fnv1a64(payload) | payload
//   payload:= i64 timestamp_ns | u8 quality | u8 fail_code | u32 attempts |
//             i64 response_time_ns | u16 name_len | name bytes |
//             u16 attr_count | { u16 len | name bytes | f64 value }*
//
// Damage contract (what the property/fuzz suite locks down): decoding
// arbitrary bytes never crashes and never yields a silently wrong record.
// Every frame is guarded by a checksum over its payload; a frame that fails
// the checksum — or whose length prefix runs past the buffer — poisons the
// remainder of the stream (the length chain is untrustworthy past it), so
// the decoder stops and reports how much survived.  Callers map the damage
// to DataQuality with reconcile(): every element they asked for comes back,
// lost ones as kMissing blind spots.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "perfsight/agent.h"

namespace perfsight::wire {

inline constexpr uint32_t kMagic = 0x31425350;  // "PSB1"

// FNV-1a 64-bit, the frame integrity check.
uint64_t fnv1a64(std::string_view bytes);

// One element response as a self-delimiting frame.
std::string encode_frame(const QueryResponse& r);
// Header plus one frame per response, in the batch's (element-id) order.
std::string encode_batch(const BatchResponse& b);

// What the decoder saw, beyond the records themselves.
struct DecodeStats {
  size_t frames_expected = 0;  // header's frame count
  size_t frames_ok = 0;        // frames that decoded and verified
  bool truncated = false;      // stream ended mid-frame (or before count)
  bool corrupt = false;        // checksum/structure failure; decoding stopped
  size_t trailing_bytes = 0;   // bytes left after the last expected frame

  bool complete() const {
    return !truncated && !corrupt && frames_ok == frames_expected &&
           trailing_bytes == 0;
  }
};

// Decodes the frame at the head of `bytes`; `*consumed` receives how many
// bytes the frame occupied.  Fails (without crashing) on truncation,
// checksum mismatch, or structural damage.
Result<QueryResponse> decode_frame(std::string_view bytes, size_t* consumed);

// Decodes a whole batch.  Only a bad header is a hard error; damaged frames
// degrade: the responses that verified are returned (always a prefix of the
// encoded sequence) and `stats` says what was lost.
Result<BatchResponse> decode_batch(std::string_view bytes,
                                   DecodeStats* stats = nullptr);

// Maps wire damage to DataQuality: returns one response per id in
// `sorted_ids` (ascending element-id order, matching query_batch output).
// Ids whose frames were lost to truncation/corruption come back as
// kMissing responses — a damaged stream degrades to visible blind spots
// instead of silently shrinking the batch.
BatchResponse reconcile(const std::vector<ElementId>& sorted_ids,
                        const BatchResponse& decoded);

}  // namespace perfsight::wire
