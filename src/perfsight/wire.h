// Length-prefixed binary framing for agent→controller batch responses, plus
// the request/hello/error envelopes the socket transport speaks.
//
// The in-process batch path (Agent::query_batch) amortises channel round
// trips; a *remote* controller needs the same amortisation across a real
// socket.  This codec frames a BatchResponse — each element's StatsRecord
// qualified with DataQuality / attempts / modelled latency — so one write()
// carries a whole batch and the receiving side can stream-decode it.
//
// Stream layout (all integers little-endian):
//
//   batch  := header frame*
//   header := u32 magic ("PSB1") | u32 frame_count | u64 channel_time_ns |
//             u32 unknown_ids
//   frame  := u32 payload_len | u64 fnv1a64(payload) | payload
//   payload:= i64 timestamp_ns | u8 quality | u8 fail_code | u32 attempts |
//             i64 response_time_ns | u16 name_len | name bytes |
//             u16 attr_count | { u16 len | name bytes | f64 value }*
//
// Control messages (requests, the connect-time hello, and error replies)
// travel in a separate checksummed envelope:
//
//   message := u32 magic ("PSM1") | u8 kind | u32 body_len |
//              u64 fnv1a64(body) | body
//
// Damage contract (what the property/fuzz suite locks down): decoding
// arbitrary bytes never crashes and never yields a silently wrong record.
// Every frame is guarded by a checksum over its payload; a frame that fails
// the checksum — or whose length prefix runs past the buffer — poisons the
// remainder of the stream (the length chain is untrustworthy past it), so
// the decoder stops and reports how much survived.  Callers map the damage
// to DataQuality with reconcile(): every element they asked for comes back,
// lost ones as kMissing blind spots.
//
// The encode side upholds the mirror contract: input that cannot travel
// losslessly (names longer than a u16, more than 65535 attrs, a payload
// past the structural cap) is *rejected* with a Status — never clamped to
// fit.  A frame that encodes always decodes back byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "perfsight/agent.h"
#include "perfsight/trace.h"

namespace perfsight::wire {

inline constexpr uint32_t kMagic = 0x31425350;         // "PSB1"
inline constexpr uint32_t kMessageMagic = 0x314d5350;  // "PSM1"

// Structural sizes the stream transport's length-chain reader walks.
inline constexpr size_t kBatchHeaderSize = 4 + 4 + 8 + 4;
inline constexpr size_t kFramePrefixSize = 4 + 8;  // payload_len + checksum
inline constexpr size_t kMessagePrefixSize = 4 + 1 + 4 + 8;
// A single frame (or message body) larger than this is structural damage,
// not data: it caps what a corrupted length prefix can make a reader trust.
inline constexpr uint32_t kMaxPayload = 1u << 24;

// FNV-1a 64-bit, the frame integrity check.
uint64_t fnv1a64(std::string_view bytes);

// --- bounds-checked primitive reads -----------------------------------------
// Little-endian reads used by the decoder and by the stream transport's
// length-chain reader.  Safe for ANY `at`, including `at > bytes.size()`
// (the guard is explicit — no unsigned `size() - at` underflow): they return
// false and leave `at` unchanged when fewer than sizeof(T) bytes remain.
bool get_u8(std::string_view bytes, size_t& at, uint8_t* v);
bool get_u16(std::string_view bytes, size_t& at, uint16_t* v);
bool get_u32(std::string_view bytes, size_t& at, uint32_t* v);
bool get_u64(std::string_view bytes, size_t& at, uint64_t* v);

// One element response as a self-delimiting frame.  Fails (instead of
// truncating) when a name exceeds 64 KiB, the record has more than 65535
// attrs, or the payload would exceed kMaxPayload — a successful encode is
// guaranteed to decode back byte-identical.
Result<std::string> encode_frame(const QueryResponse& r);
// Header plus one frame per response, in the batch's (element-id) order.
// Fails if any response is unencodable; never emits a shrunken batch.
Result<std::string> encode_batch(const BatchResponse& b);

// What the decoder saw, beyond the records themselves.
struct DecodeStats {
  size_t frames_expected = 0;  // header's frame count
  size_t frames_ok = 0;        // frames that decoded and verified
  bool truncated = false;      // stream ended mid-frame (or before count)
  bool corrupt = false;        // checksum/structure failure; decoding stopped
  size_t trailing_bytes = 0;   // bytes left after the last expected frame

  bool complete() const {
    return !truncated && !corrupt && frames_ok == frames_expected &&
           trailing_bytes == 0;
  }
};

// Decodes the frame at the head of `bytes`; `*consumed` receives how many
// bytes the frame occupied.  Fails (without crashing) on truncation,
// checksum mismatch, or structural damage.
Result<QueryResponse> decode_frame(std::string_view bytes, size_t* consumed);

// Decodes a whole batch.  Only a bad header is a hard error; damaged frames
// degrade: the responses that verified are returned (always a prefix of the
// encoded sequence) and `stats` says what was lost.
Result<BatchResponse> decode_batch(std::string_view bytes,
                                   DecodeStats* stats = nullptr);

// Maps wire damage to DataQuality: returns one response per id in
// `sorted_ids` (ascending element-id order, matching query_batch output).
// Ids whose frames were lost to truncation/corruption come back as
// kMissing responses — a damaged stream degrades to visible blind spots
// instead of silently shrinking the batch.
BatchResponse reconcile(const std::vector<ElementId>& sorted_ids,
                        const BatchResponse& decoded);

// --- transport control messages ---------------------------------------------
// Everything except batch responses (which stream as raw PSB1 above) rides
// the PSM1 envelope.  Bodies are checksummed; decoders are total functions
// over arbitrary bytes.

enum class MessageKind : uint8_t {
  kHello = 1,           // server → client on accept: agent name + element ids
  kBatchRequest = 2,    // client → server: query_batch(ids, now)
  kSingleRequest = 3,   // client → server: query_attrs(id, attrs, now)
  kListElements = 4,    // client → server: re-fetch the hello element set
  kSingleResponse = 5,  // server → client: one PSB1 frame (success)
  kError = 6,           // server → client: Status code + message
  kTraceHarvest = 7,    // client → server: drain your trace rings to me
  kTraceData = 8,       // server → client: drained spans (also piggybacked
                        // after a batch reply when the request was traced)
  kSubscribe = 9,       // client → server: push me this agent's windows
  kStreamData = 10,     // server → client: one captured window (push mode)
  kIntReport = 11,      // harvester → controller: one in-band telemetry
                        // flight (per-hop metadata stack)
};

const char* to_string(MessageKind k);

struct Message {
  MessageKind kind = MessageKind::kError;
  std::string body;
};

// Wraps `body` in the PSM1 envelope.
std::string encode_message(MessageKind kind, std::string_view body);
// Decodes the message at the head of `bytes`; `*consumed` receives its full
// size.  Fails on truncation, bad magic/kind, oversize body, or checksum
// mismatch.
Result<Message> decode_message(std::string_view bytes,
                               size_t* consumed = nullptr);

// Connect-time handshake: which agent is on the far end and what it serves,
// plus a sample of the server's span clock (monotonic wall nanoseconds) —
// the client samples its own clock around the handshake and derives the
// clock-offset estimate that aligns harvested trace timestamps.
//
// A fleet server (one event loop hosting many agents) appends its roster
// after the base fields.  The base fields always describe the PRIMARY agent
// (the first registered), so a client that predates rosters keeps working:
// it reads the primary and ignores nothing (single-agent hellos carry no
// roster section and are byte-identical to the pre-roster encoding).  A
// roster-aware client binds to any named entry and routes its requests by
// stamping that name on the request envelope.
struct HelloMsg {
  std::string agent_name;           // primary agent (single-agent fallback)
  std::vector<ElementId> elements;  // primary's ids, ascending
  int64_t clock_ns = 0;             // server span clock at hello encode time

  struct AgentInfo {
    std::string name;
    std::vector<ElementId> elements;  // ascending element-id order
  };
  // Every hosted agent, registration order (roster[0] == the primary).
  // Empty on a single-agent hello; encode emits the roster section only
  // when it names more than one agent.
  std::vector<AgentInfo> roster;

  // Element-set epoch: a fingerprint of the advertised roster (agent names
  // + element ids).  A reconnecting client compares epochs to decide
  // whether the element set changed while it was away — equal epochs skip
  // the diff entirely.  0 means "not advertised" (pre-epoch server);
  // encode emits the trailing epoch section only when nonzero, so legacy
  // hellos stay byte-identical.  The 8-byte trailer is unambiguous: a
  // roster section is at least 16 bytes (u32 count + two entries of
  // name-length + id-count prefixes), so exactly 8 trailing bytes can only
  // be an epoch.
  uint64_t epoch = 0;
};
std::string encode_hello(const HelloMsg& h);
Result<HelloMsg> decode_hello(std::string_view body);

// query_batch over the wire: the requested ids plus the (simulated) query
// timestamp, so the remote agent samples the same instant the controller
// asked for.  The trace context rides along: with trace_id != 0 the server
// records a serve span whose parent is `parent_span` (the controller
// scatter span) and piggybacks its drained rings after the batch reply;
// with trace_id == 0 the reply is byte-identical to an untraced run.
struct BatchRequestMsg {
  SimTime now;
  std::vector<ElementId> ids;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  // Fleet routing: which hosted agent this batch is for.  Empty — the old
  // single-agent request format, not one extra wire byte — routes to the
  // server's primary agent.
  std::string agent;
};
std::string encode_batch_request(const BatchRequestMsg& r);
Result<BatchRequestMsg> decode_batch_request(std::string_view body);

// query_attrs over the wire (the single-element GetAttr path).  Carries the
// same trace context as batch requests; the server records the serve span
// (harvested later) but never piggybacks on the single-response path.
struct SingleRequestMsg {
  SimTime now;
  ElementId id;
  std::vector<std::string> attrs;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  // Fleet routing, as on BatchRequestMsg: empty = primary agent, old format.
  std::string agent;
};
std::string encode_single_request(const SingleRequestMsg& r);
Result<SingleRequestMsg> decode_single_request(std::string_view body);

// Drained trace rings crossing the wire (kTraceData): the producing
// process's name plus its events, timestamps still on that process's span
// clock (the receiver applies its hello-derived clock offset at export).
struct TraceDataMsg {
  std::string process;
  std::vector<TraceEvent> events;
};
std::string encode_trace_data(const TraceDataMsg& t);
Result<TraceDataMsg> decode_trace_data(std::string_view body);

// A Status carried verbatim, so remote failures reproduce the exact message
// text the in-process path would have produced.
struct ErrorMsg {
  StatusCode code = StatusCode::kUnavailable;
  std::string message;
};
std::string encode_error(const ErrorMsg& e);
Result<ErrorMsg> decode_error(std::string_view body);

// --- push-mode streaming (kSubscribe / kStreamData) --------------------------
// Inverts the collection direction: instead of the controller pulling a
// sweep per diagnosis window, an agent-side publisher captures every element
// once per window and ships the capture as a kStreamData frame.  Frames
// carry a per-stream sequence number (1-based, monotonically increasing for
// the lifetime of the publisher) so a receiver detects dropped windows,
// reconnect gaps and campaign outages as seq jumps and repairs them with
// targeted pull sweeps (streaming.h).

// Opens a stream: push me `agent`'s windows from `from_seq` on.  The first
// frame after a subscribe is always a full snapshot (every attr absolute),
// so a resubscribing client can rebase its delta state without history.
struct SubscribeMsg {
  std::string agent;      // roster entry to stream ("" = primary)
  uint64_t from_seq = 0;  // resume hint; 0 = whatever the publisher is at
  int64_t window_ns = 0;  // requested cadence (informational; the publisher
                          // owns the actual capture schedule)
};
std::string encode_subscribe(const SubscribeMsg& s);
Result<SubscribeMsg> decode_subscribe(std::string_view body);

// One captured window: the publishing agent's full element set in ascending
// element-id order, each element a QueryResponse exactly as query_batch
// produced it at the window boundary.
//
// Attr values travel delta-coded against the previous frame of the same
// stream when that is bit-exact, absolute otherwise: each attr carries a
// mode byte (0 = absolute IEEE-754 bits as u64, 1 = IEEE-754 delta bits as
// u64, 2 = non-negative integral delta as u32, 3 = unchanged with no
// payload, where prev + delta reconstructs the current value exactly — the
// encoder checks the round trip in double arithmetic and falls back to
// absolute when addition would lose bits), and a record whose attr names
// match the previous frame's same element sets the schema-elision bit in
// its attr count and omits the name strings entirely.  Counters between
// consecutive windows differ by small integral deltas and tags/gauges sit
// still, so modes 2/3 plus elided schemas dominate steady state, which is
// what makes push-mode cheap on the wire; the
// exactness guard is what keeps streamed bytes losslessly reconstructible,
// so streamed diagnosis can be byte-identical to sweep diagnosis.  A frame
// that arrives after a seq gap MUST NOT be delta-decoded against stale
// state — the receiver repairs the missed windows first (restoring the
// delta base) and only then applies the frame.
struct StreamDataMsg {
  std::string agent;           // publishing agent (roster name)
  uint64_t seq = 0;            // per-stream sequence number, starts at 1
  SimTime window_start;        // capture timestamp (the window boundary)
  Duration channel_time;       // modelled channel cost of the capture batch
  std::vector<QueryResponse> responses;  // ascending element-id order
};

// `prev` is the previous frame of the same stream (null: encode everything
// absolute — the snapshot form a subscribe answer uses).  Fails, never
// clamps, on unencodable input, like encode_frame.
Result<std::string> encode_stream_data(const StreamDataMsg& m,
                                       const StreamDataMsg* prev);
// Decodes against the same `prev` the encoder used.  A delta-mode attr with
// no base in `prev` is structural damage ("delta without base"), never a
// silently wrong value.  `delta_without_base` (optional) is set true when
// the failure is exactly that missing base — with `prev == nullptr` this
// means the frame is delta-coded and the receiver needs a snapshot to
// resync (StreamCache turns it into ApplyResult::needs_snapshot), whereas
// with a live base it is genuine damage.
Result<StreamDataMsg> decode_stream_data(std::string_view body,
                                         const StreamDataMsg* prev,
                                         bool* delta_without_base = nullptr);

// Header-only decode: agent, seq and window timestamp without touching the
// records.  Receivers use it to check the sequence number *before*
// committing to a delta decode (a gapped frame must wait for repair).
struct StreamFrameInfo {
  std::string agent;
  uint64_t seq = 0;
  SimTime window_start;
  uint32_t record_count = 0;
};
Result<StreamFrameInfo> peek_stream_data(std::string_view body);

// --- in-band telemetry reports (kIntReport) ----------------------------------
// One sampled packet's completed metadata stack crossing a process boundary
// (harvester → controller).  In-process harvesting bypasses the envelope;
// the codec is also what prices INT overhead (report bytes per flight).
//
//   body := u16-str agent | u64 tag | i64 start_ns | i64 end_ns | u8 flags |
//           u16 hop_count | hop*
//   hop  := u16-str element | u64 queue_pkts | i64 io_time_ns | u8 flags
//
// Message flags bit 0: the flight ended in a drop-tail.  Hop flags bit 0:
// the drop happened at this hop.  All other flag bits must be zero — a
// flipped bit is structural damage, never a silently different flight.

struct IntHopWire {
  ElementId element;
  uint64_t queue_pkts = 0;
  int64_t io_time_ns = 0;
  uint8_t flags = 0;  // bit 0: drop-tail at this hop
};

struct IntReportMsg {
  std::string agent;  // harvest key (the StreamCache agent key for INT)
  uint64_t tag = 0;   // flight id
  SimTime start;      // ingress tag time
  SimTime end;        // harvest / drop time
  bool dropped = false;
  std::vector<IntHopWire> hops;
};

// Fails (never clamps) on a name over 64 KiB, more than 65535 hops, or a
// body past kMaxPayload — a report that encodes decodes back identical.
Result<std::string> encode_int_report(const IntReportMsg& m);
// Total over arbitrary bytes: truncation (any strict prefix), trailing
// bytes, and reserved flag bits all fail loudly.
Result<IntReportMsg> decode_int_report(std::string_view body);

}  // namespace perfsight::wire
