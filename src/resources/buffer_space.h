// Shared buffer-memory accounting ("Memory Space" in Table 1).
//
// Kernel socket buffers draw from a finite memory budget; under memory
// pressure the kernel clamps per-socket buffering, so queues overflow at
// much smaller depths.  BufferSpace models that budget: owners reserve
// bytes, and when reservations exceed the budget every owner's effective
// allowance is scaled down proportionally.  The TUN/socket queues consult
// their allowance each tick, which is how a memory-space shortage turns
// into drops at a VM's socket queues — the Table 1 symptom.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace perfsight {

class BufferSpace {
 public:
  using OwnerId = uint32_t;

  explicit BufferSpace(uint64_t budget_bytes) : budget_(budget_bytes) {}

  OwnerId add_owner(uint64_t desired_bytes) {
    desired_.push_back(desired_bytes);
    return static_cast<OwnerId>(desired_.size() - 1);
  }

  // External memory pressure (e.g. a leaking process) shrinking the budget.
  void set_pressure_bytes(uint64_t stolen) { pressure_ = stolen; }
  uint64_t pressure_bytes() const { return pressure_; }

  // Bytes `owner` may buffer right now.
  uint64_t allowance(OwnerId owner) const {
    PS_CHECK(owner < desired_.size());
    uint64_t avail = budget_ > pressure_ ? budget_ - pressure_ : 0;
    uint64_t total = 0;
    for (uint64_t d : desired_) total += d;
    if (total <= avail || total == 0) return desired_[owner];
    // Proportional clamp, floor of one MTU so progress is always possible.
    double scale = static_cast<double>(avail) / static_cast<double>(total);
    uint64_t a = static_cast<uint64_t>(static_cast<double>(desired_[owner]) * scale);
    return std::max<uint64_t>(a, 2048);
  }

  uint64_t budget_bytes() const { return budget_; }

 private:
  uint64_t budget_;
  uint64_t pressure_ = 0;
  std::vector<uint64_t> desired_;
};

}  // namespace perfsight
