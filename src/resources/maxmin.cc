#include "resources/maxmin.h"

#include <algorithm>

namespace perfsight {

std::vector<double> weighted_maxmin(double capacity,
                                    const std::vector<Demand>& demands) {
  const size_t n = demands.size();
  std::vector<double> alloc(n, 0.0);
  if (n == 0 || capacity <= 0) return alloc;

  // Effective demand = min(amount, cap); negative caps mean uncapped.
  std::vector<double> want(n);
  for (size_t i = 0; i < n; ++i) {
    double w = std::max(0.0, demands[i].amount);
    if (demands[i].cap >= 0) w = std::min(w, demands[i].cap);
    want[i] = w;
  }

  std::vector<bool> done(n, false);
  double remaining = capacity;
  // Each pass satisfies at least one consumer, so <= n passes.
  for (size_t pass = 0; pass < n; ++pass) {
    double active_weight = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!done[i] && want[i] > alloc[i]) {
        active_weight += std::max(1e-12, demands[i].weight);
      } else {
        done[i] = true;
      }
    }
    if (active_weight <= 0 || remaining <= 1e-12) break;

    // Fill level per unit weight this pass.
    double fill = remaining / active_weight;
    bool any_satisfied = false;
    double given_total = 0;
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      double w = std::max(1e-12, demands[i].weight);
      double offer = fill * w;
      double need = want[i] - alloc[i];
      double given = std::min(offer, need);
      alloc[i] += given;
      given_total += given;
      if (given >= need - 1e-12) {
        done[i] = true;
        any_satisfied = true;
      }
    }
    remaining -= given_total;
    // If no consumer hit its demand, everyone got exactly their weighted
    // share of the remaining capacity and we are finished.
    if (!any_satisfied) break;
  }
  return alloc;
}

}  // namespace perfsight
