// Weighted max-min fair allocation (progressive filling / water-filling).
//
// All shared resources in the machine model — CPU cycles, memory-bus bytes,
// NIC bits — are divided among their consumers with this one algorithm:
// capacity is poured across unsatisfied consumers proportionally to their
// weights until each is either satisfied (got its demand, possibly clipped
// by a per-consumer cap) or the capacity is exhausted.  This matches how a
// work-conserving fair scheduler behaves under persistent backlog and is
// the mechanism by which contention symptoms (queues backing up at specific
// elements) emerge in the simulator.
#pragma once

#include <vector>

namespace perfsight {

struct Demand {
  double amount = 0;   // how much the consumer wants this round
  double weight = 1;   // fair-share weight (>0)
  double cap = -1;     // hard per-consumer limit; <0 means uncapped
};

// Returns one allocation per demand.  Guarantees:
//   * sum(alloc) <= capacity (+ epsilon)
//   * alloc[i] <= min(demand, cap) for every i
//   * work conserving: if sum(min(demand,cap)) >= capacity, the full
//     capacity is allocated
//   * max-min fair w.r.t. weights among unsatisfied consumers
std::vector<double> weighted_maxmin(double capacity,
                                    const std::vector<Demand>& demands);

}  // namespace perfsight
