#include "resources/pool.h"

#include <algorithm>
#include <limits>

#include "common/ids.h"
#include "perfsight/trace.h"

namespace perfsight {

double ResourcePool::request(ConsumerId id, double want) {
  PS_CHECK(id < consumers_.size());
  State& c = consumers_[id];
  if (want <= 0) return 0;
  c.demand_accum += want;

  double cap_tick = c.cfg.cap_per_sec < 0
                        ? std::numeric_limits<double>::infinity()
                        : c.cfg.cap_per_sec * last_dt_.sec();
  double cap_room = std::max(0.0, cap_tick - c.consumed_tick);

  double from_budget = std::min({want, c.budget, cap_room});
  c.budget -= from_budget;
  double granted = from_budget;

  double still = std::min(want - granted, cap_room - granted);
  if (still > 0 && spare_ > 0) {
    double from_spare = std::min(still, spare_);
    spare_ -= from_spare;
    granted += from_spare;
  }
  c.consumed_tick += granted;
  c.consumed_total += granted;
  return granted;
}

double ResourcePool::available(ConsumerId id) const {
  PS_CHECK(id < consumers_.size());
  const State& c = consumers_[id];
  double cap_tick = c.cfg.cap_per_sec < 0
                        ? std::numeric_limits<double>::infinity()
                        : c.cfg.cap_per_sec * last_dt_.sec();
  double cap_room = std::max(0.0, cap_tick - c.consumed_tick);
  return std::min(c.budget + spare_, cap_room);
}

void ResourcePool::step(SimTime now, Duration dt) {
  // Close out the previous tick: record demands/utilization, then divide
  // this tick's capacity according to those demands.
  double consumed = 0;
  for (State& c : consumers_) {
    c.demand_prev = c.demand_accum / (last_dt_.sec() > 0 ? last_dt_.sec() : 1);
    c.rate_prev = c.consumed_tick / (last_dt_.sec() > 0 ? last_dt_.sec() : 1);
    consumed += c.consumed_tick;
    c.demand_accum = 0;
    c.consumed_tick = 0;
  }
  double cap_prev_tick = capacity_per_sec_ * last_dt_.sec();
  utilization_ = cap_prev_tick > 0 ? std::min(1.0, consumed / cap_prev_tick) : 0;
  utilization_ewma_ = 0.98 * utilization_ewma_ + 0.02 * utilization_;

  last_dt_ = dt;
  double cap_tick = capacity_per_sec_ * dt.sec();
  std::vector<Demand> demands;
  demands.reserve(consumers_.size());
  for (const State& c : consumers_) {
    double amount = c.demand_prev * dt.sec();
    double weight = c.cfg.weight;
    if (policy_ == PoolPolicy::kProportional) {
      // Share follows issue rate: effective weight scales with demand.
      weight *= std::max(amount, 1e-9);
    }
    demands.push_back(Demand{
        amount, weight,
        c.cfg.cap_per_sec < 0 ? -1.0 : c.cfg.cap_per_sec * dt.sec()});
  }
  std::vector<double> alloc = weighted_maxmin(cap_tick, demands);
  double allotted = 0;
  for (size_t i = 0; i < consumers_.size(); ++i) {
    consumers_[i].budget = alloc[i];
    allotted += alloc[i];
  }
  spare_ = std::max(0.0, cap_tick - allotted);

  // Flight recorder: edge-triggered grant-shortfall events.  A consumer is
  // in shortfall when the arbiter allots meaningfully less than it demanded
  // (95% slack absorbs fluid-model rounding); only transitions are logged,
  // so a sustained squeeze costs two events, not one per tick.
  if (trace_enabled()) {
    for (size_t i = 0; i < consumers_.size(); ++i) {
      State& c = consumers_[i];
      double want = demands[i].amount;
      if (want <= 0) continue;
      bool short_now = alloc[i] < 0.95 * want;
      if (short_now == c.in_shortfall) continue;
      c.in_shortfall = short_now;
      ElementId id{name_ + "/" + c.cfg.name};
      if (short_now) {
        trace_event(id, now, TraceEventKind::kArbiterShortfall,
                    alloc[i] / want, "grant below demand");
      } else {
        trace_event(id, now, TraceEventKind::kArbiterRecovered,
                    alloc[i] / want, "grant meets demand");
      }
    }
  }
}

}  // namespace perfsight
