// Per-tick shared resource pools (CPU, memory bandwidth, NIC capacity).
//
// A ResourcePool divides a rate capacity (units/second — cpu-seconds,
// bus-bytes, bits) among registered consumers each tick.  Consumers call
// request(id, want) during their own step and receive a grant; the pool
// remembers each consumer's demand and computes next tick's budgets by
// weighted max-min fairness over those demands (one-tick adaptation lag,
// negligible at millisecond ticks).  Within a tick, budget left unused by
// one consumer is lent to later-stepping consumers ("spare"), so the pool
// is work conserving even when demands shift abruptly.
//
// Per-consumer caps model allocation limits: a 1-vCPU VM can never use more
// than one core even on an idle host, which is exactly the distinction
// between a *bottlenecked VM* (its own cap binds; only its TUN drops) and
// *host contention* (the shared capacity binds; every VM's TUN drops) that
// PerfSight's rule book relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "resources/maxmin.h"
#include "sim/simulator.h"

namespace perfsight {

// How an oversubscribed pool divides capacity.
//
//  * kMaxMin: weighted max-min fairness — small demands are protected, the
//    way a fair CPU scheduler protects light threads.
//  * kProportional: weighted proportional-to-demand — a consumer's share
//    scales with how much it asks for, the way a memory controller serves
//    whoever issues more requests.  A memcpy hog therefore starves even a
//    modest network consumer, which max-min would protect — this is the
//    mechanism behind Fig. 3's linear memory/network tradeoff (allocation
//    is work conserving, so under saturation d(net)/d(hog) = −1 bus byte
//    per bus byte).  Implemented as max-min with effective weight w·d,
//    which keeps per-consumer caps and redistribution exact.
enum class PoolPolicy { kMaxMin, kProportional };

class ResourcePool : public sim::Steppable {
 public:
  using ConsumerId = uint32_t;

  struct ConsumerCfg {
    std::string name;
    double weight = 1.0;
    double cap_per_sec = -1.0;  // <0: uncapped
  };

  ResourcePool(std::string name, double capacity_per_sec,
               PoolPolicy policy = PoolPolicy::kMaxMin)
      : name_(std::move(name)),
        capacity_per_sec_(capacity_per_sec),
        policy_(policy) {}

  ConsumerId add_consumer(ConsumerCfg cfg) {
    consumers_.push_back(State{std::move(cfg), /*demand_prev=*/capacity_per_sec_,
                               0, 0, 0, 0});
    return static_cast<ConsumerId>(consumers_.size() - 1);
  }

  // Asks for `want` units this tick; returns the grant (<= want).  May be
  // called multiple times per tick by the same consumer; demands accumulate.
  double request(ConsumerId id, double want);

  // How much `id` could still obtain this tick without consuming it.
  double available(ConsumerId id) const;

  void step(SimTime now, Duration dt) override;
  std::string name() const override { return name_; }

  double capacity_per_sec() const { return capacity_per_sec_; }
  void set_capacity_per_sec(double c) { capacity_per_sec_ = c; }

  // Fraction of last tick's capacity that was consumed (0..1).
  double utilization() const { return utilization_; }
  // Smoothed utilization over ~50 ticks.
  double utilization_ewma() const { return utilization_ewma_; }

  double consumed_total(ConsumerId id) const {
    return consumers_[id].consumed_total;
  }
  // Consumer's achieved rate (units/sec) over the previous tick.
  double rate_prev_tick(ConsumerId id) const {
    return consumers_[id].rate_prev;
  }
  const std::string& consumer_name(ConsumerId id) const {
    return consumers_[id].cfg.name;
  }
  // Introspection for tests/diagnostics: demand rate (units/sec) declared
  // last tick and the budget allotted this tick.
  double demand_prev(ConsumerId id) const { return consumers_[id].demand_prev; }
  double budget_now(ConsumerId id) const { return consumers_[id].budget; }
  size_t num_consumers() const { return consumers_.size(); }

 private:
  struct State {
    ConsumerCfg cfg;
    double demand_prev;     // units/sec demanded last tick
    double demand_accum;    // units demanded so far this tick
    double budget;          // units allotted this tick
    double consumed_tick;   // units consumed this tick
    double consumed_total;  // lifetime units
    double rate_prev = 0;   // units/sec achieved last tick
    bool in_shortfall = false;  // arbiter granted meaningfully below demand
  };

  std::string name_;
  double capacity_per_sec_;
  PoolPolicy policy_;
  Duration last_dt_ = Duration::millis(1);
  double spare_ = 0;  // unallocated capacity this tick, lent FCFS
  double utilization_ = 0;
  double utilization_ewma_ = 0;
  std::vector<State> consumers_;
};

}  // namespace perfsight
