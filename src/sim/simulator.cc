#include "sim/simulator.h"

#include <memory>

#include "perfsight/trace.h"

namespace perfsight::sim {

void Simulator::every(SimTime start, Duration period,
                      std::function<void()> fn) {
  // Self-rescheduling event; the shared_ptr lets the lambda re-arm itself.
  auto repeat = std::make_shared<std::function<void(SimTime)>>();
  *repeat = [this, period, fn = std::move(fn), repeat](SimTime when) {
    fn();
    SimTime next = when + period;
    at(next, [repeat, next] { (*repeat)(next); });
  };
  at(start, [repeat, start] { (*repeat)(start); });
}

void Simulator::run_until(SimTime until) {
  while (now_ < until) {
    // Stamp the flight recorder's clock so instrumentation points without a
    // `now` parameter (drop charging, queue watermarks) timestamp correctly.
    TraceRecorder::global().set_now(now_);
    // Fire events due at or before this tick's start, in time order.
    while (!events_.empty() && events_.top().when <= now_) {
      // priority_queue::top is const; move via const_cast is UB-adjacent, so
      // copy the function out instead (events are rare relative to ticks).
      Event e = events_.top();
      events_.pop();
      e.fn();
    }
    for (Steppable* s : components_) s->step(now_, tick_);
    now_ = now_ + tick_;
  }
}

}  // namespace perfsight::sim
