// Discrete-time simulation engine.
//
// The software dataplane is modelled in fixed ticks (default 1 ms).  Each
// tick the engine: (1) fires any timed callbacks due at or before the tick
// start — this is how scenarios inject workloads ("at t=10s, VM2 starts
// flooding"); (2) calls Steppable::step(now, dt) on every registered
// component in registration order.  Components are registered in dataflow
// order (sources first, sinks last) so a batch admitted at a tick can flow
// through several elements within that tick, which mirrors the
// function-call fast path of real stacks (NAPI → vswitch → TUN is one call
// chain, not three queue hops).
//
// Time is purely simulated: a 100-second scenario runs in milliseconds of
// wall time.  Wall-clock overhead questions (Table 2, Fig. 15/16) are
// answered by the separate hotpath harness, not by this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/units.h"

namespace perfsight::sim {

// A component advanced once per tick.
class Steppable {
 public:
  virtual ~Steppable() = default;

  // Advance simulated work by `dt`, ending at time `now + dt`.
  virtual void step(SimTime now, Duration dt) = 0;

  // Diagnostic name (shown in traces and error messages).
  virtual std::string name() const { return "steppable"; }
};

class Simulator {
 public:
  explicit Simulator(Duration tick = Duration::millis(1)) : tick_(tick) {}

  Duration tick() const { return tick_; }
  SimTime now() const { return now_; }

  // Registers a component; not owned.  Order of registration is the order
  // of stepping within a tick (wire sources before sinks).
  void add(Steppable* s) { components_.push_back(s); }

  // Schedules `fn` to run at simulated time `at` (fired at the start of the
  // first tick whose begin time is >= `at`).
  void at(SimTime when, std::function<void()> fn) {
    events_.push(Event{when, next_seq_++, std::move(fn)});
  }
  void after(Duration d, std::function<void()> fn) {
    at(now_ + d, std::move(fn));
  }

  // Schedules `fn` to run every `period`, starting at `start`.
  void every(SimTime start, Duration period, std::function<void()> fn);

  // Runs until simulated time reaches `until`.
  void run_until(SimTime until);
  void run_for(Duration d) { run_until(now_ + d); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-break: preserve scheduling order
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Duration tick_;
  SimTime now_;
  uint64_t next_seq_ = 0;
  std::vector<Steppable*> components_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
};

}  // namespace perfsight::sim
