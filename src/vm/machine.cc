#include "vm/machine.h"

namespace perfsight::vm {

PhysicalMachine::PhysicalMachine(std::string name, dp::StackParams params,
                                 sim::Simulator* sim)
    : name_(std::move(name)),
      params_(params),
      sim_(sim),
      cpu_(name_ + "/cpu", static_cast<double>(params.cores)),
      membus_(name_ + "/membus", params.membus_bytes_per_sec,
              PoolPolicy::kProportional),
      buffer_space_(params.buffer_memory_bytes) {
  // Softirq runs in kernel context: near-strict priority over VM threads,
  // bounded parallelism.
  softirq_cpu_ = cpu_.add_consumer(
      {"softirq", /*weight=*/50.0, params.softirq_cores_cap});
  // Cache-resident kernel path: effectively privileged on the bus.
  backlog_mem_ = membus_.add_consumer({"softirq-mem", 50.0, -1.0});

  pnic_ = std::make_unique<dp::PNic>(
      eid("pnic"), dp::PNic::Config{params.pnic_rate, params.pnic_ring_pkts,
                                    params.pnic_txring_pkts});
  vswitch_ = std::make_unique<dp::VirtualSwitch>(eid("vswitch"));
  backlog_ = std::make_unique<dp::PCpuBacklog>(
      eid("pcpu-backlog"),
      dp::PCpuBacklog::Config{params.cores, params.pcpu_backlog_pkts,
                              params.softirq_cost_per_pkt,
                              params.napi_mem_per_byte},
      &cpu_, softirq_cpu_, &membus_, backlog_mem_, vswitch_.get());
  napi_ = std::make_unique<dp::NapiPoll>(
      eid("napi"), dp::NapiPoll::Config{0.6e-6}, pnic_.get(), backlog_.get(),
      &cpu_, softirq_cpu_);
  maintenance_.m = this;

  // Step order within a tick: pools (budgets) → housekeeping → backlog
  // (drain has softirq priority) → pNIC (tx drain, rx budget reset) → NAPI
  // poll → then VMs/sources/hogs as they are added.
  sim_->add(&cpu_);
  sim_->add(&membus_);
  sim_->add(&maintenance_);
  sim_->add(backlog_.get());
  sim_->add(pnic_.get());
  sim_->add(napi_.get());
}

int PhysicalMachine::add_vm(VmConfig cfg) {
  auto v = std::make_unique<Vm>();
  int index = static_cast<int>(vms_.size());
  v->index = index;
  v->vcpus = cfg.vcpus;
  v->vm_name = cfg.name.empty() ? "vm" + std::to_string(index) : cfg.name;
  const std::string base = v->vm_name + "/";

  v->qemu_cpu = cpu_.add_consumer(
      {v->vm_name + "/qemu-io", 1.0, params_.qemu_cores_cap});
  v->vcpu = cpu_.add_consumer({v->vm_name + "/vcpu", cfg.vcpus, cfg.vcpus});
  v->qemu_mem = membus_.add_consumer({v->vm_name + "/qemu-mem", 1.0, -1.0});
  v->tun_space = buffer_space_.add_owner(params_.tun_queue_bytes);

  v->tun = std::make_unique<dp::Tun>(
      eid(base + "tun"), index,
      QueueCaps{params_.tun_queue_pkts, params_.tun_queue_bytes});
  v->vnic = std::make_unique<dp::VNic>(eid(base + "vnic"), index,
                                       params_.vnic_ring_pkts);
  v->guest_backlog = std::make_unique<dp::GuestBacklog>(
      eid(base + "guest-backlog"), index, params_.guest_backlog_pkts);
  v->socket = std::make_unique<dp::GuestSocket>(eid(base + "guest-socket"),
                                                index,
                                                params_.guest_socket_bytes);
  v->hyperio = std::make_unique<dp::HypervisorIo>(
      eid(base + "qemu-io"), index,
      dp::HypervisorIo::Config{
          params_.qemu_cost_per_pkt, params_.qemu_cost_per_byte,
          params_.qemu_mem_per_byte, params_.memcpy_bytes_per_sec,
          // The I/O thread's per-tick work bound doubles as the vNIC rate
          // cap when the VM is allotted one.
          cfg.vnic_rate > DataRate::zero()
              ? cfg.vnic_rate.bytes_per_sec()
              : 2.0 * params_.pnic_rate.bytes_per_sec()},
      v->tun.get(), v->vnic.get(), backlog_.get(), &cpu_, v->qemu_cpu,
      &membus_, v->qemu_mem);
  v->stack = std::make_unique<dp::GuestStack>(
      name_ + "/" + base + "guest-stack",
      dp::GuestStack::Config{params_.guest_cost_per_pkt,
                             params_.guest_cost_per_byte},
      v->vnic.get(), v->guest_backlog.get(), v->socket.get(), &cpu_, v->vcpu);

  sim_->add(v->hyperio.get());
  sim_->add(v.get());
  vms_.push_back(std::move(v));
  return index;
}

dp::SinkApp* PhysicalMachine::set_sink_app(int vm) {
  Vm& v = *vms_[vm];
  PS_CHECK(v.app == nullptr);
  auto app = std::make_unique<dp::SinkApp>(eid(v.vm_name + "/app"), vm,
                                           v.socket.get(), &cpu_, v.vcpu);
  dp::SinkApp* out = app.get();
  v.app = std::move(app);
  return out;
}

dp::ForwardApp* PhysicalMachine::set_forward_app(int vm,
                                                 dp::ForwardApp::Config cfg) {
  Vm& v = *vms_[vm];
  PS_CHECK(v.app == nullptr);
  auto app = std::make_unique<dp::ForwardApp>(eid(v.vm_name + "/app"), vm,
                                              v.socket.get(), v.vnic.get(),
                                              &cpu_, v.vcpu, cfg);
  dp::ForwardApp* out = app.get();
  v.app = std::move(app);
  return out;
}

dp::BusyWaitSinkApp* PhysicalMachine::set_busy_wait_sink_app(
    int vm, dp::BusyWaitSinkApp::Config cfg) {
  Vm& v = *vms_[vm];
  PS_CHECK(v.app == nullptr);
  auto app = std::make_unique<dp::BusyWaitSinkApp>(
      eid(v.vm_name + "/app"), vm, v.socket.get(), &cpu_, v.vcpu, cfg);
  dp::BusyWaitSinkApp* out = app.get();
  v.app = std::move(app);
  return out;
}

dp::SourceApp* PhysicalMachine::set_source_app(int vm,
                                               dp::SourceApp::Config cfg) {
  Vm& v = *vms_[vm];
  PS_CHECK(v.app == nullptr);
  auto app = std::make_unique<dp::SourceApp>(eid(v.vm_name + "/app"), vm,
                                             v.vnic.get(), &cpu_, v.vcpu, cfg);
  dp::SourceApp* out = app.get();
  v.app = std::move(app);
  return out;
}

void PhysicalMachine::route_flow_to_vm(const FlowSpec& flow, int dst_vm) {
  vswitch_->add_rule(flow.id, vms_[dst_vm]->tun.get(),
                     "to-" + vms_[dst_vm]->vm_name);
}

void PhysicalMachine::route_flow_to_wire(FlowId flow,
                                         const std::string& rule_name) {
  vswitch_->add_rule(flow, pnic_.get(), rule_name);
}

IngressSource* PhysicalMachine::add_ingress_source(const std::string& name,
                                                   FlowSpec flow,
                                                   DataRate rate) {
  sources_.push_back(
      std::make_unique<IngressSource>(name, flow, rate, pnic_.get()));
  sim_->add(sources_.back().get());
  return sources_.back().get();
}

CpuHog* PhysicalMachine::add_vm_cpu_hog(int vm) {
  Vm& v = *vms_[vm];
  PS_CHECK(v.vm_hog == nullptr);
  // Stepped by the VM itself, before its stack, so the hog contends for the
  // vCPU allocation ahead of packet processing.
  v.vm_hog = std::make_unique<CpuHog>(name_ + "/" + v.vm_name + "/cpu-hog",
                                      &cpu_, v.vcpu);
  return v.vm_hog.get();
}

CpuHog* PhysicalMachine::add_host_cpu_hog(const std::string& name,
                                          double cap_cores) {
  ResourcePool::ConsumerId c = cpu_.add_consumer({name, 1.0, cap_cores});
  cpu_hogs_.push_back(
      std::make_unique<CpuHog>(name_ + "/" + name, &cpu_, c));
  sim_->add(cpu_hogs_.back().get());
  return cpu_hogs_.back().get();
}

MemHog* PhysicalMachine::add_mem_hog(const std::string& name) {
  ResourcePool::ConsumerId c =
      membus_.add_consumer({name, params_.hog_weight, -1.0});
  mem_hogs_.push_back(
      std::make_unique<MemHog>(name_ + "/" + name, &membus_, c));
  sim_->add(mem_hogs_.back().get());
  return mem_hogs_.back().get();
}

std::vector<ElementId> PhysicalMachine::register_elements(Agent* agent) {
  std::vector<ElementId> stack_ids;
  auto reg = [&](const StatsSource* s, bool stack_element) {
    Status st = agent->add_element(s);
    PS_CHECK(st.is_ok());
    if (stack_element) stack_ids.push_back(s->id());
  };
  reg(pnic_.get(), true);
  reg(backlog_.get(), true);
  reg(napi_.get(), true);
  reg(vswitch_.get(), true);
  for (const auto& v : vms_) {
    reg(v->tun.get(), true);  // TUN belongs to the virtualization stack
    reg(v->hyperio.get(), false);
    reg(v->vnic.get(), false);
    reg(v->guest_backlog.get(), false);
    reg(v->socket.get(), false);
    if (v->app) reg(v->app.get(), false);
  }
  return stack_ids;
}

UtilizationSnapshot PhysicalMachine::utilization_snapshot() const {
  UtilizationSnapshot snap;
  snap.host_cpu = cpu_.utilization_ewma();
  for (const auto& v : vms_) {
    snap.vms.push_back(VmUtilization{v->vm_name, v->cpu_util_ewma});
  }
  return snap;
}

AuxSignals PhysicalMachine::aux_signals() const {
  AuxSignals aux;
  aux.host_cpu_utilization = cpu_.utilization_ewma();
  aux.nic_rx_throughput = DataRate::bps(rx_rate_ewma_ * 8.0);
  aux.nic_tx_throughput = DataRate::bps(tx_rate_ewma_ * 8.0);
  aux.nic_capacity = params_.pnic_rate;
  aux.memory_pressure = buffer_space_.pressure_bytes() > 0;
  return aux;
}

void PhysicalMachine::maintain(SimTime /*now*/, Duration dt) {
  // Buffer-memory pressure re-clamps TUN byte caps; per-VM CPU utilization
  // is smoothed for the utilization snapshot.
  for (const auto& v : vms_) {
    uint64_t allow = buffer_space_.allowance(v->tun_space);
    v->tun->set_caps(QueueCaps{params_.tun_queue_pkts, allow});
    double util = cpu_.rate_prev_tick(v->vcpu) / v->vcpus;
    v->cpu_util_ewma = 0.98 * v->cpu_util_ewma + 0.02 * std::min(1.0, util);
  }
  // Smoothed NIC throughput for aux signals.
  uint64_t tx = pnic_->tx_wire_bytes();
  uint64_t rx = pnic_->rx_wire_bytes();
  double tx_rate = static_cast<double>(tx - last_tx_bytes_) / dt.sec();
  double rx_rate = static_cast<double>(rx - last_rx_bytes_) / dt.sec();
  last_tx_bytes_ = tx;
  last_rx_bytes_ = rx;
  tx_rate_ewma_ = 0.98 * tx_rate_ewma_ + 0.02 * tx_rate;
  rx_rate_ewma_ = 0.98 * rx_rate_ewma_ + 0.02 * rx_rate;
}

}  // namespace perfsight::vm
