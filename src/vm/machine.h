// PhysicalMachine: one compute server with its full software dataplane.
//
// Owns the resource pools (CPU, memory bus, buffer memory), the
// virtualization-stack elements (pNIC, NAPI poll, per-core pCPU backlog,
// virtual switch, per-VM TUNs and hypervisor I/O handlers) and the VMs
// (vNIC, guest backlog, guest socket, guest stack, application).  Wires
// everything into a Simulator in dataflow order and exposes the element
// set to a PerfSight Agent.
//
// CPU scheduling mirrors the host: the softirq consumer has near-strict
// priority (kernel context) and a parallelism cap; each VM contributes a
// QEMU I/O-thread consumer and a vCPU consumer capped at its vCPU count —
// which is what separates a bottlenecked VM (own cap binds) from host
// contention (shared capacity binds).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataplane/apps.h"
#include "dataplane/backlog.h"
#include "dataplane/params.h"
#include "dataplane/pnic.h"
#include "dataplane/pumps.h"
#include "dataplane/queues.h"
#include "dataplane/vswitch.h"
#include "perfsight/agent.h"
#include "perfsight/baseline.h"
#include "perfsight/rulebook.h"
#include "resources/buffer_space.h"
#include "resources/pool.h"
#include "sim/simulator.h"
#include "vm/workloads.h"

namespace perfsight::vm {

struct VmConfig {
  std::string name;    // e.g. "vm0"
  double vcpus = 1.0;  // vCPU allocation (cap on guest compute)
  // vNIC rate cap (rx+tx combined, enforced at the hypervisor I/O handler).
  // Zero means "uncapped" (bounded only by the machine's resources).
  DataRate vnic_rate = DataRate::zero();
};

class PhysicalMachine {
 public:
  PhysicalMachine(std::string name, dp::StackParams params,
                  sim::Simulator* sim);

  const std::string& name() const { return name_; }
  const dp::StackParams& params() const { return params_; }

  // --- VM lifecycle ---------------------------------------------------------
  int add_vm(VmConfig cfg);
  int num_vms() const { return static_cast<int>(vms_.size()); }

  // Installs the VM's application (exactly one per VM).
  dp::SinkApp* set_sink_app(int vm);
  dp::ForwardApp* set_forward_app(int vm, dp::ForwardApp::Config cfg);
  dp::SourceApp* set_source_app(int vm, dp::SourceApp::Config cfg);
  // The busy-waiting transcoder of §2.3 (100% CPU while healthy).
  dp::BusyWaitSinkApp* set_busy_wait_sink_app(
      int vm, dp::BusyWaitSinkApp::Config cfg = dp::BusyWaitSinkApp::Config());

  // --- routing ---------------------------------------------------------------
  // Ingress flow terminating at `dst_vm`'s TUN.
  void route_flow_to_vm(const FlowSpec& flow, int dst_vm);
  // Egress flow leaving via the pNIC.
  void route_flow_to_wire(FlowId flow, const std::string& rule_name);
  void pin_flow_to_core(FlowId flow, int core) {
    backlog_->pin_flow(flow, core);
  }

  // --- workloads --------------------------------------------------------------
  IngressSource* add_ingress_source(const std::string& name, FlowSpec flow,
                                    DataRate rate);
  CpuHog* add_vm_cpu_hog(int vm);         // compute inside the VM's vCPUs
  CpuHog* add_host_cpu_hog(const std::string& name, double cap_cores = -1);
  MemHog* add_mem_hog(const std::string& name);
  // Buffer-memory pressure (Table 1's "Memory Space" row).
  void set_memory_pressure_bytes(uint64_t stolen) {
    buffer_space_.set_pressure_bytes(stolen);
  }

  // --- PerfSight integration ---------------------------------------------------
  // Registers every element with `agent`; returns the virtualization-stack
  // element ids (Algorithm 1's scan set).
  std::vector<ElementId> register_elements(Agent* agent);

  // Auxiliary symptoms for rule-book disambiguation.
  AuxSignals aux_signals() const;

  // Per-VM and host CPU utilizations (the naive baseline's only input).
  UtilizationSnapshot utilization_snapshot() const;

  // --- accessors (tests, benches) ----------------------------------------------
  dp::PNic* pnic() { return pnic_.get(); }
  dp::PCpuBacklog* backlog() { return backlog_.get(); }
  dp::VirtualSwitch* vswitch() { return vswitch_.get(); }
  dp::NapiPoll* napi() { return napi_.get(); }
  dp::Tun* tun(int vm) { return vms_[vm]->tun.get(); }
  dp::VNic* vnic(int vm) { return vms_[vm]->vnic.get(); }
  dp::GuestSocket* guest_socket(int vm) { return vms_[vm]->socket.get(); }
  dp::GuestBacklog* guest_backlog(int vm) {
    return vms_[vm]->guest_backlog.get();
  }
  dp::HypervisorIo* hyperio(int vm) { return vms_[vm]->hyperio.get(); }
  dp::PacketApp* app(int vm) { return vms_[vm]->app.get(); }
  ResourcePool* cpu_pool() { return &cpu_; }
  ResourcePool* membus() { return &membus_; }
  sim::Simulator* simulator() { return sim_; }

 private:
  struct Vm : sim::Steppable {
    std::string vm_name;
    int index = 0;
    double vcpus = 1.0;
    std::unique_ptr<dp::Tun> tun;
    std::unique_ptr<dp::VNic> vnic;
    std::unique_ptr<dp::GuestBacklog> guest_backlog;
    std::unique_ptr<dp::GuestSocket> socket;
    std::unique_ptr<dp::HypervisorIo> hyperio;
    std::unique_ptr<dp::GuestStack> stack;
    std::unique_ptr<dp::PacketApp> app;
    std::unique_ptr<CpuHog> vm_hog;  // compute inside the guest
    ResourcePool::ConsumerId qemu_cpu = 0;
    ResourcePool::ConsumerId vcpu = 0;
    ResourcePool::ConsumerId qemu_mem = 0;
    BufferSpace::OwnerId tun_space = 0;
    double cpu_util_ewma = 0;  // guest CPU use / allocation, smoothed

    void step(SimTime now, Duration dt) override {
      // The hog competes for the same vCPU allocation and, like a busy
      // guest process mix, crowds out packet processing.
      if (vm_hog) vm_hog->step(now, dt);
      stack->step(now, dt);
      if (app) app->step(now, dt);
    }
    std::string name() const override { return vm_name; }
  };

  // Per-tick housekeeping: refreshes TUN caps under buffer-memory pressure
  // and tracks smoothed NIC throughput for aux signals.
  struct Maintenance : sim::Steppable {
    PhysicalMachine* m = nullptr;
    void step(SimTime now, Duration dt) override { m->maintain(now, dt); }
    std::string name() const override { return "maintenance"; }
  };

  void maintain(SimTime now, Duration dt);
  ElementId eid(const std::string& suffix) const {
    return ElementId{name_ + "/" + suffix};
  }

  std::string name_;
  dp::StackParams params_;
  sim::Simulator* sim_;

  ResourcePool cpu_;
  ResourcePool membus_;
  BufferSpace buffer_space_;
  ResourcePool::ConsumerId softirq_cpu_;
  ResourcePool::ConsumerId backlog_mem_;

  Maintenance maintenance_;
  std::unique_ptr<dp::PNic> pnic_;
  std::unique_ptr<dp::PCpuBacklog> backlog_;
  std::unique_ptr<dp::VirtualSwitch> vswitch_;
  std::unique_ptr<dp::NapiPoll> napi_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<std::unique_ptr<IngressSource>> sources_;
  std::vector<std::unique_ptr<CpuHog>> cpu_hogs_;
  std::vector<std::unique_ptr<MemHog>> mem_hogs_;

  uint64_t last_tx_bytes_ = 0;
  uint64_t last_rx_bytes_ = 0;
  double tx_rate_ewma_ = 0;  // bytes/s
  double rx_rate_ewma_ = 0;
};

}  // namespace perfsight::vm
