// Richer traffic generators for scenario realism beyond constant-rate
// sources: on/off bursts (the "sudden, unexpected changes in the traffic
// profile" of §2.2), stochastic per-tick arrivals, and mixed packet sizes
// (which exercise packet-count-limited queues differently from byte-limited
// ones).  All determinism comes from seeded Pcg32.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "dataplane/pnic.h"
#include "packet/flow.h"
#include "sim/simulator.h"

namespace perfsight::vm {

// Alternates between `on_rate` for `on_time` and silence for `off_time`.
class OnOffIngressSource : public sim::Steppable {
 public:
  OnOffIngressSource(std::string name, FlowSpec flow, DataRate on_rate,
                     Duration on_time, Duration off_time, dp::PNic* pnic)
      : name_(std::move(name)),
        flow_(flow),
        on_rate_(on_rate),
        on_time_(on_time),
        off_time_(off_time),
        pnic_(pnic) {}

  void step(SimTime /*now*/, Duration dt) override {
    phase_ += dt;
    if (on_) {
      if (phase_ >= on_time_) {
        on_ = false;
        phase_ = Duration::nanos(0);
        return;
      }
      double offered = static_cast<double>(on_rate_.bytes_in(dt)) + carry_;
      uint64_t pkts = static_cast<uint64_t>(offered / flow_.packet_size);
      carry_ = offered - static_cast<double>(pkts * flow_.packet_size);
      if (pkts > 0) pnic_->offer_rx(flow_.make_batch(pkts));
    } else if (phase_ >= off_time_) {
      on_ = true;
      phase_ = Duration::nanos(0);
    }
  }
  std::string name() const override { return name_; }
  bool on() const { return on_; }

 private:
  std::string name_;
  FlowSpec flow_;
  DataRate on_rate_;
  Duration on_time_;
  Duration off_time_;
  dp::PNic* pnic_;
  bool on_ = true;
  Duration phase_;
  double carry_ = 0;
};

// Per-tick packet counts drawn from a (deterministic) geometric-ish burst
// distribution around a target mean rate: bursty arrivals that stress
// drop-tail queues harder than a fluid source at the same average.
class BurstyIngressSource : public sim::Steppable {
 public:
  BurstyIngressSource(std::string name, FlowSpec flow, DataRate mean_rate,
                      double burstiness, dp::PNic* pnic, uint64_t seed = 1)
      : name_(std::move(name)),
        flow_(flow),
        mean_rate_(mean_rate),
        burstiness_(burstiness < 1.0 ? 1.0 : burstiness),
        pnic_(pnic),
        rng_(seed) {}

  void step(SimTime /*now*/, Duration dt) override {
    double mean_pkts = mean_rate_.bytes_in(dt) /
                       static_cast<double>(flow_.packet_size);
    // With probability 1/burstiness, emit a burst of burstiness * mean;
    // otherwise stay silent — same average, spikier arrivals.
    if (rng_.next_double() < 1.0 / burstiness_) {
      uint64_t pkts = static_cast<uint64_t>(mean_pkts * burstiness_ + 0.5);
      if (pkts > 0) pnic_->offer_rx(flow_.make_batch(pkts));
      emitted_pkts_ += pkts;
    }
  }
  std::string name() const override { return name_; }
  uint64_t emitted_packets() const { return emitted_pkts_; }

 private:
  std::string name_;
  FlowSpec flow_;
  DataRate mean_rate_;
  double burstiness_;
  dp::PNic* pnic_;
  Pcg32 rng_;
  uint64_t emitted_pkts_ = 0;
};

// Draws each tick's packet size from a weighted set (an IMIX-style mix),
// emitting at a byte rate.  Uses a distinct flow id per size class so
// per-flow accounting stays exact.
class MixedSizeIngressSource : public sim::Steppable {
 public:
  struct SizeClass {
    FlowSpec flow;   // carries the packet size and flow id
    double weight;   // share of bytes
  };

  MixedSizeIngressSource(std::string name, std::vector<SizeClass> classes,
                         DataRate rate, dp::PNic* pnic)
      : name_(std::move(name)),
        classes_(std::move(classes)),
        rate_(rate),
        pnic_(pnic),
        carry_(classes_.size(), 0.0) {
    double total = 0;
    for (const SizeClass& c : classes_) total += c.weight;
    PS_CHECK(total > 0);
    for (SizeClass& c : classes_) c.weight /= total;
  }

  void step(SimTime /*now*/, Duration dt) override {
    double bytes = static_cast<double>(rate_.bytes_in(dt));
    for (size_t i = 0; i < classes_.size(); ++i) {
      double offered = bytes * classes_[i].weight + carry_[i];
      uint64_t pkts = static_cast<uint64_t>(
          offered / classes_[i].flow.packet_size);
      carry_[i] =
          offered - static_cast<double>(pkts * classes_[i].flow.packet_size);
      if (pkts > 0) pnic_->offer_rx(classes_[i].flow.make_batch(pkts));
    }
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<SizeClass> classes_;
  DataRate rate_;
  dp::PNic* pnic_;
  std::vector<double> carry_;
};

// A TCP-like adaptive sender: additive increase while its packets are
// getting through, multiplicative decrease when the receiver-side delivery
// falls short of what was sent (loss anywhere on the path).  Reproduces
// the sawtooth/oscillation of the paper's TCP flows (Fig. 10's flow 1)
// that an open-loop source cannot show.
class AimdIngressSource : public sim::Steppable {
 public:
  struct Config {
    FlowSpec flow;
    DataRate initial_rate = DataRate::mbps(10);
    DataRate max_rate = DataRate::gbps(10);
    DataRate min_rate = DataRate::mbps(1);
    DataRate additive_increase_per_sec = DataRate::mbps(100);
    double multiplicative_decrease = 0.6;
    Duration adjust_period = Duration::millis(10);  // ~RTT
    // Tolerated loss fraction per window before backing off (ack noise).
    double loss_tolerance = 0.02;
    // Windows to wait after a decrease before decreasing again (one loss
    // event = one backoff, as in TCP's per-RTT reaction).
    int backoff_cooldown_windows = 3;
  };
  // Returns bytes delivered end-to-end so far (e.g. the sink app's
  // bytes_in counter) — the "ack stream".
  using DeliveredFn = std::function<uint64_t()>;

  AimdIngressSource(std::string name, Config cfg, dp::PNic* pnic,
                    DeliveredFn delivered)
      : name_(std::move(name)),
        cfg_(cfg),
        rate_(cfg.initial_rate),
        pnic_(pnic),
        delivered_(std::move(delivered)) {}

  DataRate rate() const { return rate_; }

  void step(SimTime /*now*/, Duration dt) override {
    // Offer at the current rate.
    double offered = static_cast<double>(rate_.bytes_in(dt)) + carry_;
    uint64_t pkts = static_cast<uint64_t>(offered / cfg_.flow.packet_size);
    carry_ = offered - static_cast<double>(pkts * cfg_.flow.packet_size);
    if (pkts > 0) {
      pnic_->offer_rx(cfg_.flow.make_batch(pkts));
      sent_bytes_ += pkts * cfg_.flow.packet_size;
    }
    // Periodically compare deliveries against sends one window back (the
    // pipeline is a few ticks deep, so compare against the previous
    // window's sends).
    window_elapsed_ += dt;
    if (window_elapsed_ < cfg_.adjust_period) return;
    window_elapsed_ = Duration::nanos(0);

    uint64_t delivered_now = delivered_();
    uint64_t delivered_delta = delivered_now - last_delivered_;
    last_delivered_ = delivered_now;
    uint64_t sent_delta = prev_window_sent_;
    prev_window_sent_ = sent_bytes_ - last_sent_;
    last_sent_ = sent_bytes_;

    // A window that sent nothing observed no loss (and must still grow, or
    // a sub-packet-rate sender would never escape the floor).
    double loss_frac =
        sent_delta == 0 || delivered_delta >= sent_delta
            ? 0.0
            : static_cast<double>(sent_delta - delivered_delta) /
                  static_cast<double>(sent_delta);
    // One backoff per loss event (as TCP reacts once per RTT of loss);
    // between events the rate grows additively — even while loss persists,
    // which is what produces the sawtooth against a congested queue.
    if (cooldown_ > 0) --cooldown_;
    if (loss_frac > cfg_.loss_tolerance && cooldown_ == 0) {
      rate_ = rate_ * cfg_.multiplicative_decrease;
      if (rate_ < cfg_.min_rate) rate_ = cfg_.min_rate;
      cooldown_ = cfg_.backoff_cooldown_windows;
    } else {
      rate_ = rate_ + cfg_.additive_increase_per_sec *
                          cfg_.adjust_period.sec();
      if (rate_ > cfg_.max_rate) rate_ = cfg_.max_rate;
    }
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Config cfg_;
  DataRate rate_;
  dp::PNic* pnic_;
  DeliveredFn delivered_;
  double carry_ = 0;
  uint64_t sent_bytes_ = 0;
  uint64_t last_sent_ = 0;
  uint64_t prev_window_sent_ = 0;
  uint64_t last_delivered_ = 0;
  Duration window_elapsed_;
  int cooldown_ = 0;
};

}  // namespace perfsight::vm
