// Workload injectors: the knobs scenarios turn to create the performance
// problems PerfSight must diagnose.
//
//  * IngressSource — external traffic arriving at the pNIC (tenant traffic,
//    rx floods).
//  * CpuHog — a compute-bound task charged to some CPU consumer: inside a
//    VM (vCPU consumer — a bottlenecked middlebox), across many VMs (host
//    contention), or a host-level management task (Fig. 14b).
//  * MemHog — a memory-copy stream hammering the shared bus (Fig. 3 / 11).
//
// All are toggleable at runtime via Simulator::at callbacks.
#pragma once

#include <algorithm>
#include <string>

#include "dataplane/pnic.h"
#include "packet/flow.h"
#include "resources/pool.h"
#include "sim/simulator.h"

namespace perfsight::vm {

class IngressSource : public sim::Steppable {
 public:
  IngressSource(std::string name, FlowSpec flow, DataRate rate,
                dp::PNic* pnic)
      : name_(std::move(name)), flow_(flow), rate_(rate), pnic_(pnic) {}

  void set_rate(DataRate r) { rate_ = r; }
  DataRate rate() const { return rate_; }
  const FlowSpec& flow() const { return flow_; }

  void step(SimTime /*now*/, Duration dt) override {
    double offered = static_cast<double>(rate_.bytes_in(dt)) + carry_;
    uint64_t pkts = static_cast<uint64_t>(offered / flow_.packet_size);
    carry_ = offered - static_cast<double>(pkts * flow_.packet_size);
    if (pkts == 0) return;
    pnic_->offer_rx(flow_.make_batch(pkts));
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  FlowSpec flow_;
  DataRate rate_;
  dp::PNic* pnic_;
  double carry_ = 0;
};

class CpuHog : public sim::Steppable {
 public:
  CpuHog(std::string name, ResourcePool* cpu,
         ResourcePool::ConsumerId consumer, double demand_cores = 0)
      : name_(std::move(name)),
        cpu_(cpu),
        consumer_(consumer),
        demand_cores_(demand_cores) {}

  void set_demand_cores(double d) { demand_cores_ = d; }
  double achieved_cores() const { return achieved_; }

  void step(SimTime /*now*/, Duration dt) override {
    if (demand_cores_ <= 0) {
      achieved_ = 0;
      return;
    }
    double grant = cpu_->request(consumer_, demand_cores_ * dt.sec());
    achieved_ = grant / dt.sec();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  ResourcePool* cpu_;
  ResourcePool::ConsumerId consumer_;
  double demand_cores_;
  double achieved_ = 0;
};

class MemHog : public sim::Steppable {
 public:
  MemHog(std::string name, ResourcePool* membus,
         ResourcePool::ConsumerId consumer, double demand_bytes_per_sec = 0)
      : name_(std::move(name)),
        membus_(membus),
        consumer_(consumer),
        demand_(demand_bytes_per_sec) {}

  void set_demand_bytes_per_sec(double d) { demand_ = d; }
  // Achieved copy throughput (bytes/s) over the last tick — the x axis of
  // Fig. 3.
  double achieved_bytes_per_sec() const { return achieved_; }

  void step(SimTime /*now*/, Duration dt) override {
    if (demand_ <= 0) {
      achieved_ = 0;
      return;
    }
    double grant = membus_->request(consumer_, demand_ * dt.sec());
    achieved_ = grant / dt.sec();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  ResourcePool* membus_;
  ResourcePool::ConsumerId consumer_;
  double demand_;
  double achieved_ = 0;
};

}  // namespace perfsight::vm
