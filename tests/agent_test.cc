#include "perfsight/agent.h"

#include <gtest/gtest.h>

#include "perfsight/controller.h"
#include "perfsight/rulebook.h"

namespace perfsight {
namespace {

// A scriptable element: tests bump its counters between samples.
class FakeSource : public StatsSource {
 public:
  FakeSource(std::string id, ChannelKind kind)
      : id_{std::move(id)}, kind_(kind) {}

  ElementId id() const override { return id_; }
  ChannelKind channel_kind() const override { return kind_; }
  StatsRecord collect(SimTime now) const override {
    StatsRecord r;
    r.timestamp = now;
    r.element = id_;
    r.attrs = attrs;
    return r;
  }

  std::vector<Attr> attrs;

 private:
  ElementId id_;
  ChannelKind kind_;
};

TEST(AgentTest, QueryReturnsRecordWithLatency) {
  Agent agent("a0");
  FakeSource s("m0/pnic", ChannelKind::kNetDeviceFile);
  s.attrs = {{"rxPkts", 10}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  auto resp = agent.query(ElementId{"m0/pnic"}, SimTime::millis(1));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().record.get("rxPkts"), 10.0);
  // net_device channel: ~2 ms per Fig. 9.
  EXPECT_GT(resp.value().response_time.us(), 1000);
  EXPECT_LT(resp.value().response_time.us(), 3000);
}

TEST(AgentTest, NonNetDeviceChannelsAreSubMillisecond) {
  Agent agent("a0");
  FakeSource proc("m0/backlog", ChannelKind::kProcFs);
  FakeSource ovs("m0/vswitch", ChannelKind::kOvsChannel);
  FakeSource qemu("m0/vm0/qemu", ChannelKind::kQemuLog);
  FakeSource mb("m0/vm0/app", ChannelKind::kMbSocket);
  for (auto* s : {&proc, &ovs, &qemu, &mb}) {
    ASSERT_TRUE(agent.add_element(s).is_ok());
    auto resp = agent.query(s->id(), SimTime{});
    ASSERT_TRUE(resp.ok());
    EXPECT_LT(resp.value().response_time.us(), 500) << s->id().name;
  }
}

TEST(AgentTest, DuplicateRegistrationRejected) {
  Agent agent("a0");
  FakeSource s1("x", ChannelKind::kProcFs), s2("x", ChannelKind::kProcFs);
  EXPECT_TRUE(agent.add_element(&s1).is_ok());
  EXPECT_FALSE(agent.add_element(&s2).is_ok());
}

TEST(AgentTest, UnknownElementNotFound) {
  Agent agent("a0");
  EXPECT_FALSE(agent.query(ElementId{"nope"}, SimTime{}).ok());
}

TEST(AgentTest, QueryAttrsProjects) {
  Agent agent("a0");
  FakeSource s("e", ChannelKind::kProcFs);
  s.attrs = {{"a", 1}, {"b", 2}, {"c", 3}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());
  auto resp = agent.query_attrs(ElementId{"e"}, {"b"}, SimTime{});
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp.value().record.attrs.size(), 1u);
  EXPECT_EQ(resp.value().record.attrs[0].name, "b");
}

TEST(AgentTest, PollAllCoversEveryElement) {
  Agent agent("a0");
  FakeSource a("a", ChannelKind::kProcFs), b("b", ChannelKind::kMbSocket);
  ASSERT_TRUE(agent.add_element(&a).is_ok());
  ASSERT_TRUE(agent.add_element(&b).is_ok());
  auto all = agent.poll_all(SimTime{});
  EXPECT_EQ(all.size(), 2u);
}


TEST(AgentTest, CachedQueryServesWithinMaxAge) {
  Agent agent("a0");
  FakeSource s("e", ChannelKind::kNetDeviceFile);
  s.attrs = {{"rxPkts", 1}};
  ASSERT_TRUE(agent.add_element(&s).is_ok());

  auto first = agent.query_cached(ElementId{"e"}, SimTime::millis(0),
                                  Duration::millis(100));
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.value().response_time.us(), 0);
  EXPECT_EQ(agent.cache_hits(), 0u);

  // The element's counters move, but a fresh-enough cache entry is served
  // without touching the channel.
  s.attrs[0].value = 2;
  auto hit = agent.query_cached(ElementId{"e"}, SimTime::millis(50),
                                Duration::millis(100));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().record.get("rxPkts"), 1.0);
  EXPECT_EQ(hit.value().response_time.ns(), 0);
  EXPECT_EQ(agent.cache_hits(), 1u);

  // Past max_age the channel is used again.
  auto refetch = agent.query_cached(ElementId{"e"}, SimTime::millis(200),
                                    Duration::millis(100));
  ASSERT_TRUE(refetch.ok());
  EXPECT_EQ(refetch.value().record.get("rxPkts"), 2.0);
  EXPECT_EQ(agent.cache_hits(), 1u);
}

TEST(WireBatchTest, RoundTripsMultipleRecords) {
  std::vector<StatsRecord> records(3);
  for (int i = 0; i < 3; ++i) {
    records[i].timestamp = SimTime::millis(i);
    records[i].element = ElementId{"el" + std::to_string(i)};
    records[i].attrs = {{"v", static_cast<double>(i * 10)}};
  }
  std::string msg = to_wire_batch(records);
  Result<std::vector<StatsRecord>> back = from_wire_batch(msg);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_EQ(back.value()[2].element.name, "el2");
  EXPECT_EQ(back.value()[2].get("v"), 20.0);
}

TEST(WireBatchTest, BlankLinesTolerated) {
  Result<std::vector<StatsRecord>> r =
      from_wire_batch("\n<1, a>\n\n<2, b>\n\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(WireBatchTest, CorruptLineFailsWholeBatch) {
  Result<std::vector<StatsRecord>> r =
      from_wire_batch("<1, a>\ngarbage\n<2, b>\n");
  EXPECT_FALSE(r.ok());
}

// --- Controller over fake agents ------------------------------------------

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : agent_("a0"),
        src_("m0/vm0/tun", ChannelKind::kNetDeviceFile),
        controller_([this](Duration d) { return advance(d); },
                    [this] { return now_; }) {
    src_.attrs = {{attr::kRxPkts, 0},
                  {attr::kTxPkts, 0},
                  {attr::kTxBytes, 0},
                  {attr::kDropPkts, 0}};
    EXPECT_TRUE(agent_.add_element(&src_).is_ok());
    controller_.register_agent(&agent_);
    EXPECT_TRUE(
        controller_.register_element(TenantId{1}, src_.id(), &agent_)
            .is_ok());
  }

  SimTime advance(Duration d) {
    now_ = now_ + d;
    if (on_advance_) on_advance_();
    return now_;
  }

  SimTime now_;
  Agent agent_;
  FakeSource src_;
  Controller controller_;
  std::function<void()> on_advance_;
};

TEST_F(ControllerTest, GetAttrResolvesTenantElement) {
  auto r = controller_.get_attr(TenantId{1}, src_.id(), {attr::kRxPkts});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get(attr::kRxPkts), 0.0);
}

TEST_F(ControllerTest, GetThroughputUsesTwoSamples) {
  // 125000 bytes over 10 ms -> 100 Mbps.
  on_advance_ = [this] { src_.attrs[2].value += 125000; };
  auto r =
      controller_.get_throughput(TenantId{1}, src_.id(), Duration::millis(10));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().mbits_per_sec(), 100.0, 1e-6);
}

TEST_F(ControllerTest, GetPktLossPrefersDropCounter) {
  on_advance_ = [this] { src_.attrs[3].value += 42; };
  auto r =
      controller_.get_pkt_loss(TenantId{1}, src_.id(), Duration::millis(10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST_F(ControllerTest, GetPktLossFallsBackToInMinusOut) {
  src_.attrs = {{attr::kRxPkts, 100}, {attr::kTxPkts, 100}};
  on_advance_ = [this] {
    src_.attrs[0].value += 50;  // in grows 50
    src_.attrs[1].value += 30;  // out grows 30 -> loss 20
  };
  auto r =
      controller_.get_pkt_loss(TenantId{1}, src_.id(), Duration::millis(10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 20);
}

TEST_F(ControllerTest, GetAvgPktSize) {
  src_.attrs = {{attr::kTxBytes, 0}, {attr::kTxPkts, 0}};
  on_advance_ = [this] {
    src_.attrs[0].value += 150000;
    src_.attrs[1].value += 100;
  };
  auto r = controller_.get_avg_pkt_size(TenantId{1}, src_.id(),
                                        Duration::millis(10));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 1500.0, 1e-9);
}

TEST_F(ControllerTest, ChainRegistrationAndLookup) {
  ElementId lb{"lb"}, cf{"cf"}, server{"server"};
  controller_.register_middlebox(TenantId{1}, lb);
  controller_.register_middlebox(TenantId{1}, cf);
  controller_.register_middlebox(TenantId{1}, server);
  controller_.add_chain_edge(TenantId{1}, lb, cf);
  controller_.add_chain_edge(TenantId{1}, cf, server);
  EXPECT_EQ(controller_.middleboxes(TenantId{1}).size(), 3u);
  EXPECT_TRUE(controller_.chain(TenantId{1}).successors(lb).count(server));
}

// --- Rule book -----------------------------------------------------------

TEST(RuleBookTest, Table1ForwardMappings) {
  RuleBook rb = RuleBook::standard();
  auto has = [](const std::vector<ElementKind>& v, ElementKind k) {
    return std::find(v.begin(), v.end(), k) != v.end();
  };
  EXPECT_TRUE(has(rb.symptom_locations(ResourceKind::kIncomingBandwidth),
                  ElementKind::kPNic));
  EXPECT_TRUE(has(rb.symptom_locations(ResourceKind::kBacklogQueue),
                  ElementKind::kPCpuBacklog));
  EXPECT_TRUE(
      has(rb.symptom_locations(ResourceKind::kCpu), ElementKind::kTun));
  EXPECT_TRUE(has(rb.symptom_locations(ResourceKind::kMemoryBandwidth),
                  ElementKind::kTun));
  EXPECT_TRUE(
      has(rb.symptom_locations(ResourceKind::kVmLocal), ElementKind::kTun));
}

TEST(RuleBookTest, TunMultiVmIsAmbiguousUntilDisambiguated) {
  RuleBook rb = RuleBook::standard();
  auto cands = rb.candidates(ElementKind::kTun, LossSpread::kMultiVm);
  EXPECT_GE(cands.size(), 3u);  // CPU / membw / egress (+ mem space)

  AuxSignals aux;
  aux.host_cpu_utilization = 0.3;             // CPU not contended
  aux.nic_capacity = DataRate::gbps(10);
  aux.nic_tx_throughput = DataRate::gbps(2);  // NIC far from saturated
  aux.memory_pressure = false;
  auto refined = RuleBook::disambiguate(cands, aux);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0], ResourceKind::kMemoryBandwidth);
}

TEST(RuleBookTest, SingleVmTunIsVmBottleneck) {
  RuleBook rb = RuleBook::standard();
  auto cands = rb.candidates(ElementKind::kTun, LossSpread::kSingleVm);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], ResourceKind::kVmLocal);
}

}  // namespace
}  // namespace perfsight
