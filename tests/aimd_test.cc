// AIMD (TCP-like) adaptive source: convergence on clean paths, backoff
// under loss, and the Fig. 10 oscillation an open-loop source cannot show.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.h"
#include "vm/machine.h"
#include "vm/traffic.h"

namespace perfsight::vm {
namespace {

using namespace literals;

FlowSpec flow(uint32_t id, uint32_t size = 1500) {
  FlowSpec f;
  f.id = FlowId{id};
  f.packet_size = size;
  return f;
}

TEST(AimdSourceTest, RampsUpToMaxOnCleanPath) {
  sim::Simulator sim(Duration::millis(1));
  PhysicalMachine m("m0", dp::StackParams{}, &sim);
  int v = m.add_vm({"vm0", 1.0});
  m.set_sink_app(v);
  FlowSpec f = flow(1);
  m.route_flow_to_vm(f, v);
  AimdIngressSource::Config cfg;
  cfg.flow = f;
  cfg.max_rate = 800_mbps;
  cfg.additive_increase_per_sec = 400_mbps;
  AimdIngressSource src("tcp", cfg, m.pnic(), [&] {
    return m.app(v)->stats().bytes_in.value();
  });
  sim.add(&src);
  sim.run_for(4_s);
  // Lossless path: the source ends pinned at its max rate.
  EXPECT_NEAR(src.rate().mbits_per_sec(), 800, 1);
}

TEST(AimdSourceTest, BacksOffWhenPathDropsPackets) {
  sim::Simulator sim(Duration::millis(1));
  dp::StackParams params;
  params.pnic_rate = 1_gbps;
  PhysicalMachine m("m0", params, &sim);
  int v = m.add_vm({"vm0", 1.0});
  m.set_sink_app(v);
  FlowSpec f = flow(1);
  m.route_flow_to_vm(f, v);
  AimdIngressSource::Config cfg;
  cfg.flow = f;
  cfg.max_rate = 5_gbps;  // far beyond the 1 Gbps NIC
  cfg.additive_increase_per_sec = 2_gbps;
  AimdIngressSource src("tcp", cfg, m.pnic(), [&] {
    return m.app(v)->stats().bytes_in.value();
  });
  sim.add(&src);
  sim.run_for(2_s);  // ramp + converge
  uint64_t warm = m.app(v)->stats().bytes_in.value();
  sim.run_for(4_s);
  // The rate hovers around the path capacity instead of pinning at max.
  EXPECT_LT(src.rate().gbits_per_sec(), 1.6);
  EXPECT_GT(src.rate().mbits_per_sec(), 100);
  // ...and steady-state goodput approaches the NIC capacity.
  double goodput =
      static_cast<double>(m.app(v)->stats().bytes_in.value() - warm) * 8 /
      4.0 / 1e9;
  EXPECT_GT(goodput, 0.5);
}

TEST(AimdSourceTest, Fig10VictimOscillatesUnderFlood) {
  // Fig. 10 with a TCP-like victim: throughput collapses AND oscillates
  // (sawtooth), unlike the steady collapse of the open-loop bench.
  sim::Simulator sim(Duration::millis(1));
  dp::StackParams params;
  params.pnic_rate = 1_gbps;
  params.softirq_cost_per_pkt = 3.2e-6;
  params.qemu_cost_per_pkt = 0.25e-6;
  PhysicalMachine m("m0", params, &sim);
  int rx = m.add_vm({"vm0", 1.0});
  int fl = m.add_vm({"vm1", 1.0});
  m.set_sink_app(rx);
  FlowSpec fin = flow(1);
  m.route_flow_to_vm(fin, rx);
  AimdIngressSource::Config cfg;
  cfg.flow = fin;
  cfg.max_rate = 500_mbps;  // the paper's rate limit on flow 1
  cfg.initial_rate = 400_mbps;
  cfg.additive_increase_per_sec = 300_mbps;
  AimdIngressSource victim("tcp-victim", cfg, m.pnic(), [&] {
    return m.app(rx)->stats().bytes_in.value();
  });
  sim.add(&victim);

  FlowSpec ff = flow(2, 64);
  dp::SourceApp::Config flood;
  flood.flow = ff;
  flood.rate = DataRate::zero();
  flood.cost_per_pkt = 0.05e-6;
  dp::SourceApp* flooder = m.set_source_app(fl, flood);
  m.route_flow_to_wire(ff.id, "flood");
  m.pin_flow_to_core(fin.id, 0);
  m.pin_flow_to_core(ff.id, 0);
  sim.at(SimTime::seconds(2.0), [&] { flooder->set_rate(1_gbps); });

  // Sample victim goodput every 200 ms (skip the first second of ramp).
  sim.run_for(Duration::seconds(1.0));
  std::vector<double> before, during;
  uint64_t last = m.app(rx)->stats().bytes_in.value();
  for (int i = 0; i < 25; ++i) {
    sim.run_for(Duration::millis(200));
    uint64_t now_bytes = m.app(rx)->stats().bytes_in.value();
    double mbps = static_cast<double>(now_bytes - last) * 8 / 0.2 / 1e6;
    last = now_bytes;
    (i < 5 ? before : during).push_back(mbps);
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  auto stddev = [&](const std::vector<double>& v) {
    double m2 = 0, mu = mean(v);
    for (double x : v) m2 += (x - mu) * (x - mu);
    return std::sqrt(m2 / static_cast<double>(v.size()));
  };
  // Collapse...
  EXPECT_GT(mean(before), 350);
  EXPECT_LT(mean(during), 0.5 * mean(before));
  // ...with oscillation (sawtooth), not a flat floor.
  EXPECT_GT(stddev(during), 0.15 * mean(during));
}

}  // namespace
}  // namespace perfsight::vm
