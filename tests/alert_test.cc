// AlertWatcher end-to-end: a threshold breach on a monitored series
// auto-runs Algorithm 1 and produces the same diagnosis an operator's
// manual run would, with cooldown suppression and a flight-recorder event.
#include <gtest/gtest.h>

#include <string>

#include "cluster/deployment.h"
#include "perfsight/alert.h"
#include "perfsight/contention.h"
#include "perfsight/monitor.h"
#include "perfsight/trace.h"
#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight {
namespace {

// The telemetry-export scenario: two overdriven VMs plus a memory hog, so
// TUN drops are large and Algorithm 1 finds multi-VM contention.
struct ContendedMachine {
  sim::Simulator sim{Duration::millis(1)};
  vm::PhysicalMachine machine{"m0", dp::StackParams{}, &sim};
  cluster::Deployment dep{&sim};
  Agent* agent = nullptr;
  const TenantId tenant{1};

  ContendedMachine() {
    for (int i = 0; i < 2; ++i) {
      int v = machine.add_vm({"vm" + std::to_string(i), 1.0});
      machine.set_sink_app(v);
      FlowSpec f;
      f.id = FlowId{static_cast<uint32_t>(i + 1)};
      f.packet_size = 1500;
      machine.route_flow_to_vm(f, v);
      machine.add_ingress_source("s" + std::to_string(i), f,
                                 DataRate::gbps(1.6));
    }
    machine.add_mem_hog("hog")->set_demand_bytes_per_sec(60e9);
    agent = dep.add_agent("agent-m0");
    dep.attach(&machine, agent);
    PS_CHECK(dep.assign(tenant, machine.tun(0)->id(), agent).is_ok());
  }
};

TEST(AlertWatcherTest, BreachTriggersSameDiagnosisAsManualRun) {
  ScopedTraceRecorder scoped;
  ContendedMachine s;

  Monitor monitor(s.dep.controller(), s.tenant);
  const ElementId tun0 = s.machine.tun(0)->id();
  monitor.watch(tun0, attr::kDropPkts);
  for (int i = 0; i < 4; ++i) {
    s.sim.run_for(Duration::millis(500));
    monitor.sample();
  }
  ASSERT_FALSE(monitor.rates(tun0, attr::kDropPkts).empty());

  ContentionDetector detector(s.dep.controller(), RuleBook::standard());
  detector.set_loss_threshold(100);

  // The operator's manual run, for comparison.
  ContentionReport manual = detector.diagnose(s.tenant, Duration::seconds(1),
                                              s.machine.aux_signals());
  ASSERT_TRUE(manual.problem_found);

  AlertWatcher watcher(&monitor, &detector, nullptr);
  AlertRule rule;
  rule.name = "tun0-drops";
  rule.element = tun0;
  rule.attr = attr::kDropPkts;
  rule.on_rate = true;
  rule.threshold = 100;  // pkts/s; the scenario drops far more
  watcher.add_rule(rule);

  std::vector<Alert> fired = watcher.check(s.machine.aux_signals());
  ASSERT_EQ(fired.size(), 1u);
  const Alert& a = fired[0];
  EXPECT_EQ(a.rule, "tun0-drops");
  EXPECT_GE(a.observed, a.threshold);
  ASSERT_TRUE(a.ran_contention);
  EXPECT_FALSE(a.ran_rootcause);

  // The auto-run diagnosis matches the manual one.
  EXPECT_EQ(a.contention.problem_found, manual.problem_found);
  EXPECT_EQ(a.contention.primary_location, manual.primary_location);
  EXPECT_EQ(a.contention.is_contention, manual.is_contention);
  EXPECT_EQ(a.contention.candidate_resources, manual.candidate_resources);

  // The firing landed in the flight recorder.
  bool saw_alert_event = false;
  for (const TraceEvent& e : scoped.recorder().events_for(tun0)) {
    if (e.kind == TraceEventKind::kAlertFired) {
      saw_alert_event = true;
      EXPECT_EQ(e.detail, "tun0-drops");
    }
  }
  EXPECT_TRUE(saw_alert_event);

  // Cooldown: the breach persists, but within the 5 s default the rule
  // stays quiet.
  monitor.sample();
  EXPECT_TRUE(watcher.check(s.machine.aux_signals()).empty());
  EXPECT_EQ(watcher.history().size(), 1u);
}

TEST(AlertWatcherTest, ActionNoneRecordsWithoutDiagnosis) {
  ContendedMachine s;
  Monitor monitor(s.dep.controller(), s.tenant);
  const ElementId tun0 = s.machine.tun(0)->id();
  monitor.watch(tun0, attr::kDropPkts);
  for (int i = 0; i < 3; ++i) {
    s.sim.run_for(Duration::millis(500));
    monitor.sample();
  }

  AlertWatcher watcher(&monitor, nullptr, nullptr);
  AlertRule rule;
  rule.name = "raw";
  rule.element = tun0;
  rule.attr = attr::kDropPkts;
  rule.on_rate = false;  // raw counter value
  rule.threshold = 1;
  rule.action = AlertRule::Action::kNone;
  watcher.add_rule(rule);

  std::vector<Alert> fired = watcher.check();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_FALSE(fired[0].ran_contention);
  EXPECT_FALSE(fired[0].ran_rootcause);
}

TEST(AlertWatcherTest, QuietSeriesNeverFires) {
  ContendedMachine s;
  Monitor monitor(s.dep.controller(), s.tenant);
  const ElementId tun0 = s.machine.tun(0)->id();
  monitor.watch(tun0, attr::kDropPkts);
  // No samples at all: rules observe nothing and stay silent.
  AlertWatcher watcher(&monitor, nullptr, nullptr);
  AlertRule rule;
  rule.name = "silent";
  rule.element = tun0;
  rule.attr = attr::kDropPkts;
  rule.threshold = 0;
  rule.action = AlertRule::Action::kNone;
  watcher.add_rule(rule);
  EXPECT_TRUE(watcher.check().empty());
  EXPECT_TRUE(watcher.history().empty());
}

}  // namespace
}  // namespace perfsight
