// PCpuBacklog: fluid per-core service, the 300-packet slot limit, flow
// pinning, proportional drop attribution, and packet conservation — the
// mechanics behind Fig. 10.
#include "dataplane/backlog.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace perfsight::dp {
namespace {

PacketBatch batch(uint32_t flow, uint64_t pkts, uint64_t size = 1500) {
  return PacketBatch{FlowId{flow}, pkts, pkts * size};
}

// Collects everything the backlog forwards.
struct CollectPort : PortIn {
  uint64_t pkts = 0;
  uint64_t bytes = 0;
  std::unordered_map<FlowId, uint64_t> per_flow;
  void accept(PacketBatch b) override {
    pkts += b.packets;
    bytes += b.bytes;
    per_flow[b.flow] += b.packets;
  }
};

struct BacklogRig {
  ResourcePool cpu{"cpu", 8.0};
  ResourcePool mem{"mem", 1e12};
  ResourcePool::ConsumerId cpu_c;
  ResourcePool::ConsumerId mem_c;
  CollectPort out;
  std::unique_ptr<PCpuBacklog> backlog;
  SimTime now;

  explicit BacklogRig(PCpuBacklog::Config cfg = {}) {
    cpu_c = cpu.add_consumer({"softirq", 50.0, 2.0});
    mem_c = mem.add_consumer({"softirq-mem", 1.0, -1.0});
    backlog = std::make_unique<PCpuBacklog>(ElementId{"backlog"}, cfg, &cpu,
                                            cpu_c, &mem, mem_c, &out);
  }
  void tick(Duration dt = Duration::millis(1)) {
    cpu.step(now, dt);
    mem.step(now, dt);
    backlog->step(now, dt);
    now = now + dt;
  }
};

TEST(BacklogTest, ForwardsWithinServiceCapacity) {
  BacklogRig rig;  // default 1.6us/pkt, 2 cores -> plenty for 100/tick
  for (int t = 0; t < 10; ++t) {
    rig.backlog->offer(batch(1, 100));
    rig.tick();
  }
  EXPECT_EQ(rig.out.pkts, 1000u);
  EXPECT_EQ(rig.backlog->stats().drop_pkts.value(), 0u);
}

TEST(BacklogTest, PerCoreSlotLimitDropsOverflow) {
  PCpuBacklog::Config cfg;
  cfg.proc_cost_per_pkt = 3.2e-6;  // 312 pkts per core per ms
  BacklogRig rig(cfg);
  rig.backlog->pin_flow(FlowId{1}, 0);
  // Offer 1000/tick into one core: service ~312, slots 300 -> heavy drops.
  for (int t = 0; t < 20; ++t) {
    rig.backlog->offer(batch(1, 1000));
    rig.tick();
  }
  EXPECT_GT(rig.backlog->stats().drop_pkts.value(), 5000u);
  // Conservation: in = out + dropped + queued.
  EXPECT_EQ(rig.backlog->stats().pkts_in.value(),
            rig.out.pkts + rig.backlog->stats().drop_pkts.value() +
                rig.backlog->queued_packets());
}

TEST(BacklogTest, VictimAndAggressorShareDropFraction) {
  PCpuBacklog::Config cfg;
  cfg.proc_cost_per_pkt = 3.2e-6;
  BacklogRig rig(cfg);
  rig.backlog->pin_flow(FlowId{1}, 0);
  rig.backlog->pin_flow(FlowId{2}, 0);
  for (int t = 0; t < 40; ++t) {
    rig.backlog->offer(batch(1, 42));          // victim: 500 Mbps of 1500 B
    rig.backlog->offer(batch(2, 2000, 64));    // flood: small packets
    rig.tick();
  }
  // The victim gets only its proportional share of ~312 slots/tick.
  double victim_share = static_cast<double>(rig.out.per_flow[FlowId{1}]) /
                        static_cast<double>(40 * 42);
  EXPECT_LT(victim_share, 0.35);
  EXPECT_GT(victim_share, 0.01);
  // The flood dominates the output in packet count.
  EXPECT_GT(rig.out.per_flow[FlowId{2}], 5 * rig.out.per_flow[FlowId{1}]);
}

TEST(BacklogTest, SeparateCoresDoNotInterfere) {
  PCpuBacklog::Config cfg;
  cfg.proc_cost_per_pkt = 3.2e-6;
  BacklogRig rig(cfg);
  rig.backlog->pin_flow(FlowId{1}, 0);
  rig.backlog->pin_flow(FlowId{2}, 1);  // different core
  for (int t = 0; t < 40; ++t) {
    rig.backlog->offer(batch(1, 42));
    rig.backlog->offer(batch(2, 2000, 64));
    rig.tick();
  }
  // The victim is untouched when the flood lands elsewhere.
  EXPECT_EQ(rig.out.per_flow[FlowId{1}], 40u * 42u);
}

TEST(BacklogTest, CpuStarvationShrinksService) {
  BacklogRig rig;
  // A competing consumer with overwhelming weight claims the pool.
  auto hog = rig.cpu.add_consumer({"hog", 1000.0, -1.0});
  for (int t = 0; t < 20; ++t) {
    rig.cpu.step(rig.now, Duration::millis(1));
    rig.mem.step(rig.now, Duration::millis(1));
    rig.cpu.request(hog, 0.008);  // grab everything first
    rig.backlog->offer(batch(1, 500));
    rig.backlog->step(rig.now, Duration::millis(1));
    rig.now = rig.now + Duration::millis(1);
  }
  // Starved service -> drops at the backlog.
  EXPECT_GT(rig.backlog->stats().drop_pkts.value(), 1000u);
  EXPECT_LT(rig.out.pkts, 20u * 500u);
}

TEST(BacklogTest, HashSpreadsFlowsAcrossCores) {
  PCpuBacklog::Config cfg;
  cfg.cores = 8;
  BacklogRig rig(cfg);
  std::set<int> cores;
  for (uint32_t f = 1; f <= 64; ++f) {
    cores.insert(rig.backlog->core_for(FlowId{f}));
  }
  EXPECT_GE(cores.size(), 4u);  // decent spread
  // Pinning overrides hashing.
  rig.backlog->pin_flow(FlowId{5}, 3);
  EXPECT_EQ(rig.backlog->core_for(FlowId{5}), 3);
}

TEST(BacklogTest, QueueDepthExported) {
  PCpuBacklog::Config cfg;
  cfg.proc_cost_per_pkt = 1e-3;  // absurdly slow: nothing moves
  BacklogRig rig(cfg);
  rig.backlog->offer(batch(1, 50));
  StatsRecord r = rig.backlog->collect(rig.now);
  EXPECT_EQ(r.get(attr::kQueuePkts), 50.0);
}

// Property: conservation holds under random offered loads and service.
class BacklogConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BacklogConservation, InEqualsOutPlusDropsPlusQueued) {
  Pcg32 rng(GetParam());
  PCpuBacklog::Config cfg;
  cfg.proc_cost_per_pkt = 1e-6 * (1 + rng.next_below(5));
  cfg.per_core_pkts = 100 + rng.next_below(400);
  BacklogRig rig(cfg);
  for (int t = 0; t < 100; ++t) {
    int flows = 1 + rng.next_below(4);
    for (int f = 0; f < flows; ++f) {
      rig.backlog->offer(
          batch(rng.next_below(6), rng.next_below(800), 64 + rng.next_below(1400)));
    }
    rig.tick();
  }
  EXPECT_EQ(rig.backlog->stats().pkts_in.value(),
            rig.out.pkts + rig.backlog->stats().drop_pkts.value() +
                rig.backlog->queued_packets());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BacklogConservation,
                         ::testing::Values(3, 17, 99, 1234, 77777));

}  // namespace
}  // namespace perfsight::dp
