// §5.1 bottleneck-middlebox detection: the suspicious set comes from
// utilization, the verdict from drop statistics — so a busy-waiting
// transcoder is exonerated while a genuinely overloaded forwarder (or a
// CPU-starved VM) is confirmed.
#include "perfsight/bottleneck.h"

#include <gtest/gtest.h>

#include "cluster/deployment.h"
#include "sim/simulator.h"
#include "vm/machine.h"

namespace perfsight {
namespace {

using namespace literals;

struct Rig {
  sim::Simulator sim{Duration::millis(1)};
  vm::PhysicalMachine m{"m0", dp::StackParams{}, &sim};
  cluster::Deployment dep{&sim};
  static constexpr TenantId kTenant{1};

  void wire() {
    Agent* a = dep.add_agent("a0");
    dep.attach(&m, a);
    PS_CHECK(dep.assign(kTenant, m.tun(0)->id(), a).is_ok());
  }
  SuspectVm suspect(int vm, const std::string& name) {
    return SuspectVm{
        name, {m.tun(vm)->id(), m.guest_socket(vm)->id()}};
  }
  FlowSpec flow(uint32_t id) {
    FlowSpec f;
    f.id = FlowId{id};
    f.packet_size = 1500;
    return f;
  }
};

TEST(BottleneckDetectorTest, BusyTranscoderExonerated) {
  Rig rig;
  int v = rig.m.add_vm({"transcoder", 1.0});
  rig.m.set_busy_wait_sink_app(v);
  FlowSpec f = rig.flow(1);
  rig.m.route_flow_to_vm(f, v);
  rig.m.add_ingress_source("s", f, 300_mbps);
  rig.wire();
  rig.sim.run_for(3_s);

  BottleneckDetector det(rig.dep.controller());
  BottleneckReport r = det.diagnose(
      Rig::kTenant, rig.m.utilization_snapshot(),
      {rig.suspect(v, "transcoder")}, Duration::seconds(1.0));
  // Suspicious (100% CPU) but exonerated (no loss anywhere on its path).
  ASSERT_EQ(r.verdicts.size(), 1u);
  EXPECT_GT(r.verdicts[0].cpu_utilization, 0.9);
  EXPECT_FALSE(r.verdicts[0].confirmed);
  EXPECT_EQ(r.exonerated, std::vector<std::string>{"transcoder"});
  EXPECT_TRUE(r.confirmed.empty());
}

TEST(BottleneckDetectorTest, StarvedVmConfirmed) {
  Rig rig;
  int victim = rig.m.add_vm({"victim", 1.0});
  rig.m.set_sink_app(victim);
  FlowSpec f = rig.flow(1);
  rig.m.route_flow_to_vm(f, victim);
  rig.m.add_ingress_source("s", f, 500_mbps);
  rig.m.add_vm_cpu_hog(victim)->set_demand_cores(1.0);
  rig.wire();
  rig.sim.run_for(2_s);

  BottleneckDetector det(rig.dep.controller());
  BottleneckReport r =
      det.diagnose(Rig::kTenant, rig.m.utilization_snapshot(),
                   {rig.suspect(victim, "victim")}, Duration::seconds(1.0));
  ASSERT_EQ(r.verdicts.size(), 1u);
  EXPECT_TRUE(r.verdicts[0].confirmed);
  EXPECT_GT(r.verdicts[0].loss_pkts, 1000);
  EXPECT_EQ(r.confirmed, std::vector<std::string>{"victim"});
}

TEST(BottleneckDetectorTest, LowUtilizationVmsSkippedUnlessDegenerate) {
  Rig rig;
  int idle = rig.m.add_vm({"idle", 1.0});
  rig.m.set_sink_app(idle);
  rig.wire();
  rig.sim.run_for(1_s);

  BottleneckDetector det(rig.dep.controller());
  BottleneckReport strict = det.diagnose(
      Rig::kTenant, rig.m.utilization_snapshot(),
      {rig.suspect(idle, "idle")}, Duration::millis(100));
  EXPECT_TRUE(strict.verdicts.empty());  // never suspicious

  BottleneckReport degenerate = det.diagnose(
      Rig::kTenant, rig.m.utilization_snapshot(),
      {rig.suspect(idle, "idle")}, Duration::millis(100),
      /*degenerate=*/true);
  ASSERT_EQ(degenerate.verdicts.size(), 1u);  // included, then exonerated
  EXPECT_FALSE(degenerate.verdicts[0].confirmed);
}

TEST(BottleneckDetectorTest, MixedPopulationSeparatesCleanly) {
  Rig rig;
  // A slow forwarder (true bottleneck), a busy transcoder (healthy), and a
  // quiet sink — all offered comparable load.
  int slow = rig.m.add_vm({"slow-fw", 1.0});
  dp::ForwardApp::Config fwd;
  fwd.capacity = 100_mbps;
  fwd.egress_flow = FlowId{99};
  rig.m.set_forward_app(slow, fwd);
  rig.m.route_flow_to_wire(FlowId{99}, "fw-out");
  int busy = rig.m.add_vm({"transcoder", 1.0});
  rig.m.set_busy_wait_sink_app(busy);
  int quiet = rig.m.add_vm({"quiet", 1.0});
  rig.m.set_sink_app(quiet);
  for (int i = 0; i < 3; ++i) {
    FlowSpec f = rig.flow(static_cast<uint32_t>(i + 1));
    rig.m.route_flow_to_vm(f, i);
    rig.m.add_ingress_source("s" + std::to_string(i), f, 300_mbps);
  }
  rig.wire();
  rig.sim.run_for(3_s);

  BottleneckDetector det(rig.dep.controller());
  BottleneckReport r = det.diagnose(
      Rig::kTenant, rig.m.utilization_snapshot(),
      {rig.suspect(slow, "slow-fw"), rig.suspect(busy, "transcoder"),
       rig.suspect(quiet, "quiet")},
      Duration::seconds(1.0), /*degenerate=*/true);
  ASSERT_EQ(r.verdicts.size(), 3u);
  EXPECT_EQ(r.confirmed, std::vector<std::string>{"slow-fw"});
  ASSERT_EQ(r.exonerated.size(), 2u);

  std::string text = to_text(r);
  EXPECT_NE(text.find("slow-fw"), std::string::npos);
  EXPECT_NE(text.find("BOTTLENECK"), std::string::npos);
}

}  // namespace
}  // namespace perfsight
